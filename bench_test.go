// Experiment harness: one benchmark per figure/claim of the paper (see
// DESIGN.md's experiment index and EXPERIMENTS.md for recorded results).
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* regenerates the series for one experiment; custom
// metrics carry the non-time quantities (administrative acts, messages,
// bytes, privileged operations).
package repro

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/bridge"
	"repro/internal/ca"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/gridcert"
	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/kerberos"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/vo"
	"repro/internal/wssec"
	"repro/internal/xmlsec"
	"repro/pkg/gsi"
)

// --- shared fixtures ----------------------------------------------------

type fixture struct {
	auth  *ca.Authority
	trust *gridcert.TrustStore
	alice *gridcert.Credential
	host  *gridcert.Credential
}

func newFixture(tb testing.TB) fixture {
	tb.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		tb.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(auth.Certificate()); err != nil {
		tb.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		tb.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host bench"), 12*time.Hour)
	if err != nil {
		tb.Fatal(err)
	}
	return fixture{auth: auth, trust: trust, alice: alice, host: host}
}

// --- E1: Figure 1 — VO trust-domain formation ---------------------------

// BenchmarkE1_TrustEstablishment compares forming an N-domain VO with
// unilateral CA trust (GSI, community CA) against pairwise bilateral
// Kerberos agreements. Metrics: acts/op = administrative acts;
// agreements/op = organizational agreements.
func BenchmarkE1_TrustEstablishment(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("GSI-communityCA/domains=%d", n), func(b *testing.B) {
			var acts int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				domains := makeDomains(b, n, false)
				community, err := ca.New(gridcert.MustParseName("/O=Community/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
				if err != nil {
					b.Fatal(err)
				}
				v := vo.New("bench")
				b.StartTimer()
				cost, err := v.JoinGSIWithCommunityCA(community, domains...)
				if err != nil {
					b.Fatal(err)
				}
				acts = cost.UnilateralActs
			}
			b.ReportMetric(float64(acts), "acts/op")
			b.ReportMetric(0, "agreements/op")
		})
		b.Run(fmt.Sprintf("Kerberos-bilateral/domains=%d", n), func(b *testing.B) {
			var agreements int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				domains := makeDomains(b, n, true)
				b.StartTimer()
				cost, err := vo.FormKerberos(domains)
				if err != nil {
					b.Fatal(err)
				}
				agreements = cost.BilateralAgreements
			}
			b.ReportMetric(float64(agreements), "agreements/op")
			// Each agreement is an act on both sides.
			b.ReportMetric(float64(2*agreements), "acts/op")
		})
	}
}

func makeDomains(tb testing.TB, n int, realms bool) []*vo.Domain {
	tb.Helper()
	out := make([]*vo.Domain, n)
	for i := range out {
		d, err := vo.NewDomain(fmt.Sprintf("Org%02d", i))
		if err != nil {
			tb.Fatal(err)
		}
		if realms {
			d.Realm = kerberos.NewKDC(fmt.Sprintf("ORG%02d.EXAMPLE", i))
		}
		out[i] = d
	}
	return out
}

// --- E2: Figure 2 — CAS flow --------------------------------------------

type casFixture struct {
	fixture
	server   *cas.Server
	enforcer *cas.Enforcer
	creds    *gridcert.Credential // alice's assertion-bearing proxy
}

func newCASFixture(tb testing.TB, rules int) casFixture {
	tb.Helper()
	f := newFixture(tb)
	voCred, err := f.auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=VO CAS"), 12*time.Hour)
	if err != nil {
		tb.Fatal(err)
	}
	server := cas.NewServer(voCred)
	server.AddMember(f.alice.Identity(), "researchers")
	for i := 0; i < rules; i++ {
		server.AddPolicy(authz.Rule{
			ID:        fmt.Sprintf("r%d", i),
			Effect:    authz.EffectPermit,
			Groups:    []string{"researchers"},
			Resources: []string{fmt.Sprintf("data:/set%d/*", i)},
			Actions:   []string{"read"},
		})
	}
	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := cas.NewEnforcer(f.trust, local)
	enforcer.TrustVO(server.Certificate())
	a, err := server.IssueAssertion(f.alice.Identity())
	if err != nil {
		tb.Fatal(err)
	}
	creds, err := cas.EmbedInProxy(f.alice, a)
	if err != nil {
		tb.Fatal(err)
	}
	return casFixture{fixture: f, server: server, enforcer: enforcer, creds: creds}
}

// BenchmarkE2_CAS sweeps VO policy size over the three steps of Figure 2:
// assertion issuance (step 1), proxy embedding (step 2), and resource
// enforcement (step 3).
func BenchmarkE2_CAS(b *testing.B) {
	for _, rules := range []int{10, 100, 1000, 10000} {
		f := newCASFixture(b, rules)
		b.Run(fmt.Sprintf("step1-issue/rules=%d", rules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.server.IssueAssertion(f.alice.Identity()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("step2-embed/rules=%d", rules), func(b *testing.B) {
			a, err := f.server.IssueAssertion(f.alice.Identity())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cas.EmbedInProxy(f.alice, a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("step3-enforce/rules=%d", rules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := f.enforcer.Authorize(f.creds.Chain, "data:/set0/file", "read", time.Time{})
				if err != nil || res.Decision != authz.Permit {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// --- E3: Figure 3 — OGSA secured request pipeline ------------------------

// BenchmarkE3_SecuredRequest measures the five-step pipeline end to end:
// stateful vs stateless mechanisms, with and without credential
// conversion. Per-phase metrics expose the breakdown.
func BenchmarkE3_SecuredRequest(b *testing.B) {
	mk := func(b *testing.B) (*core.Bootstrap, *gridcert.Credential, wssec.Transport) {
		boot, err := core.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host e3", nil)
		if err != nil {
			b.Fatal(err)
		}
		boot.Stack.Container.Publish("app", newBenchService())
		alice, err := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		return boot, alice, soap.Pipe(boot.Stack.Container.Dispatcher())
	}

	b.Run("stateful-fullpipeline", func(b *testing.B) {
		boot, alice, transport := mk(b)
		_ = boot
		var last core.Trace
		for i := 0; i < b.N; i++ {
			req := &core.Requestor{Credential: alice, Trust: boot.Trust}
			_, trace, err := req.Invoke(transport, "app", "echo", []byte("x"))
			if err != nil {
				b.Fatal(err)
			}
			last = trace
		}
		b.ReportMetric(float64(last.PolicyFetch.Nanoseconds()), "policy-ns")
		b.ReportMetric(float64(last.TokenProcessing.Nanoseconds()), "token-ns")
		b.ReportMetric(float64(last.Invocation.Nanoseconds()), "invoke-ns")
	})
	b.Run("stateless-fullpipeline", func(b *testing.B) {
		boot, alice, transport := mk(b)
		// Restrict the service policy to message signatures.
		var last core.Trace
		for i := 0; i < b.N; i++ {
			req := &core.Requestor{Credential: alice, Trust: boot.Trust, PreferStateless: true}
			_, trace, err := req.Invoke(transport, "app", "echo", []byte("x"))
			if err != nil {
				b.Fatal(err)
			}
			last = trace
		}
		b.ReportMetric(float64(last.PolicyFetch.Nanoseconds()), "policy-ns")
		b.ReportMetric(float64(last.Invocation.Nanoseconds()), "invoke-ns")
	})
	b.Run("with-kca-conversion", func(b *testing.B) {
		boot, _, transport := mk(b)
		kdc := kerberos.NewKDC("SITE.EXAMPLE")
		principal := kdc.RegisterPrincipal("alice", "pw")
		kcaP, kcaKey, err := kdc.RegisterService("kca/grid")
		if err != nil {
			b.Fatal(err)
		}
		kcaAuthority, err := ca.New(gridcert.MustParseName("/O=Site/CN=KCA"), 24*time.Hour, ca.DefaultPolicy())
		if err != nil {
			b.Fatal(err)
		}
		mapper := bridge.NewIdentityMapper()
		mapper.MapKerberos(gridcert.MustParseName("/O=Site/CN=Alice"), principal)
		kca := bridge.NewKCA(kcaAuthority, kerberos.NewService(kcaP, kcaKey), mapper)
		if err := boot.Trust.AddRoot(kcaAuthority.Certificate()); err != nil {
			b.Fatal(err)
		}
		convert := func() (*gridcert.Credential, error) {
			tgt, tgtSess, err := kdc.ASExchange("alice", "pw")
			if err != nil {
				return nil, err
			}
			a1, _ := kerberos.NewAuthenticator(principal, tgtSess, time.Now())
			st, stSess, err := kdc.TGSExchange(tgt, a1, "kca/grid")
			if err != nil {
				return nil, err
			}
			ap, _ := kerberos.NewAuthenticator(principal, stSess, time.Now())
			return kca.Convert(st, ap)
		}
		var last core.Trace
		for i := 0; i < b.N; i++ {
			req := &core.Requestor{Trust: boot.Trust, Convert: convert}
			_, trace, err := req.Invoke(transport, "app", "echo", []byte("x"))
			if err != nil {
				b.Fatal(err)
			}
			last = trace
		}
		b.ReportMetric(float64(last.Conversion.Nanoseconds()), "convert-ns")
	})
}

type benchService struct{ *ogsa.Base }

func newBenchService() *benchService {
	s := &benchService{Base: ogsa.NewBase()}
	s.Data.Set("__warmup__", []byte("ok"))
	return s
}

func (s *benchService) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	return call.Body, nil
}

// --- E4: Figure 4 — GT3 GRAM job initiation ------------------------------

func newGRAMBench(tb testing.TB) (*gram.Resource, *gram.Client) {
	tb.Helper()
	f := newFixture(tb)
	gm := authz.NewGridMap()
	gm.Add(f.alice.Identity(), "alice")
	res, err := gram.NewResource(f.host, f.trust, gm)
	if err != nil {
		tb.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		tb.Fatal(err)
	}
	p, err := proxy.New(f.alice, proxy.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return res, &gram.Client{Credential: p, Trust: f.trust, Resource: res}
}

var benchJob = gram.JobDescription{
	Executable:         gram.JobProgram,
	Queue:              "debug",
	DelegateCredential: true,
}

// BenchmarkE4_GRAM measures Figure-4 job initiation: the cold path
// (steps 1–7 including Setuid Starter and GRIM) vs the warm path (LMJFS
// already running) vs the GT2 gatekeeper baseline.
func BenchmarkE4_GRAM(b *testing.B) {
	b.Run("cold-steps1-7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			res, client := newGRAMBench(b)
			_ = res
			b.StartTimer()
			if _, err := client.SubmitAndRun(benchJob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-lmjfs-present", func(b *testing.B) {
		res, client := newGRAMBench(b)
		if _, err := client.SubmitAndRun(benchJob); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.SubmitAndRun(benchJob); err != nil {
				b.Fatal(err)
			}
		}
		st := res.Stats()
		b.ReportMetric(float64(st.GRIMRuns), "grim-runs-total")
	})
	b.Run("gt2-gatekeeper-baseline", func(b *testing.B) {
		f := newFixture(b)
		gm := authz.NewGridMap()
		gm.Add(f.alice.Identity(), "alice")
		res, err := gram.NewGT2Resource(f.host, f.trust, gm)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CreateAccount("alice"); err != nil {
			b.Fatal(err)
		}
		p, err := proxy.New(f.alice, proxy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		desc := gram.JobDescription{Executable: gram.JobProgram}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gram.SubmitSigned(res, p, desc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5: §5.2 — least privilege ------------------------------------------

// BenchmarkE5_LeastPrivilege runs a 10-job workload on each architecture
// and reports the privilege posture: privileged network services,
// setuid programs, and privileged operations.
func BenchmarkE5_LeastPrivilege(b *testing.B) {
	const jobs = 10
	b.Run("gt3", func(b *testing.B) {
		var privOps, privNet, setuid float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			res, client := newGRAMBench(b)
			b.StartTimer()
			for j := 0; j < jobs; j++ {
				if _, err := client.SubmitAndRun(benchJob); err != nil {
					b.Fatal(err)
				}
			}
			snap := res.Sys.Audit()
			privOps = float64(snap.PrivilegedOps)
			privNet = float64(len(snap.PrivilegedNetworkServices))
			setuid = float64(len(snap.SetuidPrograms))
		}
		b.ReportMetric(privOps, "priv-ops")
		b.ReportMetric(privNet, "priv-net-services")
		b.ReportMetric(setuid, "setuid-programs")
	})
	b.Run("gt2", func(b *testing.B) {
		var privOps, privNet float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := newFixture(b)
			gm := authz.NewGridMap()
			gm.Add(f.alice.Identity(), "alice")
			res, err := gram.NewGT2Resource(f.host, f.trust, gm)
			if err != nil {
				b.Fatal(err)
			}
			res.CreateAccount("alice")
			p, _ := proxy.New(f.alice, proxy.Options{})
			desc := gram.JobDescription{Executable: gram.JobProgram}
			b.StartTimer()
			for j := 0; j < jobs; j++ {
				if _, err := gram.SubmitSigned(res, p, desc); err != nil {
					b.Fatal(err)
				}
			}
			snap := res.Sys.Audit()
			privOps = float64(snap.PrivilegedOps)
			privNet = float64(len(snap.PrivilegedNetworkServices))
		}
		b.ReportMetric(privOps, "priv-ops")
		b.ReportMetric(privNet, "priv-net-services")
	})
}

// --- E6: §5.1 — context establishment GT2 vs GT3 --------------------------

// BenchmarkE6_ContextEstablishment compares the same GSS tokens framed
// over TCP (GT2) and carried in SOAP envelopes (GT3
// WS-SecureConversation). Metrics: handshake messages and bytes.
func BenchmarkE6_ContextEstablishment(b *testing.B) {
	f := newFixture(b)
	b.Run("gt2-transport", func(b *testing.B) {
		var msgs, bytes float64
		for i := 0; i < b.N; i++ {
			client, server := pipeHandshake(b, f)
			st := client.Handshake()
			msgs, bytes = float64(st.Messages), float64(st.Bytes)
			client.Close()
			server.Close()
		}
		b.ReportMetric(msgs, "hs-msgs")
		b.ReportMetric(bytes, "hs-bytes")
	})
	b.Run("gt3-soap", func(b *testing.B) {
		d := soap.NewDispatcher()
		mgr := wssec.NewConversationManager(gss.Config{Credential: f.host, TrustStore: f.trust})
		mgr.Register(d)
		transport := soap.Pipe(d)
		var msgs, bytes float64
		for i := 0; i < b.N; i++ {
			conv, err := wssec.EstablishConversation(gss.Config{Credential: f.alice, TrustStore: f.trust}, transport)
			if err != nil {
				b.Fatal(err)
			}
			st := conv.Stats()
			msgs, bytes = float64(st.Messages), float64(st.Bytes)
		}
		b.ReportMetric(msgs, "hs-msgs")
		b.ReportMetric(bytes, "hs-bytes")
	})
}

func pipeHandshake(tb testing.TB, f fixture) (*gsitransport.Conn, *gsitransport.Conn) {
	tb.Helper()
	cRaw, sRaw := net.Pipe()
	type result struct {
		conn *gsitransport.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := gsitransport.Server(sRaw, gss.Config{Credential: f.host, TrustStore: f.trust})
		ch <- result{conn, err}
	}()
	client, err := gsitransport.Client(cRaw, gss.Config{Credential: f.alice, TrustStore: f.trust})
	if err != nil {
		tb.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		tb.Fatal(sr.err)
	}
	return client, sr.conn
}

// --- E7: §5.1 — stateless vs stateful for K-message exchanges -------------

// BenchmarkE7_StatelessVsStateful sweeps the number of messages K
// exchanged with one service: per-message XML-Signature (no context) vs
// context establishment + wrapped messages. The crossover demonstrates
// why GT3 offers both forms.
func BenchmarkE7_StatelessVsStateful(b *testing.B) {
	f := newFixture(b)
	payload := make([]byte, 1024)
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("stateless-sign-each/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					env := soap.NewEnvelope("app/op", payload)
					if err := xmlsec.SignEnvelope(env, f.alice); err != nil {
						b.Fatal(err)
					}
					if _, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{TrustStore: f.trust}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("stateful-context+wrap/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ictx, actx, err := gss.Establish(
					gss.Config{Credential: f.alice, TrustStore: f.trust},
					gss.Config{Credential: f.host, TrustStore: f.trust},
				)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < k; j++ {
					w, err := ictx.Wrap(payload)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := actx.Unwrap(w); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- E8: §3 — mechanism bridging ------------------------------------------

// BenchmarkE8_Bridge measures the credential-conversion gateways: KCA
// (Kerberos→GSI) and PKINIT (GSI→Kerberos), including validation of the
// converted credentials.
func BenchmarkE8_Bridge(b *testing.B) {
	kdc := kerberos.NewKDC("SITE.EXAMPLE")
	principal := kdc.RegisterPrincipal("alice", "pw")
	kcaP, kcaKey, err := kdc.RegisterService("kca/grid")
	if err != nil {
		b.Fatal(err)
	}
	kcaAuthority, err := ca.New(gridcert.MustParseName("/O=Site/CN=KCA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		b.Fatal(err)
	}
	mapper := bridge.NewIdentityMapper()
	aliceDN := gridcert.MustParseName("/O=Site/CN=Alice")
	mapper.MapKerberos(aliceDN, principal)
	kca := bridge.NewKCA(kcaAuthority, kerberos.NewService(kcaP, kcaKey), mapper)
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(kcaAuthority.Certificate()); err != nil {
		b.Fatal(err)
	}

	b.Run("kca-kerberos-to-gsi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tgt, tgtSess, err := kdc.ASExchange("alice", "pw")
			if err != nil {
				b.Fatal(err)
			}
			a1, _ := kerberos.NewAuthenticator(principal, tgtSess, time.Now())
			st, stSess, err := kdc.TGSExchange(tgt, a1, "kca/grid")
			if err != nil {
				b.Fatal(err)
			}
			ap, _ := kerberos.NewAuthenticator(principal, stSess, time.Now())
			cred, err := kca.Convert(st, ap)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := trust.Verify(cred.Chain, gridcert.VerifyOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pkinit-gsi-to-kerberos", func(b *testing.B) {
		gridAuth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
		if err != nil {
			b.Fatal(err)
		}
		gridTrust := gridcert.NewTrustStore()
		gridTrust.AddRoot(gridAuth.Certificate())
		aliceCred, err := gridAuth.NewEntity(aliceDN, 12*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		gw := bridge.NewPKINIT(kdc, gridTrust, mapper)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := gw.Convert(aliceCred.Chain); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: handshake amortization — session pool + resumption --------------

// The pair the ISSUE's acceptance criteria compare: the same secured
// request/response over a live GT2 endpoint, paying the full public-key
// handshake every call (cold) versus riding the session pool (pooled).
// `make bench-pool` records them into BENCH_pool.json.

func newExchangeBenchWorld(b *testing.B, clientOpts ...gsi.Option) (*gsi.Client, gsi.Endpoint) {
	b.Helper()
	w := newPoolWorld(b)
	server, err := w.env.NewServer(w.host)
	if err != nil {
		b.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ep.Close() })
	client, err := w.env.NewClient(w.alice, clientOpts...)
	if err != nil {
		b.Fatal(err)
	}
	if p := client.Pool(); p != nil {
		b.Cleanup(func() { p.Close() })
	}
	return client, ep
}

// BenchmarkExchangeColdHandshake dials, handshakes, exchanges, and
// tears down per operation — the pre-pool cost of every call.
func BenchmarkExchangeColdHandshake(b *testing.B) {
	client, ep := newExchangeBenchWorld(b)
	ctx := context.Background()
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := client.Connect(ctx, ep.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Exchange(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
		sess.Close()
	}
}

// BenchmarkExchangePooledResume reuses one pooled connection across all
// operations: the handshake is paid once, every later call costs only
// record protection and the socket round trip.
func BenchmarkExchangePooledResume(b *testing.B) {
	client, ep := newExchangeBenchWorld(b, gsi.WithSessionPool(nil))
	ctx := context.Background()
	payload := make([]byte, 1024)
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
		b.Fatal(err) // warm the pool outside the timed region
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := client.Pool().Stats()
	b.ReportMetric(float64(st.Dials), "handshakes-total")
	b.ReportMetric(float64(st.Hits), "pool-hits-total")
}

// --- E9: §3 — proxy delegation chains --------------------------------------

// BenchmarkE9_DelegationChain sweeps chain depth D: creating a depth-D
// chain and validating it. Validation cost grows linearly with depth.
func BenchmarkE9_DelegationChain(b *testing.B) {
	f := newFixture(b)
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("create/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur := f.alice
				for d := 0; d < depth; d++ {
					next, err := proxy.New(cur, proxy.Options{})
					if err != nil {
						b.Fatal(err)
					}
					cur = next
				}
			}
		})
		b.Run(fmt.Sprintf("verify/depth=%d", depth), func(b *testing.B) {
			cur := f.alice
			for d := 0; d < depth; d++ {
				next, err := proxy.New(cur, proxy.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cur = next
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := f.trust.Verify(cur.Chain, gridcert.VerifyOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if info.ProxyDepth != depth {
					b.Fatalf("depth = %d", info.ProxyDepth)
				}
			}
		})
	}
}
