// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - A1: proxy key algorithm. GSI creates keys *per proxy*, so keygen
//     cost dominates dynamic-entity creation. Ed25519 (our default) vs
//     ECDSA P-256.
//   - A2: proxy chain depth at authentication time — the price of deep
//     delegation on every handshake.
//   - A3: CAS assertion carriage — embedded in a restricted proxy
//     (paper-faithful, authenticates the bearer) vs presented bare
//     alongside the request.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/cas"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/gss"
	"repro/internal/proxy"
)

// BenchmarkA1_ProxyKeyAlgorithm ablates the proxy key algorithm.
func BenchmarkA1_ProxyKeyAlgorithm(b *testing.B) {
	f := newFixture(b)
	for _, alg := range []gridcrypto.Algorithm{gridcrypto.AlgEd25519, gridcrypto.AlgECDSAP256} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := proxy.New(f.alice, proxy.Options{KeyAlgorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2_HandshakeVsProxyDepth ablates delegation depth against
// mutual-authentication latency.
func BenchmarkA2_HandshakeVsProxyDepth(b *testing.B) {
	f := newFixture(b)
	for _, depth := range []int{0, 1, 4, 16} {
		cred := f.alice
		for d := 0; d < depth; d++ {
			next, err := proxy.New(cred, proxy.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cred = next
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			icfg := gss.Config{Credential: cred, TrustStore: f.trust}
			acfg := gss.Config{Credential: f.host, TrustStore: f.trust}
			for i := 0; i < b.N; i++ {
				if _, _, err := gss.Establish(icfg, acfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA3_AssertionCarriage ablates how the CAS assertion reaches the
// resource.
func BenchmarkA3_AssertionCarriage(b *testing.B) {
	f := newFixture(b)
	voCred, err := f.auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=VO"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	server := cas.NewServer(voCred)
	server.AddMember(f.alice.Identity(), "g")
	server.AddPolicy(authz.Rule{
		Effect:    authz.EffectPermit,
		Groups:    []string{"g"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	})
	assertion, err := server.IssueAssertion(f.alice.Identity())
	if err != nil {
		b.Fatal(err)
	}
	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect: authz.EffectPermit, Subjects: []string{"*"},
		Resources: []string{"data:/*"}, Actions: []string{"read"},
	})
	enforcer := cas.NewEnforcer(f.trust, local)
	enforcer.TrustVO(server.Certificate())

	b.Run("embedded-in-proxy", func(b *testing.B) {
		cred, err := cas.EmbedInProxy(f.alice, assertion)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := enforcer.Authorize(cred.Chain, "data:/x", "read", time.Time{})
			if err != nil || res.Decision != authz.Permit {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
	b.Run("bare-assertion-verify-only", func(b *testing.B) {
		// The reduced check a bare carriage would do: chain validation of
		// the plain credential + assertion signature + VO policy, without
		// the binding the restricted proxy provides.
		voPolicy := authz.NewPolicy(authz.DenyOverrides).Add(assertion.Rules...)
		for i := 0; i < b.N; i++ {
			if _, err := f.trust.Verify(f.alice.Chain, gridcert.VerifyOptions{}); err != nil {
				b.Fatal(err)
			}
			if err := assertion.Verify(server.Certificate(), time.Now()); err != nil {
				b.Fatal(err)
			}
			req := authz.Request{Subject: f.alice.Identity(), Resource: "data:/x", Action: "read"}
			if authz.Combine(local.Evaluate(req), voPolicy.Evaluate(req)) != authz.Permit {
				b.Fatal("deny")
			}
		}
	})
}
