// Benchmarks for the record-layer refactor (PR 5): what the pooled,
// zero-copy, chunked data path buys over the pre-refactor one.
//
//   - BenchmarkWholeMessageTransfer64M reconstructs the old path
//     faithfully: 64 MiB crosses as four 16 MiB monolithic messages,
//     each Wrap-allocated, framed with a trusted-length ReadFrame
//     (up-front make), fully buffered at every hop, and acknowledged
//     per message — the shape the old gridftp Put had.
//   - BenchmarkStreamTransfer64M is the refactored path: the same
//     64 MiB as a streamed gridftp PUT in 256 KiB records through
//     pooled buffers, sealed and opened in place. (On multicore hosts
//     the chunked path additionally pipelines the sender's seal
//     against the receiver's open; single-core CI measures only the
//     per-byte work removed.)
//
// `make bench-record` records both (plus the steady-state exchange and
// the idle-probe benchmarks) into BENCH_record.json and gates
// allocs/op regressions via cmd/bench2json.
package repro

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcrypto"
	"repro/internal/gridftp"
	"repro/internal/wire"
	"repro/pkg/gsi"
)

const transferSize = 64 << 20

// settleHeap runs the collector to a steady state so one transfer
// benchmark's heap residue cannot skew the GC pacing of the next
// (`make bench-record` additionally runs each in its own process).
func settleHeap() {
	runtime.GC()
	runtime.GC()
}

func transferPayload() []byte {
	data := make([]byte, transferSize)
	for i := range data {
		data[i] = byte(i>>12) ^ byte(i)
	}
	return data
}

// legacyReadFrame is the pre-refactor frame reader: it trusts the
// announced length with one up-front allocation, exactly like the old
// wire.ReadFrame the DoS fix replaced. Kept here so the baseline
// faithfully reproduces the old costs.
func legacyReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > wire.MaxField {
		return nil, fmt.Errorf("frame of %d exceeds cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// legacyContext reproduces the pre-refactor gss.Context data path
// byte for byte (from git history): Wrap sealed into a fresh
// ciphertext slice and framed it through an append-grown encoder;
// Unwrap copied the ciphertext back out of the token with
// Decoder.Bytes before decrypting into another fresh buffer.
type legacyContext struct {
	sealer *gridcrypto.Sealer
	opener *gridcrypto.Opener
}

var legacyAAD = []byte("gsi3 wrap")

func newLegacyPair(b *testing.B) (client, server *legacyContext) {
	b.Helper()
	keyCS := bytes.Repeat([]byte{0xC5}, gridcrypto.AEADKeySize)
	keySC := bytes.Repeat([]byte{0x5C}, gridcrypto.AEADKeySize)
	mk := func(sendKey, recvKey []byte) *legacyContext {
		s, err := gridcrypto.NewSealer(sendKey)
		if err != nil {
			b.Fatal(err)
		}
		o, err := gridcrypto.NewOpener(recvKey)
		if err != nil {
			b.Fatal(err)
		}
		return &legacyContext{sealer: s, opener: o}
	}
	return mk(keyCS, keySC), mk(keySC, keyCS)
}

func (c *legacyContext) wrap(plaintext []byte) ([]byte, error) {
	seq, ct, err := c.sealer.Seal(plaintext, legacyAAD) // fresh ciphertext slice
	if err != nil {
		return nil, err
	}
	return wire.NewEncoder().U64(seq).Bytes(ct).Finish(), nil // encoder copy
}

func (c *legacyContext) unwrap(wrapped []byte) ([]byte, error) {
	d := wire.NewDecoder(wrapped)
	seq := d.U64()
	ct := d.Bytes() // copied out of the token
	if err := d.Done(); err != nil {
		return nil, err
	}
	return c.opener.Open(seq, ct, legacyAAD) // fresh plaintext
}

// BenchmarkWholeMessageTransfer64M: the old whole-message data path.
func BenchmarkWholeMessageTransfer64M(b *testing.B) {
	ictx, actx := newLegacyPair(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	// The old cap bounded the *wrapped frame* at 16 MiB, so whole
	// messages topped out just below it: 64 MiB crossed as four
	// near-16 MiB messages plus change.
	const msgSize = wire.MaxField - 256
	serverErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		store := make(map[string][]byte)
		for i := 0; ; i++ {
			frame, err := legacyReadFrame(conn)
			if err != nil {
				serverErr <- nil // client hung up at the end
				return
			}
			msg, err := actx.unwrap(frame)
			if err != nil {
				serverErr <- err
				return
			}
			// The old exchange decode copied the body out of the request
			// (Decoder.Bytes, not a view) before the handler ran …
			d := wire.NewDecoder(msg)
			_ = d.Str()
			body := d.Bytes()
			// … and the old server buffered the whole message and copied
			// it into the store.
			store["/bench"] = append([]byte(nil), body...)
			ack, err := actx.wrap([]byte("OK"))
			if err != nil {
				serverErr <- err
				return
			}
			if err := wire.WriteFrame(conn, ack); err != nil {
				serverErr <- err
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := transferPayload()

	settleHeap()
	b.SetBytes(transferSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := -1; i < b.N; i++ {
		if i == 0 {
			// One untimed warmup transfer settles first-touch costs
			// (page residency, TCP ramp) that otherwise dominate short
			// runs on shared machines.
			settleHeap()
			b.ResetTimer()
		}
		for off := 0; off < len(data); off += msgSize {
			chunk := data[off:min(off+msgSize, len(data))]
			// Old client path: request-encoder copy, Wrap's
			// fresh-ciphertext + encoder-framing passes, two-write
			// frame, whole-message ack round trip.
			cmd := wire.NewEncoder().Str("PUT /bench").Bytes(chunk).Finish()
			w, err := ictx.wrap(cmd)
			if err != nil {
				b.Fatal(err)
			}
			if err := wire.WriteFrame(conn, w); err != nil {
				b.Fatal(err)
			}
			ackFrame, err := legacyReadFrame(conn)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ictx.unwrap(ackFrame); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	conn.Close()
	select {
	case err := <-serverErr:
		if err != nil {
			b.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		b.Fatal("server did not finish")
	}
}

type benchFTPWorld struct {
	trust *gsi.TrustStore
	alice *gsi.Credential
	host  *gsi.Credential
}

func newBenchFTPWorld(b *testing.B) *benchFTPWorld {
	b.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Record CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host record"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	return &benchFTPWorld{trust: env.Trust(), alice: alice, host: host}
}

// BenchmarkStreamTransfer64M: the refactored path — a streamed gridftp
// PUT through the pooled record layer.
func BenchmarkStreamTransfer64M(b *testing.B) {
	world := newBenchFTPWorld(b)
	policy := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:   authz.EffectPermit,
		Subjects: []string{"/O=Grid/CN=Alice"},
		Actions:  []string{"read", "write", "delete", "list"},
	})
	srv, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), world.host, world.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := gridftp.Dial(srv.Addr(), world.alice, world.trust, srv.Identity())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	data := transferPayload()
	settleHeap()
	b.SetBytes(transferSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := -1; i < b.N; i++ {
		if i == 0 {
			// Untimed warmup, as in the whole-message baseline.
			settleHeap()
			b.ResetTimer()
		}
		n, err := client.PutFrom("/bench", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if n != transferSize {
			b.Fatalf("transferred %d bytes", n)
		}
	}
}

// BenchmarkStripedTransfer64M: the PR 7 multicore path — the same
// 64 MiB as a striped gridftp PUT over 4 parallel data connections,
// each sealing and opening on its own goroutine. On a multicore host
// the stripes run on separate cores and wall clock drops toward 1/K of
// the single-stream path; on a single-core host (this CI box has one
// vCPU) it measures the same per-byte work plus coordination, so treat
// cross-machine comparisons accordingly (see DESIGN.md).
func BenchmarkStripedTransfer64M(b *testing.B) {
	world := newBenchFTPWorld(b)
	policy := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:   authz.EffectPermit,
		Subjects: []string{"/O=Grid/CN=Alice"},
		Actions:  []string{"read", "write", "delete", "list"},
	})
	srv, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), world.host, world.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := gridftp.Dial(srv.Addr(), world.alice, world.trust, srv.Identity())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	data := transferPayload()
	settleHeap()
	b.SetBytes(transferSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := -1; i < b.N; i++ {
		if i == 0 {
			settleHeap()
			b.ResetTimer()
		}
		if err := client.PutStriped("/bench", 4, data); err != nil {
			b.Fatal(err)
		}
	}
}
