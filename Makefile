GO ?= go

.PHONY: ci fmt-check vet build test test-multicore race fuzz-smoke bench bench-pool bench-credman bench-authz bench-record bench-stripe bench-telemetry bench-trace bench-scale bench-ctrlplane gate-allocs fmt

## ci: the tier-1 gate — format check, vet, build, test (plus the
## GOMAXPROCS matrix over the striped data plane: the same tests must
## pass single-core and multicore), race (which includes the
## hot-reload-under-traffic test), fuzz smoke, the
## authorization-decision benchmark pair (which also asserts cached
## decisions stay cached), the control-plane fast-path rows (group
## commit, delta sync, warm promotion), and the allocs/op regression
## gates for the record layer and the observability plane.
ci: fmt-check vet build test test-multicore race fuzz-smoke bench-authz bench-ctrlplane gate-allocs

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-multicore: the GOMAXPROCS∈{1,4} matrix over the pipelined and
## striped data plane — scheduling-order bugs in the worker pipelines
## and stripe rendezvous hide at one setting or the other.
test-multicore:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'Striped|Stripe|Pipeline|Bulk|ReadAll' . ./internal/record ./internal/gsitransport ./internal/gridftp
	GOMAXPROCS=4 $(GO) test -count=1 -run 'Striped|Stripe|Pipeline|Bulk|ReadAll' . ./internal/record ./internal/gsitransport ./internal/gridftp

## race: the concurrency gate — the session pool and transports must be
## clean under the race detector.
race:
	$(GO) test -race ./...

## fuzz-smoke: a short fuzz pass over every parser target (go test runs
## one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGT2DecodeRequest$$' -fuzztime=5s ./pkg/gsi
	$(GO) test -run '^$$' -fuzz '^FuzzGT2DecodeReply$$' -fuzztime=5s ./pkg/gsi
	$(GO) test -run '^$$' -fuzz '^FuzzDecoder$$' -fuzztime=5s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime=5s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDelegationRequest$$' -fuzztime=5s ./internal/proxy
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDelegationReply$$' -fuzztime=5s ./internal/proxy
	$(GO) test -run '^$$' -fuzz '^FuzzGridMapRoundTrip$$' -fuzztime=5s ./internal/authz
	$(GO) test -run '^$$' -fuzz '^FuzzRecordRoundTrip$$' -fuzztime=5s ./internal/record
	$(GO) test -run '^$$' -fuzz '^FuzzStreamReassembly$$' -fuzztime=5s ./internal/record
	$(GO) test -run '^$$' -fuzz '^FuzzStripeReassembly$$' -fuzztime=5s ./internal/record
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime=5s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzPolicyBundleDecode$$' -fuzztime=5s ./internal/cas
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaBundleDecode$$' -fuzztime=5s ./internal/cas
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaApply$$' -fuzztime=5s ./internal/cas

## bench: regenerate the paper's measurements.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-pool: record the handshake-amortization pair into
## BENCH_pool.json (the perf trajectory's data points).
bench-pool:
	$(GO) test -run '^$$' -bench 'ExchangeColdHandshake|ExchangePooledResume' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_pool.json
	@cat BENCH_pool.json

## bench-credman: record the rotation-cost pair (pooled exchanges under
## a stable credential vs. across credential rotations) into
## BENCH_credman.json.
bench-credman:
	$(GO) test -run '^$$' -bench 'ExchangeSteadyState|ExchangeAcrossRotation' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_credman.json
	@cat BENCH_credman.json

## bench-authz: record the authorization-decision rows (full pipeline
## evaluation, decision-cache hit, and the cache hit over WAL-backed
## durable state) into BENCH_authz.json.
bench-authz:
	$(GO) test -run '^$$' -bench 'AuthorizeCold|AuthorizeCached' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_authz.json
	@cat BENCH_authz.json

## bench-scale: the PR 9 deployment-scale scenario — two resource-server
## OS processes, each with WAL-backed durable trust state and a CAS
## bundle replica, decide ~1M distinct subject DNs across 10k concurrent
## sessions while the parent kills the primary bundle publisher mid-run
## (the standby must deliver a membership update that landed after the
## primary died). The benchmark fails unless fail-open decisions are
## exactly zero; results land in BENCH_scale.json.
bench-scale:
	GSI_SCALE_FULL=1 $(GO) test -run '^$$' -bench '^BenchmarkScaleFederatedSessions$$' -benchtime 1x -timeout 900s . \
		| $(GO) run ./cmd/bench2json > BENCH_scale.json
	@cat BENCH_scale.json

## bench-ctrlplane: record the PR 10 control-plane fast-path rows into
## BENCH_ctrlplane.json — the WAL append matrix (SyncAlways vs
## SyncBatched at 1/8/64 writers: the widening gap is the group-commit
## claim; the 1-writer rows gate that batching adds no allocations over
## the SyncAlways frame build), the 100k-member VO sync pair (signed
## delta vs full bundle, with the bytes metrics for a 100-change
## catch-up), and the promotion pair (a standby's first decision cold
## vs pre-warmed from the publisher's hot-key export).
bench-ctrlplane:
	{ $(GO) test -run '^$$' -bench '^BenchmarkWALAppendSync(Always|Batched)(1|8|64)$$' -benchmem ./internal/wal ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkCASDeltaSync100k$$|^BenchmarkCASFullSync100k$$' -benchmem -timeout 900s . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkPromotion(Cold|Warm)FirstDecision$$' -benchmem . ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'WALAppendSyncAlways1=1,WALAppendSyncBatched1=1' > BENCH_ctrlplane.json
	@cat BENCH_ctrlplane.json

## bench-record: record the record-layer data points into
## BENCH_record.json — steady-state pooled exchange (allocs/op gate
## ≤ 2), the zero-alloc idle probe, and the 64 MiB streamed transfer
## against the reconstructed pre-refactor whole-message path. Each
## transfer benchmark runs in its own process so one benchmark's heap
## residue cannot skew the next one's GC pacing.
bench-record:
	{ $(GO) test -run '^$$' -bench '^BenchmarkExchangeSteadyState$$' -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkPoolProbe$$' -benchmem ./pkg/gsi ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkWholeMessageTransfer64M$$' -benchtime=20s -timeout 900s -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkStreamTransfer64M$$' -benchtime=20s -timeout 900s -benchmem . ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'ExchangeSteadyState=2,PoolProbe=0' > BENCH_record.json
	@cat BENCH_record.json

## bench-stripe: regenerate BENCH_record.json with the multicore rows
## added — the 4-stripe parallel transfer alongside the single-stream
## and whole-message paths (same per-process isolation and allocs/op
## gates as bench-record). On a multicore host the striped row should
## approach 1/K of the single-stream wall clock; on a single-core host
## it is strictly coordination overhead (see DESIGN.md's caveat).
bench-stripe:
	{ $(GO) test -run '^$$' -bench '^BenchmarkExchangeSteadyState$$' -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkPoolProbe$$' -benchmem ./pkg/gsi ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkWholeMessageTransfer64M$$' -benchtime=20s -timeout 900s -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkStreamTransfer64M$$' -benchtime=20s -timeout 900s -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkStripedTransfer64M$$' -benchtime=20s -timeout 900s -benchmem . ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'ExchangeSteadyState=2,PoolProbe=0' > BENCH_record.json
	@cat BENCH_record.json

## bench-telemetry: record the observability plane's data points into
## BENCH_telemetry.json — the instrumented pooled exchange (allocs/op
## gate ≤ 2, same as the uninstrumented baseline: metrics must be free
## on the hot path) and the registry's counter/histogram micro
## benchmarks (0 allocs/op each).
bench-telemetry:
	{ $(GO) test -run '^$$' -bench '^BenchmarkExchangeInstrumented$$' -benchmem ./pkg/gsi ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkCounterInc$$|^BenchmarkHistogramObserve$$' -benchmem ./internal/telemetry ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'ExchangeInstrumented=2,CounterInc=0,HistogramObserve=0' > BENCH_telemetry.json
	@cat BENCH_telemetry.json

## bench-trace: record the tracing plane's data points into
## BENCH_trace.json — the pooled exchange with tracing compiled in but
## disabled (allocs/op gate ≤ 2: the nil-tracer checks must be free),
## the traced exchange (overhead stays visible, not gated), and the
## span start/end micro benchmark (0 allocs/op from the span pool).
bench-trace:
	{ $(GO) test -run '^$$' -bench '^BenchmarkExchangeTracingDisabled$$|^BenchmarkExchangeTraced$$' -benchmem ./pkg/gsi ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkSpanStartEnd$$' -benchmem ./internal/trace ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'ExchangeTracingDisabled=2,SpanStartEnd=0' > BENCH_trace.json
	@cat BENCH_trace.json

## gate-allocs: the fast CI regression gate — steady-state pooled
## Exchange must stay ≤ 2 allocs/op with metrics attached and with
## tracing compiled in but disabled, the idle probe at 0, the telemetry
## and span-lifecycle hot paths at 0, and a cached authorization
## decision over WAL-backed durable state at 0 (durability is paid at
## mutation time, never on the decision hot path), and a group-committed
## WAL append at 1 — the same single frame-buffer allocation as
## SyncAlways, so batching never buys throughput with garbage.
gate-allocs:
	{ $(GO) test -run '^$$' -bench '^BenchmarkExchangeSteadyState$$|^BenchmarkAuthorizeCachedDurable$$' -benchmem . ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkPoolProbe$$|^BenchmarkExchangeInstrumented$$|^BenchmarkExchangeTracingDisabled$$' -benchmem ./pkg/gsi ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkCounterInc$$|^BenchmarkHistogramObserve$$' -benchmem ./internal/telemetry ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkSpanStartEnd$$' -benchmem ./internal/trace ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkWALAppendSync(Always|Batched)1$$' -benchmem ./internal/wal ; } \
	| $(GO) run ./cmd/bench2json -gate-allocs 'ExchangeSteadyState=2,PoolProbe=0,ExchangeInstrumented=2,CounterInc=0,HistogramObserve=0,ExchangeTracingDisabled=2,SpanStartEnd=0,AuthorizeCachedDurable=0,WALAppendSyncAlways1=1,WALAppendSyncBatched1=1' > /dev/null

## fmt: rewrite files in place.
fmt:
	gofmt -w .
