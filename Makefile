GO ?= go

.PHONY: ci fmt-check vet build test race fuzz-smoke bench bench-pool bench-credman bench-authz fmt

## ci: the tier-1 gate — format check, vet, build, test, race, fuzz
## smoke, and the authorization-decision benchmark pair (which also
## asserts cached decisions stay cached).
ci: fmt-check vet build test race fuzz-smoke bench-authz

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency gate — the session pool and transports must be
## clean under the race detector.
race:
	$(GO) test -race ./...

## fuzz-smoke: a short fuzz pass over every parser target (go test runs
## one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGT2DecodeRequest$$' -fuzztime=5s ./pkg/gsi
	$(GO) test -run '^$$' -fuzz '^FuzzGT2DecodeReply$$' -fuzztime=5s ./pkg/gsi
	$(GO) test -run '^$$' -fuzz '^FuzzDecoder$$' -fuzztime=5s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime=5s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDelegationRequest$$' -fuzztime=5s ./internal/proxy
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDelegationReply$$' -fuzztime=5s ./internal/proxy
	$(GO) test -run '^$$' -fuzz '^FuzzGridMapRoundTrip$$' -fuzztime=5s ./internal/authz

## bench: regenerate the paper's measurements.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-pool: record the handshake-amortization pair into
## BENCH_pool.json (the perf trajectory's data points).
bench-pool:
	$(GO) test -run '^$$' -bench 'ExchangeColdHandshake|ExchangePooledResume' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_pool.json
	@cat BENCH_pool.json

## bench-credman: record the rotation-cost pair (pooled exchanges under
## a stable credential vs. across credential rotations) into
## BENCH_credman.json.
bench-credman:
	$(GO) test -run '^$$' -bench 'ExchangeSteadyState|ExchangeAcrossRotation' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_credman.json
	@cat BENCH_credman.json

## bench-authz: record the authorization-decision pair (full pipeline
## evaluation vs. decision-cache hit) into BENCH_authz.json.
bench-authz:
	$(GO) test -run '^$$' -bench 'AuthorizeCold|AuthorizeCached' -benchmem . \
		| $(GO) run ./cmd/bench2json > BENCH_authz.json
	@cat BENCH_authz.json

## fmt: rewrite files in place.
fmt:
	gofmt -w .
