GO ?= go

.PHONY: ci fmt-check vet build test bench fmt

## ci: the tier-1 gate — format check, vet, build, test.
ci: fmt-check vet build test

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench: regenerate the paper's measurements.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## fmt: rewrite files in place.
fmt:
	gofmt -w .
