// The million-subject federation scenario (`make bench-scale`): two
// resource-server OS processes, each with WAL-backed durable trust
// state and a CAS bundle replica pulled from a primary publisher with
// a standby behind it, decide a corpus of ~1M distinct subject DNs
// across 10k concurrent osim sessions. Mid-run the parent kills the
// primary publisher AND admits a batch of late members — phase 2 of
// the load proves the standby delivered the update and that not one
// decision failed open while the federation was degraded.
//
// The parent process is the orchestrator: it mints the credentials,
// hosts the community server behind both publisher endpoints, re-execs
// the test binary twice as TestScaleChildProcess, and coordinates the
// failover over the children's stdin/stdout. Results land in
// BENCH_scale.json via cmd/bench2json.
package repro

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gridcert"
	"repro/internal/osim"
	"repro/pkg/gsi"
)

// scaleParams sizes the scenario. The full numbers (the acceptance
// shape: 1M subjects, 10k sessions) run when GSI_SCALE_FULL=1 — the
// Makefile's bench-scale target sets it; a bare `go test -bench Scale`
// runs a quick smoke shape.
type scaleParams struct {
	Children int
	Subjects int // total distinct corpus, split across children
	Sessions int // total concurrent sessions, split across children
	// MemberMod: subject i is a founding VO member when i%MemberMod == 0,
	// and a late member (admitted during the failover) when
	// i%MemberMod == MemberMod/2.
	MemberMod int
}

func scaleShape() scaleParams {
	if os.Getenv("GSI_SCALE_FULL") == "1" {
		return scaleParams{Children: 2, Subjects: 1_000_000, Sessions: 10_000, MemberMod: 100}
	}
	return scaleParams{Children: 2, Subjects: 8_000, Sessions: 400, MemberMod: 20}
}

// The per-child protocol: child → parent "SCALE-READY", "SCALE-PHASE1",
// "SCALE-REPORT <json>" lines on stdout; parent → child one
// "FAILOVER\n" line on stdin after the primary is gone.
const (
	scaleReady   = "SCALE-READY"
	scalePhase1  = "SCALE-PHASE1"
	scaleReport  = "SCALE-REPORT "
	scaleRelease = "FAILOVER"
)

// scaleChildReport is what each child prints after its load run.
type scaleChildReport struct {
	Load       osim.LoadReport   `json:"load"`
	Sync       gsi.CASSyncStatus `json:"sync"`
	PolicyGen  uint64            `json:"policy_gen"`
	GridMapGen uint64            `json:"gridmap_gen"`
	SetupNS    int64             `json:"setup_ns"`
}

func BenchmarkScaleFederatedSessions(b *testing.B) {
	shape := scaleShape()
	for i := 0; i < b.N; i++ {
		runScaleScenario(b, shape)
	}
}

func runScaleScenario(b *testing.B, shape scaleParams) {
	dir := b.TempDir()
	ctx := context.Background()

	authority, err := gsi.NewCA("/O=Scale/CN=Scale CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Scale/CN=ScaleVO CAS"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-scale",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"scale"},
		Resources: []string{"data:/scale/*"},
		Actions:   []string{"read"},
	})
	member := func(i int) bool { return i%shape.MemberMod == 0 }
	late := func(i int) bool { return i%shape.MemberMod == shape.MemberMod/2 }
	for i := 0; i < shape.Subjects; i++ {
		if member(i) {
			vo.AddMember(gridcert.MustParseName(osim.SubjectDN(i)), "scale")
		}
	}

	// Node credentials, serialized for the children.
	mustWrite := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			b.Fatal(err)
		}
	}
	mustWrite("roots", gridcert.EncodeChain([]*gsi.Certificate{authority.Certificate()}))
	mustWrite("vo.cert", gridcert.EncodeChain([]*gsi.Certificate{vo.Certificate()}))
	nodeDNs := make([]string, shape.Children)
	for c := 0; c < shape.Children; c++ {
		cred, err := authority.NewHostEntity(gsi.MustParseName(fmt.Sprintf("/O=Scale/CN=node%d", c)), 12*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		nodeDNs[c] = cred.Identity().String()
		blob, err := gridcert.EncodeCredential(cred)
		if err != nil {
			b.Fatal(err)
		}
		mustWrite(fmt.Sprintf("node%d.cred", c), blob)
	}

	// Publisher endpoints: primary and standby both serve the same
	// community server; only the configured node identities may pull.
	pubPolicy := gsi.NewPolicy(gsi.Rule{
		ID:        "bundle-readers",
		Effect:    gsi.EffectPermit,
		Subjects:  nodeDNs,
		Resources: []string{"ogsa:gsi.__cas.sync"},
		Actions:   []string{"*"},
	})
	echo := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	}
	servePublisher := func(name string) gsi.Endpoint {
		cred, err := authority.NewHostEntity(gsi.MustParseName("/O=Scale/CN="+name), 12*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := env.NewServer(cred,
			gsi.WithTransport(gsi.TransportGT3()),
			gsi.WithCASPublisher(vo),
			gsi.WithLocalPolicy(pubPolicy))
		if err != nil {
			b.Fatal(err)
		}
		ep, err := srv.Serve(ctx, "127.0.0.1:0", echo)
		if err != nil {
			b.Fatal(err)
		}
		return ep
	}
	primary := servePublisher("cas primary")
	standby := servePublisher("cas standby")
	defer standby.Close()
	defer primary.Close()

	// Re-exec the children.
	childWidth := shape.Subjects / shape.Children
	sessions := shape.Sessions / shape.Children
	ops := childWidth / 2 / sessions
	if ops == 0 {
		b.Fatalf("shape too small: %d subjects across %d sessions", childWidth, sessions)
	}
	type child struct {
		cmd    *exec.Cmd
		stdin  io.WriteCloser
		lines  chan string
		report scaleChildReport
	}
	children := make([]*child, shape.Children)
	for c := range children {
		cmd := exec.Command(os.Args[0], "-test.run=^TestScaleChildProcess$", "-test.timeout=15m")
		cmd.Env = append(os.Environ(),
			"GSI_SCALE_CHILD=1",
			"GSI_SCALE_DIR="+dir,
			"GSI_SCALE_CRED="+fmt.Sprintf("node%d.cred", c),
			"GSI_SCALE_STATE="+filepath.Join(dir, fmt.Sprintf("state%d", c)),
			"GSI_SCALE_PRIMARY="+primary.Addr(),
			"GSI_SCALE_STANDBY="+standby.Addr(),
			"GSI_SCALE_OFFSET="+strconv.Itoa(c*childWidth),
			"GSI_SCALE_WIDTH="+strconv.Itoa(childWidth),
			"GSI_SCALE_SESSIONS="+strconv.Itoa(sessions),
			"GSI_SCALE_OPS="+strconv.Itoa(ops),
			"GSI_SCALE_MOD="+strconv.Itoa(shape.MemberMod),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			b.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			b.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			b.Fatal(err)
		}
		ch := &child{cmd: cmd, stdin: stdin, lines: make(chan string, 64)}
		go func() {
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "SCALE-") {
					ch.lines <- line
				}
			}
			close(ch.lines)
		}()
		children[c] = ch
		defer cmd.Process.Kill()
	}
	expect := func(ch *child, prefix string) string {
		for line := range ch.lines {
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
		b.Fatalf("child exited before sending %q", prefix)
		return ""
	}

	start := time.Now()
	for _, ch := range children {
		expect(ch, scaleReady)
	}
	for _, ch := range children {
		expect(ch, scalePhase1)
	}
	// The degradation: primary gone, then a membership change only the
	// standby can deliver.
	primary.Close()
	for i := 0; i < shape.Subjects; i++ {
		if late(i) {
			vo.AddMember(gridcert.MustParseName(osim.SubjectDN(i)), "scale")
		}
	}
	for _, ch := range children {
		if _, err := io.WriteString(ch.stdin, scaleRelease+"\n"); err != nil {
			b.Fatal(err)
		}
	}
	for _, ch := range children {
		line := expect(ch, scaleReport)
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, scaleReport)), &ch.report); err != nil {
			b.Fatalf("child report: %v\n%s", err, line)
		}
	}
	elapsed := time.Since(start)
	for _, ch := range children {
		if err := ch.cmd.Wait(); err != nil {
			b.Fatalf("child failed: %v", err)
		}
	}

	var total osim.LoadReport
	for c, ch := range children {
		r := ch.report.Load
		total.Sessions += r.Sessions
		total.Decisions += r.Decisions
		total.DistinctSubjects += r.DistinctSubjects
		total.Permits += r.Permits
		total.Denies += r.Denies
		total.FailOpen += r.FailOpen
		total.FailClosed += r.FailClosed
		total.Errors += r.Errors
		total.PrivilegedOps += r.PrivilegedOps
		if ch.report.Sync.LastEndpoint != standby.Addr() {
			b.Fatalf("child %d finished on %q, want standby %q", c, ch.report.Sync.LastEndpoint, standby.Addr())
		}
		if ch.report.Sync.Version < 2 {
			b.Fatalf("child %d never saw the late-member bundle: %+v", c, ch.report.Sync)
		}
	}
	// The invariant of the whole exercise.
	if total.FailOpen != 0 {
		b.Fatalf("fail-open decisions: %d", total.FailOpen)
	}
	if total.FailClosed != 0 {
		b.Fatalf("fail-closed decisions: %d", total.FailClosed)
	}
	if total.Errors != 0 {
		b.Fatalf("decision errors: %d", total.Errors)
	}
	if total.Sessions != sessions*shape.Children {
		b.Fatalf("sessions = %d, want %d", total.Sessions, sessions*shape.Children)
	}
	if want := 2 * ops * sessions * shape.Children; total.DistinctSubjects != want {
		b.Fatalf("distinct subjects = %d, want %d", total.DistinctSubjects, want)
	}
	if total.PrivilegedOps != 0 {
		b.Fatalf("privileged ops during load: %d", total.PrivilegedOps)
	}
	b.ReportMetric(float64(total.Decisions)/elapsed.Seconds(), "decisions/s")
	b.ReportMetric(float64(total.Sessions), "sessions")
	b.ReportMetric(float64(total.DistinctSubjects), "subjects")
	b.ReportMetric(float64(total.FailOpen), "failopen")
}

// TestScaleChildProcess is one resource-server node of the scale
// scenario; it only runs re-exec'd by BenchmarkScaleFederatedSessions
// (GSI_SCALE_CHILD gates it).
func TestScaleChildProcess(t *testing.T) {
	if os.Getenv("GSI_SCALE_CHILD") != "1" {
		t.Skip("re-exec helper for BenchmarkScaleFederatedSessions")
	}
	dir := os.Getenv("GSI_SCALE_DIR")
	mustInt := func(key string) int {
		v, err := strconv.Atoi(os.Getenv(key))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		return v
	}
	offset := mustInt("GSI_SCALE_OFFSET")
	width := mustInt("GSI_SCALE_WIDTH")
	sessions := mustInt("GSI_SCALE_SESSIONS")
	ops := mustInt("GSI_SCALE_OPS")
	mod := mustInt("GSI_SCALE_MOD")
	member := func(i int) bool { return i%mod == 0 }
	late := func(i int) bool { return i%mod == mod/2 }

	mustRead := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	roots, err := gridcert.DecodeChain(mustRead("roots"))
	if err != nil {
		t.Fatal(err)
	}
	voChain, err := gridcert.DecodeChain(mustRead("vo.cert"))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gridcert.DecodeCredential(mustRead(os.Getenv("GSI_SCALE_CRED")))
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(roots...))
	if err != nil {
		t.Fatal(err)
	}

	setupStart := time.Now()
	server, err := env.NewServer(cred,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithDurableState(os.Getenv("GSI_SCALE_STATE")),
		gsi.WithoutDecisionAudit(),
		gsi.WithCASUpstream(gsi.CASUpstreamConfig{
			Endpoints: []string{os.Getenv("GSI_SCALE_PRIMARY"), os.Getenv("GSI_SCALE_STANDBY")},
			Cert:      voChain[0],
			Interval:  100 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Durable trust state: the local half of the intersection, and
	// gridmap accounts for every subject policy will ever permit. Every
	// entry journals through the WAL before it applies.
	ds := server.DurableState()
	if ds == nil {
		t.Fatal("no durable state")
	}
	if err := ds.Policy().AddChecked(gsi.Rule{
		ID:        "local-scale",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"scale"},
		Resources: []string{"data:/scale/*"},
		Actions:   []string{"read"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := offset; i < offset+width; i++ {
		if member(i) || late(i) {
			if err := ds.GridMap().AddChecked(gridcert.MustParseName(osim.SubjectDN(i)), "scale"); err != nil {
				t.Fatal(err)
			}
		}
	}
	setup := time.Since(setupStart)

	// Wait for the first bundle, then tell the parent we're live.
	waitSync := func(what string, cond func(gsi.CASSyncStatus) bool) gsi.CASSyncStatus {
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := server.CASSyncStatus()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; status %+v", what, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	first := waitSync("first bundle", func(st gsi.CASSyncStatus) bool { return st.Version >= 1 && st.Members > 0 })
	fmt.Println(scaleReady)

	// Decisions ride the documented transport-authenticated fast path:
	// the peer carries verified ChainInfo (as a live session would after
	// its handshake), so the pipeline prices assertion checks, replica
	// lookup, policy intersection, and gridmap mapping — not handshake
	// crypto, which the transport benchmarks already cover.
	pipe := server.AuthorizationPipeline()
	if pipe == nil {
		t.Fatal("no pipeline")
	}
	caName := roots[0].Subject
	pub := cred.Leaf().PublicKey
	notBefore := time.Now().Add(-time.Hour)
	notAfter := time.Now().Add(12 * time.Hour)
	decide := func(session, subject int, dn string) (bool, error) {
		name, err := gridcert.ParseName(dn)
		if err != nil {
			return false, err
		}
		leaf := &gridcert.Certificate{
			Version:      1,
			SerialNumber: uint64(subject) + 1,
			Type:         gridcert.TypeEndEntity,
			Issuer:       caName,
			Subject:      name,
			NotBefore:    notBefore,
			NotAfter:     notAfter,
			PublicKey:    pub,
		}
		peer := gsi.Peer{
			Identity: name,
			Subject:  name,
			Info:     &gridcert.ChainInfo{Identity: name, Subject: name, EndEntity: leaf, Leaf: leaf},
		}
		d, err := pipe.Authorize(context.Background(), peer, "data:/scale/block", "read")
		if err != nil {
			return false, err
		}
		return d.Decision == gsi.Permit, nil
	}

	stdin := bufio.NewReader(os.Stdin)
	sys := osim.NewSystem()
	report, err := osim.RunLoad(sys, osim.LoadConfig{
		Sessions:      sessions,
		OpsPerSession: ops,
		Phases: []osim.LoadPhase{
			{Offset: offset, Subjects: width / 2, Expect: member},
			{Offset: offset + width/2, Subjects: width / 2, Expect: func(i int) bool { return member(i) || late(i) }},
		},
		Decide: decide,
		BetweenPhases: func(int) error {
			// Hold every session at the barrier while the parent kills
			// the primary and admits the late members; resume only after
			// the standby delivered the updated bundle.
			fmt.Println(scalePhase1)
			line, err := stdin.ReadString('\n')
			if err != nil {
				return err
			}
			if strings.TrimSpace(line) != scaleRelease {
				return fmt.Errorf("unexpected parent line %q", line)
			}
			waitSync("standby bundle", func(st gsi.CASSyncStatus) bool {
				return st.Members > first.Members && st.LastEndpoint == os.Getenv("GSI_SCALE_STANDBY")
			})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	out, err := json.Marshal(scaleChildReport{
		Load:       report,
		Sync:       server.CASSyncStatus(),
		PolicyGen:  ds.Policy().Generation(),
		GridMapGen: ds.GridMap().Generation(),
		SetupNS:    int64(setup),
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(scaleReport + string(out))
}
