// Race-enabled integration test for the record layer's streaming mode:
// concurrent streams and exchanges share one pooled client while the
// credential manager rotates the client credential mid-flight (PR-3
// RetireCredential). In-flight streams must complete on their
// checked-out sessions, retired sessions must drain instead of parking,
// and post-rotation traffic must run under the successor credential —
// with zero failed operations throughout.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/gsi"
)

func TestStreamsAndExchangesAcrossRotation(t *testing.T) {
	authority, err := gsi.NewCA("/O=Grid/CN=Stream CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host stream"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// A stream store: upload:<p> collects, download:<p> replays.
	var storeMu sync.Mutex
	files := make(map[string][]byte)
	streamHandler := func(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
		switch {
		case strings.HasPrefix(op, "upload:"):
			var buf bytes.Buffer
			if _, err := io.Copy(&buf, st); err != nil {
				return err
			}
			storeMu.Lock()
			files[strings.TrimPrefix(op, "upload:")] = buf.Bytes()
			storeMu.Unlock()
			return nil
		case strings.HasPrefix(op, "download:"):
			storeMu.Lock()
			data := files[strings.TrimPrefix(op, "download:")]
			storeMu.Unlock()
			if data == nil {
				return fmt.Errorf("no such file")
			}
			_, err := st.Write(data)
			return err
		}
		return fmt.Errorf("unknown stream op %q", op)
	}

	server, err := env.NewServer(host, gsi.WithStreamHandler(streamHandler))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	initial, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := env.NewCredentialManager(initial,
		gsi.DelegationRenewal(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	client, err := env.NewClient(nil,
		gsi.WithCredentialManager(cm),
		gsi.WithSessionPool(nil),
		gsi.WithMaxConcurrentPerHost(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Pool().Close()

	payload := make([]byte, 700_000) // 3 chunks, unaligned tail
	for i := range payload {
		payload[i] = byte(i * 17)
	}

	const (
		streamWorkers   = 4
		streamIters     = 5
		exchangeWorkers = 4
		exchangeIters   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, streamWorkers*streamIters+exchangeWorkers*exchangeIters+2)
	rotated := make(chan struct{})

	// Stream workers: upload then download-and-verify, repeatedly.
	for w := 0; w < streamWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < streamIters; i++ {
				path := fmt.Sprintf("/w%d/it%d", w, i)
				up, err := client.OpenStream(ctx, ep.Addr(), "upload:"+path)
				if err != nil {
					errs <- fmt.Errorf("w%d open up: %w", w, err)
					return
				}
				if _, err := up.Write(payload); err != nil {
					errs <- fmt.Errorf("w%d write: %w", w, err)
					up.Close()
					return
				}
				if err := up.Close(); err != nil {
					errs <- fmt.Errorf("w%d close up: %w", w, err)
					return
				}
				down, err := client.OpenStream(ctx, ep.Addr(), "download:"+path)
				if err != nil {
					errs <- fmt.Errorf("w%d open down: %w", w, err)
					return
				}
				down.CloseWrite()
				var back bytes.Buffer
				if _, err := io.Copy(&back, down); err != nil {
					errs <- fmt.Errorf("w%d read: %w", w, err)
					down.Close()
					return
				}
				if err := down.Close(); err != nil {
					errs <- fmt.Errorf("w%d close down: %w", w, err)
					return
				}
				if !bytes.Equal(back.Bytes(), payload) {
					errs <- fmt.Errorf("w%d it%d: stream corrupted (%d bytes)", w, i, back.Len())
					return
				}
			}
		}(w)
	}

	// Exchange workers share the same pool concurrently.
	for w := 0; w < exchangeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("exchange-%d", w))
			for i := 0; i < exchangeIters; i++ {
				out, err := client.Exchange(ctx, ep.Addr(), "echo", msg)
				if err != nil {
					errs <- fmt.Errorf("x%d: %w", w, err)
					return
				}
				if !bytes.Equal(out, msg) {
					errs <- fmt.Errorf("x%d: corrupted echo", w)
					return
				}
			}
		}(w)
	}

	// Two rotations while traffic is in flight: each retires the old
	// credential's sessions (drain at return) and rekeys the pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(rotated)
		for r := 0; r < 2; r++ {
			time.Sleep(30 * time.Millisecond)
			if _, err := cm.Renew(ctx); err != nil {
				errs <- fmt.Errorf("rotation %d: %w", r, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	<-rotated

	// The rotations retired sessions, and the pool served on.
	if cur := client.Credential(); cur.Leaf().Fingerprint() == initial.Leaf().Fingerprint() {
		t.Fatal("credential did not rotate")
	}
	stats := client.Pool().Stats()
	if stats.Retired == 0 {
		t.Fatalf("no sessions retired across rotations: %+v", stats)
	}
	// Post-rotation: a fresh stream and exchange both run under the
	// successor credential.
	st, err := client.OpenStream(ctx, ep.Addr(), "download:/w0/it0")
	if err != nil {
		t.Fatal(err)
	}
	st.CloseWrite()
	var final bytes.Buffer
	if _, err := io.Copy(&final, st); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Bytes(), payload) {
		t.Fatal("post-rotation stream corrupted")
	}
	if _, err := client.Exchange(ctx, ep.Addr(), "final", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}
