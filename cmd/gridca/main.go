// Command gridca demonstrates the grid certificate authority through
// the public gsi API: it creates a CA, issues user and host
// certificates, revokes one, and prints the resulting PKI state. All
// state is in-memory (this repository's keys are deliberately not
// persistable); the tool exists to show the issuance and revocation
// flows end to end — including the typed gsi.ErrUntrustedIssuer a
// relying party sees for a revoked certificate.
//
// Usage:
//
//	gridca [-ca DN] [-users DN,DN,...] [-host DN] [-revoke-first]
package main

import (
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/gridcert"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	caName := flag.String("ca", "/O=Grid/CN=Demo CA", "CA subject DN")
	users := flag.String("users", "/O=Grid/CN=Alice,/O=Grid/CN=Bob", "comma-separated user DNs to issue")
	host := flag.String("host", "/O=Grid/CN=host demo.example.org", "host DN to issue")
	revokeFirst := flag.Bool("revoke-first", false, "revoke the first issued user and publish a CRL")
	flag.Parse()

	authority, err := gsi.NewCA(*caName, 365*24*time.Hour)
	if err != nil {
		log.Fatalf("creating CA: %v", err)
	}
	fmt.Printf("CA created: %s\n", authority.Certificate())
	fp := authority.Certificate().Fingerprint()
	fmt.Printf("  fingerprint: %x\n", fp[:8])

	var issued []*gsi.Credential
	for _, u := range strings.Split(*users, ",") {
		dn, err := gsi.ParseName(strings.TrimSpace(u))
		if err != nil {
			log.Fatalf("bad user DN %q: %v", u, err)
		}
		cred, err := authority.NewEntity(dn, 12*time.Hour)
		if err != nil {
			log.Fatalf("issuing %q: %v", dn, err)
		}
		issued = append(issued, cred)
		fmt.Printf("issued user:  %s\n", cred.Leaf())
	}
	hostDN, err := gsi.ParseName(*host)
	if err != nil {
		log.Fatalf("bad host DN: %v", err)
	}
	hostCred, err := authority.NewHostEntity(hostDN, 30*24*time.Hour)
	if err != nil {
		log.Fatalf("issuing host: %v", err)
	}
	fmt.Printf("issued host:  %s\n", hostCred.Leaf())
	fmt.Printf("  encoded (base64, feed to certinfo):\n  %s\n",
		base64.StdEncoding.EncodeToString(hostCred.Leaf().Encode()))

	if *revokeFirst && len(issued) > 0 {
		serial := issued[0].Leaf().SerialNumber
		if err := authority.Revoke(serial); err != nil {
			log.Fatalf("revoking: %v", err)
		}
		crl, err := authority.CRL()
		if err != nil {
			log.Fatalf("CRL: %v", err)
		}
		fmt.Printf("revoked serial %d; CRL #%d lists %d serial(s)\n", serial, crl.Number, len(crl.Serials))

		// Demonstrate the effect on a relying party: an Environment with
		// the CRL installed refuses the chain with a typed error.
		env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
		if err != nil {
			log.Fatal(err)
		}
		if err := env.Trust().AddCRL(crl); err != nil {
			log.Fatal(err)
		}
		_, err = env.Trust().Verify(issued[0].Chain, gsi.VerifyOptions{})
		fmt.Printf("verification of revoked cert: %v (revoked=%v)\n",
			err, errors.Is(err, gridcert.ErrRevoked))
	}

	st := authority.Stats()
	fmt.Printf("CA stats: issued=%d revoked=%d crls=%d\n", st.Issued, st.Revoked, st.CRLs)
}
