// Command proxyinit is the analog of grid-proxy-init: it creates a proxy
// certificate below a user credential and validates the resulting chain,
// driving the handle-based gsi API (Environment + Client). It bootstraps
// a demo CA and user in memory, then shows the proxy's properties
// (variant, lifetime, delegation depth) and the validation result.
//
// With -renew it additionally demonstrates one-shot renewal through the
// credential lifecycle subsystem: instead of minting a second proxy
// from scratch, the proxy is handed to a CredentialManager whose
// renewal source re-delegates below the user credential, and one Renew
// publishes a fresh successor (what the background loop does ahead of
// every expiry).
//
// Usage:
//
//	proxyinit [-subject DN] [-hours N] [-limited] [-depth N] [-no-delegate] [-renew]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	subject := flag.String("subject", "/O=Grid/CN=Alice", "user DN")
	hours := flag.Int("hours", 12, "proxy lifetime in hours")
	limited := flag.Bool("limited", false, "create a limited proxy (GRAM will refuse job creation)")
	depth := flag.Int("depth", 1, "delegation chain depth to create")
	noDelegate := flag.Bool("no-delegate", false, "forbid further delegation below the first proxy")
	renew := flag.Bool("renew", false, "renew the proxy once through the credential manager")
	flag.Parse()
	if *depth < 1 {
		log.Fatal("proxyinit: -depth must be at least 1")
	}

	authority, err := gsi.NewCA("/O=Grid/CN=Demo CA", 365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	dn, err := gsi.ParseName(*subject)
	if err != nil {
		log.Fatalf("bad subject: %v", err)
	}
	user, err := authority.NewEntity(dn, 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user credential: %s\n", user.Leaf())

	opts := gsi.ProxyOptions{Lifetime: time.Duration(*hours) * time.Hour}
	if *limited {
		opts.Variant = gsi.ProxyLimited
	}
	if *noDelegate {
		opts.NoFurtherDelegation = true
	}
	cur := user
	start := time.Now()
	for i := 0; i < *depth; i++ {
		client, err := env.NewClient(cur)
		if err != nil {
			log.Fatal(err)
		}
		next, err := client.Proxy(opts)
		if err != nil {
			log.Fatalf("creating proxy %d: %v", i+1, err)
		}
		cur = next
		opts = gsi.ProxyOptions{Lifetime: time.Duration(*hours) * time.Hour}
	}
	elapsed := time.Since(start)

	leaf := cur.Leaf()
	fmt.Printf("proxy subject:  %s\n", leaf.Subject)
	fmt.Printf("proxy variant:  %s\n", leaf.Proxy.Variant)
	fmt.Printf("valid until:    %s\n", leaf.NotAfter.Format(time.RFC3339))
	fmt.Printf("chain length:   %d certificates\n", len(cur.Chain))
	fmt.Printf("created in:     %v\n", elapsed)

	info, err := env.Trust().Verify(cur.Chain, gsi.VerifyOptions{})
	if err != nil {
		log.Fatalf("chain does not validate: %v", err)
	}
	fmt.Printf("validated: identity=%s proxyDepth=%d limited=%v\n",
		info.Identity, info.ProxyDepth, info.Limited)
	if info.Limited {
		fmt.Println("note: limited proxies are rejected for job initiation (GSI rule)")
	}

	if *renew {
		// One-shot renewal: the manager obtains a successor from its
		// source (here, re-delegation below the user credential) and
		// publishes it — rotation hooks would rekey session pools at
		// this moment. The background loop (cm.Start) drives the same
		// path ahead of every expiry. The renewal options are rebuilt
		// from the flags (the depth loop reset opts), so -limited and
		// -no-delegate carry over to the successor.
		renewOpts := gsi.ProxyOptions{Lifetime: time.Duration(*hours) * time.Hour}
		if *limited {
			renewOpts.Variant = gsi.ProxyLimited
		}
		if *noDelegate {
			renewOpts.NoFurtherDelegation = true
		}
		cm, err := env.NewCredentialManager(cur,
			gsi.DelegationRenewal(user, renewOpts),
			gsi.WithRenewalHorizon(time.Duration(*hours)*time.Hour/4))
		if err != nil {
			log.Fatal(err)
		}
		defer cm.Close()
		renewStart := time.Now()
		next, err := cm.Renew(context.Background())
		if err != nil {
			log.Fatalf("renewing proxy: %v", err)
		}
		fmt.Printf("renewed subject: %s\n", next.Leaf().Subject)
		fmt.Printf("renewed until:   %s (%s of validity)\n",
			next.Leaf().NotAfter.Format(time.RFC3339),
			time.Until(next.Leaf().NotAfter).Round(time.Minute))
		fmt.Printf("renewal took:    %v\n", time.Since(renewStart))
		if _, err := env.Trust().Verify(next.Chain, gsi.VerifyOptions{}); err != nil {
			log.Fatalf("renewed chain does not validate: %v", err)
		}
		st := cm.Stats()
		fmt.Printf("manager stats:   rotations=%d failures=%d\n", st.Rotations, st.Failures)
	}
}
