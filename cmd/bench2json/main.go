// Command bench2json converts `go test -bench` output on stdin into a
// JSON series on stdout, so benchmark runs can be recorded as
// BENCH_*.json trajectory points (see the Makefile's bench-pool
// target).
//
// Usage:
//
//	go test -bench 'Exchange' -benchmem . | bench2json > BENCH_pool.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one recorded benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Series is the file layout: environment header plus results.
type Series struct {
	RecordedAt string   `json:"recorded_at"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	series := Series{RecordedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			series.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			series.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			series.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2json: skipping unparseable line: %s\n", line)
			continue
		}
		series.Results = append(series.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(series); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  123  456 ns/op  7 B/op ..."
// into a Result; metric pairs after the iteration count are (value,
// unit).
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Result{}, false
	}
	return Result{Name: name, Iterations: iters, Metrics: metrics}, true
}
