// Command bench2json converts `go test -bench` output on stdin into a
// JSON series on stdout, so benchmark runs can be recorded as
// BENCH_*.json trajectory points (see the Makefile's bench-pool
// target).
//
// Usage:
//
//	go test -bench 'Exchange' -benchmem . | bench2json > BENCH_pool.json
//
// With -gate-allocs, bench2json doubles as the CI allocation
// regression gate: it still emits the JSON, but exits nonzero when a
// named benchmark's allocs/op exceeds its bound (or is missing from
// the input entirely, so a renamed benchmark cannot silently disable
// its gate):
//
//	... | bench2json -gate-allocs 'ExchangeSteadyState=2,PoolProbe=0' > BENCH_record.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one recorded benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Series is the file layout: environment header plus results.
type Series struct {
	RecordedAt string   `json:"recorded_at"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	gateSpec := flag.String("gate-allocs", "", "comma-separated Name=maxAllocsPerOp bounds enforced on the parsed results")
	flag.Parse()
	gates, err := parseGates(*gateSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(2)
	}
	series := Series{RecordedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			series.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			series.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			series.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2json: skipping unparseable line: %s\n", line)
			continue
		}
		series.Results = append(series.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(series); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if failures := checkGates(gates, series.Results); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench2json: gate failed:", f)
		}
		os.Exit(3)
	}
}

// parseGates parses "Name=max,Name=max" into bounds.
func parseGates(spec string) (map[string]float64, error) {
	gates := make(map[string]float64)
	if spec == "" {
		return gates, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, bound, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed -gate-allocs entry %q (want Name=max)", part)
		}
		v, err := strconv.ParseFloat(bound, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("malformed -gate-allocs bound in %q", part)
		}
		gates[name] = v
	}
	return gates, nil
}

// checkGates compares each gated benchmark's allocs/op metric against
// its bound. A gated benchmark absent from the results (or lacking
// -benchmem output) is itself a failure.
func checkGates(gates map[string]float64, results []Result) []string {
	var failures []string
	for name, bound := range gates {
		found := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			found = true
			allocs, ok := r.Metrics["allocs/op"]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: no allocs/op metric (run with -benchmem)", name))
				break
			}
			if allocs > bound {
				failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op exceeds the gate of %.1f", name, allocs, bound))
			}
			break
		}
		if !found {
			failures = append(failures, fmt.Sprintf("%s: benchmark missing from input", name))
		}
	}
	return failures
}

// parseBenchLine parses "BenchmarkName-8  123  456 ns/op  7 B/op ..."
// into a Result; metric pairs after the iteration count are (value,
// unit).
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Result{}, false
	}
	return Result{Name: name, Iterations: iters, Metrics: metrics}, true
}
