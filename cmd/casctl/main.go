// Command casctl demonstrates the Community Authorization Service flow
// of the paper's Figure 2 on the handle-based gsi API: a VO enrolls
// members and policy, a member's Client requests a signed assertion
// under a context.Context, embeds it in a restricted proxy, and a
// resource enforces the intersection of VO and local policy.
//
// Usage:
//
//	casctl [-member DN] [-resource R] [-action A] [-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	member := flag.String("member", "/O=Grid/CN=Alice", "member DN")
	resource := flag.String("resource", "data:/climate/run1", "resource to access")
	action := flag.String("action", "read", "action to attempt")
	timeout := flag.Duration("timeout", 10*time.Second, "deadline for the assertion request")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	memberDN := gsi.MustParseName(*member)
	memberCred, err := authority.NewEntity(memberDN, 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=ClimateVO CAS"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	server := gsi.NewCASServer(voCred)
	server.AddMember(memberDN, "researchers")
	server.AddPolicy(gsi.Rule{
		ID:        "vo-read-climate",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	fmt.Printf("VO %s: 1 member, %d policy rule(s)\n", server.VO(), server.PolicySize())

	// Step 1: the member's Client obtains a signed assertion.
	client, err := env.NewClient(memberCred)
	if err != nil {
		log.Fatal(err)
	}
	assertion, err := client.RequestAssertion(ctx, server)
	if err != nil {
		log.Fatalf("step 1 (issue): %v", err)
	}
	fmt.Printf("step 1: assertion issued to %s with %d rule(s), expires %s\n",
		assertion.Subject, len(assertion.Rules), assertion.ExpiresAt.Format(time.RFC3339))

	// Step 2: embed in a restricted proxy.
	proxyCred, err := client.EmbedAssertion(assertion)
	if err != nil {
		log.Fatalf("step 2 (embed): %v", err)
	}
	fmt.Printf("step 2: restricted proxy %s\n", proxyCred.Leaf().Subject)

	// Step 3: resource enforcement (local ∩ VO), under the same context.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-allow-all-data",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := gsi.NewCASEnforcer(env.Trust(), local)
	enforcer.TrustVO(server.Certificate())
	res, err := enforcer.AuthorizeContext(ctx, proxyCred.Chain, *resource, *action, time.Time{})
	if err != nil {
		log.Fatalf("step 3 (enforce): %v", err)
	}
	fmt.Printf("step 3: %s %s -> %s (local=%s vo=%s): %s\n",
		*action, *resource, res.Decision, res.Local, res.VO, res.Reason)
}
