// Command casctl demonstrates the Community Authorization Service flow
// of the paper's Figure 2 on the handle-based gsi API: a VO enrolls
// members and policy, a member's Client requests a signed assertion
// under a context.Context, embeds it in a restricted proxy, and a
// resource enforces the intersection of VO and local policy.
//
// With -serve the enforcement runs through a live facade server's
// authorization pipeline instead of the bare enforcer: N exchanges hit
// the decision cache, a -revoke pass proves the generation bump defeats
// cached grants, and the audit chain is verified.
//
// Usage:
//
//	casctl [-member DN] [-resource R] [-action A] [-timeout D]
//	       [-serve] [-exchanges N] [-cache-ttl D] [-revoke]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/secsvc"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	member := flag.String("member", "/O=Grid/CN=Alice", "member DN")
	resource := flag.String("resource", "data:/climate/run1", "resource to access")
	action := flag.String("action", "read", "action to attempt")
	timeout := flag.Duration("timeout", 10*time.Second, "deadline for the assertion request")
	serve := flag.Bool("serve", false, "also enforce through a live facade server's authorization pipeline")
	exchanges := flag.Int("exchanges", 8, "exchanges to run against the facade server (-serve)")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "decision-cache TTL for the pipeline (-serve; 0 disables)")
	revoke := flag.Bool("revoke", true, "revoke the local rule mid-traffic and prove the cache honors it (-serve)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	memberDN := gsi.MustParseName(*member)
	memberCred, err := authority.NewEntity(memberDN, 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=ClimateVO CAS"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	server := gsi.NewCASServer(voCred)
	server.AddMember(memberDN, "researchers")
	server.AddPolicy(gsi.Rule{
		ID:        "vo-read-climate",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	fmt.Printf("VO %s: 1 member, %d policy rule(s)\n", server.VO(), server.PolicySize())

	// Step 1: the member's Client obtains a signed assertion.
	client, err := env.NewClient(memberCred)
	if err != nil {
		log.Fatal(err)
	}
	assertion, err := client.RequestAssertion(ctx, server)
	if err != nil {
		log.Fatalf("step 1 (issue): %v", err)
	}
	fmt.Printf("step 1: assertion issued to %s with %d rule(s), expires %s\n",
		assertion.Subject, len(assertion.Rules), assertion.ExpiresAt.Format(time.RFC3339))

	// Step 2: embed in a restricted proxy.
	proxyCred, err := client.EmbedAssertion(assertion)
	if err != nil {
		log.Fatalf("step 2 (embed): %v", err)
	}
	fmt.Printf("step 2: restricted proxy %s\n", proxyCred.Leaf().Subject)

	// Step 3: resource enforcement (local ∩ VO), under the same context.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-allow-all-data",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := gsi.NewCASEnforcer(env.Trust(), local)
	enforcer.TrustVO(server.Certificate())
	res, err := enforcer.AuthorizeContext(ctx, proxyCred.Chain, *resource, *action, time.Time{})
	if err != nil {
		log.Fatalf("step 3 (enforce): %v", err)
	}
	fmt.Printf("step 3: %s %s -> %s (local=%s vo=%s): %s\n",
		*action, *resource, res.Decision, res.Local, res.VO, res.Reason)

	if !*serve {
		return
	}

	// Step 4: the same decision, but made by a live facade server's
	// authorization pipeline — decision cache, gridmap mapping, and
	// audit chain included. The VO grants the exchange resource so the
	// assertion applies to served traffic.
	server.AddPolicy(gsi.Rule{
		ID:        "vo-exchange",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{*action},
	})
	assertion, err = client.RequestAssertion(ctx, server)
	if err != nil {
		log.Fatalf("step 4 (re-issue): %v", err)
	}
	proxyCred, err = client.EmbedAssertion(assertion)
	if err != nil {
		log.Fatalf("step 4 (re-embed): %v", err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host casctl"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	serverLocal := gsi.NewPolicy(gsi.Rule{
		ID:        "local-exchange",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(memberDN, "griduser")
	audit := secsvc.NewAuditLog()
	pipeline, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(serverLocal),
		gsi.WithTrustedVO(server.Certificate()),
		gsi.WithGridMap(gridmap),
		gsi.WithAuditSink(audit),
		gsi.WithDecisionCache(*cacheTTL),
	)
	if err != nil {
		log.Fatal(err)
	}
	facade, err := env.NewServer(host, gsi.WithAuthorizationPipeline(pipeline))
	if err != nil {
		log.Fatal(err)
	}
	ep, err := facade.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return []byte(peer.LocalAccount), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	voClient, err := env.NewClient(proxyCred, gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer voClient.Pool().Close()
	var account []byte
	for i := 0; i < *exchanges; i++ {
		if account, err = voClient.Exchange(ctx, ep.Addr(), *action, nil); err != nil {
			log.Fatalf("step 4 (exchange %d): %v", i, err)
		}
	}
	st := pipeline.CacheStats()
	fmt.Printf("step 4: %d facade exchange(s) as account %q — cache %d hit(s) / %d miss(es)\n",
		*exchanges, account, st.Hits, st.Misses)

	if *revoke {
		serverLocal.Remove("local-exchange")
		if _, err := voClient.Exchange(ctx, ep.Addr(), *action, nil); errors.Is(err, gsi.ErrUnauthorized) {
			fmt.Println("step 5: local rule revoked — very next exchange denied, no stale cache grant")
		} else {
			log.Fatalf("step 5: post-revocation exchange returned %v, want unauthorized", err)
		}
	}
	intact := "intact"
	if i := audit.VerifyChain(); i >= 0 {
		intact = fmt.Sprintf("corrupt at %d", i)
	}
	fmt.Printf("audit: %d event(s), chain %s\n", audit.Len(), intact)
}
