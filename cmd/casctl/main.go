// Command casctl demonstrates the Community Authorization Service flow
// of the paper's Figure 2: a VO enrolls members and policy, a member
// obtains a signed assertion, embeds it in a restricted proxy, and a
// resource enforces the intersection of VO and local policy.
//
// Usage:
//
//	casctl [-member DN] [-resource R] [-action A]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/cas"
	"repro/internal/gridcert"
)

func main() {
	log.SetFlags(0)
	member := flag.String("member", "/O=Grid/CN=Alice", "member DN")
	resource := flag.String("resource", "data:/climate/run1", "resource to access")
	action := flag.String("action", "read", "action to attempt")
	flag.Parse()

	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		log.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		log.Fatal(err)
	}
	memberDN := gridcert.MustParseName(*member)
	memberCred, err := authority.NewEntity(memberDN, 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	voCred, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=ClimateVO CAS"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	server := cas.NewServer(voCred)
	server.AddMember(memberDN, "researchers")
	server.AddPolicy(authz.Rule{
		ID:        "vo-read-climate",
		Effect:    authz.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	fmt.Printf("VO %s: 1 member, %d policy rule(s)\n", server.VO(), server.PolicySize())

	// Step 1: member obtains a signed assertion.
	assertion, err := server.IssueAssertion(memberDN)
	if err != nil {
		log.Fatalf("step 1 (issue): %v", err)
	}
	fmt.Printf("step 1: assertion issued to %s with %d rule(s), expires %s\n",
		assertion.Subject, len(assertion.Rules), assertion.ExpiresAt.Format(time.RFC3339))

	// Step 2: embed in a restricted proxy.
	proxyCred, err := cas.EmbedInProxy(memberCred, assertion)
	if err != nil {
		log.Fatalf("step 2 (embed): %v", err)
	}
	fmt.Printf("step 2: restricted proxy %s\n", proxyCred.Leaf().Subject)

	// Step 3: resource enforcement (local ∩ VO).
	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		ID:        "local-allow-all-data",
		Effect:    authz.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := cas.NewEnforcer(trust, local)
	enforcer.TrustVO(server.Certificate())
	res, err := enforcer.Authorize(proxyCred.Chain, *resource, *action, time.Time{})
	if err != nil {
		log.Fatalf("step 3 (enforce): %v", err)
	}
	fmt.Printf("step 3: %s %s -> %s (local=%s vo=%s): %s\n",
		*action, *resource, res.Decision, res.Local, res.VO, res.Reason)
}
