// Command credmgr demonstrates the credential lifecycle subsystem end
// to end: it boots a demo CA, a user, and a MyProxy repository; deposits
// a medium-lived proxy; then runs a CredentialManager whose background
// loop keeps a deliberately short-lived working proxy alive by renewing
// from the repository ahead of every expiry — while a pooled client
// exchanges traffic through each rotation, proving none is dropped.
//
// Usage:
//
//	credmgr [-lifetime 2s] [-horizon 800ms] [-rotations 3] [-source myproxy|delegate]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	lifetime := flag.Duration("lifetime", 2*time.Second, "working proxy lifetime (short, to show rotations)")
	horizon := flag.Duration("horizon", 800*time.Millisecond, "renew this far before expiry")
	rotations := flag.Int("rotations", 3, "stop after this many rotations")
	source := flag.String("source", "myproxy", "renewal source: myproxy | delegate")
	flag.Parse()

	authority, err := gsi.NewCA("/O=Grid/CN=Credmgr CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host worker"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The renewal source: an online MyProxy repository holding a
	// medium-lived deposit, or plain re-delegation below the user
	// credential held locally.
	var renewal gsi.RenewalSource
	switch *source {
	case "myproxy":
		repo := gsi.NewMyProxy()
		aliceClient, err := env.NewClient(alice)
		if err != nil {
			log.Fatal(err)
		}
		deposit, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: 6 * time.Hour})
		if err != nil {
			log.Fatal(err)
		}
		if err := aliceClient.StoreCredential(ctx, repo, "alice", "open sesame", deposit, time.Hour); err != nil {
			log.Fatal(err)
		}
		fmt.Println("deposited 6h proxy in MyProxy under username \"alice\"")
		renewal = gsi.MyProxyRenewal(repo, "alice", "open sesame", *lifetime)
	case "delegate":
		fmt.Println("renewing by re-delegation below the local user credential")
		renewal = gsi.DelegationRenewal(alice, gsi.ProxyOptions{Lifetime: *lifetime})
	default:
		log.Fatalf("credmgr: unknown -source %q", *source)
	}

	initial, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: *lifetime})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := env.NewCredentialManager(initial, renewal,
		gsi.WithRenewalHorizon(*horizon),
		gsi.WithRenewalJitter(*horizon/8),
		gsi.WithRenewalRetry(50*time.Millisecond, time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer cm.Close()

	rotated := make(chan struct{}, 64)
	cm.OnRotate(func(old, next *gsi.Credential) {
		fmt.Printf("rotated: %s -> expires %s\n",
			next.Leaf().Subject, next.Leaf().NotAfter.Format(time.RFC3339Nano))
		rotated <- struct{}{}
	})

	// A server and a pooled managed client: traffic keeps flowing while
	// the manager rotates underneath it.
	server, err := env.NewServer(host)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	client, err := env.NewClient(nil, gsi.WithCredentialManager(cm), gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Pool().Close()

	var sent, failed atomic.Int64
	trafficCtx, stopTraffic := context.WithCancel(ctx)
	defer stopTraffic()
	go func() {
		for trafficCtx.Err() == nil {
			if _, err := client.Exchange(trafficCtx, ep.Addr(), "echo", []byte("tick")); err != nil {
				if trafficCtx.Err() == nil {
					failed.Add(1)
				}
				continue
			}
			sent.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	fmt.Printf("managing %s (expires %s), horizon %s — waiting for %d rotations\n",
		initial.Leaf().Subject, initial.Leaf().NotAfter.Format(time.RFC3339Nano), *horizon, *rotations)
	cm.Start()

	timeout := time.After(time.Duration(*rotations+2) * *lifetime * 2)
	for done := 0; done < *rotations; {
		select {
		case <-rotated:
			done++
		case <-timeout:
			log.Fatalf("credmgr: gave up after %d/%d rotations", done, *rotations)
		}
	}
	stopTraffic()

	st := cm.Stats()
	ps := client.Pool().Stats()
	fmt.Printf("\nmanager: rotations=%d failures=%d credential valid until %s\n",
		st.Rotations, st.Failures, st.NotAfter.Format(time.RFC3339Nano))
	fmt.Printf("traffic: %d exchanges, %d failed, pool dials=%d hits=%d retired=%d\n",
		sent.Load(), failed.Load(), ps.Dials, ps.Hits, ps.Retired)
	if failed.Load() > 0 {
		log.Fatal("credmgr: exchanges failed during rotation")
	}
	fmt.Println("no exchange failed across any rotation")
}
