// Command certinfo decodes a base64-encoded grid certificate (as printed
// by gridca) from stdin or an argument and prints its fields — the
// analog of grid-cert-info.
//
// Usage:
//
//	gridca | grep encoded -A1 | tail -1 | certinfo
//	certinfo BASE64CERT
package main

import (
	"bufio"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	var input string
	if flag.NArg() > 0 {
		input = flag.Arg(0)
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				input = line
			}
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	}
	if input == "" {
		log.Fatal("certinfo: no input (pass base64 cert as argument or on stdin)")
	}
	raw, err := base64.StdEncoding.DecodeString(input)
	if err != nil {
		log.Fatalf("certinfo: base64: %v", err)
	}
	cert, err := gsi.DecodeCertificate(raw)
	if err != nil {
		log.Fatalf("certinfo: decode: %v", err)
	}
	fmt.Printf("subject:    %s\n", cert.Subject)
	fmt.Printf("issuer:     %s\n", cert.Issuer)
	fmt.Printf("type:       %s\n", cert.Type)
	fmt.Printf("serial:     %d\n", cert.SerialNumber)
	fmt.Printf("not before: %s\n", cert.NotBefore.Format(time.RFC3339))
	fmt.Printf("not after:  %s\n", cert.NotAfter.Format(time.RFC3339))
	fmt.Printf("key alg:    %s\n", cert.PublicKey.Alg)
	fp := cert.Fingerprint()
	fmt.Printf("fingerprint: %x\n", fp[:])
	if cert.Proxy != nil {
		fmt.Printf("proxy:      variant=%s pathlen=%d", cert.Proxy.Variant, cert.Proxy.PathLenConstraint)
		if cert.Proxy.PolicyLanguage != "" {
			fmt.Printf(" policy-language=%s policy-bytes=%d", cert.Proxy.PolicyLanguage, len(cert.Proxy.Policy))
		}
		fmt.Println()
	}
	for _, ext := range cert.Extensions {
		fmt.Printf("extension:  %s critical=%v bytes=%d\n", ext.ID, ext.Critical, len(ext.Value))
	}
}
