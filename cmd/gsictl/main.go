// Command gsictl is the control-plane client and demo server of the
// observability plane (PR 6). `gsictl serve` stands up a GT3 facade
// server with metrics, hot-reload, and the gsi.__admin port type, and
// writes a bundle directory holding everything another process needs to
// reach it: trust roots, admin and user credentials, the endpoint URL,
// and the live-editable policy/gridmap/CRL files the server watches.
// The other subcommands load that bundle and drive the admin surface
// over a mutually authenticated secure conversation.
//
// Usage:
//
//	gsictl serve  [-dir DIR] [-addr HOST:PORT] [-metrics HOST:PORT] [-interval D]
//	gsictl stats  [-dir DIR] [-cred NAME]
//	gsictl metrics [-dir DIR] [-cred NAME]
//	gsictl drain  [-dir DIR] [-cred NAME]
//	gsictl reload [-dir DIR] [-cred NAME]
//	gsictl retire [-dir DIR] [-cred NAME] FINGERPRINT
//	gsictl traces [-dir DIR] [-cred NAME] [-n N] [-op OP] [-peer DN] [-errors] [-trace HEXID]
//	gsictl transfers [-dir DIR] [-cred NAME]
//	gsictl cas-status [-dir DIR] [-cred NAME]
//	gsictl cas-sync [-dir DIR] [-cred NAME]
//	gsictl compact [-dir DIR] [-cred NAME]
//
// traces queries the server's flight recorder: slowest-N spans by
// default, filterable by op name, peer DN substring, errors-only, or a
// single full trace by id. transfers lists the bulk transfers in
// flight right now (op, peer, bytes so far, stripes, elapsed).
// cas-status reports the CAS policy-bundle replica (applied version,
// generation, pull history); cas-sync forces an immediate bundle pull
// from the configured upstreams. Both require a server started with
// WithCASUpstream. compact folds the durable journal into a snapshot
// now and reports its shape after; it requires WithDurableState.
//
// The serve process runs until SIGINT/SIGTERM, then drains gracefully:
// the endpoint closes (taking the reload watcher and metrics listener
// with it), the admin pool drains, and the endpoint file is removed so
// stale clients fail fast instead of hanging on a dead address.
//
// Authorization is live policy, not configuration: -cred user selects
// the bundled user credential, which the default policy.json permits
// for application exchanges but not for "ogsa:gsi.__admin" — so admin
// ops are denied until you edit policy.json (no restart needed; the
// server reloads it).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

const (
	adminDN = "/O=Grid/CN=gsictl admin"
	userDN  = "/O=Grid/CN=gsictl user"
	hostDN  = "/O=Grid/CN=gsictl server"
	caDN    = "/O=Grid/CN=gsictl CA"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		runServe(args)
	case "stats", "metrics", "drain", "reload", "retire", "traces", "transfers",
		"cas-status", "cas-sync", "compact":
		runAdminOp(cmd, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gsictl serve|stats|metrics|drain|reload|retire|traces|transfers|cas-status|cas-sync|compact [flags] [args]")
	os.Exit(2)
}

// --- serve ---------------------------------------------------------------

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", defaultDir(), "bundle directory (credentials, watched config, endpoint)")
	addr := fs.String("addr", "127.0.0.1:0", "service listen address")
	metricsAddr := fs.String("metrics", "127.0.0.1:9464", "plaintext /metrics + /healthz listen address (empty disables)")
	interval := fs.Duration("interval", 500*time.Millisecond, "config file poll interval")
	fs.Parse(args)

	if err := os.MkdirAll(*dir, 0o700); err != nil {
		log.Fatal(err)
	}

	// A one-CA world whose material outlives this process: clients load
	// the bundle from disk, so the server and a later gsictl stats agree
	// on roots and identities without sharing memory.
	authority, err := gsi.NewCA(caDN, 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName(hostDN), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	admin, err := authority.NewEntity(gsi.MustParseName(adminDN), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	user, err := authority.NewEntity(gsi.MustParseName(userDN), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeBundle(*dir, authority.Certificate(), admin, user); err != nil {
		log.Fatal(err)
	}

	// The live policy/gridmap objects are seeded by decoding the very
	// files the reloader watches, so an operator edit and the initial
	// state go through one codec and one validation path.
	pol := authz.NewPolicy(authz.DenyOverrides)
	rules, combining, err := authz.DecodePolicyJSON(mustRead(filepath.Join(*dir, "policy.json")))
	if err != nil || combining != pol.Combining() {
		log.Fatalf("seeding policy: %v", err)
	}
	if err := pol.Replace(rules); err != nil {
		log.Fatal(err)
	}
	gm, err := authz.ParseGridMap(string(mustRead(filepath.Join(*dir, "gridmap"))))
	if err != nil {
		log.Fatal(err)
	}

	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	pool, err := gsi.NewSessionPool()
	if err != nil {
		log.Fatal(err)
	}
	reg := gsi.NewMetricsRegistry()

	opts := []gsi.Option{
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithLocalPolicy(pol),
		gsi.WithGridMap(gm),
		gsi.WithMetrics(reg),
		gsi.WithTracing(),
		gsi.WithAdmin(),
		gsi.WithAdminPool(pool),
		gsi.WithReload(gsi.ReloadConfig{
			TrustRoots: filepath.Join(*dir, "roots"),
			CRLs:       filepath.Join(*dir, "crls"),
			GridMap:    filepath.Join(*dir, "gridmap"),
			Policy:     filepath.Join(*dir, "policy.json"),
			Interval:   *interval,
		}),
	}
	if *metricsAddr != "" {
		opts = append(opts, gsi.WithMetricsListener(*metricsAddr))
	}
	server, err := env.NewServer(host, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM start the graceful drain instead of killing the
	// process mid-conversation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ep, err := server.Serve(ctx, *addr, func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	epFile := filepath.Join(*dir, "endpoint")
	if err := os.WriteFile(epFile, []byte(ep.Addr()+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gsictl server up\n")
	fmt.Printf("  endpoint   %s\n", ep.Addr())
	if *metricsAddr != "" {
		fmt.Printf("  metrics    http://%s/metrics (health: /healthz)\n", *metricsAddr)
	}
	fmt.Printf("  bundle     %s\n", *dir)
	fmt.Printf("  admin via  gsictl stats -dir %s\n", *dir)
	fmt.Printf("  tracing    on — gsictl traces -dir %s (flight recorder), gsictl transfers\n", *dir)
	fmt.Printf("edit %s/policy.json or %s/gridmap and watch them apply live; ^C drains and exits\n", *dir, *dir)

	<-ctx.Done()
	fmt.Println("\ndraining...")
	if err := ep.Close(); err != nil {
		log.Printf("endpoint close: %v", err)
	}
	if err := pool.Close(); err != nil {
		log.Printf("pool close: %v", err)
	}
	os.Remove(epFile)
	fmt.Println("done")
}

// writeBundle lays down everything a client process needs plus the
// files the server watches. Credentials carry private keys → 0600; the
// rest is public configuration.
func writeBundle(dir string, root *gsi.Certificate, admin, user *gsi.Credential) error {
	adminCred, err := gridcert.EncodeCredential(admin)
	if err != nil {
		return err
	}
	userCred, err := gridcert.EncodeCredential(user)
	if err != nil {
		return err
	}
	policy := authz.NewPolicy(authz.DenyOverrides).Add(
		authz.Rule{
			ID:        "admin-control-plane",
			Effect:    authz.EffectPermit,
			Subjects:  []string{adminDN},
			Resources: []string{"ogsa:" + ogsa.AdminHandle},
			Actions:   []string{"*"},
		},
		authz.Rule{
			ID:        "exchanges",
			Effect:    authz.EffectPermit,
			Subjects:  []string{"*"},
			Resources: []string{"ogsa:gsi.exchange"},
			Actions:   []string{"*"},
		},
	)
	policyJSON, err := policy.EncodePolicyJSON()
	if err != nil {
		return err
	}
	gridmap := fmt.Sprintf("%q gsiadmin\n%q gsiuser\n", adminDN, userDN)
	files := []struct {
		name string
		data []byte
		mode os.FileMode
	}{
		{"roots", gridcert.EncodeChain([]*gsi.Certificate{root}), 0o644},
		{"crls", gridcert.EncodeCRLSet(nil), 0o644},
		{"gridmap", []byte(gridmap), 0o644},
		{"policy.json", policyJSON, 0o644},
		{"admin.cred", adminCred, 0o600},
		{"user.cred", userCred, 0o600},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, f.mode); err != nil {
			return err
		}
	}
	return nil
}

// --- admin subcommands ---------------------------------------------------

func runAdminOp(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", defaultDir(), "bundle directory written by gsictl serve")
	credName := fs.String("cred", "admin", "credential to authenticate with: admin or user")
	timeout := fs.Duration("timeout", 10*time.Second, "call deadline")
	var traceN *int
	var traceOp, tracePeer, traceID *string
	var traceErrs *bool
	if cmd == "traces" {
		traceN = fs.Int("n", 0, "return the slowest N spans (0 = server default)")
		traceOp = fs.String("op", "", "filter by exact span op name")
		tracePeer = fs.String("peer", "", "filter by peer DN substring")
		traceErrs = fs.Bool("errors", false, "errored spans only")
		traceID = fs.String("trace", "", "select one full trace by hex id (spans in start order)")
	}
	fs.Parse(args)

	var op string
	var body []byte
	switch cmd {
	case "stats":
		op = ogsa.AdminOpStats
	case "metrics":
		op = ogsa.AdminOpMetrics
	case "drain":
		op = ogsa.AdminOpDrain
	case "reload":
		op = ogsa.AdminOpReload
	case "retire":
		if fs.NArg() != 1 {
			log.Fatal("retire requires a credential fingerprint (hex prefix)")
		}
		op = ogsa.AdminOpRetire
		body = []byte(fs.Arg(0))
	case "traces":
		op = ogsa.AdminOpTraces
		q := struct {
			N          int    `json:"n,omitempty"`
			Op         string `json:"op,omitempty"`
			Peer       string `json:"peer,omitempty"`
			ErrorsOnly bool   `json:"errors_only,omitempty"`
			Trace      string `json:"trace,omitempty"`
		}{*traceN, *traceOp, *tracePeer, *traceErrs, *traceID}
		var err error
		if body, err = json.Marshal(q); err != nil {
			log.Fatal(err)
		}
	case "transfers":
		op = ogsa.AdminOpTransfers
	case "cas-status":
		op = ogsa.AdminOpCASStatus
	case "cas-sync":
		op = ogsa.AdminOpCASSync
	case "compact":
		op = ogsa.AdminOpCompact
	}

	roots, err := gridcert.DecodeChain(mustRead(filepath.Join(*dir, "roots")))
	if err != nil {
		log.Fatalf("loading roots: %v", err)
	}
	cred, err := gridcert.DecodeCredential(mustRead(filepath.Join(*dir, *credName+".cred")))
	if err != nil {
		log.Fatalf("loading %s credential: %v", *credName, err)
	}
	endpoint := strings.TrimSpace(string(mustRead(filepath.Join(*dir, "endpoint"))))
	if endpoint == "" {
		log.Fatalf("no endpoint in %s — is gsictl serve running?", *dir)
	}

	env, err := gsi.NewEnvironment(gsi.WithRoots(roots...))
	if err != nil {
		log.Fatal(err)
	}
	client, err := env.NewClient(cred, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	out, _, err := client.Invoke(ctx, endpoint, ogsa.AdminHandle, op, body)
	if err != nil {
		log.Fatalf("%s: %v", cmd, err)
	}
	os.Stdout.Write(out)
	if len(out) > 0 && out[len(out)-1] != '\n' {
		fmt.Println()
	}
}

func defaultDir() string {
	return filepath.Join(os.TempDir(), "gsictl")
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return data
}
