// Command gsipool demonstrates the session pool end to end: it stands
// up a live secured server on loopback, hammers it through one Client
// from many goroutines, and prints how far the pool amortized the
// public-key handshake — the paper's WS-SecureConversation argument
// (§5.1) as a command-line experiment.
//
// Usage:
//
//	gsipool [-transport gt2|gt3] [-requests N] [-workers N]
//	        [-pool] [-pool-max-idle N] [-pool-idle-ttl D] [-pool-max-per-host N]
//
// Run it with and without -pool to see the difference; with gt3, watch
// the resumes column when the idle TTL is shorter than the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	transport := flag.String("transport", "gt2", "transport: gt2 (raw sockets) or gt3 (SOAP/HTTP)")
	requests := flag.Int("requests", 200, "total exchanges to perform")
	workers := flag.Int("workers", 8, "concurrent goroutines sharing the client")
	usePool := flag.Bool("pool", true, "enable the session pool")
	maxIdle := flag.Int("pool-max-idle", gsi.DefaultMaxIdle, "idle sessions parked per key")
	idleTTL := flag.Duration("pool-idle-ttl", gsi.DefaultIdleTTL, "how long an idle session stays reusable")
	maxPerHost := flag.Int("pool-max-per-host", gsi.DefaultMaxConcurrentPerHost, "live-session cap per key")
	flag.Parse()

	var tr gsi.Transport
	switch *transport {
	case "gt2":
		tr = gsi.TransportGT2()
	case "gt3":
		tr = gsi.TransportGT3()
	default:
		log.Fatalf("unknown transport %q", *transport)
	}

	// A one-CA world with a live server on loopback.
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host pool"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	server, err := env.NewServer(host, gsi.WithTransport(tr))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	clientOpts := []gsi.Option{gsi.WithTransport(tr)}
	if *usePool {
		pool, err := gsi.NewSessionPool(
			gsi.WithMaxIdle(*maxIdle),
			gsi.WithIdleTTL(*idleTTL),
			gsi.WithMaxConcurrentPerHost(*maxPerHost),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		clientOpts = append(clientOpts, gsi.WithSessionPool(pool))
	}
	client, err := env.NewClient(alice, clientOpts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hammering %s over %s: %d exchanges, %d workers, pool=%v\n",
		ep.Addr(), tr, *requests, *workers, *usePool)

	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	perWorker := (*requests + *workers - 1) / *workers
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte("gsipool payload")
			for i := 0; i < perWorker; i++ {
				if done.Add(1) > int64(*requests) {
					return
				}
				if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
					log.Fatalf("exchange: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	n := min(done.Load(), int64(*requests))
	fmt.Printf("completed %d exchanges in %v (%.0f/s, mean %v)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		(elapsed / time.Duration(n)).Round(time.Microsecond))
	if p := client.Pool(); p != nil {
		st := p.Stats()
		fmt.Printf("pool: handshakes=%d hits=%d resumes=%d evictions=%d poisoned=%d\n",
			st.Dials, st.Hits, st.Resumes, st.Evictions, st.Poisoned)
		fmt.Printf("amortization: %.1f exchanges per handshake\n", float64(n)/float64(max(st.Dials, 1)))
	} else {
		fmt.Printf("no pool: every exchange paid a full handshake (%d handshakes)\n", n)
	}
	cs := env.ChainCacheStats()
	fmt.Printf("verified-chain cache: hits=%d misses=%d\n", cs.Hits, cs.Misses)
}
