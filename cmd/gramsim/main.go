// Command gramsim runs the GT3 GRAM job-initiation simulation of the
// paper's Figure 4 — through the handle-based gsi API, context-first —
// and prints the least-privilege comparison of §5.2 (experiments E4 and
// E5; the GT2 baseline of E5 drives the internal gatekeeper simulation
// the new API deliberately does not expose).
//
// Usage:
//
//	gramsim [-jobs N] [-exp e4|e5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/gram"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	jobs := flag.Int("jobs", 5, "jobs to submit")
	exp := flag.String("exp", "e4", "experiment to run: e4 (job initiation) or e5 (least privilege)")
	flag.Parse()

	switch *exp {
	case "e4":
		runE4(*jobs)
	case "e5":
		runE5(*jobs)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

type world struct {
	env   *gsi.Environment
	alice *gsi.Credential
	host  *gsi.Credential
	gm    *gsi.GridMap
}

func newWorld() world {
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=cluster.example.org"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	gm := gsi.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	return world{env: env, alice: alice, host: host, gm: gm}
}

// proxyClient builds a Client for a fresh proxy below w.alice.
func (w world) proxyClient() *gsi.Client {
	aliceClient, err := w.env.NewClient(w.alice)
	if err != nil {
		log.Fatal(err)
	}
	p, err := aliceClient.Proxy(gsi.ProxyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	client, err := w.env.NewClient(p)
	if err != nil {
		log.Fatal(err)
	}
	return client
}

func runE4(jobs int) {
	ctx := context.Background()
	w := newWorld()
	res, err := gsi.NewJobResource(w.host, w.env.Trust(), w.gm)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		log.Fatal(err)
	}
	client := w.proxyClient()
	desc := gsi.JobDescription{Executable: gsi.JobProgram, Queue: "debug", DelegateCredential: true}

	fmt.Println("E4: GT3 GRAM job initiation (Figure 4)")
	fmt.Printf("%-6s %-10s %-12s %s\n", "job", "path", "latency", "state")
	for i := 0; i < jobs; i++ {
		before := res.Stats()
		start := time.Now()
		mjs, err := client.SubmitJob(ctx, res, desc)
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		elapsed := time.Since(start)
		after := res.Stats()
		path := "warm"
		if after.ColdStarts > before.ColdStarts {
			path = "cold"
		}
		fmt.Printf("%-6d %-10s %-12v %s\n", i+1, path, elapsed.Round(time.Microsecond), mjs.Job().State())
	}
	st := res.Stats()
	fmt.Printf("totals: cold=%d warm=%d setuid-starter-runs=%d grim-runs=%d\n",
		st.ColdStarts, st.WarmHits, st.StarterRuns, st.GRIMRuns)
	snap := res.Sys.Audit()
	fmt.Printf("privilege posture: %s\n", snap)
}

func runE5(jobs int) {
	ctx := context.Background()
	w := newWorld()
	fmt.Printf("E5: least-privilege comparison over %d jobs (§5.2)\n\n", jobs)

	// GT3, through the public handle API.
	res3, err := gsi.NewJobResource(w.host, w.env.Trust(), w.gm)
	if err != nil {
		log.Fatal(err)
	}
	res3.CreateAccount("alice")
	client := w.proxyClient()
	for i := 0; i < jobs; i++ {
		if _, err := client.SubmitJob(ctx, res3, gsi.JobDescription{Executable: gsi.JobProgram, DelegateCredential: true}); err != nil {
			log.Fatal(err)
		}
	}
	snap3 := res3.Sys.Audit()

	// GT2 baseline: the privileged gatekeeper, simulated internally.
	w2 := newWorld()
	res2, err := gram.NewGT2Resource(w2.host, w2.env.Trust(), w2.gm)
	if err != nil {
		log.Fatal(err)
	}
	res2.CreateAccount("alice")
	client2 := w2.proxyClient()
	for i := 0; i < jobs; i++ {
		if _, err := gram.SubmitSigned(res2, client2.Credential(), gsi.JobDescription{Executable: gsi.JobProgram}); err != nil {
			log.Fatal(err)
		}
	}
	snap2 := res2.Sys.Audit()

	fmt.Printf("%-32s %-8s %-8s\n", "metric", "GT2", "GT3")
	fmt.Printf("%-32s %-8d %-8d\n", "privileged network services", len(snap2.PrivilegedNetworkServices), len(snap3.PrivilegedNetworkServices))
	fmt.Printf("%-32s %-8d %-8d\n", "setuid programs", len(snap2.SetuidPrograms), len(snap3.SetuidPrograms))
	fmt.Printf("%-32s %-8d %-8d\n", "privileged operations", snap2.PrivilegedOps, snap3.PrivilegedOps)

	blast2 := res2.Sys.Compromise(res2.GatekeeperProcess())
	fmt.Printf("\nGT2 gatekeeper compromise: root=%v readable-files=%d (incl. host credential)\n",
		blast2.Root, len(blast2.ReadableFiles))
	fmt.Println("GT3 has no privileged network service to compromise; its network-facing")
	fmt.Println("MMJFS runs in a plain account, so a compromise is confined to that account.")
}
