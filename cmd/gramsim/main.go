// Command gramsim runs the GT3 GRAM job-initiation simulation of the
// paper's Figure 4 and prints the least-privilege comparison of §5.2
// (experiments E4 and E5).
//
// Usage:
//
//	gramsim [-jobs N] [-exp e4|e5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gram"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

func main() {
	log.SetFlags(0)
	jobs := flag.Int("jobs", 5, "jobs to submit")
	exp := flag.String("exp", "e4", "experiment to run: e4 (job initiation) or e5 (least privilege)")
	flag.Parse()

	switch *exp {
	case "e4":
		runE4(*jobs)
	case "e5":
		runE5(*jobs)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

type world struct {
	trust *gridcert.TrustStore
	alice *gridcert.Credential
	host  *gridcert.Credential
	gm    *authz.GridMap
}

func newWorld() world {
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		log.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=cluster.example.org"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	gm := authz.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	return world{trust: trust, alice: alice, host: host, gm: gm}
}

func runE4(jobs int) {
	w := newWorld()
	res, err := gram.NewResource(w.host, w.trust, w.gm)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		log.Fatal(err)
	}
	p, err := proxy.New(w.alice, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	client := &gram.Client{Credential: p, Trust: w.trust, Resource: res}
	desc := gram.JobDescription{Executable: gram.JobProgram, Queue: "debug", DelegateCredential: true}

	fmt.Println("E4: GT3 GRAM job initiation (Figure 4)")
	fmt.Printf("%-6s %-10s %-12s %s\n", "job", "path", "latency", "state")
	for i := 0; i < jobs; i++ {
		before := res.Stats()
		start := time.Now()
		mjs, err := client.SubmitAndRun(desc)
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		elapsed := time.Since(start)
		after := res.Stats()
		path := "warm"
		if after.ColdStarts > before.ColdStarts {
			path = "cold"
		}
		fmt.Printf("%-6d %-10s %-12v %s\n", i+1, path, elapsed.Round(time.Microsecond), mjs.Job().State())
	}
	st := res.Stats()
	fmt.Printf("totals: cold=%d warm=%d setuid-starter-runs=%d grim-runs=%d\n",
		st.ColdStarts, st.WarmHits, st.StarterRuns, st.GRIMRuns)
	snap := res.Sys.Audit()
	fmt.Printf("privilege posture: %s\n", snap)
}

func runE5(jobs int) {
	w := newWorld()
	fmt.Printf("E5: least-privilege comparison over %d jobs (§5.2)\n\n", jobs)

	// GT3.
	res3, err := gram.NewResource(w.host, w.trust, w.gm)
	if err != nil {
		log.Fatal(err)
	}
	res3.CreateAccount("alice")
	p, _ := proxy.New(w.alice, proxy.Options{})
	client := &gram.Client{Credential: p, Trust: w.trust, Resource: res3}
	for i := 0; i < jobs; i++ {
		if _, err := client.SubmitAndRun(gram.JobDescription{Executable: gram.JobProgram, DelegateCredential: true}); err != nil {
			log.Fatal(err)
		}
	}
	snap3 := res3.Sys.Audit()

	// GT2.
	w2 := newWorld()
	res2, err := gram.NewGT2Resource(w2.host, w2.trust, w2.gm)
	if err != nil {
		log.Fatal(err)
	}
	res2.CreateAccount("alice")
	p2, _ := proxy.New(w2.alice, proxy.Options{})
	for i := 0; i < jobs; i++ {
		if _, err := gram.SubmitSigned(res2, p2, gram.JobDescription{Executable: gram.JobProgram}); err != nil {
			log.Fatal(err)
		}
	}
	snap2 := res2.Sys.Audit()

	fmt.Printf("%-32s %-8s %-8s\n", "metric", "GT2", "GT3")
	fmt.Printf("%-32s %-8d %-8d\n", "privileged network services", len(snap2.PrivilegedNetworkServices), len(snap3.PrivilegedNetworkServices))
	fmt.Printf("%-32s %-8d %-8d\n", "setuid programs", len(snap2.SetuidPrograms), len(snap3.SetuidPrograms))
	fmt.Printf("%-32s %-8d %-8d\n", "privileged operations", snap2.PrivilegedOps, snap3.PrivilegedOps)

	blast2 := res2.Sys.Compromise(res2.GatekeeperProcess())
	fmt.Printf("\nGT2 gatekeeper compromise: root=%v readable-files=%d (incl. host credential)\n",
		blast2.Root, len(blast2.ReadableFiles))
	fmt.Println("GT3 has no privileged network service to compromise; its network-facing")
	fmt.Println("MMJFS runs in a plain account, so a compromise is confined to that account.")
}
