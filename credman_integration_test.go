// Race-enabled integration coverage for the credential lifecycle
// subsystem: a credential rotation in the middle of pooled traffic must
// lose zero exchanges, drain every session established under the
// replaced credential, handshake new sessions under the successor, and
// never reuse a resumption tree bound to the old credential.
package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/gsi"
)

type rotationWorld struct {
	env   *gsi.Environment
	alice *gsi.Credential
	host  *gsi.Credential
}

func newRotationWorld(t testing.TB) rotationWorld {
	t.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Rotation CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host rotation"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return rotationWorld{env: env, alice: alice, host: host}
}

// peerLog records, per exchange, the fingerprint of the leaf
// certificate the peer authenticated with (GT2 hands the full validated
// chain to the handler).
type peerLog struct {
	mu  sync.Mutex
	fps [][32]byte
}

func (l *peerLog) record(peer gsi.Peer) {
	if len(peer.Chain) == 0 {
		return
	}
	fp := peer.Chain[0].Fingerprint()
	l.mu.Lock()
	l.fps = append(l.fps, fp)
	l.mu.Unlock()
}

func (l *peerLog) snapshot() [][32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][32]byte(nil), l.fps...)
}

func TestRotationMidTrafficGT2(t *testing.T) {
	w := newRotationWorld(t)
	ctx := context.Background()

	initial, err := gsi.NewProxy(w.alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := w.env.NewCredentialManager(initial,
		gsi.DelegationRenewal(w.alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour}),
		gsi.WithRenewalRetry(10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	log := &peerLog{}
	server, err := w.env.NewServer(w.host)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		log.record(peer)
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := w.env.NewClient(nil,
		gsi.WithCredentialManager(cm),
		gsi.WithSessionPool(nil),
		gsi.WithMaxIdle(8))
	if err != nil {
		t.Fatal(err)
	}
	pool := client.Pool()
	defer pool.Close()

	const (
		workers       = 8
		perWorker     = 40
		rotateAfterMs = 15
	)
	var failures atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				msg := []byte(fmt.Sprintf("w%d-%d", g, i))
				out, err := client.Exchange(ctx, ep.Addr(), "echo", msg)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if string(out) != string(msg) {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("echo mismatch: %q", out))
					return
				}
			}
		}(g)
	}
	close(start)

	// Rotate twice while the workers hammer the pool.
	for r := 0; r < 2; r++ {
		time.Sleep(rotateAfterMs * time.Millisecond)
		if _, err := cm.Renew(ctx); err != nil {
			t.Fatalf("rotation %d: %v", r, err)
		}
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d exchanges failed across rotation (first: %v)", n, firstErr.Load())
	}
	if st := cm.Stats(); st.Rotations != 2 {
		t.Fatalf("rotations = %d, want 2", st.Rotations)
	}

	// Old-fingerprint sessions drained: the pool retired sessions at
	// rotation, and nothing idle may remain under a retired credential —
	// prove it by checking a quiesced exchange handshakes under the
	// successor only.
	if pool.Stats().Retired == 0 {
		t.Fatalf("no sessions were retired across two rotations: %+v", pool.Stats())
	}
	preWave := len(log.snapshot())
	for i := 0; i < 5; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("post")); err != nil {
			t.Fatalf("post-rotation exchange: %v", err)
		}
	}
	successor := cm.Current().Leaf().Fingerprint()
	if successor == initial.Leaf().Fingerprint() {
		t.Fatal("manager still publishes the initial credential")
	}
	for i, fp := range log.snapshot()[preWave:] {
		if fp != successor {
			t.Fatalf("post-rotation exchange %d authenticated under a retired credential", i)
		}
	}

	// Both generations actually carried traffic during the storm (the
	// rotation happened mid-traffic, not before or after it).
	seen := make(map[[32]byte]bool)
	for _, fp := range log.snapshot() {
		seen[fp] = true
	}
	if !seen[initial.Leaf().Fingerprint()] {
		t.Fatal("no traffic ever ran under the initial credential")
	}
	if !seen[successor] {
		t.Fatal("no traffic ran under the final successor")
	}
}

// The GT3 path across a rotation: conversation-secured exchanges keep
// succeeding, and the first dial after rotation can never resume off
// the retired credential's conversation tree (its cache entries are
// invalidated and its scope is gone from every new key).
func TestRotationMidTrafficGT3(t *testing.T) {
	w := newRotationWorld(t)
	ctx := context.Background()

	initial, err := gsi.NewProxy(w.alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := w.env.NewCredentialManager(initial,
		gsi.DelegationRenewal(w.alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	server, err := w.env.NewServer(w.host, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := w.env.NewClient(nil,
		gsi.WithCredentialManager(cm),
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithSessionPool(nil))
	if err != nil {
		t.Fatal(err)
	}
	pool := client.Pool()
	defer pool.Close()

	var failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("x")); err != nil {
					failures.Add(1)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := cm.Renew(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d GT3 exchanges failed across rotation", n)
	}

	// Quiesce, then force two dials under the successor: the first has
	// no cached parent — the old credential's trees were invalidated at
	// rotation and the successor's cache scope starts empty — so of the
	// two dials at most one (the second, off the first's fresh parent)
	// may be a resume.
	resumesBefore := pool.Stats().Resumes
	s1, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exchange(ctx, "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exchange(ctx, "echo", []byte("b")); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2.Close()
	if got := pool.Stats().Resumes - resumesBefore; got > 1 {
		t.Fatalf("%d of 2 post-rotation dials resumed; the first must have bootstrapped fresh", got)
	}
	if st := pool.Stats(); st.Dials == 0 {
		t.Fatalf("expected fresh dials under the successor: %+v", st)
	}
}
