// Cross-module integration scenarios: each test wires several subsystems
// together the way a deployment would, asserting the end-to-end security
// properties the paper claims.
package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/gridcert"
	"repro/internal/gridftp"
	"repro/internal/mds"
	"repro/internal/myproxy"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/vo"
	"repro/internal/xmlsec"
)

// TestIntegrationMyProxyToGRAM: a portal retrieves a user's delegated
// credential from the repository and submits a job with it — the classic
// MyProxy + GRAM workflow.
func TestIntegrationMyProxyToGRAM(t *testing.T) {
	f := newFixture(t)

	// Alice deposits a week-long proxy with the repository.
	repo := myproxy.NewServer()
	deposit, err := proxy.New(f.alice, proxy.Options{Lifetime: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Store("alice", "portal-pass", deposit, 2*time.Hour); err != nil {
		t.Fatal(err)
	}

	// The portal (a different machine: it has no copy of Alice's keys)
	// retrieves a short-lived proxy.
	delegatee, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := repo.Retrieve("alice", "portal-pass", req)
	if err != nil {
		t.Fatal(err)
	}
	portalCred, err := delegatee.Accept(reply)
	if err != nil {
		t.Fatal(err)
	}

	// The portal submits a job on Alice's behalf.
	gm := authz.NewGridMap()
	gm.Add(f.alice.Identity(), "alice")
	res, err := gram.NewResource(f.host, f.trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	client := &gram.Client{Credential: portalCred, Trust: f.trust, Resource: res}
	mjs, err := client.SubmitAndRun(gram.JobDescription{
		Executable:         gram.JobProgram,
		DelegateCredential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mjs.Job().State() != gram.StateDone {
		t.Fatalf("job state = %s", mjs.Job().State())
	}
	// The job's delegated credential still resolves to Alice even though
	// it came through repository + portal (chain depth 3).
	if !mjs.DelegatedCredential().Identity().Equal(f.alice.Identity()) {
		t.Fatalf("delegated identity = %q", mjs.DelegatedCredential().Identity())
	}
}

// TestIntegrationCASRestrictedProxyCannotSubmitJobs: a CAS restricted
// proxy carries reduced rights; combined with VO policy a resource can
// allow data reads while GRAM still accepts only the identity it maps.
func TestIntegrationCASGovernedSharing(t *testing.T) {
	f := newFixture(t)
	voCred, err := f.auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=VO"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server := cas.NewServer(voCred)
	server.AddMember(f.alice.Identity(), "researchers")
	server.AddPolicy(authz.Rule{
		Effect:    authz.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/shared/*"},
		Actions:   []string{"read"},
	})
	assertion, err := server.IssueAssertion(f.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	cred, err := cas.EmbedInProxy(f.alice, assertion)
	if err != nil {
		t.Fatal(err)
	}

	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read", "write", "delete"},
	})
	enforcer := cas.NewEnforcer(f.trust, local)
	enforcer.TrustVO(server.Certificate())

	res, err := enforcer.Authorize(cred.Chain, "data:/shared/set1", "read", time.Time{})
	if err != nil || res.Decision != authz.Permit {
		t.Fatalf("read: %v %+v", err, res)
	}
	res, _ = enforcer.Authorize(cred.Chain, "data:/shared/set1", "delete", time.Time{})
	if res.Decision != authz.Deny {
		t.Fatalf("delete: %+v", res)
	}
}

// TestIntegrationSignedEnvelopeThroughRelays: WS-Routing future work —
// message-level security survives application-level intermediaries, and
// tampering at a hop is detected at the destination.
func TestIntegrationSignedEnvelopeThroughRelays(t *testing.T) {
	f := newFixture(t)

	var received *soap.Envelope
	destination := func(env *soap.Envelope) (*soap.Envelope, error) {
		received = env
		return env.Reply([]byte("delivered")), nil
	}
	interior := soap.NewRelay()
	interior.Route("gsh://cluster/", destination)
	edge := soap.NewRelay()
	edge.Route("gsh://", interior.Handler())

	env := soap.NewEnvelope("app/op", []byte("payload"))
	env.To = "gsh://cluster/svc"
	if err := xmlsec.SignEnvelope(env, f.alice); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Forward(env); err != nil {
		t.Fatal(err)
	}
	// The destination verifies the end-to-end signature despite two hops
	// having modified (uncovered) routing headers.
	info, err := xmlsec.VerifyEnvelope(received, xmlsec.VerifyOptions{TrustStore: f.trust})
	if err != nil {
		t.Fatalf("signature did not survive relaying: %v", err)
	}
	if !info.Identity.Equal(f.alice.Identity()) {
		t.Fatalf("signer = %q", info.Identity)
	}

	// A malicious relay rewriting the body is caught.
	evil := soap.NewRelay()
	evil.Route("gsh://", func(e *soap.Envelope) (*soap.Envelope, error) {
		e.Body = []byte("altered")
		return destination(e)
	})
	env2 := soap.NewEnvelope("app/op", []byte("payload"))
	env2.To = "gsh://cluster/svc"
	if err := xmlsec.SignEnvelope(env2, f.alice); err != nil {
		t.Fatal(err)
	}
	if _, err := evil.Forward(env2); err != nil {
		t.Fatal(err)
	}
	if _, err := xmlsec.VerifyEnvelope(received, xmlsec.VerifyOptions{TrustStore: f.trust}); err == nil {
		t.Fatal("tampering at a relay went undetected")
	}
}

// TestIntegrationVOWideJobSubmission: two domains form a VO; a user from
// one domain submits a job at the other domain's GRAM resource. This is
// the paper's headline scenario end to end.
func TestIntegrationVOWideJobSubmission(t *testing.T) {
	orgA, err := vo.NewDomain("OrgA")
	if err != nil {
		t.Fatal(err)
	}
	orgB, err := vo.NewDomain("OrgB")
	if err != nil {
		t.Fatal(err)
	}
	v := vo.New("joint")
	if _, err := v.JoinGSI(orgA, orgB); err != nil {
		t.Fatal(err)
	}
	alice, err := orgA.NewUser("Alice")
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := orgB.CA.NewHostEntity(gridcert.MustParseName("/O=OrgB/CN=host cluster-b"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := authz.NewGridMap()
	gm.Add(alice.Identity(), "visitor_alice")
	// The resource validates with OrgB's trust store, which now includes
	// OrgA's CA thanks to the VO join.
	res, err := gram.NewResource(hostB, orgB.Trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("visitor_alice"); err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := &gram.Client{Credential: p, Trust: orgA.Trust, Resource: res}
	mjs, err := client.SubmitAndRun(gram.JobDescription{Executable: gram.JobProgram, DelegateCredential: true})
	if err != nil {
		t.Fatalf("cross-domain job: %v", err)
	}
	if mjs.Job().State() != gram.StateDone {
		t.Fatalf("state = %s", mjs.Job().State())
	}
	if mjs.Job().Account != "visitor_alice" {
		t.Fatalf("account = %q", mjs.Job().Account)
	}
}

// TestIntegrationFullStackWithSecurityServices: the Figure-3 pipeline
// against a stack whose authorization and audit are themselves OGSA
// services, over the HTTP binding.
func TestIntegrationFullStackHTTP(t *testing.T) {
	pol := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"ogsa:*"},
		Actions:   []string{"*"},
	})
	boot, err := core.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host full",
		&authz.PolicyEngine{Policy: pol, DefaultDeny: true})
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newBenchService())
	srv, err := soap.NewServer("127.0.0.1:0", boot.Stack.Container.Dispatcher())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	alice, err := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	httpClient := &soap.Client{Endpoint: srv.URL()}
	req := &core.Requestor{Credential: alice, Trust: boot.Trust}
	out, trace, err := req.Invoke(httpClient.Call, "app", "echo", []byte("over the wire"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "over the wire" {
		t.Fatalf("out = %q", out)
	}
	if trace.Mechanism == "" || trace.Total() <= 0 {
		t.Fatalf("trace = %+v", trace)
	}
	// The audit log is intact and saw the traffic.
	client := &ogsa.Client{Transport: httpClient.Call, Credential: alice, TrustStore: boot.Trust}
	verify, err := client.InvokeSigned("security/audit", "Verify", nil)
	if err != nil || string(verify) != "intact" {
		t.Fatalf("audit: %q %v", verify, err)
	}
	events, err := client.InvokeSigned("security/audit", "Query", []byte("invoke"))
	if err != nil || !strings.Contains(string(events), "app/echo") {
		t.Fatalf("audit query: %v %q", err, events)
	}
}

// TestIntegrationDiscoveryToInvocation: services register themselves in
// MDS; a client discovers a GRAM endpoint by type and submits a job to
// it — the "dynamic creation of services ... securely coordinated"
// loop of §2.
func TestIntegrationDiscoveryToInvocation(t *testing.T) {
	f := newFixture(t)

	// A secured MDS container.
	mdsHost, err := f.auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host mds"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	container, err := ogsa.NewContainer(ogsa.ContainerConfig{
		Name: "mds", Credential: mdsHost, TrustStore: f.trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	index := mds.NewIndex()
	container.Publish("mds", mds.NewService(index))
	transport := soap.Pipe(container.Dispatcher())

	// The GRAM resource registers itself (authenticated as its host).
	gm := authz.NewGridMap()
	gm.Add(f.alice.Identity(), "alice")
	res, err := gram.NewResource(f.host, f.trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	hostClient := &ogsa.Client{Transport: transport, Credential: f.host, TrustStore: f.trust}
	reg := mds.RegisterRequest{
		Handle:     "gram://" + res.HostIdentity().CommonName(),
		Type:       "gram.mmjfs",
		Attributes: map[string]string{"queue": "batch"},
	}
	if _, err := hostClient.InvokeSigned("mds", "Register", reg.Encode()); err != nil {
		t.Fatal(err)
	}

	// Alice discovers a GRAM service…
	aliceProxy, err := proxy.New(f.alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aliceClient := &ogsa.Client{Transport: transport, Credential: aliceProxy, TrustStore: f.trust}
	found, err := aliceClient.InvokeSigned("mds", "Find", []byte("gram.*"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(found), "gram://cluster") && !strings.Contains(string(found), "gram://") {
		t.Fatalf("discovery result = %q", found)
	}
	// …and submits a job to the discovered resource.
	client := &gram.Client{Credential: aliceProxy, Trust: f.trust, Resource: res}
	mjs, err := client.SubmitAndRun(gram.JobDescription{Executable: gram.JobProgram, DelegateCredential: true})
	if err != nil {
		t.Fatal(err)
	}
	if mjs.Job().State() != gram.StateDone {
		t.Fatalf("state = %s", mjs.Job().State())
	}
}

// TestIntegrationGridFTPWithCASPolicy: a GridFTP store governed by the
// same policy engine CAS uses, accessed with a proxy credential over the
// GT2 secured transport.
func TestIntegrationGridFTPThirdParty(t *testing.T) {
	f := newFixture(t)
	srcHost, err := f.auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host ftp-src"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dstHost, err := f.auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host ftp-dst"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pol := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:   authz.EffectPermit,
		Subjects: []string{f.alice.Identity().String()},
		Actions:  []string{"read", "write", "delete", "list"},
	})
	srcStore, dstStore := gridftp.NewStore(pol), gridftp.NewStore(pol)
	src, err := gridftp.NewServer("127.0.0.1:0", srcStore, srcHost, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := gridftp.NewServer("127.0.0.1:0", dstStore, dstHost, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := srcStore.Put(f.alice.Identity(), "/exp/data", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Alice uses a proxy — single sign-on end to end.
	aliceProxy, err := proxy.New(f.alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gridftp.ThirdPartyTransfer(aliceProxy, f.trust,
		src.Addr(), src.Identity(), dst.Addr(), dst.Identity(),
		"/exp/data", "/mirror/data"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get(f.alice.Identity(), "/mirror/data")
	if err != nil || string(got) != "payload" {
		t.Fatalf("%v %q", err, got)
	}
}

// TestIntegrationMJSMonitoredThroughContainer: the MJS created by GRAM is
// itself a Grid service; publishing it in a hosting environment lets
// clients monitor the job with standard signed SOAP calls (GetState /
// FindServiceData), with the container enforcing authentication.
func TestIntegrationMJSMonitoredThroughContainer(t *testing.T) {
	f := newFixture(t)
	gm := authz.NewGridMap()
	gm.Add(f.alice.Identity(), "alice")
	res, err := gram.NewResource(f.host, f.trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	aliceProxy, err := proxy.New(f.alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := &gram.Client{Credential: aliceProxy, Trust: f.trust, Resource: res}
	h, err := client.Submit(gram.JobDescription{Executable: gram.JobProgram})
	if err != nil {
		t.Fatal(err)
	}
	mjs, _ := res.LookupMJS(h.MJSHandle)

	// Publish the MJS in a container bound to the host credential.
	container, err := ogsa.NewContainer(ogsa.ContainerConfig{
		Name: "gram-host", Credential: f.host, TrustStore: f.trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	container.Publish("mjs/1", mjs)
	transport := soap.Pipe(container.Dispatcher())
	soapClient := &ogsa.Client{Transport: transport, Credential: aliceProxy, TrustStore: f.trust}

	state, err := soapClient.InvokeSigned("mjs/1", "GetState", nil)
	if err != nil || string(state) != "Unsubmitted" {
		t.Fatalf("GetState: %q %v", state, err)
	}
	if _, err := client.Run(h); err != nil {
		t.Fatal(err)
	}
	state, err = soapClient.InvokeSigned("mjs/1", "GetState", nil)
	if err != nil || string(state) != "Done" {
		t.Fatalf("GetState after run: %q %v", state, err)
	}
	// The jobState SDE is queryable through the standard port type.
	sde, err := soapClient.InvokeSigned("mjs/1", "FindServiceData", []byte("jobState"))
	if err != nil || string(sde) != "Done" {
		t.Fatalf("FindServiceData: %q %v", sde, err)
	}
	// Unsigned monitoring is rejected by the container.
	if _, err := container.Dispatcher().Dispatch(soap.NewEnvelope("ogsa/mjs/1/GetState", nil)); err == nil {
		t.Fatal("unsigned monitoring accepted")
	}
}
