// Benchmarks for the authorization pipeline: what one per-exchange
// decision costs. BenchmarkAuthorizeCold runs the full evaluation every
// time — CAS assertion signature verification, VO ∩ local rule scans,
// gridmap lookup — the price every exchange paid before the decision
// cache. BenchmarkAuthorizeCached serves the same decision from the
// sharded cache: one map lookup plus generation checks. `make
// bench-authz` records both into BENCH_authz.json; the ≥5x gap is the
// throughput claim of PR 4.
package repro

import (
	"context"
	"testing"
	"time"

	"repro/pkg/gsi"
)

// newBenchDurableWorld is the durable-trust-plane variant: the policy
// and gridmap live in a WAL-backed DurableState (every mutation
// journaled with fsync-before-apply), with decision audit off so the
// cached path has no sink to feed — the PR 9 deployment shape for
// load-bearing servers.
func newBenchDurableWorld(b *testing.B) (*gsi.AuthorizationPipeline, gsi.Peer) {
	b.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := env.NewAuthorizationPipeline(
		gsi.WithDurableState(b.TempDir()),
		gsi.WithoutDecisionAudit(),
		gsi.WithDecisionCache(time.Hour),
	)
	if err != nil {
		b.Fatal(err)
	}
	ds := pl.DurableState()
	for i := 0; i < 64; i++ {
		if err := ds.Policy().AddChecked(gsi.Rule{
			ID:        "filler",
			Effect:    gsi.EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Somebody Else"},
			Resources: []string{"data:/other/*"},
			Actions:   []string{"write"},
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := ds.Policy().AddChecked(gsi.Rule{
		ID:        "local-read",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	}); err != nil {
		b.Fatal(err)
	}
	if err := ds.GridMap().AddChecked(alice.Identity(), "alice"); err != nil {
		b.Fatal(err)
	}
	info, err := env.Trust().Verify(alice.Chain, gsi.VerifyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return pl, gsi.Peer{Identity: info.Identity, Subject: info.Subject, Chain: alice.Chain, Info: info}
}

// newBenchAuthzWorld builds the decision workload: a member carrying a
// CAS assertion, a 65-rule local policy (64 non-matching fillers ahead
// of the matching rule — a realistically long scan), and a gridmap.
func newBenchAuthzWorld(b *testing.B, cacheTTL time.Duration) (*gsi.AuthorizationPipeline, gsi.Peer) {
	b.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=BenchVO CAS"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	vo.AddMember(alice.Identity(), "researchers")
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-read",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	client, err := env.NewClient(alice)
	if err != nil {
		b.Fatal(err)
	}
	assertion, err := client.RequestAssertion(context.Background(), vo)
	if err != nil {
		b.Fatal(err)
	}
	cred, err := client.EmbedAssertion(assertion)
	if err != nil {
		b.Fatal(err)
	}

	local := gsi.NewPolicy()
	for i := 0; i < 64; i++ {
		local.Add(gsi.Rule{
			ID:        "filler",
			Effect:    gsi.EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Somebody Else"},
			Resources: []string{"data:/other/*"},
			Actions:   []string{"write"},
		})
	}
	local.Add(gsi.Rule{
		ID:        "local-read",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(alice.Identity(), "alice")

	pl, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(local),
		gsi.WithTrustedVO(vo.Certificate()),
		gsi.WithGridMap(gridmap),
		gsi.WithDecisionCache(cacheTTL),
	)
	if err != nil {
		b.Fatal(err)
	}
	// The peer as a transport hands it over: chain validated once at
	// handshake time, so the per-exchange cost under measurement is the
	// decision itself, not authentication.
	info, err := env.Trust().Verify(cred.Chain, gsi.VerifyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	peer := gsi.Peer{Identity: info.Identity, Subject: info.Subject, Chain: cred.Chain, Info: info}
	return pl, peer
}

// BenchmarkAuthorizeCold: the cache is disabled, so every exchange pays
// assertion verification plus both rule-list scans.
func BenchmarkAuthorizeCold(b *testing.B) {
	pl, peer := newBenchAuthzWorld(b, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pl.Authorize(ctx, peer, "data:/climate/run1", "read")
		if err != nil || d.Decision != gsi.Permit {
			b.Fatalf("%+v %v", d, err)
		}
	}
}

// BenchmarkAuthorizeCached: same decision served from the sharded
// cache (warmed by one cold evaluation).
func BenchmarkAuthorizeCached(b *testing.B) {
	pl, peer := newBenchAuthzWorld(b, time.Hour)
	ctx := context.Background()
	if d, err := pl.Authorize(ctx, peer, "data:/climate/run1", "read"); err != nil || d.Decision != gsi.Permit {
		b.Fatalf("warmup: %+v %v", d, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pl.Authorize(ctx, peer, "data:/climate/run1", "read")
		if err != nil || d.Decision != gsi.Permit {
			b.Fatalf("%+v %v", d, err)
		}
		if !d.Cached {
			b.Fatal("decision fell out of the cache")
		}
	}
}

// BenchmarkAuthorizeCachedDurable: the cached decision over WAL-backed
// policy and gridmap. Durability must cost nothing on the hot path —
// the journal is paid at mutation time, not decision time — so `make
// gate-allocs` pins this at 0 allocs/op, same as the in-memory cache.
func BenchmarkAuthorizeCachedDurable(b *testing.B) {
	pl, peer := newBenchDurableWorld(b)
	ctx := context.Background()
	if d, err := pl.Authorize(ctx, peer, "data:/climate/run1", "read"); err != nil || d.Decision != gsi.Permit {
		b.Fatalf("warmup: %+v %v", d, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pl.Authorize(ctx, peer, "data:/climate/run1", "read")
		if err != nil || d.Decision != gsi.Permit {
			b.Fatalf("%+v %v", d, err)
		}
		if !d.Cached {
			b.Fatal("decision fell out of the cache")
		}
	}
}
