// Community-authorized exchanges end to end: a VO's CAS issues Alice a
// signed policy assertion (Figure 2 step 1), she embeds it in a
// restricted proxy (step 2) and dials a facade server whose
// authorization pipeline enforces VO ∩ local policy, maps her through
// the grid-mapfile, caches the decision, and audits every outcome to a
// tamper-evident hash chain (step 3 + §4.1). A mid-traffic revocation
// shows the decision cache honoring the policy-generation bump on the
// very next exchange.
//
//	go run ./examples/voauthz
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/secsvc"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A grid with one CA; the resource's environment trusts it.
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host data.example.org"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=ClimateVO CAS"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// The VO: Alice is a researcher; the community grants researchers
	// read-style ops on the exchange resource.
	vo := gsi.NewCASServer(voCred)
	vo.AddMember(alice.Identity(), "researchers")
	vo.AssignRole(alice.Identity(), "operator")
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-researchers-read",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"fetch", "stat"},
	})

	// Step 1+2: Alice obtains her assertion and embeds it in a
	// restricted proxy — the credential she presents to resources.
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	assertion, err := aliceClient.RequestAssertion(ctx, vo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. CAS assertion: %d rule(s), groups=%v roles=%v\n",
		len(assertion.Rules), assertion.Groups, assertion.Roles)
	aliceVO, err := aliceClient.EmbedAssertion(assertion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. restricted proxy: %s\n", aliceVO.Leaf().Subject)

	// Step 3: the resource. Local policy permits any authenticated CA
	// subject on the exchange — the VO assertion narrows that to the
	// community's action list; the gridmap supplies the local account.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-any-subject",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(alice.Identity(), "alice")
	audit := secsvc.NewAuditLog()
	pipeline, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(local),
		gsi.WithTrustedVO(vo.Certificate()),
		gsi.WithGridMap(gridmap),
		gsi.WithAuditSink(audit),
		gsi.WithDecisionCache(30*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	server, err := env.NewServer(host, gsi.WithAuthorizationPipeline(pipeline))
	if err != nil {
		log.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%s ran %s as local account %q", peer.Identity, op, peer.LocalAccount)), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	// Traffic: the first exchange pays the full pipeline (assertion
	// verification, VO ∩ local evaluation, gridmap); the rest hit the
	// decision cache.
	voClient, err := env.NewClient(aliceVO, gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer voClient.Pool().Close()
	for i := 0; i < 5; i++ {
		out, err := voClient.Exchange(ctx, ep.Addr(), "fetch", []byte("run1"))
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("3. first exchange: %s\n", out)
		}
	}
	st := pipeline.CacheStats()
	fmt.Printf("4. decision cache over 5 exchanges: %d hit(s), %d miss(es)\n", st.Hits, st.Misses)

	// The VO never granted "delete": local policy alone would permit it,
	// the intersection denies it.
	if _, err := voClient.Exchange(ctx, ep.Addr(), "delete", nil); errors.Is(err, gsi.ErrUnauthorized) {
		fmt.Println("5. op outside the VO grant: denied (local ∩ VO)")
	} else {
		log.Fatalf("delete unexpectedly: %v", err)
	}

	// Revocation mid-traffic: the resource operator pulls the local
	// rule; the generation bump defeats the cached permit immediately.
	local.Remove("local-any-subject")
	if _, err := voClient.Exchange(ctx, ep.Addr(), "fetch", nil); errors.Is(err, gsi.ErrUnauthorized) {
		fmt.Println("6. after revocation: very next exchange denied (no stale cache grant)")
	} else {
		log.Fatalf("post-revocation exchange: %v", err)
	}

	// The audit service holds every decision in its hash chain.
	intact := "intact"
	if i := audit.VerifyChain(); i >= 0 {
		intact = fmt.Sprintf("corrupt at %d", i)
	}
	fmt.Printf("7. audit trail: %d event(s), chain %s\n", audit.Len(), intact)
}
