// Kerberos bridging: a site with an existing Kerberos infrastructure
// joins the grid without replacing it (§3, "multiple security
// mechanisms"). Alice logs in with her Kerberos password, the KCA
// converts her ticket into a short-lived grid certificate, and she
// authenticates to a grid service with it through the handle-based gsi
// API; the reverse PKINIT gateway turns a grid credential back into
// Kerberos tickets for local services.
//
//	go run ./examples/kerberosbridge
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bridge"
	"repro/internal/gridcert"
	"repro/internal/kerberos"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The site: a Kerberos realm with users and a KCA service.
	kdc := kerberos.NewKDC("ANL.GOV")
	alicePrincipal := kdc.RegisterPrincipal("alice", "correct horse battery")
	kcaPrincipal, kcaKey, err := kdc.RegisterService("kca/grid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("site realm:", kdc.Realm(), "with principal", alicePrincipal)

	// The KCA: a CA whose root grid parties install, plus the identity map.
	kcaAuthority, err := gsi.NewCA("/O=ANL/CN=Kerberos CA", 30*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	mapper := bridge.NewIdentityMapper()
	aliceDN := gsi.MustParseName("/O=ANL/CN=Alice")
	mapper.MapKerberos(aliceDN, alicePrincipal)
	mapper.MapLocal(aliceDN, "alice")
	kca := bridge.NewKCA(kcaAuthority, kerberos.NewService(kcaPrincipal, kcaKey), mapper)

	// The grid side: the service's Environment trusts the site's KCA — a
	// unilateral act. Alice's Environment trusts the grid CA.
	gridAuthority, err := gsi.NewCA("/O=Grid/CN=CA", 30*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	service, err := gridAuthority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host data.example.org"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	serviceEnv, err := gsi.NewEnvironment(gsi.WithRoots(kca.Authority()))
	if err != nil {
		log.Fatal(err)
	}
	aliceEnv, err := gsi.NewEnvironment(gsi.WithRoots(gridAuthority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}

	// Alice's morning: kinit …
	tgt, tgtSession, err := kdc.ASExchange("alice", "correct horse battery")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kinit: obtained TGT for", alicePrincipal)

	// … then a service ticket for the KCA and the conversion.
	auth1, _ := kerberos.NewAuthenticator(alicePrincipal, tgtSession, time.Now())
	st, stSession, err := kdc.TGSExchange(tgt, auth1, "kca/grid")
	if err != nil {
		log.Fatal(err)
	}
	apAuth, _ := kerberos.NewAuthenticator(alicePrincipal, stSession, time.Now())
	gridCred, err := kca.Convert(st, apAuth)
	if err != nil {
		log.Fatal(err)
	}
	origin, _ := gridCred.Leaf().FindExtension(gridcert.ExtKCAOrigin)
	fmt.Printf("KCA: issued %s (origin %s), valid until %s\n",
		gridCred.Leaf().Subject, origin.Value,
		gridCred.Leaf().NotAfter.Format(time.RFC3339))

	// Grid authentication with the converted credential, through Alice's
	// Client handle under a context.
	aliceClient, err := aliceEnv.NewClient(gridCred)
	if err != nil {
		log.Fatal(err)
	}
	_, serverCtx, err := aliceClient.Establish(ctx, gsi.ContextConfig{
		Credential: service,
		TrustStore: serviceEnv.Trust(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid service authenticated the site user as %q\n", serverCtx.Peer().Identity)

	// The reverse direction: PKINIT turns a grid credential into Kerberos
	// tickets so grid jobs can reach Kerberized site services.
	pkinitEnv, err := gsi.NewEnvironment(gsi.WithRoots(kca.Authority()))
	if err != nil {
		log.Fatal(err)
	}
	gw := bridge.NewPKINIT(kdc, pkinitEnv.Trust(), mapper)
	tgt2, session2, err := gw.Convert(gridCred.Chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PKINIT: grid credential converted back to a TGT for %s\n", tgt2.Service)

	// Redeem it against a Kerberized file server.
	nfsPrincipal, nfsKey, _ := kdc.RegisterService("nfs/storage")
	auth2, _ := kerberos.NewAuthenticator(alicePrincipal, session2, time.Now())
	st2, ss2, err := kdc.TGSExchange(tgt2, auth2, "nfs/storage")
	if err != nil {
		log.Fatal(err)
	}
	nfs := kerberos.NewService(nfsPrincipal, nfsKey)
	apAuth2, _ := kerberos.NewAuthenticator(alicePrincipal, ss2, time.Now())
	client, _, err := nfs.APExchange(st2, apAuth2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kerberized NFS authenticated %q — full round trip complete\n", client)
}
