// Credential lifecycle: the paper's short-lived-proxy story made
// non-disruptive. A user deposits a medium-lived credential at an OGSA
// delegation endpoint (the online-delegation port type); a long-running
// worker keeps a short-lived working proxy alive by renewing from that
// endpoint through a CredentialManager; a pooled client carries traffic
// straight through a rotation — old sessions drain, new sessions
// handshake under the successor, and every delegation event lands in
// the container's tamper-evident audit chain.
//
//	go run ./examples/credlifecycle
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. A grid: CA, trust, a service host running a security stack
	// (container + the §4.1 security services, audit included).
	boot, err := gsi.NewBootstrap("/O=Grid/CN=Lifecycle CA", "/O=Grid/CN=host portal.example.org", nil)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithTrustStore(boot.Trust))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. grid booted:", boot.Host.Identity())

	// 2. The container exposes the delegation port type. It inherits
	// the stack's audit log, so every deposit and retrieval is chained.
	boot.Stack.Container.EnableDelegation(gsi.DelegationConfig{MaxLifetime: 2 * time.Hour})
	fmt.Println("2. delegation endpoint enabled:", gsi.DelegationEndpoint)

	// 3. Alice deposits a medium-lived proxy at the endpoint over an
	// established secure conversation: the endpoint generates the key
	// pair, Alice signs — her long-term key never leaves her machine,
	// and no private key crosses the wire.
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	depositProxy, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: 6 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	svcClient := &gsi.ServiceClient{
		Transport:  gsi.PipeTransport(boot.Stack.Container),
		Credential: depositProxy,
		TrustStore: boot.Trust,
	}
	invoke := func(ctx context.Context, op string, body []byte) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return svcClient.InvokeSecure(gsi.DelegationEndpoint, op, body)
	}
	if err := gsi.DepositDelegation(ctx, invoke, depositProxy, 6*time.Hour, time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. Alice deposited a 6h credential (retrievals capped at 1h)")

	// 4. A worker somewhere else keeps a short-lived working proxy
	// alive: its CredentialManager renews from the endpoint ahead of
	// every expiry.
	initial, err := gsi.NewProxy(depositProxy, gsi.ProxyOptions{Lifetime: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := env.NewCredentialManager(initial,
		gsi.EndpointRenewal(invoke, time.Hour),
		gsi.WithRenewalHorizon(10*time.Minute),
		gsi.WithRenewalJitter(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	defer cm.Close()
	cm.Start()
	fmt.Printf("4. manager running: %s valid until %s\n",
		cm.Current().Leaf().Subject, cm.Stats().NotAfter.Format(time.RFC3339))

	// 5. The worker's pooled client exchanges traffic with a GT2
	// service; a rotation mid-traffic loses nothing.
	server, err := env.NewServer(boot.Host)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return append([]byte("ok:"), body...), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	worker, err := env.NewClient(nil, gsi.WithCredentialManager(cm), gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Pool().Close()

	for i := 0; i < 3; i++ {
		if _, err := worker.Exchange(ctx, ep.Addr(), "stage-in", []byte("chunk")); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cm.Renew(ctx); err != nil { // an explicit rotation, mid-traffic
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := worker.Exchange(ctx, ep.Addr(), "stage-out", []byte("chunk")); err != nil {
			log.Fatal(err)
		}
	}
	ps := worker.Pool().Stats()
	fmt.Printf("5. 6 exchanges across a rotation: dials=%d hits=%d retired=%d (0 failures)\n",
		ps.Dials, ps.Hits, ps.Retired)
	fmt.Printf("   working proxy now: %s\n", cm.Current().Leaf().Subject)

	// 6. The audit chain recorded the lifecycle: deposits, retrievals,
	// and every authorized invocation, tamper-evidently.
	events := boot.Stack.Audit.Events()
	var deleg int
	for _, e := range events {
		if strings.HasPrefix(e.Event, "delegation-") {
			deleg++
		}
	}
	if bad := boot.Stack.Audit.VerifyChain(); bad >= 0 {
		log.Fatalf("audit chain tampered at %d", bad)
	}
	fmt.Printf("6. audit chain verified: %d events, %d delegation events\n", len(events), deleg)
}
