// Quickstart: the core GSI flow through the public handle-based API —
// create a CA, build an Environment of its trust roots, issue a user
// and a service, single sign-on with a proxy certificate, mutual
// authentication under a context.Context, protected messaging, and
// remote delegation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/proxy"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. A certificate authority and an Environment trusting it.
	// Trust is unilateral: installing the root is a single-party act.
	authority, err := gsi.NewCA("/O=Grid/CN=Quickstart CA", 365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. CA created:", authority.Name())

	// 2. Long-term credentials for a user and a service host.
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	gridftp, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host gridftp.example.org"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. issued:", alice.Leaf().Subject, "and", gridftp.Leaf().Subject)

	// 3. Single sign-on: Alice's Client mints a 12-hour proxy. The proxy
	// has its own key, so her long-term key can stay offline.
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	aliceProxy, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: 12 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. proxy created:", aliceProxy.Leaf().Subject)

	// 4. Mutual authentication between the proxy and the service, under
	// a context (a deadline here would abort the handshake mid-flight).
	proxyClient, err := env.NewClient(aliceProxy)
	if err != nil {
		log.Fatal(err)
	}
	ictx, actx, err := proxyClient.Establish(ctx, gsi.ContextConfig{
		Credential: gridftp,
		TrustStore: env.Trust(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. mutual auth: service sees %q (through the proxy), client sees %q\n",
		actx.Peer().Identity, ictx.Peer().Identity)

	// 5. Protected messages over the context.
	wrapped, err := ictx.Wrap([]byte("GET /data/run1"))
	if err != nil {
		log.Fatal(err)
	}
	plain, err := actx.Unwrap(wrapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5. protected message delivered: %q\n", plain)

	// 6. Remote delegation: the service obtains a proxy to act as Alice
	// (e.g. to fetch her data from a third service). Only the public key
	// crosses the wire.
	delegatee, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		log.Fatal(err)
	}
	reply, err := proxy.HandleDelegation(aliceProxy, req, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	delegated, err := delegatee.Accept(reply)
	if err != nil {
		log.Fatal(err)
	}
	info, err := env.Trust().Verify(delegated.Chain, gsi.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. delegated credential validates: identity=%s depth=%d\n",
		info.Identity, info.ProxyDepth)

	// 7. Session pooling: a pooled client pays the public-key handshake
	// once per connection, not once per call. WithSessionPool(nil) gives
	// the client a private pool; build one with NewSessionPool to share
	// it between clients. Close drains the pool.
	server, err := env.NewServer(gridftp)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	pooled, err := env.NewClient(aliceProxy, gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer pooled.Pool().Close()
	for i := 0; i < 5; i++ {
		if _, err := pooled.Exchange(ctx, ep.Addr(), "echo", []byte("req")); err != nil {
			log.Fatal(err)
		}
	}
	st := pooled.Pool().Stats()
	fmt.Printf("7. pooled exchanges: 5 calls, %d handshake(s), %d pool hit(s)\n",
		st.Dials, st.Hits)

	// 8. Credential lifecycle: a CredentialManager keeps the proxy alive
	// past its own expiry — ahead of a configurable horizon it obtains a
	// successor (here by re-delegating below Alice's credential; MyProxy
	// and remote delegation endpoints are the other sources) and a
	// managed, pooled client rolls onto it with no dropped traffic:
	// rotation drains the old sessions and new calls handshake under the
	// successor. cm.Start() would do this continuously in the background.
	cm, err := env.NewCredentialManager(aliceProxy,
		gsi.DelegationRenewal(alice, gsi.ProxyOptions{Lifetime: 12 * time.Hour}),
		gsi.WithRenewalHorizon(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	defer cm.Close()
	managed, err := env.NewClient(nil, gsi.WithCredentialManager(cm), gsi.WithSessionPool(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer managed.Pool().Close()
	if _, err := managed.Exchange(ctx, ep.Addr(), "echo", []byte("before")); err != nil {
		log.Fatal(err)
	}
	if _, err := cm.Renew(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := managed.Exchange(ctx, ep.Addr(), "echo", []byte("after")); err != nil {
		log.Fatal(err)
	}
	ms := managed.Pool().Stats()
	fmt.Printf("8. rotated credentials mid-traffic: %d rotation(s), %d session(s) retired, 0 failures\n",
		cm.Stats().Rotations, ms.Retired)

	// 9. Authorization pipeline: a server built with WithLocalPolicy /
	// WithGridMap (and WithTrustedVO for community assertions) gates
	// every exchange through the chain-aware pipeline — local ∩ VO
	// policy, grid-mapfile mapping surfaced as Peer.LocalAccount, a
	// decision cache on the hot path, and every outcome auditable via
	// WithAuditSink. Here local policy admits Alice by DN and the
	// gridmap names her local account.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "allow-alice",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{alice.Identity().String()},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(alice.Identity(), "alice")
	authzServer, err := env.NewServer(gridftp,
		gsi.WithLocalPolicy(local), gsi.WithGridMap(gridmap))
	if err != nil {
		log.Fatal(err)
	}
	authzEP, err := authzServer.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return []byte(peer.LocalAccount), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer authzEP.Close()
	account, err := pooled.Exchange(ctx, authzEP.Addr(), "whoami", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("9. authorized exchange ran as local account %q (policy + gridmap enforced in the facade)\n", account)

	// 10. Streaming: OpenStream moves bulk data as 256 KiB records
	// through the pooled record layer — no 16 MiB message cap, one
	// authorization per stream, and the pooled session returns for
	// reuse when the stream closes cleanly. The server installs a
	// StreamHandler; here it counts an uploaded "file" larger than any
	// single message the old path could carry.
	var received int64
	streamServer, err := env.NewServer(gridftp,
		gsi.WithStreamHandler(func(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
			n, err := io.Copy(io.Discard, st)
			atomic.StoreInt64(&received, n)
			return err
		}))
	if err != nil {
		log.Fatal(err)
	}
	streamEP, err := streamServer.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer streamEP.Close()
	up, err := pooled.OpenStream(ctx, streamEP.Addr(), "upload:/exp/large")
	if err != nil {
		log.Fatal(err)
	}
	large := make([]byte, 20<<20) // beyond the old whole-message cap
	if _, err := up.Write(large); err != nil {
		log.Fatal(err)
	}
	if err := up.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10. streamed %d MiB upload in 256 KiB records (old cap was 16 MiB per message)\n",
		atomic.LoadInt64(&received)>>20)

	// 11. Observability & control plane: WithMetrics lands every
	// subsystem's counters in a Prometheus-format registry (zero cost
	// on the hot path; WithMetricsListener would serve it over HTTP),
	// and WithReload re-reads policy/trust files live through the
	// generation-counted swaps — fail-closed, so a corrupt file keeps
	// the previous configuration serving. Here the policy file flips to
	// deny-all and the very next exchange is refused, no restart.
	dir, err := os.MkdirTemp("", "quickstart-reload")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON, err := local.EncodePolicyJSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(policyPath, policyJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	reg := gsi.NewMetricsRegistry()
	obsServer, err := env.NewServer(gridftp,
		gsi.WithLocalPolicy(local), gsi.WithGridMap(gridmap),
		gsi.WithMetrics(reg),
		gsi.WithReload(gsi.ReloadConfig{Policy: policyPath}))
	if err != nil {
		log.Fatal(err)
	}
	obsEP, err := obsServer.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer obsEP.Close()
	if _, err := pooled.Exchange(ctx, obsEP.Addr(), "echo", []byte("permitted")); err != nil {
		log.Fatal(err)
	}
	denyAll, err := gsi.NewPolicy().EncodePolicyJSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(policyPath, denyAll, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := obsServer.Reloader().Reload(); err != nil {
		log.Fatal(err)
	}
	_, err = pooled.Exchange(ctx, obsEP.Addr(), "echo", []byte("now denied"))
	if !errors.Is(err, gsi.ErrUnauthorized) {
		log.Fatalf("expected denial after live policy swap, got %v", err)
	}
	var scrape strings.Builder
	if err := reg.WritePrometheus(&scrape); err != nil {
		log.Fatal(err)
	}
	series := 0
	for _, line := range strings.Split(scrape.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	fmt.Printf("11. live policy swap denied the next call (%d reload(s)); registry exposes %d series\n",
		obsServer.Reloader().Stats().Reloads, series)

	// 12. Striped transfer: OpenStripedStream fans one logical stream
	// over K parallel data sessions from the pool — GridFTP parallel
	// striping. Each stripe seals on its own connection (K stripes
	// drive up to K cores) and every stripe ends with a FIN trailer
	// carrying the total chunk count, so a stripe that dies mid-flight
	// is always an error, never a silently truncated file. The same
	// stream-handler server from step 10 serves it: striping is a
	// client-negotiated transport detail.
	sup, err := pooled.OpenStripedStream(ctx, streamEP.Addr(), "upload:/exp/striped",
		gsi.WithStripes(4))
	if err != nil {
		log.Fatal(err)
	}
	big := make([]byte, 64<<20)
	if _, err := sup.Write(big); err != nil {
		log.Fatal(err)
	}
	if err := sup.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("12. striped %d MiB upload over 4 parallel stripe sessions (FIN trailers rule out truncation)\n",
		atomic.LoadInt64(&received)>>20)

	// 13. End-to-end tracing: WithTracing on both ends gives every
	// exchange one causally linked trace whose 25-byte context crosses
	// the wire (GT2 framing trailer, GT3 SOAP header), so the client's
	// root span and the server's exchange/authz spans share a trace id.
	// The bounded flight recorder answers "why was that call slow"
	// live, slowest-first — `gsictl traces` runs this exact query over
	// the secure admin channel. Here one deliberately slow call stands
	// out of a small burst and its trace is followed across both sides.
	// (Step 11's live swap left `local` deny-all; trace under a fresh permit.)
	tracePolicy := gsi.NewPolicy(gsi.Rule{
		ID:        "allow-alice-traced",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{alice.Identity().String()},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	traceServer, err := env.NewServer(gridftp,
		gsi.WithLocalPolicy(tracePolicy), gsi.WithGridMap(gridmap),
		gsi.WithTracing())
	if err != nil {
		log.Fatal(err)
	}
	traceEP, err := traceServer.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			if op == "slow" {
				time.Sleep(150 * time.Millisecond) // the call an operator would hunt
			}
			return body, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer traceEP.Close()
	traced, err := env.NewClient(aliceProxy, gsi.WithSessionPool(nil), gsi.WithTracing())
	if err != nil {
		log.Fatal(err)
	}
	defer traced.Pool().Close()
	for _, op := range []string{"echo", "echo", "echo", "slow"} {
		if _, err := traced.Exchange(ctx, traceEP.Addr(), op, []byte("traced")); err != nil {
			log.Fatal(err)
		}
	}
	slowest := traceServer.Tracer().Recorder().Snapshot(gsi.TraceQuery{Op: "server.exchange", N: 1})[0]
	tid := slowest.TraceID.String()
	clientSide := traced.Tracer().Recorder().Snapshot(gsi.TraceQuery{TraceID: tid, N: 20})
	serverSide := traceServer.Tracer().Recorder().Snapshot(gsi.TraceQuery{TraceID: tid, N: 20})
	fmt.Printf("13. slowest server span: %s %.0fms peer=%s — trace %s… links %d client + %d server span(s) across the wire\n",
		slowest.Op, float64(slowest.Duration.Milliseconds()), slowest.Peer, tid[:8], len(clientSide), len(serverSide))

	// 14. The durable trust plane: policy, gridmap, and the audit hash
	// chain journal through one write-ahead log (fsync before apply), so
	// a server that dies mid-churn restarts with the exact generations it
	// crashed with — the decision cache re-warms instead of stampeding,
	// and the audit trail proves itself intact. Here the first handle is
	// simply abandoned mid-churn (the crash: no Close, no shutdown), and
	// reopening the directory replays the journal.
	stateDir, err := os.MkdirTemp("", "gsi-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	durable, err := gsi.OpenDurableState(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := durable.Policy().AddChecked(gsi.Rule{
			ID:        fmt.Sprintf("churn-%d", i),
			Effect:    gsi.EffectPermit,
			Subjects:  []string{fmt.Sprintf("/O=Grid/CN=user%d", i)},
			Resources: []string{"data:/exp/*"},
			Actions:   []string{"read"},
		}); err != nil {
			log.Fatal(err)
		}
		durable.Audit().Record("quickstart", fmt.Sprintf("/O=Grid/CN=user%d", i), "policy churn")
	}
	if err := durable.GridMap().AddChecked(alice.Identity(), "alice"); err != nil {
		log.Fatal(err)
	}
	pGen, gGen := durable.Policy().Generation(), durable.GridMap().Generation()
	durable = nil // the crash: the handle is gone, only the journal survives

	recovered, err := gsi.OpenDurableState(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Policy().Generation() != pGen || recovered.GridMap().Generation() != gGen {
		log.Fatalf("restart moved generations: %d/%d, want %d/%d",
			recovered.Policy().Generation(), recovered.GridMap().Generation(), pGen, gGen)
	}
	if bad := recovered.Audit().VerifyChain(); bad != -1 {
		log.Fatalf("audit chain broken at %d after restart", bad)
	}
	fmt.Printf("14. killed mid-churn and restarted: policy/gridmap generations %d/%d identical, %d-event audit chain verifies\n",
		pGen, gGen, recovered.Audit().Len())

	// 15. The control-plane fast path: once a resource server holds a
	// VO's full signed bundle, membership churn travels as signed DELTAS
	// — only the mutations since the replica's version, verified against
	// the same VO key, with automatic fallback to a full bundle on any
	// mismatch. WithCacheWarming additionally pulls the publisher's
	// hottest decision keys and pre-computes those decisions locally, so
	// a freshly promoted standby serves cache hits from its first
	// request. `gsictl cas-status` reads the same status shown here over
	// the secure admin channel (and `gsictl compact` folds step 14's
	// journal on demand).
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=ClimateVO CAS"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	for i := 0; i < 200; i++ {
		vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=member %03d", i)), "researchers")
	}
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-read",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	pubCred, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=cas publisher"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	rsCred, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=cas resource"), 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	echo := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	}
	publisher, err := env.NewServer(pubCred,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithCASPublisher(vo),
		gsi.WithLocalPolicy(gsi.NewPolicy(gsi.Rule{
			ID:        "bundle-readers",
			Effect:    gsi.EffectPermit,
			Subjects:  []string{rsCred.Identity().String()},
			Resources: []string{"ogsa:gsi.__cas.sync"},
			Actions:   []string{"*"},
		})))
	if err != nil {
		log.Fatal(err)
	}
	pubEP, err := publisher.Serve(ctx, "127.0.0.1:0", echo)
	if err != nil {
		log.Fatal(err)
	}
	defer pubEP.Close()
	casResource, err := env.NewServer(rsCred,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithCASUpstream(gsi.CASUpstreamConfig{
			Endpoints: []string{pubEP.Addr()},
			Cert:      vo.Certificate(),
			Interval:  20 * time.Millisecond,
		}),
		gsi.WithCacheWarming(32))
	if err != nil {
		log.Fatal(err)
	}
	rsCASEP, err := casResource.Serve(ctx, "127.0.0.1:0", echo)
	if err != nil {
		log.Fatal(err)
	}
	defer rsCASEP.Close()
	waitCAS := func(what string, cond func(gsi.CASSyncStatus) bool) gsi.CASSyncStatus {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := casResource.CASSyncStatus()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting for %s; status %+v", what, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitCAS("initial full bundle", func(st gsi.CASSyncStatus) bool { return st.Version >= 1 })
	for i := 0; i < 5; i++ { // membership churn: five version steps, one small delta
		vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=joiner %d", i)), "researchers")
	}
	want := vo.Version()
	casStatus := waitCAS("delta catch-up", func(st gsi.CASSyncStatus) bool {
		return st.Version >= want && st.DeltaSyncs > 0
	})
	fmt.Printf("15. CAS replica at v%d via %d delta sync(s) after 1 full bundle: %d delta bytes vs %d full, %d bytes saved, %d decision(s) pre-warmed\n",
		casStatus.Version, casStatus.DeltaSyncs, casStatus.DeltaBytes, casStatus.FullBytes, casStatus.BytesSaved, casStatus.WarmedKeys)
}
