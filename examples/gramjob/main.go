// GRAM job submission: the complete Figure-4 flow — a requestor signs a
// job description, the Proxy Router and MMJFS route and verify it, the
// Setuid Starter and GRIM bring up a per-user LMJFS with a host-derived
// credential, an MJS is created, and the requestor mutually authenticates
// with it, delegates a credential, and runs the job. The simulated OS
// shows that no privileged network service was involved.
//
//	go run ./examples/gramjob
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gram"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

func main() {
	log.SetFlags(0)

	// Grid PKI and the resource's host credential.
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		log.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=cluster.example.org"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// The resource: grid-mapfile maps Alice to local account "alice".
	gm := authz.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	resource, err := gram.NewResource(host, trust, gm)
	if err != nil {
		log.Fatal(err)
	}
	if err := resource.CreateAccount("alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resource booted:", resource.HostIdentity())
	fmt.Println("initial privilege posture:", resource.Sys.Audit())

	// Step 1: Alice creates a proxy (single sign-on) and signs a job
	// description with it.
	aliceProxy, err := proxy.New(alice, proxy.Options{Lifetime: 12 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	client := &gram.Client{Credential: aliceProxy, Trust: trust, Resource: resource}
	desc := gram.JobDescription{
		Executable:         gram.JobProgram,
		Args:               []string{"--steps", "1000"},
		Directory:          "/home/alice",
		Stdout:             "/home/alice/run.out",
		Queue:              "batch",
		DelegateCredential: true,
	}

	// Steps 2–6: submit. The router finds no LMJFS for alice, so the
	// MMJFS verifies the request, the Setuid Starter creates the LMJFS,
	// and GRIM mints its credential.
	start := time.Now()
	handle, err := client.Submit(desc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps 2-6 (cold): MJS %s created in account %q (%v)\n",
		handle.MJSHandle, handle.Account, time.Since(start).Round(time.Microsecond))

	// Watch the job through its service data element.
	mjs, _ := resource.LookupMJS(handle.MJSHandle)
	updates := mjs.Data.Subscribe("jobState")
	done := make(chan struct{})
	go func() {
		for ev := range updates {
			fmt.Printf("  jobState -> %s\n", ev.Value)
			if string(ev.Value) == "Done" || string(ev.Value) == "Failed" {
				close(done)
				return
			}
		}
	}()

	// Step 7: connect, mutually authenticate, verify the GRIM credential,
	// delegate, and start.
	if _, err := client.Run(handle); err != nil {
		log.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		log.Fatal("timed out waiting for job completion")
	}
	fmt.Printf("step 7: job complete; delegated identity on the MJS: %s\n",
		mjs.DelegatedCredential().Identity())

	// A second submission from the same user takes the warm path.
	start = time.Now()
	if _, err := client.SubmitAndRun(desc); err != nil {
		log.Fatal(err)
	}
	st := resource.Stats()
	fmt.Printf("second job (warm, %v): cold=%d warm=%d grim-runs=%d starter-runs=%d\n",
		time.Since(start).Round(time.Microsecond), st.ColdStarts, st.WarmHits, st.GRIMRuns, st.StarterRuns)

	fmt.Println("final privilege posture:", resource.Sys.Audit())
	fmt.Println("note: zero privileged network services; privileged code ran only in the")
	fmt.Println("two setuid programs, once, during the cold start.")
}
