// GRAM job submission: the complete Figure-4 flow through the
// handle-based API — a requestor signs a job description, the Proxy
// Router and MMJFS route and verify it, the Setuid Starter and GRIM
// bring up a per-user LMJFS with a host-derived credential, an MJS is
// created, and the requestor mutually authenticates with it, delegates
// a credential, and runs the job — all under a context.Context with a
// deadline. The simulated OS shows that no privileged network service
// was involved.
//
//	go run ./examples/gramjob
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	// The whole submission flow runs under one deadline: cancellation
	// aborts between the submit, connect, delegate, and start steps.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Grid PKI and the resource's host credential.
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=cluster.example.org"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// The resource: grid-mapfile maps Alice to local account "alice".
	gm := gsi.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	resource, err := gsi.NewJobResource(host, env.Trust(), gm)
	if err != nil {
		log.Fatal(err)
	}
	if err := resource.CreateAccount("alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resource booted:", resource.HostIdentity())
	fmt.Println("initial privilege posture:", resource.Sys.Audit())

	// Step 1: Alice creates a proxy (single sign-on); her proxy Client
	// signs job descriptions with it.
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	aliceProxy, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: 12 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	client, err := env.NewClient(aliceProxy, gsi.WithDelegation())
	if err != nil {
		log.Fatal(err)
	}
	desc := gsi.JobDescription{
		Executable:         gsi.JobProgram,
		Args:               []string{"--steps", "1000"},
		Directory:          "/home/alice",
		Stdout:             "/home/alice/run.out",
		Queue:              "batch",
		DelegateCredential: true,
	}

	// Steps 2–7 (cold): SubmitJob signs and submits the description; the
	// router finds no LMJFS for alice, so the MMJFS verifies the request,
	// the Setuid Starter creates the LMJFS, GRIM mints its credential,
	// and the client connects, delegates, and starts the job.
	start := time.Now()
	mjs, err := client.SubmitJob(ctx, resource, desc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps 2-7 (cold): MJS %s created in account %q (%v)\n",
		mjs.Handle(), mjs.Job().Account, time.Since(start).Round(time.Microsecond))
	fmt.Printf("job finished in state %s; delegated identity on the MJS: %s\n",
		mjs.Job().State(), mjs.DelegatedCredential().Identity())

	// A second submission from the same user takes the warm path.
	start = time.Now()
	if _, err := client.SubmitJob(ctx, resource, desc); err != nil {
		log.Fatal(err)
	}
	st := resource.Stats()
	fmt.Printf("second job (warm, %v): cold=%d warm=%d grim-runs=%d starter-runs=%d\n",
		time.Since(start).Round(time.Microsecond), st.ColdStarts, st.WarmHits, st.GRIMRuns, st.StarterRuns)

	fmt.Println("final privilege posture:", resource.Sys.Audit())
	fmt.Println("note: zero privileged network services; privileged code ran only in the")
	fmt.Println("two setuid programs, once, during the cold start.")
}
