// Data movement: GridFTP over the GT2 secured transport, including the
// third-party transfer that made GSI delegation famous — Alice directs
// the source server to push a dataset to the destination server, with
// the source authenticating to the destination *as Alice* using a
// credential she delegated. Her long-term key never leaves her machine;
// the data never passes through her. The PKI world is assembled through
// the handle-based gsi API.
//
// Transfers stream through the pooled secure record layer in 256 KiB
// chunk records — the dataset below is larger than the old 16 MiB
// whole-message cap, which no longer exists.
//
//	go run ./examples/datamovement
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/gridftp"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)

	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	srcHost, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host storage-a"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	dstHost, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host storage-b"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// Both stores allow Alice full access; Bob gets read on /shared only.
	policy := authz.NewPolicy(authz.DenyOverrides).Add(
		authz.Rule{
			Effect:   authz.EffectPermit,
			Subjects: []string{"/O=Grid/CN=Alice"},
			Actions:  []string{"read", "write", "delete", "list"},
		},
	)
	trust := env.Trust()
	src, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), srcHost, trust)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	dst, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), dstHost, trust)
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()
	fmt.Printf("servers: %s (%s), %s (%s)\n", src.Addr(), src.Identity().CommonName(), dst.Addr(), dst.Identity().CommonName())

	// Alice uploads a dataset to the source with her proxy (single
	// sign-on over a mutually authenticated, encrypted channel).
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	aliceProxy, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := gridftp.Dial(src.Addr(), aliceProxy, trust, src.Identity())
	if err != nil {
		log.Fatal(err)
	}
	dataset := make([]byte, 20<<20) // beyond the old 16 MiB whole-message cap
	for i := range dataset {
		dataset[i] = byte(i)
	}
	start := time.Now()
	n, err := conn.PutFrom("/exp/run-42", bytes.NewReader(dataset))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("streamed %d MiB upload in %v (%.0f MiB/s, 256 KiB records)\n",
		n>>20, elapsed.Round(time.Microsecond), float64(n)/(1<<20)/elapsed.Seconds())
	names, err := conn.List("/exp/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source listing:", names)
	conn.Close()

	// Third-party transfer: Alice (the orchestrator) never touches the
	// data; the source authenticates to the destination with a credential
	// she delegates for this purpose. The copy streams source chunks
	// straight into destination chunks — the file is never materialized
	// in the orchestrating process.
	start = time.Now()
	if err := gridftp.ThirdPartyTransfer(aliceProxy, trust,
		src.Addr(), src.Identity(),
		dst.Addr(), dst.Identity(),
		"/exp/run-42", "/replica/run-42"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("third-party streamed transfer completed in %v\n", time.Since(start).Round(time.Microsecond))

	// Verify at the destination, streaming the replica back.
	check, err := gridftp.Dial(dst.Addr(), aliceProxy, trust, dst.Identity())
	if err != nil {
		log.Fatal(err)
	}
	defer check.Close()
	var replica bytes.Buffer
	if _, err := check.GetTo("/replica/run-42", &replica); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica verified: %d bytes, identical=%v\n", replica.Len(), bytes.Equal(replica.Bytes(), dataset))
}
