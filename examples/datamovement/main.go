// Data movement: GridFTP over the GT2 secured transport, including the
// third-party transfer that made GSI delegation famous — Alice directs
// the source server to push a dataset to the destination server, with
// the source authenticating to the destination *as Alice* using a
// credential she delegated. Her long-term key never leaves her machine;
// the data never passes through her. The PKI world is assembled through
// the handle-based gsi API.
//
//	go run ./examples/datamovement
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/gridftp"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)

	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	srcHost, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host storage-a"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	dstHost, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host storage-b"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// Both stores allow Alice full access; Bob gets read on /shared only.
	policy := authz.NewPolicy(authz.DenyOverrides).Add(
		authz.Rule{
			Effect:   authz.EffectPermit,
			Subjects: []string{"/O=Grid/CN=Alice"},
			Actions:  []string{"read", "write", "delete", "list"},
		},
	)
	trust := env.Trust()
	src, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), srcHost, trust)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	dst, err := gridftp.NewServer("127.0.0.1:0", gridftp.NewStore(policy), dstHost, trust)
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()
	fmt.Printf("servers: %s (%s), %s (%s)\n", src.Addr(), src.Identity().CommonName(), dst.Addr(), dst.Identity().CommonName())

	// Alice uploads a dataset to the source with her proxy (single
	// sign-on over a mutually authenticated, encrypted channel).
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	aliceProxy, err := aliceClient.Proxy(gsi.ProxyOptions{Lifetime: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := gridftp.Dial(src.Addr(), aliceProxy, trust, src.Identity())
	if err != nil {
		log.Fatal(err)
	}
	dataset := make([]byte, 256<<10)
	for i := range dataset {
		dataset[i] = byte(i)
	}
	start := time.Now()
	if err := conn.Put("/exp/run-42", dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded 256 KiB over the secured channel in %v\n", time.Since(start).Round(time.Microsecond))
	names, err := conn.List("/exp/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source listing:", names)
	conn.Close()

	// Third-party transfer: Alice (the orchestrator) never touches the
	// data; the source authenticates to the destination with a credential
	// she delegates for this purpose.
	start = time.Now()
	if err := gridftp.ThirdPartyTransfer(aliceProxy, trust,
		src.Addr(), src.Identity(),
		dst.Addr(), dst.Identity(),
		"/exp/run-42", "/replica/run-42"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("third-party transfer completed in %v\n", time.Since(start).Round(time.Microsecond))

	// Verify at the destination.
	check, err := gridftp.Dial(dst.Addr(), aliceProxy, trust, dst.Identity())
	if err != nil {
		log.Fatal(err)
	}
	defer check.Close()
	got, err := check.Get("/replica/run-42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica verified: %d bytes, identical=%v\n", len(got), string(got) == string(dataset))
}
