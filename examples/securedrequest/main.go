// Secured request: the Figure-3 pipeline over real HTTP through the
// handle-based API. A hosting environment publishes its security
// policy; Client.Invoke fetches it, selects a mechanism, establishes
// trust, and invokes the service under a context.Context; the container
// authenticates, authorizes, and audits before the application sees the
// call. Denials come back as typed errors matchable with errors.Is.
//
//	go run ./examples/securedrequest
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

// inventoryService is the "application": it never touches security.
type inventoryService struct{ *ogsa.Base }

func newInventoryService() *inventoryService {
	s := &inventoryService{Base: ogsa.NewBase()}
	s.Data.Set("__warmup__", []byte("ok"))
	s.Data.Set("datasets", []byte("climate-2003,physics-1998"))
	return s
}

func (s *inventoryService) Invoke(call *gsi.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "list":
		v, _ := s.Data.Query("datasets")
		return v, nil
	case "whoami":
		return []byte(call.Caller.Name.String()), nil
	default:
		return nil, fmt.Errorf("no such op %q", call.Op)
	}
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Server side: bootstrap a CA + host + security stack, with an
	// authorization service that admits only Alice.
	policy := authz.NewPolicy(authz.DenyOverrides).Add(
		authz.Rule{
			Effect:    authz.EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Alice"},
			Resources: []string{"ogsa:inventory"},
			Actions:   []string{"*"},
		},
		authz.Rule{
			Effect:    authz.EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Alice"},
			Resources: []string{"ogsa:security/*"},
			Actions:   []string{"Count", "Verify", "Query"},
		},
	)
	boot, err := gsi.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host inventory.example.org",
		&authz.PolicyEngine{Policy: policy, DefaultDeny: true})
	if err != nil {
		log.Fatal(err)
	}
	boot.Stack.Container.Publish("inventory", newInventoryService())
	url, shutdown, err := gsi.ServeHTTP(boot.Stack.Container, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Println("hosting environment listening at", url)

	// Client side: an Environment sharing the bootstrap's trust roots,
	// and a Client handle for Alice. Invoke runs the whole Figure-3
	// pipeline under the context.
	env, err := gsi.NewEnvironment(gsi.WithTrustStore(boot.Trust))
	if err != nil {
		log.Fatal(err)
	}
	alice, err := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	out, trace, err := aliceClient.Invoke(ctx, url, "inventory", "list", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datasets: %s\n", out)
	fmt.Printf("pipeline trace: policy=%v conversion=%v tokens=%v invoke=%v (mechanism %s)\n",
		trace.PolicyFetch.Round(time.Microsecond),
		trace.Conversion.Round(time.Microsecond),
		trace.TokenProcessing.Round(time.Microsecond),
		trace.Invocation.Round(time.Microsecond),
		trace.Mechanism)

	// Bob authenticates fine but is denied by the authorization service
	// (step 5) — surfaced as a typed gsi.ErrUnauthorized; the
	// application never sees his call.
	bob, err := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	bobClient, err := env.NewClient(bob)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := bobClient.Invoke(ctx, url, "inventory", "list", nil); errors.Is(err, gsi.ErrUnauthorized) {
		fmt.Println("bob denied as expected (errors.Is(err, gsi.ErrUnauthorized)):", err)
	} else if err != nil {
		fmt.Println("bob denied as expected:", err)
	}

	// The audit service recorded everything, tamper-evidently.
	count, _, err := aliceClient.Invoke(ctx, url, "security/audit", "Count", nil)
	if err != nil {
		log.Fatal(err)
	}
	intact, _, err := aliceClient.Invoke(ctx, url, "security/audit", "Verify", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit log: %s events, chain %s\n", count, intact)
}
