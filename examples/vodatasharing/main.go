// VO data sharing: two organizations form a virtual organization (the
// policy overlay of Figure 1) and share a dataset under CAS-governed
// community policy (Figure 2). Argonne's resource lets VO members read
// its climate data; ISI's user Alice accesses it without Argonne ever
// having heard of her — the VO is the bridge. The CAS request path runs
// through the handle-based API under a context.Context.
//
//	go run ./examples/vodatasharing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/authz"
	"repro/internal/cas"
	"repro/internal/vo"
	"repro/pkg/gsi"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Two classical organizations, each with its own CA and local policy.
	anl, err := vo.NewDomain("ANL")
	if err != nil {
		log.Fatal(err)
	}
	isi, err := vo.NewDomain("ISI")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("domains:", anl.Name, "and", isi.Name)

	// They form a VO. Each installs the other's CA unilaterally — no
	// inter-organizational agreement is signed.
	climateVO := vo.New("climate-vo")
	cost, err := climateVO.JoinGSI(anl, isi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VO formed: %d unilateral trust acts, %d bilateral agreements\n",
		cost.UnilateralActs, cost.BilateralAgreements)

	// Alice is an ISI user; the data service and the CAS server live at ANL.
	alice, err := isi.NewUser("Alice")
	if err != nil {
		log.Fatal(err)
	}
	voCred, err := anl.NewUser("ClimateVO CAS")
	if err != nil {
		log.Fatal(err)
	}
	casServer := gsi.NewCASServer(voCred)
	casServer.AddMember(alice.Identity(), "researchers")
	casServer.AddPolicy(gsi.Rule{
		ID:        "vo-share-climate",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"gridftp:/climate/*"},
		Actions:   []string{"read"},
	})
	fmt.Println("CAS server enrolled Alice into", casServer.VO())

	// ANL's resource outsources a policy slice to the VO: local policy
	// admits any authenticated grid user to the climate tree, and the VO
	// assertion narrows it to read-only for researchers.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "anl-local",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"gridftp:/climate/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := gsi.NewCASEnforcer(anl.Trust, local)
	enforcer.TrustVO(casServer.Certificate())

	// Step 1–2 through Alice's Client handle: request the assertion
	// (cancellable) and embed it in a restricted proxy.
	aliceEnv, err := gsi.NewEnvironment(gsi.WithTrustStore(isi.Trust))
	if err != nil {
		log.Fatal(err)
	}
	aliceClient, err := aliceEnv.NewClient(alice)
	if err != nil {
		log.Fatal(err)
	}
	assertion, err := aliceClient.RequestAssertion(ctx, casServer)
	if err != nil {
		log.Fatal(err)
	}
	cred, err := aliceClient.EmbedAssertion(assertion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assertion issued and embedded in restricted proxy")

	// Step 3: the ANL resource decides, also under the context.
	for _, attempt := range []struct{ action, resource string }{
		{"read", "gridftp:/climate/run7"},
		{"write", "gridftp:/climate/run7"},
		{"read", "gridftp:/secret/plans"},
	} {
		res, err := enforcer.AuthorizeContext(ctx, cred.Chain, attempt.resource, attempt.action, time.Time{})
		if err != nil && res.Decision != authz.Deny {
			log.Fatal(err)
		}
		fmt.Printf("  %s %-24s -> %-6s (local=%s, vo=%s)\n",
			attempt.action, attempt.resource, res.Decision, res.Local, res.VO)
	}

	// The dual check: a non-member from ANL's own CA cannot use the VO
	// path even though the local policy would admit them, because CAS
	// issues them no assertion.
	mallory, err := anl.NewUser("Mallory")
	if err != nil {
		log.Fatal(err)
	}
	malloryClient, err := aliceEnv.NewClient(mallory)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := malloryClient.RequestAssertion(ctx, casServer); err != nil {
		fmt.Println("non-member denied an assertion:", err)
	}

	// And the VO policy overlay view (Figure 1): effective rights are the
	// intersection of domain-local and community policy.
	overlay := vo.Overlay{Domain: anl, VO: climateVO}
	climateVO.Policy.Add(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Subjects:  []string{alice.Identity().String()},
		Resources: []string{"gridftp:/climate/*"},
		Actions:   []string{"read"},
	})
	anl.Local.Add(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"gridftp:/climate/*"},
		Actions:   []string{"read"},
	})
	eff, localD, voD := overlay.Decide(gsi.Request{
		Subject:  alice.Identity(),
		Resource: "gridftp:/climate/run7",
		Action:   "read",
	})
	fmt.Printf("overlay decision: effective=%s (local=%s, vo=%s)\n", eff, localD, voD)

	_ = cas.PolicyLanguage // document the restricted-proxy language in use
}
