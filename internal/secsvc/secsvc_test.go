package secsvc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/bridge"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/kerberos"
	"repro/internal/ogsa"
)

func testTrust(t testing.TB) (*ca.Authority, *gridcert.TrustStore, *gridcert.Credential) {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return auth, ts, alice
}

func call(op string, body []byte) *ogsa.Call {
	return &ogsa.Call{Op: op, Body: body, Caller: ogsa.Identity{Name: gridcert.MustParseName("/O=Grid/CN=Caller")}}
}

func TestCredentialProcessingValidateChain(t *testing.T) {
	_, ts, alice := testTrust(t)
	svc := NewCredentialProcessing(ts)
	reply, err := svc.Invoke(call("ValidateChain", gridcert.EncodeChain(alice.Chain)))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "/O=Grid/CN=Alice" {
		t.Fatalf("identity = %q", reply)
	}
	// Garbage chain.
	if _, err := svc.Invoke(call("ValidateChain", []byte("junk"))); err == nil {
		t.Fatal("garbage chain validated")
	}
	// Unknown op.
	if _, err := svc.Invoke(call("Nope", nil)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestAuthorizationService(t *testing.T) {
	pol := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"data:/x"},
		Actions:   []string{"read"},
	})
	svc := NewAuthorization(&authz.PolicyEngine{Policy: pol, DefaultDeny: true})

	req := authz.Request{
		Subject:  gridcert.MustParseName("/O=Grid/CN=Alice"),
		Resource: "data:/x",
		Action:   "read",
	}
	reply, err := svc.Invoke(call("Decide", EncodeAuthzRequest(req)))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "permit" {
		t.Fatalf("decision = %q", reply)
	}
	req.Action = "write"
	reply, err = svc.Invoke(call("Decide", EncodeAuthzRequest(req)))
	if err != nil || string(reply) != "deny" {
		t.Fatalf("write: %q %v", reply, err)
	}
}

func TestAuthzRequestRoundTrip(t *testing.T) {
	req := authz.Request{
		Subject:  gridcert.MustParseName("/O=Grid/CN=Alice"),
		Groups:   []string{"g1", "g2"},
		Roles:    []string{"r1"},
		Resource: "res",
		Action:   "act",
	}
	dec, err := DecodeAuthzRequest(EncodeAuthzRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Subject.Equal(req.Subject) || len(dec.Groups) != 2 || len(dec.Roles) != 1 ||
		dec.Resource != "res" || dec.Action != "act" {
		t.Fatalf("round trip: %+v", dec)
	}
	if _, err := DecodeAuthzRequest([]byte("junk")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestIdentityMappingService(t *testing.T) {
	m := bridge.NewIdentityMapper()
	dn := gridcert.MustParseName("/O=Grid/CN=Alice")
	m.MapLocal(dn, "alice")
	m.MapKerberos(dn, kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})
	svc := NewIdentityMapping(m)

	reply, err := svc.Invoke(call("MapToLocal", []byte(dn.String())))
	if err != nil || string(reply) != "alice" {
		t.Fatalf("MapToLocal: %q %v", reply, err)
	}
	reply, err = svc.Invoke(call("MapToKerberos", []byte(dn.String())))
	if err != nil || string(reply) != "alice@ANL.GOV" {
		t.Fatalf("MapToKerberos: %q %v", reply, err)
	}
	reply, err = svc.Invoke(call("MapFromKerberos", []byte("alice@ANL.GOV")))
	if err != nil || string(reply) != dn.String() {
		t.Fatalf("MapFromKerberos: %q %v", reply, err)
	}
	if _, err := svc.Invoke(call("MapToLocal", []byte("/CN=Unknown"))); err == nil {
		t.Fatal("unknown mapping succeeded")
	}
}

func TestCredentialConversionService(t *testing.T) {
	kdc := kerberos.NewKDC("ANL.GOV")
	principal := kdc.RegisterPrincipal("alice", "pw")
	kcaP, kcaKey, err := kdc.RegisterService("kca/grid")
	if err != nil {
		t.Fatal(err)
	}
	authority, err := ca.New(gridcert.MustParseName("/O=ANL/CN=KCA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mapper := bridge.NewIdentityMapper()
	dn := gridcert.MustParseName("/O=ANL/CN=Alice")
	mapper.MapKerberos(dn, principal)
	kca := bridge.NewKCA(authority, kerberos.NewService(kcaP, kcaKey), mapper)
	svc := NewCredentialConversion(kca)

	// Client side: login and build the conversion request.
	tgt, tgtSess, err := kdc.ASExchange("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	auth1, _ := kerberos.NewAuthenticator(principal, tgtSess, time.Now())
	st, stSess, err := kdc.TGSExchange(tgt, auth1, "kca/grid")
	if err != nil {
		t.Fatal(err)
	}
	apAuth, _ := kerberos.NewAuthenticator(principal, stSess, time.Now())
	clientKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	req := ConversionRequest{
		TicketService:  st.Service.Name,
		TicketSrcRealm: st.SrcRealm,
		TicketRealm:    st.Service.Realm,
		TicketBlob:     st.Blob,
		Authenticator:  apAuth.Blob,
		PublicKey:      clientKey.Public(),
	}
	reply, err := svc.Invoke(call("KerberosToGSI", req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := gridcert.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Subject.Equal(dn) {
		t.Fatalf("converted subject = %q", cert.Subject)
	}
	if !cert.PublicKey.Equal(clientKey.Public()) {
		t.Fatal("certificate is not over the client key")
	}
	// The credential assembles and verifies against the KCA root.
	cred, err := gridcert.NewCredential([]*gridcert.Certificate{cert}, clientKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	ts.AddRoot(authority.Certificate())
	if _, err := ts.Verify(cred.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// Replayed authenticator fails.
	if _, err := svc.Invoke(call("KerberosToGSI", req.Encode())); err == nil {
		t.Fatal("replayed conversion accepted")
	}
}

func TestAuditChain(t *testing.T) {
	l := NewAuditLog()
	l.Record("invoke", "alice", "svc/op")
	l.Record("authz-deny", "bob", "svc/op2")
	l.Record("invoke", "alice", "svc/op3")
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if i := l.VerifyChain(); i != -1 {
		t.Fatalf("fresh chain corrupt at %d", i)
	}
	if err := l.Tamper(1, "rewritten"); err != nil {
		t.Fatal(err)
	}
	if i := l.VerifyChain(); i != 1 {
		t.Fatalf("tamper detected at %d, want 1", i)
	}
	if err := l.Tamper(99, "x"); err == nil {
		t.Fatal("out-of-range tamper accepted")
	}
}

func TestAuditServiceOps(t *testing.T) {
	l := NewAuditLog()
	l.Record("invoke", "alice", "a")
	l.Record("deny", "bob", "b")

	reply, err := l.Invoke(call("Count", nil))
	if err != nil || string(reply) != "2" {
		t.Fatalf("Count: %q %v", reply, err)
	}
	reply, err = l.Invoke(call("Verify", nil))
	if err != nil || string(reply) != "intact" {
		t.Fatalf("Verify: %q %v", reply, err)
	}
	reply, err = l.Invoke(call("Query", []byte("deny")))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reply), "bob") || strings.Contains(string(reply), "alice") {
		t.Fatalf("Query = %q", reply)
	}
	l.Tamper(0, "x")
	reply, _ = l.Invoke(call("Verify", nil))
	if !strings.Contains(string(reply), "corrupt at 0") {
		t.Fatalf("Verify after tamper = %q", reply)
	}
}

func TestAuditConcurrentRecord(t *testing.T) {
	l := NewAuditLog()
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				l.Record("e", "s", "d")
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if l.Len() != 400 {
		t.Fatalf("len = %d", l.Len())
	}
	if i := l.VerifyChain(); i != -1 {
		t.Fatalf("concurrent chain corrupt at %d", i)
	}
}
