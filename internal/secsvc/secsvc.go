// Package secsvc implements the OGSA security services enumerated by the
// paper's §4.1 (after the OGSA Security Roadmap): credential processing,
// authorization, credential conversion, identity mapping, and audit —
// each cast as a Grid service so "applications can outsource security
// functionality by using a security service with a particular
// implementation to fit its current need."
package secsvc

import (
	"fmt"
	"time"

	"repro/internal/authz"
	"repro/internal/bridge"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/kerberos"
	"repro/internal/ogsa"
	"repro/internal/wire"
)

// CredentialProcessing is the token-processing/validation service: it
// "handles the details of processing and validating authentication
// tokens" so hosting environments need not understand each mechanism.
type CredentialProcessing struct {
	*ogsa.Base
	Trust *gridcert.TrustStore
}

// NewCredentialProcessing builds the service over a trust store.
func NewCredentialProcessing(trust *gridcert.TrustStore) *CredentialProcessing {
	return &CredentialProcessing{Base: ogsa.NewBase(), Trust: trust}
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	ValidateChain: body = encoded certificate chain → identity DN string.
func (s *CredentialProcessing) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "ValidateChain":
		chain, err := gridcert.DecodeChain(call.Body)
		if err != nil {
			return nil, fmt.Errorf("secsvc: chain: %w", err)
		}
		info, err := s.Trust.Verify(chain, gridcert.VerifyOptions{})
		if err != nil {
			return nil, fmt.Errorf("secsvc: validation: %w", err)
		}
		return []byte(info.Identity.String()), nil
	default:
		return nil, fmt.Errorf("secsvc: credential-processing has no op %q", call.Op)
	}
}

// Authorization wraps an authz.Engine as an OGSA service.
type Authorization struct {
	*ogsa.Base
	Engine authz.Engine
}

// NewAuthorization builds the service.
func NewAuthorization(engine authz.Engine) *Authorization {
	return &Authorization{Base: ogsa.NewBase(), Engine: engine}
}

// EncodeAuthzRequest serialises an authorization question for the wire.
func EncodeAuthzRequest(req authz.Request) []byte {
	e := wire.NewEncoder()
	e.Str(req.Subject.String())
	e.U32(uint32(len(req.Groups)))
	for _, g := range req.Groups {
		e.Str(g)
	}
	e.U32(uint32(len(req.Roles)))
	for _, r := range req.Roles {
		e.Str(r)
	}
	e.Str(req.Resource)
	e.Str(req.Action)
	return e.Finish()
}

// DecodeAuthzRequest reverses EncodeAuthzRequest.
func DecodeAuthzRequest(b []byte) (authz.Request, error) {
	d := wire.NewDecoder(b)
	var req authz.Request
	subj := d.Str()
	ng := d.Count("groups", 1024)
	for i := 0; i < ng; i++ {
		req.Groups = append(req.Groups, d.Str())
	}
	nr := d.Count("roles", 1024)
	for i := 0; i < nr; i++ {
		req.Roles = append(req.Roles, d.Str())
	}
	req.Resource = d.Str()
	req.Action = d.Str()
	if err := d.Done(); err != nil {
		return authz.Request{}, err
	}
	var err error
	req.Subject, err = gridcert.ParseName(subj)
	if err != nil {
		return authz.Request{}, err
	}
	return req, nil
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	Decide: body = encoded request → "permit" | "deny" | "not-applicable".
func (s *Authorization) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "Decide":
		req, err := DecodeAuthzRequest(call.Body)
		if err != nil {
			return nil, fmt.Errorf("secsvc: request: %w", err)
		}
		d, err := s.Engine.Authorize(req)
		if err != nil {
			return nil, err
		}
		return []byte(d.String()), nil
	default:
		return nil, fmt.Errorf("secsvc: authorization has no op %q", call.Op)
	}
}

// IdentityMapping wraps a bridge.IdentityMapper as an OGSA service: "a
// service that takes a user's identity in one domain and returns the
// identity in another."
type IdentityMapping struct {
	*ogsa.Base
	Mapper *bridge.IdentityMapper
}

// NewIdentityMapping builds the service.
func NewIdentityMapping(m *bridge.IdentityMapper) *IdentityMapping {
	return &IdentityMapping{Base: ogsa.NewBase(), Mapper: m}
}

// Invoke implements ogsa.Service.
//
// Operations (body = DN string unless noted):
//
//	MapToLocal:    → local account name
//	MapToKerberos: → principal string
//	MapFromKerberos: body = principal → DN string
func (s *IdentityMapping) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "MapToLocal":
		dn, err := gridcert.ParseName(string(call.Body))
		if err != nil {
			return nil, err
		}
		acct, ok := s.Mapper.LocalFor(dn)
		if !ok {
			return nil, fmt.Errorf("secsvc: no local mapping for %q", dn)
		}
		return []byte(acct), nil
	case "MapToKerberos":
		dn, err := gridcert.ParseName(string(call.Body))
		if err != nil {
			return nil, err
		}
		p, ok := s.Mapper.KerberosFor(dn)
		if !ok {
			return nil, fmt.Errorf("secsvc: no kerberos mapping for %q", dn)
		}
		return []byte(p.String()), nil
	case "MapFromKerberos":
		p, err := kerberos.ParsePrincipal(string(call.Body))
		if err != nil {
			return nil, err
		}
		dn, ok := s.Mapper.DNForKerberos(p)
		if !ok {
			return nil, fmt.Errorf("secsvc: no grid mapping for %q", p)
		}
		return []byte(dn.String()), nil
	default:
		return nil, fmt.Errorf("secsvc: identity-mapping has no op %q", call.Op)
	}
}

// CredentialConversion wraps the KCA gateway as an OGSA service: "a
// service that enables bridging of different trust or mechanism domains
// by converting credentials between trust roots or mechanisms."
type CredentialConversion struct {
	*ogsa.Base
	KCA *bridge.KCA
}

// NewCredentialConversion builds the service.
func NewCredentialConversion(kca *bridge.KCA) *CredentialConversion {
	return &CredentialConversion{Base: ogsa.NewBase(), KCA: kca}
}

// ConversionRequest is the wire form of a Kerberos→GSI conversion: the
// client authenticates with a ticket+authenticator and supplies the
// public key to certify.
type ConversionRequest struct {
	TicketService  string
	TicketSrcRealm string
	TicketRealm    string
	TicketBlob     []byte
	Authenticator  []byte
	PublicKey      gridcrypto.PublicKey
}

// Encode serialises the request.
func (r ConversionRequest) Encode() []byte {
	return wire.NewEncoder().
		Str(r.TicketService).
		Str(r.TicketSrcRealm).
		Str(r.TicketRealm).
		Bytes(r.TicketBlob).
		Bytes(r.Authenticator).
		Bytes(r.PublicKey.Encode()).
		Finish()
}

// DecodeConversionRequest parses the wire form.
func DecodeConversionRequest(b []byte) (ConversionRequest, error) {
	d := wire.NewDecoder(b)
	r := ConversionRequest{
		TicketService:  d.Str(),
		TicketSrcRealm: d.Str(),
		TicketRealm:    d.Str(),
		TicketBlob:     d.Bytes(),
		Authenticator:  d.Bytes(),
	}
	pkBytes := d.Bytes()
	if err := d.Done(); err != nil {
		return ConversionRequest{}, err
	}
	pk, err := gridcrypto.DecodePublicKey(pkBytes)
	if err != nil {
		return ConversionRequest{}, err
	}
	r.PublicKey = pk
	return r, nil
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	KerberosToGSI: body = ConversionRequest → encoded certificate.
func (s *CredentialConversion) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "KerberosToGSI":
		req, err := DecodeConversionRequest(call.Body)
		if err != nil {
			return nil, fmt.Errorf("secsvc: conversion request: %w", err)
		}
		ticket := kerberos.Ticket{
			Service:  kerberos.Principal{Name: req.TicketService, Realm: req.TicketRealm},
			SrcRealm: req.TicketSrcRealm,
			Blob:     req.TicketBlob,
		}
		cert, err := s.KCA.IssueForKey(ticket, kerberos.Authenticator{Blob: req.Authenticator}, req.PublicKey)
		if err != nil {
			return nil, err
		}
		return cert.Encode(), nil
	default:
		return nil, fmt.Errorf("secsvc: credential-conversion has no op %q", call.Op)
	}
}

// timeNow is indirected for audit tests.
var timeNow = time.Now
