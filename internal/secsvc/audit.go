package secsvc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ogsa"
	"repro/internal/wire"
)

// AuditEvent is one securely logged event.
type AuditEvent struct {
	Seq     uint64
	Time    time.Time
	Event   string
	Subject string
	Detail  string
	// Trace is the distributed trace id active when the event was
	// recorded (empty when tracing is off). It is part of the hash
	// chain: an auditor correlating a decision with its trace can trust
	// the linkage as much as the decision itself.
	Trace string
	// Hash chains the event to its predecessor: SHA-256 over the previous
	// hash and this event's fields. Truncating or rewriting the log
	// breaks the chain.
	Hash [32]byte
}

// AuditLog is the audit service of §4.1: "a service that securely logs
// relevant information about events." Integrity comes from a hash chain;
// the container feeds it via the ogsa.AuditSink interface.
type AuditLog struct {
	*ogsa.Base

	mu         sync.RWMutex
	events     []AuditEvent
	last       [32]byte
	journal    func(AuditEvent) error
	journalErr error
	dropped    uint64
}

// NewAuditLog creates an empty log.
func NewAuditLog() *AuditLog {
	return &AuditLog{Base: ogsa.NewBase()}
}

var _ ogsa.AuditSink = (*AuditLog)(nil)

// SetJournal installs a persistence hook called with every event BEFORE
// it enters the in-memory chain, under the log's lock, so journal order
// equals chain order. Record cannot return an error (the AuditSink
// contract), so a journal failure drops the event from the chain too —
// keeping it would hash every later event through a record the journal
// never saw, and the seq/hash gap would refuse the next restore,
// bricking the durable state over one transient disk error. The drop is
// surfaced through JournalError / DroppedJournal instead of being
// swallowed; chain and journal always describe the same events.
func (l *AuditLog) SetJournal(fn func(AuditEvent) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = fn
}

// JournalError reports the most recent journal failure, nil if every
// event reached the journal.
func (l *AuditLog) JournalError() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.journalErr
}

// DroppedJournal counts events dropped entirely — from journal and
// chain alike — because their journal write failed.
func (l *AuditLog) DroppedJournal() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.dropped
}

// Record implements ogsa.AuditSink.
func (l *AuditLog) Record(event, subject, detail string) {
	l.RecordTrace(event, subject, detail, "")
}

// RecordTrace is Record carrying the active trace id, hash-chained with
// the rest of the event.
func (l *AuditLog) RecordTrace(event, subject, detail, trace string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := AuditEvent{
		Seq:     uint64(len(l.events)),
		Time:    timeNow().UTC(),
		Event:   event,
		Subject: subject,
		Detail:  detail,
		Trace:   trace,
	}
	e.Hash = hashEvent(l.last, e)
	// Journal-then-apply, like every other durable store: the event
	// enters the chain only once it is on stable storage, so the
	// on-disk log is always restorable. A dropped event's seq is reused
	// by the next one — the journaled chain stays gapless.
	if l.journal != nil {
		if err := l.journal(e); err != nil {
			l.journalErr = err
			l.dropped++
			return
		}
	}
	l.events = append(l.events, e)
	l.last = e.Hash
}

func hashEvent(prev [32]byte, e AuditEvent) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	fmt.Fprintf(h, "%d|%d|%s|%s|%s|%s", e.Seq, e.Time.UnixNano(), e.Event, e.Subject, e.Detail, e.Trace)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Len reports the number of events.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Events returns a copy of the log.
func (l *AuditLog) Events() []AuditEvent {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]AuditEvent(nil), l.events...)
}

// VerifyChain recomputes the hash chain, returning the index of the first
// corrupted event, or -1 if the log is intact.
func (l *AuditLog) VerifyChain() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [32]byte
	for i, e := range l.events {
		if hashEvent(prev, e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// Restore replaces the log's contents with replayed events, verifying
// the full hash chain first. Fail closed: a replayed log whose chain
// does not verify — tampered payloads, reordered or missing records —
// leaves the current log untouched and reports the first bad index.
func (l *AuditLog) Restore(events []AuditEvent) error {
	var prev [32]byte
	for i, e := range events {
		if e.Seq != uint64(i) {
			return fmt.Errorf("secsvc: replayed audit event %d carries seq %d", i, e.Seq)
		}
		if hashEvent(prev, e) != e.Hash {
			return fmt.Errorf("secsvc: replayed audit chain corrupt at %d", i)
		}
		prev = e.Hash
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append([]AuditEvent(nil), events...)
	l.last = prev
	return nil
}

const auditEventCodecVersion = 1

// EncodeAuditEvent serialises one event for a WAL payload.
func EncodeAuditEvent(e AuditEvent) []byte {
	enc := wire.NewEncoder()
	enc.U8(auditEventCodecVersion)
	enc.U64(e.Seq)
	enc.I64(e.Time.UnixNano())
	enc.Str(e.Event)
	enc.Str(e.Subject)
	enc.Str(e.Detail)
	enc.Str(e.Trace)
	enc.Bytes(e.Hash[:])
	return enc.Finish()
}

// DecodeAuditEvent parses a journaled event. The hash is carried, not
// recomputed — Restore verifies the whole chain.
func DecodeAuditEvent(b []byte) (AuditEvent, error) {
	d := wire.NewDecoder(b)
	var e AuditEvent
	if v := d.U8(); d.Err() == nil && v != auditEventCodecVersion {
		return e, fmt.Errorf("secsvc: unknown audit event codec version %d", v)
	}
	e.Seq = d.U64()
	e.Time = time.Unix(0, d.I64()).UTC()
	e.Event = d.Str()
	e.Subject = d.Str()
	e.Detail = d.Str()
	e.Trace = d.Str()
	hash := d.Bytes()
	if err := d.Done(); err != nil {
		return AuditEvent{}, err
	}
	if len(hash) != len(e.Hash) {
		return AuditEvent{}, fmt.Errorf("secsvc: audit event hash is %d bytes, want %d", len(hash), len(e.Hash))
	}
	copy(e.Hash[:], hash)
	return e, nil
}

// Tamper is a test hook that corrupts an event in place.
func (l *AuditLog) Tamper(i int, detail string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.events) {
		return errors.New("secsvc: tamper index out of range")
	}
	l.events[i].Detail = detail
	return nil
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	Count:  → decimal number of events
//	Verify: → "intact" or "corrupt at <i>"
//	Query:  body = event-name filter → newline-separated matching entries
func (l *AuditLog) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := l.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "Count":
		return []byte(fmt.Sprintf("%d", l.Len())), nil
	case "Verify":
		if i := l.VerifyChain(); i >= 0 {
			return []byte(fmt.Sprintf("corrupt at %d", i)), nil
		}
		return []byte("intact"), nil
	case "Query":
		filter := string(call.Body)
		var buf bytes.Buffer
		for _, e := range l.Events() {
			if filter == "" || e.Event == filter {
				fmt.Fprintf(&buf, "%d %s %s %s %s\n", e.Seq, e.Time.Format(time.RFC3339), e.Event, e.Subject, e.Detail)
			}
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("secsvc: audit has no op %q", call.Op)
	}
}
