package secsvc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ogsa"
)

// AuditEvent is one securely logged event.
type AuditEvent struct {
	Seq     uint64
	Time    time.Time
	Event   string
	Subject string
	Detail  string
	// Hash chains the event to its predecessor: SHA-256 over the previous
	// hash and this event's fields. Truncating or rewriting the log
	// breaks the chain.
	Hash [32]byte
}

// AuditLog is the audit service of §4.1: "a service that securely logs
// relevant information about events." Integrity comes from a hash chain;
// the container feeds it via the ogsa.AuditSink interface.
type AuditLog struct {
	*ogsa.Base

	mu     sync.RWMutex
	events []AuditEvent
	last   [32]byte
}

// NewAuditLog creates an empty log.
func NewAuditLog() *AuditLog {
	return &AuditLog{Base: ogsa.NewBase()}
}

var _ ogsa.AuditSink = (*AuditLog)(nil)

// Record implements ogsa.AuditSink.
func (l *AuditLog) Record(event, subject, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := AuditEvent{
		Seq:     uint64(len(l.events)),
		Time:    timeNow().UTC(),
		Event:   event,
		Subject: subject,
		Detail:  detail,
	}
	e.Hash = hashEvent(l.last, e)
	l.events = append(l.events, e)
	l.last = e.Hash
}

func hashEvent(prev [32]byte, e AuditEvent) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	fmt.Fprintf(h, "%d|%d|%s|%s|%s", e.Seq, e.Time.UnixNano(), e.Event, e.Subject, e.Detail)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Len reports the number of events.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Events returns a copy of the log.
func (l *AuditLog) Events() []AuditEvent {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]AuditEvent(nil), l.events...)
}

// VerifyChain recomputes the hash chain, returning the index of the first
// corrupted event, or -1 if the log is intact.
func (l *AuditLog) VerifyChain() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [32]byte
	for i, e := range l.events {
		if hashEvent(prev, e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// Tamper is a test hook that corrupts an event in place.
func (l *AuditLog) Tamper(i int, detail string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.events) {
		return errors.New("secsvc: tamper index out of range")
	}
	l.events[i].Detail = detail
	return nil
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	Count:  → decimal number of events
//	Verify: → "intact" or "corrupt at <i>"
//	Query:  body = event-name filter → newline-separated matching entries
func (l *AuditLog) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := l.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "Count":
		return []byte(fmt.Sprintf("%d", l.Len())), nil
	case "Verify":
		if i := l.VerifyChain(); i >= 0 {
			return []byte(fmt.Sprintf("corrupt at %d", i)), nil
		}
		return []byte("intact"), nil
	case "Query":
		filter := string(call.Body)
		var buf bytes.Buffer
		for _, e := range l.Events() {
			if filter == "" || e.Event == filter {
				fmt.Fprintf(&buf, "%d %s %s %s %s\n", e.Seq, e.Time.Format(time.RFC3339), e.Event, e.Subject, e.Detail)
			}
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("secsvc: audit has no op %q", call.Op)
	}
}
