package secsvc

import (
	"errors"
	"testing"
)

func TestAuditJournalAndRestore(t *testing.T) {
	var journaled []AuditEvent
	l := NewAuditLog()
	l.SetJournal(func(e AuditEvent) error {
		journaled = append(journaled, e)
		return nil
	})
	l.Record("context-established", "/O=Grid/CN=Alice", "ok")
	l.RecordTrace("authz", "/O=Grid/CN=Alice", "permit jobs:submit", "0123456789abcdef0123456789abcdef")
	l.Record("context-closed", "/O=Grid/CN=Alice", "")

	if len(journaled) != 3 {
		t.Fatalf("journaled %d events, want 3", len(journaled))
	}
	if journaled[1].Trace == "" {
		t.Fatal("trace id did not reach the journal")
	}

	// Round-trip every event through the wire codec, then restore into a
	// fresh log: chain must verify and the trace must survive.
	replayed := make([]AuditEvent, 0, len(journaled))
	for _, e := range journaled {
		got, err := DecodeAuditEvent(EncodeAuditEvent(e))
		if err != nil {
			t.Fatalf("DecodeAuditEvent: %v", err)
		}
		replayed = append(replayed, got)
	}
	l2 := NewAuditLog()
	if err := l2.Restore(replayed); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if l2.VerifyChain() != -1 {
		t.Fatal("restored chain does not verify")
	}
	if ev := l2.Events(); ev[1].Trace != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("restored trace = %q", ev[1].Trace)
	}
	// The restored log continues the chain seamlessly.
	l2.Record("post-restart", "/O=Grid/CN=Bob", "")
	if l2.VerifyChain() != -1 {
		t.Fatal("chain broken after post-restore append")
	}
	if l2.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l2.Len())
	}
}

func TestAuditRestoreFailsClosed(t *testing.T) {
	l := NewAuditLog()
	l.Record("a", "s", "d")
	l.Record("b", "s", "d")
	good := l.Events()

	l2 := NewAuditLog()
	l2.Record("keep", "s", "d")

	tampered := append([]AuditEvent(nil), good...)
	tampered[0].Detail = "rewritten"
	if err := l2.Restore(tampered); err == nil {
		t.Fatal("tampered chain accepted")
	}
	reordered := []AuditEvent{good[1], good[0]}
	if err := l2.Restore(reordered); err == nil {
		t.Fatal("reordered chain accepted")
	}
	truncatedFront := good[1:]
	if err := l2.Restore(truncatedFront); err == nil {
		t.Fatal("chain missing its first record accepted")
	}
	if l2.Len() != 1 || l2.VerifyChain() != -1 {
		t.Fatal("failed restore mutated the live log")
	}
}

func TestAuditTraceIsHashed(t *testing.T) {
	l := NewAuditLog()
	l.RecordTrace("authz", "s", "d", "aaaa")
	ev := l.Events()
	ev[0].Trace = "bbbb"
	l2 := NewAuditLog()
	if err := l2.Restore(ev); err == nil {
		t.Fatal("trace rewrite not caught by the chain")
	}
}

func TestAuditJournalErrorSurfaced(t *testing.T) {
	boom := errors.New("disk full")
	var journaled []AuditEvent
	failing := true
	l := NewAuditLog()
	l.SetJournal(func(e AuditEvent) error {
		if failing {
			return boom
		}
		journaled = append(journaled, e)
		return nil
	})
	l.Record("a", "s", "d")
	l.Record("b", "s", "d")
	// A journal failure drops the event from the in-memory chain too —
	// chain and journal must describe the same events, or the next
	// restore fails on the gap — and the drop is not silent.
	if l.Len() != 0 || l.VerifyChain() != -1 {
		t.Fatalf("Len = %d after journal failures, want 0 (chain must equal journal)", l.Len())
	}
	if !errors.Is(l.JournalError(), boom) {
		t.Fatalf("JournalError = %v, want %v", l.JournalError(), boom)
	}
	if l.DroppedJournal() != 2 {
		t.Fatalf("DroppedJournal = %d, want 2", l.DroppedJournal())
	}

	// Once the journal heals, the chain resumes seamlessly: the next
	// event reuses the dropped seq, and a fresh log restored from the
	// journaled events verifies end to end.
	failing = false
	l.Record("after-heal", "s", "d")
	if l.Len() != 1 || l.VerifyChain() != -1 {
		t.Fatalf("Len = %d after heal, want 1 with intact chain", l.Len())
	}
	if len(journaled) != 1 || journaled[0].Seq != 0 {
		t.Fatalf("journaled %d events, want the healed event at seq 0", len(journaled))
	}
	l2 := NewAuditLog()
	if err := l2.Restore(journaled); err != nil {
		t.Fatalf("restore of journaled events after a dropped write: %v", err)
	}
}

func TestDecodeAuditEventRejectsGarbage(t *testing.T) {
	if _, err := DecodeAuditEvent(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	l := NewAuditLog()
	l.Record("a", "s", "d")
	b := EncodeAuditEvent(l.Events()[0])
	if _, err := DecodeAuditEvent(b[:len(b)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := DecodeAuditEvent(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
