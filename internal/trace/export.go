// The push exporter: for scrapeless deployments (batch workers behind
// NAT, short-lived submit hosts) that cannot expose a /metrics
// listener, spans and the metrics exposition are periodically POSTed
// to a collector URL. The queue is bounded (oldest spans drop first —
// a slow collector must not grow the process), delivery retries with
// exponential backoff, and a final flush runs at Close.
package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ExporterConfig parameterizes a push exporter.
type ExporterConfig struct {
	// URL receives POSTed batches (JSON body, see Batch).
	URL string
	// Interval between pushes. 0 selects 10s.
	Interval time.Duration
	// MaxQueue bounds buffered spans between pushes; oldest drop
	// first. 0 selects 8192.
	MaxQueue int
	// MaxRetries bounds redelivery attempts per batch (exponential
	// backoff starting at Interval/8). 0 selects 3.
	MaxRetries int
	// Client is the HTTP client. Nil selects one with a 10s timeout.
	Client *http.Client
	// Metrics, when set, is invoked per push to render the Prometheus
	// exposition included in the batch.
	Metrics func() string
}

// Batch is the POSTed JSON shape.
type Batch struct {
	// Spans holds the sampled spans finished since the last push.
	Spans []SpanRecord `json:"spans"`
	// Metrics is the Prometheus text exposition, when configured.
	Metrics string `json:"metrics,omitempty"`
	// Dropped counts spans lost to queue overflow since the last
	// successful push.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Exporter pushes span batches to a collector.
type Exporter struct {
	cfg    ExporterConfig
	client *http.Client

	mu      sync.Mutex
	queue   []SpanRecord
	dropped uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	pushed  uint64 // batches delivered (test surface)
	pushMu  sync.Mutex
	lastErr error
}

// NewExporter creates and starts an exporter. Close releases it.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("trace: exporter needs a URL")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8192
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	e := &Exporter{
		cfg:    cfg,
		client: client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go e.run()
	return e, nil
}

// Enqueue buffers one span for the next push. Bounded: beyond
// MaxQueue the oldest span drops and the drop is counted.
func (e *Exporter) Enqueue(rec SpanRecord) {
	e.mu.Lock()
	if len(e.queue) >= e.cfg.MaxQueue {
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.dropped++
	}
	e.queue = append(e.queue, rec)
	e.mu.Unlock()
}

// Close stops the loop after one final flush.
func (e *Exporter) Close() error {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
	return nil
}

// Stats reports delivered batch count and the last delivery error.
func (e *Exporter) Stats() (pushed uint64, lastErr error) {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()
	return e.pushed, e.lastErr
}

func (e *Exporter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.push()
		case <-e.stop:
			e.push() // final flush
			return
		}
	}
}

// push drains the queue and delivers one batch, retrying with backoff.
// An undeliverable batch is requeued (subject to the bound) so a
// collector outage shorter than the queue horizon loses nothing.
func (e *Exporter) push() {
	e.mu.Lock()
	spans := e.queue
	dropped := e.dropped
	e.queue = nil
	e.dropped = 0
	e.mu.Unlock()
	if len(spans) == 0 && dropped == 0 && e.cfg.Metrics == nil {
		return
	}
	batch := Batch{Spans: spans, Dropped: dropped}
	if e.cfg.Metrics != nil {
		batch.Metrics = e.cfg.Metrics()
	}
	body, err := json.Marshal(batch)
	if err != nil {
		e.record(err)
		return
	}
	backoff := e.cfg.Interval / 8
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err = e.deliver(body)
		if err == nil {
			e.record(nil)
			return
		}
		if attempt+1 >= e.cfg.MaxRetries {
			break
		}
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-e.stop:
			// Shutting down: one last immediate attempt happens via the
			// final flush; don't spin here.
			e.requeue(spans)
			e.record(err)
			return
		}
	}
	e.requeue(spans)
	e.record(err)
}

// requeue returns undelivered spans to the front of the queue.
func (e *Exporter) requeue(spans []SpanRecord) {
	if len(spans) == 0 {
		return
	}
	e.mu.Lock()
	merged := append(spans, e.queue...)
	if over := len(merged) - e.cfg.MaxQueue; over > 0 {
		merged = merged[over:]
		e.dropped += uint64(over)
	}
	e.queue = merged
	e.mu.Unlock()
}

func (e *Exporter) record(err error) {
	e.pushMu.Lock()
	if err == nil {
		e.pushed++
	}
	e.lastErr = err
	e.pushMu.Unlock()
}

func (e *Exporter) deliver(body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("trace: collector returned %s", resp.Status)
	}
	return nil
}
