// The push exporter: for scrapeless deployments (batch workers behind
// NAT, short-lived submit hosts) that cannot expose a /metrics
// listener, spans and the metrics exposition are periodically POSTed
// to a collector URL. The queue is bounded (oldest spans drop first —
// a slow collector must not grow the process), delivery retries with
// exponential backoff, and a final flush runs at Close.
package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ExporterConfig parameterizes a push exporter.
type ExporterConfig struct {
	// URL receives POSTed batches (JSON body, see Batch).
	URL string
	// Interval between pushes. 0 selects 10s.
	Interval time.Duration
	// MaxQueue bounds buffered spans between pushes; oldest drop
	// first. 0 selects 8192.
	MaxQueue int
	// MaxRetries bounds redelivery attempts per batch (exponential
	// backoff starting at Interval/8). 0 selects 3.
	MaxRetries int
	// MaxBacklog bounds how many undeliverable marshaled batches are
	// retained across pushes during a collector outage; beyond it the
	// oldest batch rotates out and its spans count as dropped. 0
	// selects 16.
	MaxBacklog int
	// Client is the HTTP client. Nil selects one with a 10s timeout.
	Client *http.Client
	// Metrics, when set, is invoked per push to render the Prometheus
	// exposition included in the batch.
	Metrics func() string
}

// Batch is the POSTed JSON shape.
type Batch struct {
	// Spans holds the sampled spans finished since the last push.
	Spans []SpanRecord `json:"spans"`
	// Metrics is the Prometheus text exposition, when configured.
	Metrics string `json:"metrics,omitempty"`
	// Dropped counts spans lost since the previous batch was built — to
	// queue overflow between pushes or to backlog rotation during a
	// collector outage.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Exporter pushes span batches to a collector.
type Exporter struct {
	cfg    ExporterConfig
	client *http.Client

	mu      sync.Mutex
	queue   []SpanRecord
	dropped uint64 // drops to report in the next batch body
	// backlog retains batches that exhausted their retries, already
	// marshaled, for redelivery oldest-first on later pushes. Bounded by
	// MaxBacklog; rotation counts the evicted batch's spans as dropped.
	backlog      []backlogBatch
	droppedTotal uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	pushed  uint64 // batches delivered (test surface)
	pushMu  sync.Mutex
	lastErr error
}

// NewExporter creates and starts an exporter. Close releases it.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("trace: exporter needs a URL")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8192
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 16
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	e := &Exporter{
		cfg:    cfg,
		client: client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go e.run()
	return e, nil
}

// Enqueue buffers one span for the next push. Bounded: beyond
// MaxQueue the oldest span drops and the drop is counted.
func (e *Exporter) Enqueue(rec SpanRecord) {
	e.mu.Lock()
	if len(e.queue) >= e.cfg.MaxQueue {
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.dropped++
		e.droppedTotal++
	}
	e.queue = append(e.queue, rec)
	e.mu.Unlock()
}

// Dropped reports the total spans lost since the exporter started —
// to queue overflow between pushes and to backlog rotation during
// collector outages. Feeds the trace_export_dropped_total metric.
func (e *Exporter) Dropped() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.droppedTotal
}

// Close stops the loop after one final flush.
func (e *Exporter) Close() error {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
	return nil
}

// Stats reports delivered batch count and the last delivery error.
func (e *Exporter) Stats() (pushed uint64, lastErr error) {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()
	return e.pushed, e.lastErr
}

func (e *Exporter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.push()
		case <-e.stop:
			e.push() // final flush
			return
		}
	}
}

// backlogBatch is one marshaled batch awaiting redelivery; the span
// count is kept so rotating it out can account for its spans.
type backlogBatch struct {
	body  []byte
	spans int
}

// push delivers the retained backlog oldest-first, then drains the
// span queue into one fresh marshaled batch and delivers that too — so
// a collector outage shorter than the backlog horizon loses nothing
// and batches arrive in order. Batches are marshaled exactly once:
// redelivery resends the original bytes. When the backlog's head still
// fails, the fresh batch joins the backlog without another delivery
// attempt (the collector is down; retrying twice per tick doubles
// nothing but latency).
func (e *Exporter) push() {
	collectorUp := e.drainBacklog()
	e.mu.Lock()
	spans := e.queue
	dropped := e.dropped
	e.queue = nil
	e.dropped = 0
	e.mu.Unlock()
	if len(spans) == 0 && dropped == 0 && e.cfg.Metrics == nil {
		return
	}
	batch := Batch{Spans: spans, Dropped: dropped}
	if e.cfg.Metrics != nil {
		batch.Metrics = e.cfg.Metrics()
	}
	body, err := json.Marshal(batch)
	if err != nil {
		e.record(err)
		return
	}
	e.appendBacklog(backlogBatch{body: body, spans: len(spans)})
	if collectorUp {
		e.drainBacklog()
	}
}

// appendBacklog admits one batch, rotating the oldest out when the
// retention bound is reached. Rotated spans are counted dropped — in
// the total and in the next batch body, so the collector learns of the
// loss when delivery resumes.
func (e *Exporter) appendBacklog(b backlogBatch) {
	e.mu.Lock()
	e.backlog = append(e.backlog, b)
	for len(e.backlog) > e.cfg.MaxBacklog {
		evicted := e.backlog[0]
		e.backlog = e.backlog[1:]
		e.dropped += uint64(evicted.spans)
		e.droppedTotal += uint64(evicted.spans)
	}
	e.mu.Unlock()
}

// drainBacklog delivers retained batches oldest-first, stopping at the
// first batch that exhausts its retries (the collector is still down;
// later batches keep their order for the next push). Reports whether
// the backlog emptied.
func (e *Exporter) drainBacklog() bool {
	for {
		e.mu.Lock()
		if len(e.backlog) == 0 {
			e.mu.Unlock()
			return true
		}
		head := e.backlog[0]
		e.mu.Unlock()
		if err := e.deliverWithRetry(head.body); err != nil {
			e.record(err)
			return false
		}
		e.mu.Lock()
		// Only this loop pops, and only the run goroutine calls it, so
		// the head is still the batch just delivered.
		e.backlog = e.backlog[1:]
		e.mu.Unlock()
		e.record(nil)
	}
}

// deliverWithRetry attempts one batch with exponential backoff, giving
// up early on shutdown (the final flush makes one more pass).
func (e *Exporter) deliverWithRetry(body []byte) error {
	backoff := e.cfg.Interval / 8
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = e.deliver(body)
		if err == nil {
			return nil
		}
		if attempt+1 >= e.cfg.MaxRetries {
			return err
		}
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-e.stop:
			return err
		}
	}
}

func (e *Exporter) record(err error) {
	e.pushMu.Lock()
	if err == nil {
		e.pushed++
	}
	e.lastErr = err
	e.pushMu.Unlock()
}

func (e *Exporter) deliver(body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("trace: collector returned %s", resp.Status)
	}
	return nil
}
