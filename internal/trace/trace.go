// Package trace is the repo's dependency-free distributed-tracing
// layer: 16-byte trace ids and 8-byte span ids that propagate across
// the wire on both transports (a trailing binary field on GT2 exchange
// requests, a SOAP header on GT3 calls), pooled spans whose start/end
// lifecycle allocates nothing, per-op latency histograms registered
// into the telemetry registry, and a bounded in-process flight
// recorder holding the most recent sampled spans for admin queries
// ("why was that exchange slow?") without any external collector.
//
// Buffer-ownership rules: a SpanRecord is a value — ids are arrays,
// every other field is a string or integer copied in at End. Nothing
// in the recorder aliases pooled transport buffers, so records stay
// valid indefinitely. The Span object itself is pooled: callers must
// not touch a Span after End returns it to the pool.
package trace

import (
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// TraceID identifies one causally-linked trace across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports an unset trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// FlagSampled marks a trace whose spans are recorded (not just timed).
const FlagSampled = 0x01

// EncodedLen is the wire size of a SpanContext: trace id, span id,
// flags.
const EncodedLen = 16 + 8 + 1

// SpanContext is the propagated identity of a span: what crosses the
// wire so the server's spans join the client's trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() }

// Sampled reports whether spans under this context should be recorded.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// Encode appends the 25-byte wire form to dst.
func (sc SpanContext) Encode(dst []byte) []byte {
	dst = append(dst, sc.TraceID[:]...)
	dst = append(dst, sc.SpanID[:]...)
	return append(dst, sc.Flags)
}

// DecodeSpanContext parses the 25-byte wire form. Reports false on a
// wrong length or a zero trace id — callers treat both as "no trace
// context present".
func DecodeSpanContext(b []byte) (SpanContext, bool) {
	if len(b) != EncodedLen {
		return SpanContext{}, false
	}
	var sc SpanContext
	copy(sc.TraceID[:], b[:16])
	copy(sc.SpanID[:], b[16:24])
	sc.Flags = b[24]
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Sampler decides, per root span, whether a new trace is recorded.
// Sampling gates recording only — per-op latency histograms are
// observed for every span regardless.
type Sampler func(op string) bool

// AlwaysSample records every trace.
func AlwaysSample() Sampler { return func(string) bool { return true } }

// NeverSample records no traces (histograms still observe).
func NeverSample() Sampler { return func(string) bool { return false } }

// RatioSampler records approximately ratio of traces (0..1).
func RatioSampler(ratio float64) Sampler {
	switch {
	case ratio <= 0:
		return NeverSample()
	case ratio >= 1:
		return AlwaysSample()
	}
	return func(string) bool { return rand.Float64() < ratio }
}

// SpanRecord is one finished span as the flight recorder holds it: a
// self-contained value with no aliases into transport buffers.
type SpanRecord struct {
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID
	Op       string
	Peer     string
	Start    time.Time
	Duration time.Duration
	Err      string
	Bytes    int64
	Remote   bool // span continues a context received over the wire
}

// Config parameterizes a Tracer.
type Config struct {
	// Registry receives the per-op latency histograms
	// (gsi_op_seconds{op="..."}). Nil disables histogram registration.
	Registry *telemetry.Registry
	// Capacity bounds the flight recorder (spans). 0 selects
	// DefaultCapacity.
	Capacity int
	// Sampler gates recording. Nil selects AlwaysSample.
	Sampler Sampler
}

// DefaultCapacity is the flight-recorder ring size when Config leaves
// it zero: enough to hold the recent past of a busy endpoint without
// unbounded growth.
const DefaultCapacity = 4096

// maxOpHistograms bounds lazily-created per-op histograms so a hostile
// peer minting op names cannot grow the registry without bound.
const maxOpHistograms = 256

// Tracer mints spans, observes per-op latency, and feeds the flight
// recorder. One Tracer is shared by a Client or Server and all its
// sessions; all methods are safe for concurrent use. A nil *Tracer is
// valid and inert — every method no-ops — so call sites never branch
// on "is tracing on".
type Tracer struct {
	sampler Sampler
	rec     *FlightRecorder
	reg     *telemetry.Registry
	pool    sync.Pool

	histMu sync.RWMutex
	hists  map[string]*telemetry.Histogram

	exportMu sync.RWMutex
	export   func(SpanRecord)
	exporter *Exporter

	transfers TransferRegistry
}

// Transfers returns the tracer's active-transfer registry (the admin
// plane's "what is moving right now" view). Nil-safe: a nil tracer
// returns nil, and all registry methods no-op on a nil receiver.
func (t *Tracer) Transfers() *TransferRegistry {
	if t == nil {
		return nil
	}
	return &t.transfers
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = AlwaysSample()
	}
	t := &Tracer{
		sampler: sampler,
		rec:     NewFlightRecorder(capacity),
		reg:     cfg.Registry,
		hists:   make(map[string]*telemetry.Histogram),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Recorder returns the tracer's flight recorder.
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// SetExport installs a hook called with every recorded span (after the
// flight recorder). Used to feed a push exporter. Nil clears it.
func (t *Tracer) SetExport(fn func(SpanRecord)) {
	if t == nil {
		return
	}
	t.exportMu.Lock()
	t.export = fn
	t.exportMu.Unlock()
}

// newIDs mints a fresh trace id. math/rand/v2's global generator is
// seeded per-process and safe for concurrent use; tracing ids need
// collision resistance, not unpredictability.
func newTraceID() TraceID {
	var id TraceID
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (56 - 8*i))
		id[8+i] = byte(lo >> (56 - 8*i))
	}
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	v := rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (56 - 8*i))
	}
	if id == (SpanID{}) {
		id[0] = 1
	}
	return id
}

// Span is one in-flight timed operation. Spans come from a pool; after
// End the object is reused — callers must drop every reference. All
// mutators are safe on a nil span (inert tracer), so disabled tracing
// costs a nil check and nothing else.
type Span struct {
	tr     *Tracer
	sc     SpanContext
	parent SpanID
	op     string
	peer   string
	start  time.Time
	bytes  int64
	errStr string
	remote bool
}

// start initializes a pooled span.
func (t *Tracer) startSpan(sc SpanContext, parent SpanID, op string, remote bool) *Span {
	s := t.pool.Get().(*Span)
	s.tr = t
	s.sc = sc
	s.parent = parent
	s.op = op
	s.peer = ""
	s.start = time.Now()
	s.bytes = 0
	s.errStr = ""
	s.remote = remote
	return s
}

// StartRoot begins a new trace with op as its root span. The sampler
// decides whether the trace's spans are recorded.
func (t *Tracer) StartRoot(op string) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	if t.sampler(op) {
		sc.Flags |= FlagSampled
	}
	return t.startSpan(sc, SpanID{}, op, false)
}

// StartRemote begins a span continuing a context received over the
// wire: same trace id, the remote span as parent, the remote sampling
// decision. An invalid parent falls back to StartRoot so server-side
// spans exist even for untraced clients.
func (t *Tracer) StartRemote(parent SpanContext, op string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(op)
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: newSpanID(), Flags: parent.Flags}
	return t.startSpan(sc, parent.SpanID, op, true)
}

// StartChild begins a child span under s. Nil-safe: a nil receiver
// returns nil.
func (s *Span) StartChild(op string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	sc := SpanContext{TraceID: s.sc.TraceID, SpanID: newSpanID(), Flags: s.sc.Flags}
	return s.tr.startSpan(sc, s.sc.SpanID, op, false)
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetPeer records the authenticated peer DN.
func (s *Span) SetPeer(dn string) {
	if s != nil {
		s.peer = dn
	}
}

// SetError records a failure. Error() is only rendered when the span
// is sampled or an op histogram exists — callers may pass err
// unconditionally.
func (s *Span) SetError(err error) {
	if s != nil && err != nil {
		s.errStr = err.Error()
	}
}

// AddBytes accumulates payload bytes moved under the span (transfer
// and stripe-lane spans).
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes += n
	}
}

// AddTimed records a completed child span under s with caller-measured
// timing — the retroactive form used for work that finished before the
// trace reached it (a pooled connection's handshake, a resumed
// conversation's resume round). Histogram and recorder behave exactly
// as for a normal child's End.
func (s *Span) AddTimed(op string, start time.Time, d time.Duration, peer string) {
	if s == nil || s.tr == nil {
		return
	}
	t := s.tr
	t.observe(op, d)
	if !s.sc.Sampled() {
		return
	}
	rec := SpanRecord{
		TraceID:  s.sc.TraceID,
		SpanID:   newSpanID(),
		Parent:   s.sc.SpanID,
		Op:       op,
		Peer:     peer,
		Start:    start,
		Duration: d,
	}
	t.rec.add(rec)
	t.exportMu.RLock()
	export := t.export
	t.exportMu.RUnlock()
	if export != nil {
		export(rec)
	}
}

// End finishes the span: observes the per-op latency histogram,
// records into the flight recorder when sampled, and returns the span
// to the pool. The receiver must not be used afterwards.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	t := s.tr
	d := time.Since(s.start)
	t.observe(s.op, d)
	if s.sc.Sampled() {
		rec := SpanRecord{
			TraceID:  s.sc.TraceID,
			SpanID:   s.sc.SpanID,
			Parent:   s.parent,
			Op:       s.op,
			Peer:     s.peer,
			Start:    s.start,
			Duration: d,
			Err:      s.errStr,
			Bytes:    s.bytes,
			Remote:   s.remote,
		}
		t.rec.add(rec)
		t.exportMu.RLock()
		export := t.export
		t.exportMu.RUnlock()
		if export != nil {
			export(rec)
		}
	}
	*s = Span{}
	t.pool.Put(s)
}

// observe records d into the op's latency histogram, creating and
// registering it on first use. The fast path is a read-locked map hit.
func (t *Tracer) observe(op string, d time.Duration) {
	t.histMu.RLock()
	h := t.hists[op]
	t.histMu.RUnlock()
	if h == nil {
		h = t.histogram(op)
		if h == nil {
			return
		}
	}
	h.ObserveDuration(d)
}

// histogram creates (or finds) the op's histogram under the write
// lock. Ops beyond the cap share nothing — their spans still record,
// only the histogram is skipped.
func (t *Tracer) histogram(op string) *telemetry.Histogram {
	t.histMu.Lock()
	defer t.histMu.Unlock()
	if h := t.hists[op]; h != nil {
		return h
	}
	if len(t.hists) >= maxOpHistograms {
		return nil
	}
	h := telemetry.NewHistogram(
		`gsi_op_seconds{op="`+telemetry.EscapeLabelValue(op)+`"}`,
		"Latency of traced operations by op kind.", nil)
	if t.reg != nil {
		// A second tracer on a shared registry (client+server in one
		// process) would collide per-op; first registration wins and
		// both observe their own instrument.
		if err := t.reg.Register(h); err != nil {
			if prev, ok := t.reg.Get(h.Name()); ok {
				if ph, ok := prev.(*telemetry.Histogram); ok {
					h = ph
				}
			}
		}
	}
	t.hists[op] = h
	return h
}

// Histogram exposes the op's latency histogram (nil when never
// observed). Test and admin surface.
func (t *Tracer) Histogram(op string) *telemetry.Histogram {
	if t == nil {
		return nil
	}
	t.histMu.RLock()
	defer t.histMu.RUnlock()
	return t.hists[op]
}
