// Context plumbing and wire anchors: how a span travels down a call
// stack (context.Context) and across process boundaries (a trailing
// binary field on GT2 frames, a SOAP header on GT3). Living here —
// not in the facade — lets the OGSA container and the transports
// consume trace contexts without import cycles.
package trace

import "context"

// SOAPHeader is the envelope header name carrying the encoded
// SpanContext on GT3 calls. The header is intentionally outside the
// signed set (Canonical covers only named headers), so tracing rides
// along without perturbing WS-Security signatures.
const SOAPHeader = "gsi:Trace"

type spanCtxKey struct{}
type remoteCtxKey struct{}

// ContextWithSpan returns ctx carrying sp. Callers only wrap when a
// span exists — the disabled-tracing path never allocates a context.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ContextWithRemote returns ctx carrying a SpanContext received over
// the wire — used where the receive site (the OGSA router) is
// separated from the span-starting site (the service handler) by
// layers that only pass a context.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// RemoteFromContext returns the wire-received SpanContext carried by
// ctx (zero when absent).
func RemoteFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc
}

// AttachExporter wires exp to receive every recorded span and ties
// its lifetime to the tracer: Close flushes and stops it.
func (t *Tracer) AttachExporter(exp *Exporter) {
	if t == nil || exp == nil {
		return
	}
	t.exportMu.Lock()
	t.exporter = exp
	t.export = exp.Enqueue
	t.exportMu.Unlock()
}

// Exporter returns the attached push exporter, if any.
func (t *Tracer) Exporter() *Exporter {
	if t == nil {
		return nil
	}
	t.exportMu.RLock()
	defer t.exportMu.RUnlock()
	return t.exporter
}

// Close flushes and stops the attached exporter (if any). The tracer
// itself needs no teardown — spans started after Close still record
// locally.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.exportMu.Lock()
	exp := t.exporter
	t.exporter = nil
	t.export = nil
	t.exportMu.Unlock()
	if exp != nil {
		return exp.Close()
	}
	return nil
}
