package trace

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestSpanContextRoundTrip(t *testing.T) {
	tr := New(Config{})
	s := tr.StartRoot("client.exchange")
	sc := s.Context()
	if !sc.Valid() || !sc.Sampled() {
		t.Fatalf("root context = %+v, want valid and sampled", sc)
	}
	enc := sc.Encode(nil)
	if len(enc) != EncodedLen {
		t.Fatalf("encoded length = %d, want %d", len(enc), EncodedLen)
	}
	got, ok := DecodeSpanContext(enc)
	if !ok || got != sc {
		t.Fatalf("decode = %+v ok=%v, want %+v", got, ok, sc)
	}
	s.End()

	if _, ok := DecodeSpanContext(enc[:10]); ok {
		t.Fatal("short encoding decoded")
	}
	if _, ok := DecodeSpanContext(make([]byte, EncodedLen)); ok {
		t.Fatal("zero trace id decoded as valid")
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("op")
	if s != nil {
		t.Fatal("nil tracer minted a span")
	}
	// All nil-span methods must be safe.
	s.SetPeer("x")
	s.SetError(errors.New("boom"))
	s.AddBytes(1)
	s.End()
	if c := s.StartChild("child"); c != nil {
		t.Fatal("nil span minted a child")
	}
	if sc := s.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Recorder().Len() != 0 {
		t.Fatal("nil recorder nonzero")
	}
	if got := tr.Recorder().Snapshot(Query{}); got != nil {
		t.Fatal("nil recorder snapshot nonempty")
	}
}

func TestRemoteAndChildSpansShareTrace(t *testing.T) {
	client := New(Config{})
	server := New(Config{})
	root := client.StartRoot("client.exchange")
	child := root.StartChild("client.handshake")
	remote := server.StartRemote(root.Context(), "server.exchange")
	authz := remote.StartChild("server.authz")

	rootID := root.Context().TraceID
	for name, sc := range map[string]SpanContext{
		"child": child.Context(), "remote": remote.Context(), "authz": authz.Context(),
	} {
		if sc.TraceID != rootID {
			t.Fatalf("%s trace id = %v, want %v", name, sc.TraceID, rootID)
		}
	}
	if remote.parent != root.Context().SpanID {
		t.Fatal("remote span not parented to the client root")
	}
	authz.End()
	remote.End()
	child.End()
	root.End()

	spans := server.Recorder().Snapshot(Query{TraceID: rootID.String()})
	if len(spans) != 2 {
		t.Fatalf("server recorded %d spans, want 2", len(spans))
	}
	if !spans[0].Start.After(time.Time{}) {
		t.Fatal("span start unset")
	}

	// An invalid parent falls back to a fresh root.
	fresh := server.StartRemote(SpanContext{}, "server.exchange")
	if fresh.Context().TraceID == rootID {
		t.Fatal("invalid parent joined an existing trace")
	}
	fresh.End()
}

func TestSamplerGatesRecordingNotHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{Registry: reg, Sampler: NeverSample()})
	s := tr.StartRoot("client.exchange")
	if s.Context().Sampled() {
		t.Fatal("NeverSample minted a sampled root")
	}
	s.End()
	if n := tr.Recorder().Len(); n != 0 {
		t.Fatalf("recorder holds %d spans under NeverSample, want 0", n)
	}
	h := tr.Histogram("client.exchange")
	if h == nil || h.Count() != 1 {
		t.Fatal("histogram not observed for unsampled span")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `gsi_op_seconds_count{op="client.exchange"}`) {
		t.Fatalf("exposition missing per-op series:\n%s", sb.String())
	}
}

func TestFlightRecorderQueries(t *testing.T) {
	tr := New(Config{Capacity: 8})
	mk := func(op, peer string, d time.Duration, fail bool) {
		s := tr.StartRoot(op)
		s.SetPeer(peer)
		s.start = s.start.Add(-d) // backdate so Duration ≈ d
		if fail {
			s.SetError(errors.New("denied"))
		}
		s.End()
	}
	mk("exchange", "/O=Grid/CN=Alice", 5*time.Millisecond, false)
	mk("exchange", "/O=Grid/CN=Bob", 50*time.Millisecond, true)
	mk("stream", "/O=Grid/CN=Alice", 500*time.Millisecond, false)

	all := tr.Recorder().Snapshot(Query{})
	if len(all) != 3 || all[0].Op != "stream" {
		t.Fatalf("slowest-first order wrong: %+v", all)
	}
	if got := tr.Recorder().Snapshot(Query{Op: "exchange"}); len(got) != 2 {
		t.Fatalf("op filter returned %d, want 2", len(got))
	}
	if got := tr.Recorder().Snapshot(Query{Peer: "Alice"}); len(got) != 2 {
		t.Fatalf("peer filter returned %d, want 2", len(got))
	}
	got := tr.Recorder().Snapshot(Query{ErrorsOnly: true})
	if len(got) != 1 || got[0].Peer != "/O=Grid/CN=Bob" {
		t.Fatalf("errors-only returned %+v", got)
	}
	if got := tr.Recorder().Snapshot(Query{N: 1}); len(got) != 1 || got[0].Op != "stream" {
		t.Fatalf("N=1 returned %+v", got)
	}

	// Ring bound: 20 spans into capacity 8 keeps the newest 8.
	for i := 0; i < 20; i++ {
		mk("flood", "", time.Millisecond, false)
	}
	if n := tr.Recorder().Len(); n != 8 {
		t.Fatalf("recorder holds %d, want capacity 8", n)
	}
}

func TestSpanRecordJSON(t *testing.T) {
	rec := SpanRecord{
		TraceID:  TraceID{1, 2},
		SpanID:   SpanID{3},
		Parent:   SpanID{4},
		Op:       "exchange",
		Peer:     `/O=Grid/CN=We"ird\DN`,
		Start:    time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Duration: 1500 * time.Microsecond,
		Err:      "denied",
		Bytes:    64,
		Remote:   true,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("record JSON does not parse: %v\n%s", err, data)
	}
	if got["trace"] != rec.TraceID.String() || got["dur_us"] != float64(1500) {
		t.Fatalf("JSON = %s", data)
	}
	if got["peer"] != rec.Peer {
		t.Fatalf("hostile DN did not round-trip: %q", got["peer"])
	}
}

func TestExporterPushAndRetry(t *testing.T) {
	var mu sync.Mutex
	var batches []Batch
	fail := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			fail = false
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		var b Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			t.Errorf("bad batch: %v", err)
		}
		batches = append(batches, b)
	}))
	defer srv.Close()

	exp, err := NewExporter(ExporterConfig{
		URL:      srv.URL,
		Interval: 20 * time.Millisecond,
		Metrics:  func() string { return "# TYPE x counter\nx 1\n" },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{})
	tr.SetExport(exp.Enqueue)
	s := tr.StartRoot("exchange")
	s.End()

	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(batches)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no batch delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var spans int
	for _, b := range batches {
		spans += len(b.Spans)
		if b.Metrics == "" {
			t.Fatal("batch missing metrics exposition")
		}
	}
	if spans != 1 {
		t.Fatalf("delivered %d spans, want exactly 1 (retry must not duplicate)", spans)
	}
	pushed, lastErr := exp.Stats()
	if pushed == 0 || lastErr != nil {
		t.Fatalf("stats = %d pushed, err %v", pushed, lastErr)
	}
}

func TestExporterQueueBound(t *testing.T) {
	exp, err := NewExporter(ExporterConfig{
		URL:      "http://127.0.0.1:0/never",
		Interval: time.Hour, // never pushes during the test
		MaxQueue: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		exp.Enqueue(SpanRecord{Op: "x"})
	}
	exp.mu.Lock()
	qlen, dropped := len(exp.queue), exp.dropped
	exp.mu.Unlock()
	if qlen != 4 || dropped != 6 {
		t.Fatalf("queue = %d dropped = %d, want 4 and 6", qlen, dropped)
	}
	exp.stopOnce.Do(func() { close(exp.stop) })
	<-exp.done
}

// TestExporterBacklogRotation drives the exporter against a collector
// that stays down for several pushes, then recovers: batches that
// exhausted their retries must be retained (marshaled once) up to
// MaxBacklog, the oldest must rotate out with its spans counted
// dropped, and recovery must deliver the survivors oldest-first with
// the drop reported in-band.
func TestExporterBacklogRotation(t *testing.T) {
	var mu sync.Mutex
	var batches []Batch
	down := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if down {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		var b Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			t.Errorf("bad batch: %v", err)
		}
		batches = append(batches, b)
	}))
	defer srv.Close()

	exp, err := NewExporter(ExporterConfig{
		URL:        srv.URL,
		Interval:   time.Hour, // pushes are driven by hand below
		MaxRetries: 1,
		MaxBacklog: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three failed pushes of one span each against a MaxBacklog of 2:
	// the first batch must rotate out.
	for _, op := range []string{"span0", "span1", "span2"} {
		exp.Enqueue(SpanRecord{Op: op})
		exp.push()
	}
	exp.mu.Lock()
	retained := len(exp.backlog)
	exp.mu.Unlock()
	if retained != 2 {
		t.Fatalf("backlog holds %d batches, want 2", retained)
	}
	if got := exp.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after rotation, want 1", got)
	}

	mu.Lock()
	down = false
	mu.Unlock()
	exp.Enqueue(SpanRecord{Op: "span3"})
	exp.push()
	exp.stopOnce.Do(func() { close(exp.stop) })
	<-exp.done

	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 3 {
		t.Fatalf("delivered %d batches after recovery, want 3 (two retained + one fresh)", len(batches))
	}
	// Oldest-first: the survivors are the spans from failed pushes 1 and
	// 2 (push 0 rotated out), then the fresh one.
	for i, want := range []string{"span1", "span2", "span3"} {
		if len(batches[i].Spans) != 1 || batches[i].Spans[0].Op != want {
			t.Fatalf("batch %d spans = %+v, want one span with op %q", i, batches[i].Spans, want)
		}
	}
	// The rotated span is reported in-band exactly once.
	var reported uint64
	for _, b := range batches {
		reported += b.Dropped
	}
	if reported != 1 {
		t.Fatalf("batches report %d dropped spans, want 1", reported)
	}
	if got := exp.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after recovery, want 1", got)
	}
}

// BenchmarkSpanStartEnd pins the raw span lifecycle — pool get, clock
// reads, histogram observe, ring copy-in — at 0 allocs/op. This is the
// cost a traced (sampled) operation pays on top of its own work; the
// Makefile's gate-allocs enforces it.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(Config{Registry: telemetry.NewRegistry()})
	// Prime the op histogram so the steady state is the read-locked hit.
	s := tr.StartRoot("bench.op")
	s.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("bench.op")
		sp.End()
	}
}
