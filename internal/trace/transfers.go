// The active-transfer registry: a live table of in-flight bulk
// transfers (streams, striped groups, GridFTP gets/puts) keyed by a
// process-local id. Unlike the flight recorder — which sees a span
// only at End — the registry is populated at Begin, so the admin
// plane can answer "what is moving right now, for whom, and how far
// along" while the bytes are still in flight.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Transfer is one in-flight bulk operation. Byte accounting is atomic
// so stripe lanes on separate goroutines update one counter without a
// lock.
type Transfer struct {
	id      uint64
	trace   TraceID
	op      string
	peer    string
	stripes int
	start   time.Time
	bytes   atomic.Int64
	reg     *TransferRegistry
}

// Add accumulates moved payload bytes. Nil-safe.
func (t *Transfer) Add(n int64) {
	if t != nil {
		t.bytes.Add(n)
	}
}

// Bytes returns the bytes moved so far. Nil-safe.
func (t *Transfer) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.bytes.Load()
}

// End removes the transfer from its registry. Nil-safe and idempotent.
func (t *Transfer) End() {
	if t == nil || t.reg == nil {
		return
	}
	reg := t.reg
	t.reg = nil
	reg.mu.Lock()
	delete(reg.m, t.id)
	reg.mu.Unlock()
}

// TransferInfo is the queryable snapshot of one active transfer.
type TransferInfo struct {
	// Trace is the owning trace id (lowercase hex; empty when the
	// transfer is not part of a trace).
	Trace string `json:"trace,omitempty"`
	// Op names the operation ("stream", "stripe", "gridftp.get", ...).
	Op string `json:"op"`
	// Peer is the authenticated peer DN.
	Peer string `json:"peer,omitempty"`
	// Stripes counts parallel lanes (1 for plain streams).
	Stripes int `json:"stripes"`
	// Bytes counts payload bytes moved so far.
	Bytes int64 `json:"bytes"`
	// Start is when the transfer began.
	Start time.Time `json:"start"`
	// ElapsedUS is the age of the transfer, in microseconds, at
	// snapshot time.
	ElapsedUS int64 `json:"elapsed_us"`
}

// TransferRegistry tracks active transfers. The zero value is ready;
// a nil registry is inert.
type TransferRegistry struct {
	mu  sync.Mutex
	m   map[uint64]*Transfer
	seq uint64
}

// Begin registers an active transfer. tid may be zero when the
// transfer is untraced. Returns nil (inert) on a nil registry.
func (r *TransferRegistry) Begin(op, peer string, stripes int, tid TraceID) *Transfer {
	if r == nil {
		return nil
	}
	if stripes < 1 {
		stripes = 1
	}
	t := &Transfer{trace: tid, op: op, peer: peer, stripes: stripes, start: time.Now(), reg: r}
	r.mu.Lock()
	r.seq++
	t.id = r.seq
	if r.m == nil {
		r.m = make(map[uint64]*Transfer)
	}
	r.m[t.id] = t
	r.mu.Unlock()
	return t
}

// Len reports the number of active transfers.
func (r *TransferRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Snapshot returns the active transfers, oldest first.
func (r *TransferRegistry) Snapshot() []TransferInfo {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	out := make([]TransferInfo, 0, len(r.m))
	for _, t := range r.m {
		info := TransferInfo{
			Op:        t.op,
			Peer:      t.peer,
			Stripes:   t.stripes,
			Bytes:     t.bytes.Load(),
			Start:     t.start,
			ElapsedUS: now.Sub(t.start).Microseconds(),
		}
		if !t.trace.IsZero() {
			info.Trace = t.trace.String()
		}
		out = append(out, info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
