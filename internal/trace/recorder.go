// The flight recorder: a fixed-size ring of finished spans, newest
// overwriting oldest, queryable by the admin plane. Copy-in and
// copy-out are by value under a mutex — the ring never aliases caller
// memory, and a snapshot never exposes ring slots.
package trace

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightRecorder holds the most recent sampled spans.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	count int
}

// NewFlightRecorder creates a recorder holding up to capacity spans.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &FlightRecorder{ring: make([]SpanRecord, capacity)}
}

// add copies one record into the ring.
func (r *FlightRecorder) add(rec SpanRecord) {
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

// Len returns the number of spans currently held.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Query selects spans from the recorder. Zero-value queries match
// everything.
type Query struct {
	// N caps the result count (slowest-N, or earliest-N when TraceID
	// is set). 0 selects DefaultQueryN.
	N int
	// Op filters to spans of one op kind.
	Op string
	// Peer filters to spans whose peer DN contains the substring.
	Peer string
	// ErrorsOnly keeps only failed spans.
	ErrorsOnly bool
	// TraceID (lowercase hex) follows one trace; results sort by start
	// time instead of duration so the tree reads causally.
	TraceID string
}

// DefaultQueryN bounds a query that does not name its own limit.
const DefaultQueryN = 50

// Snapshot returns matching spans: sorted slowest-first (or by start
// time when following one trace), at most q.N results.
func (r *FlightRecorder) Snapshot(q Query) []SpanRecord {
	if r == nil {
		return nil
	}
	n := q.N
	if n <= 0 {
		n = DefaultQueryN
	}
	var wantTrace TraceID
	byTrace := false
	if q.TraceID != "" {
		b, err := hex.DecodeString(q.TraceID)
		if err != nil || len(b) != len(wantTrace) {
			return nil
		}
		copy(wantTrace[:], b)
		byTrace = true
	}
	r.mu.Lock()
	out := make([]SpanRecord, 0, r.count)
	for i := 0; i < r.count; i++ {
		// Oldest first: the slot after next (when full) or slot 0.
		idx := i
		if r.count == len(r.ring) {
			idx = (r.next + i) % len(r.ring)
		}
		rec := r.ring[idx]
		if byTrace && rec.TraceID != wantTrace {
			continue
		}
		if q.Op != "" && rec.Op != q.Op {
			continue
		}
		if q.Peer != "" && !strings.Contains(rec.Peer, q.Peer) {
			continue
		}
		if q.ErrorsOnly && rec.Err == "" {
			continue
		}
		out = append(out, rec)
	}
	r.mu.Unlock()
	if byTrace {
		sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	} else {
		sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// MarshalJSON renders a record as the admin plane's JSON shape: hex
// ids, RFC3339 start, microsecond duration.
func (rec SpanRecord) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString(`{"trace":"`)
	b.WriteString(rec.TraceID.String())
	b.WriteString(`","span":"`)
	b.WriteString(rec.SpanID.String())
	b.WriteString(`"`)
	if rec.Parent != (SpanID{}) {
		b.WriteString(`,"parent":"`)
		b.WriteString(rec.Parent.String())
		b.WriteString(`"`)
	}
	fmt.Fprintf(&b, `,"op":%q`, rec.Op)
	if rec.Peer != "" {
		fmt.Fprintf(&b, `,"peer":%q`, rec.Peer)
	}
	fmt.Fprintf(&b, `,"start":%q,"dur_us":%d`,
		rec.Start.UTC().Format(time.RFC3339Nano), rec.Duration.Microseconds())
	if rec.Bytes > 0 {
		fmt.Fprintf(&b, `,"bytes":%d`, rec.Bytes)
	}
	if rec.Err != "" {
		fmt.Fprintf(&b, `,"err":%q`, rec.Err)
	}
	if rec.Remote {
		b.WriteString(`,"remote":true`)
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}
