package kerberos

import (
	"testing"
	"time"
)

func TestParsePrincipal(t *testing.T) {
	p, err := ParsePrincipal("alice@ANL.GOV")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "alice" || p.Realm != "ANL.GOV" {
		t.Fatalf("parsed %+v", p)
	}
	if p.String() != "alice@ANL.GOV" {
		t.Fatalf("String = %q", p.String())
	}
	svc, err := ParsePrincipal("host/node1@ANL.GOV")
	if err != nil || svc.Name != "host/node1" {
		t.Fatalf("service principal: %v %+v", err, svc)
	}
	for _, bad := range []string{"", "alice", "@REALM", "alice@"} {
		if _, err := ParsePrincipal(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestASExchange(t *testing.T) {
	kdc := NewKDC("ANL.GOV")
	kdc.RegisterPrincipal("alice", "hunter2")
	tgt, session, err := kdc.ASExchange("alice", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Service.Name != "krbtgt/ANL.GOV" {
		t.Fatalf("TGT service = %q", tgt.Service)
	}
	if len(session) == 0 {
		t.Fatal("no session key")
	}
	if _, _, err := kdc.ASExchange("alice", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, _, err := kdc.ASExchange("bob", "x"); err == nil {
		t.Fatal("unknown principal accepted")
	}
}

func TestFullTicketFlow(t *testing.T) {
	kdc := NewKDC("ANL.GOV")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcPrincipal, svcKey, err := kdc.RegisterService("host/compute1")
	if err != nil {
		t.Fatal(err)
	}
	tgt, tgtSession, err := kdc.ASExchange("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthenticator(client, tgtSession, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	st, stSession, err := kdc.TGSExchange(tgt, auth, "host/compute1")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(svcPrincipal, svcKey)
	apAuth, err := NewAuthenticator(client, stSession, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	gotClient, gotSession, err := svc.APExchange(st, apAuth)
	if err != nil {
		t.Fatal(err)
	}
	if gotClient != client {
		t.Fatalf("service saw client %q", gotClient)
	}
	if len(gotSession) == 0 {
		t.Fatal("no AP session key")
	}
}

func TestAPReplayRejected(t *testing.T) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := kdc.RegisterService("svc")
	tgt, ts, _ := kdc.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(client, ts, time.Now())
	st, ss, err := kdc.TGSExchange(tgt, a1, "svc")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(svcP, svcKey)
	ap, _ := NewAuthenticator(client, ss, time.Now())
	if _, _, err := svc.APExchange(st, ap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.APExchange(st, ap); err == nil {
		t.Fatal("replayed authenticator accepted")
	}
}

func TestAuthenticatorSkewRejected(t *testing.T) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := kdc.RegisterService("svc")
	tgt, ts, _ := kdc.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(client, ts, time.Now())
	st, ss, err := kdc.TGSExchange(tgt, a1, "svc")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(svcP, svcKey)
	stale, _ := NewAuthenticator(client, ss, time.Now().Add(-MaxClockSkew-time.Minute))
	if _, _, err := svc.APExchange(st, stale); err == nil {
		t.Fatal("stale authenticator accepted")
	}
	future, _ := NewAuthenticator(client, ss, time.Now().Add(MaxClockSkew+time.Minute))
	if _, _, err := svc.APExchange(st, future); err == nil {
		t.Fatal("future authenticator accepted")
	}
}

func TestTicketExpiry(t *testing.T) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := kdc.RegisterService("svc")
	now := time.Now()
	kdc.SetClock(func() time.Time { return now })
	tgt, ts, _ := kdc.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(client, ts, now)
	st, ss, err := kdc.TGSExchange(tgt, a1, "svc")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(svcP, svcKey)
	late := now.Add(DefaultTicketLifetime + time.Hour)
	svc.SetClock(func() time.Time { return late })
	ap, _ := NewAuthenticator(client, ss, late)
	if _, _, err := svc.APExchange(st, ap); err == nil {
		t.Fatal("expired ticket accepted")
	}
}

func TestWrongServiceKeyRejected(t *testing.T) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	kdc.RegisterService("svc1")
	svc2P, svc2Key, _ := kdc.RegisterService("svc2")
	tgt, ts, _ := kdc.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(client, ts, time.Now())
	st1, ss, err := kdc.TGSExchange(tgt, a1, "svc1")
	if err != nil {
		t.Fatal(err)
	}
	// Present svc1's ticket to svc2: name check fails.
	svc2 := NewService(svc2P, svc2Key)
	ap, _ := NewAuthenticator(client, ss, time.Now())
	if _, _, err := svc2.APExchange(st1, ap); err == nil {
		t.Fatal("ticket for svc1 accepted by svc2")
	}
}

func TestCrossRealm(t *testing.T) {
	anl := NewKDC("ANL.GOV")
	isi := NewKDC("ISI.EDU")
	alice := anl.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := isi.RegisterService("host/isihost")

	// Before the bilateral agreement, cross-realm fails.
	tgt, ts, _ := anl.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(alice, ts, time.Now())
	if _, _, err := anl.CrossRealmTGT(tgt, a1, "ISI.EDU"); err == nil {
		t.Fatal("cross-realm TGT issued without agreement")
	}

	if err := EstablishInterRealmTrust(anl, isi); err != nil {
		t.Fatal(err)
	}
	a2, _ := NewAuthenticator(alice, ts, time.Now())
	xtgt, xsession, err := anl.CrossRealmTGT(tgt, a2, "ISI.EDU")
	if err != nil {
		t.Fatal(err)
	}
	// Redeem the cross-realm TGT at ISI's TGS for a service ticket.
	a3, _ := NewAuthenticator(alice, xsession, time.Now())
	st, ss, err := isi.TGSExchange(xtgt, a3, "host/isihost")
	if err != nil {
		t.Fatalf("remote TGS exchange: %v", err)
	}
	svc := NewService(svcP, svcKey)
	ap, _ := NewAuthenticator(alice, ss, time.Now())
	gotClient, _, err := svc.APExchange(st, ap)
	if err != nil {
		t.Fatal(err)
	}
	if gotClient.Realm != "ANL.GOV" || gotClient.Name != "alice" {
		t.Fatalf("cross-realm client = %q", gotClient)
	}
}

func TestAdminActsAccounting(t *testing.T) {
	a := NewKDC("A")
	b := NewKDC("B")
	a.RegisterPrincipal("u1", "p")
	a.RegisterService("s1")
	if got := a.AdminActs(); got != 2 {
		t.Fatalf("AdminActs = %d", got)
	}
	if err := EstablishInterRealmTrust(a, b); err != nil {
		t.Fatal(err)
	}
	// Inter-realm trust costs one act on EACH side — the bilateral
	// property the paper contrasts with unilateral CA trust.
	if a.AdminActs() != 3 || b.AdminActs() != 1 {
		t.Fatalf("AdminActs after trust: a=%d b=%d", a.AdminActs(), b.AdminActs())
	}
}

func TestTamperedTicketRejected(t *testing.T) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := kdc.RegisterService("svc")
	tgt, ts, _ := kdc.ASExchange("alice", "pw")
	a1, _ := NewAuthenticator(client, ts, time.Now())
	st, ss, err := kdc.TGSExchange(tgt, a1, "svc")
	if err != nil {
		t.Fatal(err)
	}
	st.Blob[len(st.Blob)/2] ^= 1
	svc := NewService(svcP, svcKey)
	ap, _ := NewAuthenticator(client, ss, time.Now())
	if _, _, err := svc.APExchange(st, ap); err == nil {
		t.Fatal("tampered ticket accepted")
	}
}

func BenchmarkFullKerberosFlow(b *testing.B) {
	kdc := NewKDC("R")
	client := kdc.RegisterPrincipal("alice", "pw")
	svcP, svcKey, _ := kdc.RegisterService("svc")
	svc := NewService(svcP, svcKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt, ts, err := kdc.ASExchange("alice", "pw")
		if err != nil {
			b.Fatal(err)
		}
		a1, _ := NewAuthenticator(client, ts, time.Now())
		st, ss, err := kdc.TGSExchange(tgt, a1, "svc")
		if err != nil {
			b.Fatal(err)
		}
		ap, _ := NewAuthenticator(client, ss, time.Now())
		if _, _, err := svc.APExchange(st, ap); err != nil {
			b.Fatal(err)
		}
	}
}
