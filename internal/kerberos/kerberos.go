// Package kerberos implements a miniature Kerberos 5 realm: an
// authentication server (AS) and ticket-granting server (TGS) sharing a
// key database, encrypted tickets, authenticators with freshness checks,
// and bilateral cross-realm trust.
//
// It exists as the "diverse site security mechanism" of the paper (§3):
// sites with an existing Kerberos infrastructure keep it, and the KCA /
// PKINIT gateways in internal/bridge translate between Kerberos and GSI.
// Its bilateral inter-realm trust model is also the baseline against which
// experiment E1 measures the O(N) unilateral CA-trust property of PKI.
package kerberos

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/wire"
)

// Principal is a Kerberos principal name, canonically "primary@REALM" or
// "service/instance@REALM".
type Principal struct {
	Name  string // primary or service/instance part
	Realm string
}

// String renders the canonical form.
func (p Principal) String() string { return p.Name + "@" + p.Realm }

// ParsePrincipal parses "name@REALM".
func ParsePrincipal(s string) (Principal, error) {
	at := strings.LastIndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return Principal{}, fmt.Errorf("kerberos: malformed principal %q", s)
	}
	return Principal{Name: s[:at], Realm: s[at+1:]}, nil
}

// tgsName is the principal name of the ticket-granting service in a realm.
func tgsName(realm string) string { return "krbtgt/" + realm }

// crossRealmName is the TGS principal used for tickets that let a client
// of realm `from` talk to the TGS of realm `to`.
func crossRealmName(to string) string { return "krbtgt/" + to }

// Ticket is an encrypted Kerberos ticket: only the service it is issued
// for can decrypt it.
type Ticket struct {
	Service Principal
	// SrcRealm is the realm whose KDC issued the ticket. For cross-realm
	// TGTs it differs from Service.Realm and tells the receiving TGS to
	// use the inter-realm key.
	SrcRealm string
	// Blob is the ticket body encrypted under the service's key.
	Blob []byte
}

// ticketBody is the decrypted content of a ticket.
type ticketBody struct {
	Client     Principal
	SessionKey []byte
	Expiry     time.Time
}

func encodeTicketBody(b ticketBody) []byte {
	return wire.NewEncoder().
		Str(b.Client.Name).Str(b.Client.Realm).
		Bytes(b.SessionKey).
		I64(b.Expiry.Unix()).
		Finish()
}

func decodeTicketBody(raw []byte) (ticketBody, error) {
	d := wire.NewDecoder(raw)
	b := ticketBody{}
	b.Client.Name = d.Str()
	b.Client.Realm = d.Str()
	b.SessionKey = d.Bytes()
	b.Expiry = time.Unix(d.I64(), 0).UTC()
	if err := d.Done(); err != nil {
		return ticketBody{}, err
	}
	return b, nil
}

// Authenticator proves recent possession of a ticket's session key.
type Authenticator struct {
	// Blob is {client, timestamp} encrypted under the session key.
	Blob []byte
}

type authenticatorBody struct {
	Client    Principal
	Timestamp time.Time
}

func encodeAuthenticator(a authenticatorBody) []byte {
	return wire.NewEncoder().
		Str(a.Client.Name).Str(a.Client.Realm).
		I64(a.Timestamp.UnixNano()).
		Finish()
}

func decodeAuthenticator(raw []byte) (authenticatorBody, error) {
	d := wire.NewDecoder(raw)
	a := authenticatorBody{}
	a.Client.Name = d.Str()
	a.Client.Realm = d.Str()
	a.Timestamp = time.Unix(0, d.I64()).UTC()
	if err := d.Done(); err != nil {
		return authenticatorBody{}, err
	}
	return a, nil
}

// MaxClockSkew is the tolerated authenticator age, as in MIT Kerberos.
const MaxClockSkew = 5 * time.Minute

// DefaultTicketLifetime matches a typical 10-hour Kerberos ticket.
const DefaultTicketLifetime = 10 * time.Hour

// KDC is the key distribution center of one realm: AS and TGS combined.
type KDC struct {
	realm string

	mu         sync.RWMutex
	principals map[string][]byte // name -> long-term key
	interRealm map[string][]byte // remote realm -> shared inter-realm key
	now        func() time.Time

	// AdminActs counts administrative operations (principal registration,
	// inter-realm agreements) for experiment E1.
	adminActs int
}

// NewKDC creates a KDC for the named realm, bootstrapping its
// ticket-granting-service key.
func NewKDC(realm string) *KDC {
	k := &KDC{
		realm:      realm,
		principals: make(map[string][]byte),
		interRealm: make(map[string][]byte),
		now:        time.Now,
	}
	tgsKey, err := gridcrypto.RandomBytes(gridcrypto.AEADKeySize)
	if err != nil {
		panic("kerberos: cannot bootstrap TGS key: " + err.Error())
	}
	k.principals[tgsName(realm)] = tgsKey
	return k
}

// Realm returns the realm name.
func (k *KDC) Realm() string { return k.realm }

// SetClock overrides the KDC clock (tests).
func (k *KDC) SetClock(now func() time.Time) { k.now = now }

// AdminActs returns the count of administrative operations performed.
func (k *KDC) AdminActs() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.adminActs
}

// deriveKey turns a password into a long-term key (string-to-key).
func deriveKey(realm, name, password string) []byte {
	key, err := gridcrypto.DeriveKey([]byte(password), []byte(realm+"/"+name), []byte("krb5 string-to-key"), gridcrypto.AEADKeySize)
	if err != nil {
		panic("kerberos: key derivation cannot fail: " + err.Error())
	}
	return key
}

// RegisterPrincipal adds a user principal with a password-derived key.
// This is the administrator-mediated act the paper contrasts with proxy
// creation: every new Kerberos entity requires one.
func (k *KDC) RegisterPrincipal(name, password string) Principal {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.principals[name] = deriveKey(k.realm, name, password)
	k.adminActs++
	return Principal{Name: name, Realm: k.realm}
}

// RegisterService adds a service principal with a random key, returning
// the key (the service's "keytab").
func (k *KDC) RegisterService(name string) (Principal, []byte, error) {
	key, err := gridcrypto.RandomBytes(gridcrypto.AEADKeySize)
	if err != nil {
		return Principal{}, nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.principals[name] = key
	k.adminActs++
	return Principal{Name: name, Realm: k.realm}, key, nil
}

// EstablishInterRealmTrust records a bilateral agreement between two
// realms by installing a shared key in both KDCs. Note that this is an
// organizational-level act on *both* sides — the O(N²) cost the paper
// calls out for Kerberos inter-institutional trust.
func EstablishInterRealmTrust(a, b *KDC) error {
	key, err := gridcrypto.RandomBytes(gridcrypto.AEADKeySize)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.interRealm[b.realm] = key
	a.adminActs++
	a.mu.Unlock()
	b.mu.Lock()
	b.interRealm[a.realm] = key
	b.adminActs++
	b.mu.Unlock()
	return nil
}

func (k *KDC) lookupKey(name string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.principals[name]
	return key, ok
}

// ASExchange authenticates a client by password and returns a TGT plus
// the session key (which the real protocol returns encrypted under the
// client key; here the password check subsumes that).
func (k *KDC) ASExchange(name, password string) (Ticket, []byte, error) {
	stored, ok := k.lookupKey(name)
	if !ok {
		return Ticket{}, nil, fmt.Errorf("kerberos: unknown principal %q", name)
	}
	derived := deriveKey(k.realm, name, password)
	if !gridcrypto.HMACEqual(stored, derived) {
		return Ticket{}, nil, errors.New("kerberos: pre-authentication failed")
	}
	return k.issueTicket(Principal{Name: name, Realm: k.realm}, tgsName(k.realm))
}

// issueTicket creates a ticket for client to the named service.
func (k *KDC) issueTicket(client Principal, service string) (Ticket, []byte, error) {
	svcKey, ok := k.lookupKey(service)
	if !ok {
		return Ticket{}, nil, fmt.Errorf("kerberos: unknown service %q", service)
	}
	session, err := gridcrypto.RandomBytes(gridcrypto.AEADKeySize)
	if err != nil {
		return Ticket{}, nil, err
	}
	body := ticketBody{
		Client:     client,
		SessionKey: session,
		Expiry:     k.now().Add(DefaultTicketLifetime),
	}
	blob, err := gridcrypto.SealOnce(svcKey, encodeTicketBody(body), []byte("krb5 ticket "+service))
	if err != nil {
		return Ticket{}, nil, err
	}
	return Ticket{
		Service:  Principal{Name: service, Realm: k.realm},
		SrcRealm: k.realm,
		Blob:     blob,
	}, session, nil
}

// PKINITExchange issues a TGT for a registered principal that has been
// authenticated by other means — the entry point used by the SSLK5/PKINIT
// gateway after it validates a GSI certificate chain. The caller is
// responsible for that validation; the KDC only checks the principal
// exists.
func (k *KDC) PKINITExchange(name string) (Ticket, []byte, error) {
	if _, ok := k.lookupKey(name); !ok {
		return Ticket{}, nil, fmt.Errorf("kerberos: unknown principal %q", name)
	}
	return k.issueTicket(Principal{Name: name, Realm: k.realm}, tgsName(k.realm))
}

// TGSExchange redeems a TGT (or cross-realm TGT) plus a fresh
// authenticator for a service ticket.
func (k *KDC) TGSExchange(tgt Ticket, auth Authenticator, service string) (Ticket, []byte, error) {
	if tgt.Service.Name != tgsName(k.realm) {
		return Ticket{}, nil, fmt.Errorf("kerberos: ticket is for %q, not this realm's TGS", tgt.Service)
	}
	var tgsKey []byte
	if tgt.SrcRealm == k.realm {
		key, ok := k.lookupKey(tgsName(k.realm))
		if !ok {
			return Ticket{}, nil, errors.New("kerberos: realm has no TGS key")
		}
		tgsKey = key
	} else {
		// Cross-realm TGT: must be decryptable with the bilateral key.
		k.mu.RLock()
		key, ok := k.interRealm[tgt.SrcRealm]
		k.mu.RUnlock()
		if !ok {
			return Ticket{}, nil, fmt.Errorf("kerberos: no inter-realm trust with %q", tgt.SrcRealm)
		}
		tgsKey = key
	}
	body, err := k.validateTicket(tgt, tgsKey)
	if err != nil {
		return Ticket{}, nil, err
	}
	if err := k.validateAuthenticator(auth, body); err != nil {
		return Ticket{}, nil, err
	}
	return k.issueTicket(body.Client, service)
}

// CrossRealmTGT issues a ticket that the remote realm's TGS will accept,
// encrypted under the shared inter-realm key. Fails unless a bilateral
// agreement exists.
func (k *KDC) CrossRealmTGT(tgt Ticket, auth Authenticator, remoteRealm string) (Ticket, []byte, error) {
	k.mu.RLock()
	interKey, ok := k.interRealm[remoteRealm]
	k.mu.RUnlock()
	if !ok {
		return Ticket{}, nil, fmt.Errorf("kerberos: no inter-realm trust with %q", remoteRealm)
	}
	tgsKey, _ := k.lookupKey(tgsName(k.realm))
	body, err := k.validateTicket(tgt, tgsKey)
	if err != nil {
		return Ticket{}, nil, err
	}
	if err := k.validateAuthenticator(auth, body); err != nil {
		return Ticket{}, nil, err
	}
	session, err := gridcrypto.RandomBytes(gridcrypto.AEADKeySize)
	if err != nil {
		return Ticket{}, nil, err
	}
	xBody := ticketBody{
		Client:     body.Client, // realm preserved: remote sees foreign client
		SessionKey: session,
		Expiry:     k.now().Add(DefaultTicketLifetime),
	}
	svc := crossRealmName(remoteRealm)
	blob, err := gridcrypto.SealOnce(interKey, encodeTicketBody(xBody), []byte("krb5 ticket "+svc))
	if err != nil {
		return Ticket{}, nil, err
	}
	return Ticket{
		Service:  Principal{Name: svc, Realm: remoteRealm},
		SrcRealm: k.realm,
		Blob:     blob,
	}, session, nil
}

func (k *KDC) validateTicket(t Ticket, key []byte) (ticketBody, error) {
	raw, err := gridcrypto.OpenOnce(key, t.Blob, []byte("krb5 ticket "+t.Service.Name))
	if err != nil {
		return ticketBody{}, errors.New("kerberos: ticket decryption failed")
	}
	body, err := decodeTicketBody(raw)
	if err != nil {
		return ticketBody{}, err
	}
	if k.now().After(body.Expiry) {
		return ticketBody{}, errors.New("kerberos: ticket expired")
	}
	return body, nil
}

func (k *KDC) validateAuthenticator(a Authenticator, body ticketBody) error {
	raw, err := gridcrypto.OpenOnce(body.SessionKey, a.Blob, []byte("krb5 authenticator"))
	if err != nil {
		return errors.New("kerberos: authenticator decryption failed")
	}
	ab, err := decodeAuthenticator(raw)
	if err != nil {
		return err
	}
	if ab.Client != body.Client {
		return fmt.Errorf("kerberos: authenticator client %q does not match ticket client %q", ab.Client, body.Client)
	}
	age := k.now().Sub(ab.Timestamp)
	if age < -MaxClockSkew || age > MaxClockSkew {
		return errors.New("kerberos: authenticator outside clock-skew window")
	}
	return nil
}

// NewAuthenticator builds a fresh authenticator for client under session.
func NewAuthenticator(client Principal, session []byte, now time.Time) (Authenticator, error) {
	blob, err := gridcrypto.SealOnce(session, encodeAuthenticator(authenticatorBody{
		Client:    client,
		Timestamp: now,
	}), []byte("krb5 authenticator"))
	if err != nil {
		return Authenticator{}, err
	}
	return Authenticator{Blob: blob}, nil
}

// Service is the server-side of the AP exchange: a registered service
// validating incoming {ticket, authenticator} pairs with its keytab key.
type Service struct {
	principal Principal
	key       []byte
	now       func() time.Time

	mu   sync.Mutex
	seen map[string]time.Time // replay cache keyed by authenticator blob
}

// NewService wraps a registered service principal and its key.
func NewService(principal Principal, key []byte) *Service {
	return &Service{principal: principal, key: key, now: time.Now, seen: make(map[string]time.Time)}
}

// SetClock overrides the service clock (tests).
func (s *Service) SetClock(now func() time.Time) { s.now = now }

// APExchange validates a ticket+authenticator and returns the client
// principal and session key. Replayed authenticators are rejected.
func (s *Service) APExchange(t Ticket, a Authenticator) (Principal, []byte, error) {
	if t.Service.Name != s.principal.Name {
		return Principal{}, nil, fmt.Errorf("kerberos: ticket for %q presented to %q", t.Service, s.principal)
	}
	raw, err := gridcrypto.OpenOnce(s.key, t.Blob, []byte("krb5 ticket "+t.Service.Name))
	if err != nil {
		return Principal{}, nil, errors.New("kerberos: ticket decryption failed")
	}
	body, err := decodeTicketBody(raw)
	if err != nil {
		return Principal{}, nil, err
	}
	now := s.now()
	if now.After(body.Expiry) {
		return Principal{}, nil, errors.New("kerberos: ticket expired")
	}
	araw, err := gridcrypto.OpenOnce(body.SessionKey, a.Blob, []byte("krb5 authenticator"))
	if err != nil {
		return Principal{}, nil, errors.New("kerberos: authenticator decryption failed")
	}
	ab, err := decodeAuthenticator(araw)
	if err != nil {
		return Principal{}, nil, err
	}
	if ab.Client != body.Client {
		return Principal{}, nil, errors.New("kerberos: authenticator/ticket client mismatch")
	}
	age := now.Sub(ab.Timestamp)
	if age < -MaxClockSkew || age > MaxClockSkew {
		return Principal{}, nil, errors.New("kerberos: authenticator outside clock-skew window")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keyStr := string(a.Blob)
	if _, dup := s.seen[keyStr]; dup {
		return Principal{}, nil, errors.New("kerberos: replayed authenticator")
	}
	s.seen[keyStr] = now
	// Evict stale replay-cache entries.
	for k, ts := range s.seen {
		if now.Sub(ts) > 2*MaxClockSkew {
			delete(s.seen, k)
		}
	}
	return body.Client, body.SessionKey, nil
}
