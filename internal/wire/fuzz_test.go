package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecoder drives the decoder through the field sequences the grid
// messages actually use; malformed input must surface through Err/Done,
// never panic, and a fully consumed decode must round-trip.
func FuzzDecoder(f *testing.F) {
	f.Add(NewEncoder().Str("op").Bytes([]byte("body")).Finish())
	f.Add(NewEncoder().U8(3).U8(1).Bytes(make([]byte, 32)).Bytes(make([]byte, 32)).Finish())
	f.Add(NewEncoder().U64(42).Bytes([]byte("ct")).Finish())
	f.Add(NewEncoder().Bool(true).I64(-1).U16(7).U32(9).Finish())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Shape 1: the GT2 request framing.
		d := NewDecoder(b)
		op := d.Str()
		body := d.Bytes()
		if d.Done() == nil {
			if !bytes.Equal(NewEncoder().Str(op).Bytes(body).Finish(), b) {
				t.Fatalf("str/bytes round trip diverged for %x", b)
			}
		}
		// Shape 2: the wrap-token framing.
		d = NewDecoder(b)
		seq := d.U64()
		ct := d.Bytes()
		if d.Done() == nil {
			if !bytes.Equal(NewEncoder().U64(seq).Bytes(ct).Finish(), b) {
				t.Fatalf("u64/bytes round trip diverged for %x", b)
			}
		}
		// Shape 3: scalar soup — must never panic regardless of input.
		d = NewDecoder(b)
		_ = d.U8()
		_ = d.Bool()
		_ = d.U16()
		_ = d.U32()
		_ = d.I64()
		_ = d.Count("items", 1024)
		_ = d.Str()
		_ = d.Err()
	})
}

// FuzzReadFrame feeds arbitrary streams to the frame reader: it must
// return an error or a frame that re-serializes to a prefix of the
// input, never panic or over-allocate past the cap.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, []byte("token")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteFrame(&re, payload); err != nil {
			t.Fatalf("re-framing decoded payload: %v", err)
		}
		if !bytes.HasPrefix(b, re.Bytes()) {
			t.Fatalf("frame round trip diverged for %x", b)
		}
		// The remainder of the stream is untouched input, not consumed.
		_, _ = io.ReadAll(bytes.NewReader(b[re.Len():]))
	})
}
