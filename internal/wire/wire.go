// Package wire provides the deterministic length-prefixed binary encoding
// shared by the grid protocol messages (delegation, security-context
// tokens, Kerberos messages). All integers are big-endian; variable-length
// fields carry a uint32 length prefix.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxField caps any single length-prefixed field at 16 MiB.
const MaxField = 1 << 24

// ErrTruncated is returned when a decoder runs out of input.
var ErrTruncated = errors.New("wire: truncated message")

// Encoder accumulates a message.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Reset points the encoder at buf (length preserved, appended to), so a
// message can be assembled directly into a caller-owned — typically
// pooled — buffer instead of an encoder-grown one. Returns e for
// chaining:
//
//	var e wire.Encoder
//	frame := e.Reset(buf[:headroom]).Str(op).Bytes(body).Finish()
func (e *Encoder) Reset(buf []byte) *Encoder {
	e.buf = buf
	return e
}

// Len returns the bytes accumulated so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) *Encoder { e.buf = append(e.buf, v); return e }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) *Encoder {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// I64 appends a big-endian int64.
func (e *Encoder) I64(v int64) *Encoder { return e.U64(uint64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) *Encoder {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) *Encoder { return e.Bytes([]byte(s)) }

// Raw appends b verbatim — no length prefix. For fixed-size trailers
// (the GT2 trace-context field) that a Decoder recovers with Tail.
func (e *Encoder) Raw(b []byte) *Encoder {
	e.buf = append(e.buf, b...)
	return e
}

// Finish returns the accumulated message.
func (e *Encoder) Finish() []byte { return e.buf }

// Decoder consumes a message.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(ErrTruncated)
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a strict 0/1 byte.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(errors.New("wire: invalid boolean"))
		return false
	}
}

// Bytes reads a length-prefixed byte string (copied out of the input).
func (d *Decoder) Bytes() []byte {
	v := d.View()
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// View reads a length-prefixed byte string as a zero-copy view into the
// decoder's input. The view is only valid while the input buffer is —
// callers that retain the bytes past the buffer's lifetime (e.g. past a
// pooled buffer's Free) must copy.
func (d *Decoder) View() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxField {
		d.fail(fmt.Errorf("wire: field of %d bytes exceeds cap", n))
		return nil
	}
	if !d.need(int(n)) {
		return nil
	}
	v := d.b[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Bytes()) }

// Count validates a list length against a cap.
func (d *Decoder) Count(what string, max int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		d.fail(fmt.Errorf("wire: %s count %d exceeds cap %d", what, n, max))
		return 0
	}
	return int(n)
}

// Tail consumes and returns a zero-copy view of exactly n trailing
// bytes — but only when exactly n bytes remain. Any other remainder
// (including none) leaves the decoder untouched and returns nil. This
// is how optional fixed-size trailers (the trace-context field on GT2
// exchange requests) ride behind an existing message layout without a
// version bump: absent on old senders, structurally unambiguous when
// present.
func (d *Decoder) Tail(n int) []byte {
	if d.err != nil || n <= 0 || len(d.b)-d.off != n {
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

// Done reports an error unless the input was fully consumed.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// WriteFrame writes a length-prefixed frame to w. Frames carry protocol
// tokens over stream transports.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxField {
		return fmt.Errorf("wire: frame of %d bytes exceeds cap", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameReadChunk bounds how much ReadFrame allocates ahead of the bytes
// actually arriving. A hostile length prefix announcing a jumbo frame
// that never materialises therefore costs the reader at most one chunk,
// not MaxField, of memory (pre-authentication allocation DoS).
const frameReadChunk = 64 << 10

// ReadFrame reads one length-prefixed frame from r. The payload buffer
// grows incrementally as bytes arrive — doubling from frameReadChunk up
// to the announced length — so the announced length is never trusted
// with an up-front allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxField {
		return nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds cap", n)
	}
	if n <= frameReadChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, frameReadChunk)
	filled := 0
	for filled < n {
		if filled == len(payload) {
			grown := 2 * len(payload)
			if grown > n {
				grown = n
			}
			next := make([]byte, grown)
			copy(next, payload)
			payload = next
		}
		if _, err := io.ReadFull(r, payload[filled:]); err != nil {
			return nil, err
		}
		filled = len(payload)
	}
	return payload, nil
}
