package wire

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	enc := NewEncoder().
		U8(0xAB).U16(0xCDEF).U32(0xDEADBEEF).U64(0x0123456789ABCDEF).
		I64(-42).Bool(true).Bool(false).
		Bytes([]byte{1, 2, 3}).Str("hello")
	d := NewDecoder(enc.Finish())
	if d.U8() != 0xAB || d.U16() != 0xCDEF || d.U32() != 0xDEADBEEF || d.U64() != 0x0123456789ABCDEF {
		t.Fatal("unsigned round trip failed")
	}
	if d.I64() != -42 {
		t.Fatal("i64 round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) || d.Str() != "hello" {
		t.Fatal("bytes/str round trip failed")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	full := NewEncoder().U64(7).Bytes([]byte("payload")).Finish()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		d.Bytes()
		if d.Done() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	d := NewDecoder(NewEncoder().U8(1).U8(2).Finish())
	d.U8()
	if err := d.Done(); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 7 accepted")
	}
}

func TestFieldLengthCap(t *testing.T) {
	// A length prefix claiming 2 GiB must be rejected before allocation.
	enc := NewEncoder().U32(1 << 31).Finish()
	d := NewDecoder(enc)
	if d.Bytes() != nil || d.Err() == nil {
		t.Fatal("oversized field accepted")
	}
}

func TestCount(t *testing.T) {
	d := NewDecoder(NewEncoder().U32(5).Finish())
	if n := d.Count("items", 10); n != 5 || d.Err() != nil {
		t.Fatalf("Count = %d err=%v", n, d.Err())
	}
	d2 := NewDecoder(NewEncoder().U32(100).Finish())
	if d2.Count("items", 10); d2.Err() == nil {
		t.Fatal("over-cap count accepted")
	}
}

func TestErrorsSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.U64() // fails
	first := d.Err()
	d.Str()
	d.Bool()
	if d.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestFrames(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{9}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %q != %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&hdr); err == nil {
		t.Fatal("oversized incoming frame accepted")
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxField+1)); err == nil {
		t.Fatal("oversized outgoing frame accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("full payload"))
	short := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// A hostile length prefix announcing a 16 MiB frame that never arrives
// must not cost the reader 16 MiB up front: ReadFrame grows its buffer
// incrementally as bytes arrive (pre-authentication allocation DoS).
func TestTruncatedJumboFrameAllocationBounded(t *testing.T) {
	// Header announces MaxField bytes; only 10 bytes follow.
	input := append([]byte{0x01, 0x00, 0x00, 0x00}, make([]byte, 10)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 16; i++ {
		if _, err := ReadFrame(bytes.NewReader(input)); err == nil {
			t.Fatal("truncated jumbo frame accepted")
		}
	}
	runtime.ReadMemStats(&after)
	// 16 truncated 16 MiB announcements must together cost far less than
	// one announced frame; the pre-fix code allocated 256 MiB here.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4<<20 {
		t.Fatalf("truncated jumbo frames allocated %d bytes (announced length trusted up front)", grew)
	}
}

// Large frames still round-trip through the incremental reader.
func TestLargeFrameRoundTrip(t *testing.T) {
	payload := make([]byte, 3*frameReadChunk+17)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large frame corrupted by incremental read")
	}
}

// Reset assembles into a caller-owned buffer without reallocating when
// capacity suffices, and View decodes without copying.
func TestResetAndView(t *testing.T) {
	buf := make([]byte, 4, 64)
	var e Encoder
	out := e.Reset(buf).Str("op").Bytes([]byte("body")).Finish()
	if &out[0] != &buf[:5][0] {
		t.Fatal("Reset encoder reallocated despite sufficient capacity")
	}
	if !bytes.Equal(out[:4], make([]byte, 4)) {
		t.Fatal("Reset clobbered the reserved prefix")
	}
	d := NewDecoder(out[4:])
	if op := d.View(); string(op) != "op" {
		t.Fatalf("op view = %q", op)
	}
	body := d.View()
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if string(body) != "body" {
		t.Fatalf("body view = %q", body)
	}
	if &body[0] != &out[4+4+2+4] {
		t.Fatal("View copied instead of aliasing the input")
	}
}

// Property: any byte/string pair survives an encode/decode round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(b []byte, s string, u uint64, v int64, flag bool) bool {
		enc := NewEncoder().Bytes(b).Str(s).U64(u).I64(v).Bool(flag).Finish()
		d := NewDecoder(enc)
		gb := d.Bytes()
		gs := d.Str()
		gu := d.U64()
		gv := d.I64()
		gf := d.Bool()
		return d.Done() == nil && bytes.Equal(gb, b) && gs == s && gu == u && gv == v && gf == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames round-trip through a stream.
func TestPropertyFrames(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTail(t *testing.T) {
	trailer := []byte{1, 2, 3, 4, 5}
	msg := NewEncoder().Str("op").Bytes([]byte("body")).Finish()
	withTail := append(append([]byte(nil), msg...), trailer...)

	// Present: exactly n bytes remain after the fixed layout.
	d := NewDecoder(withTail)
	d.View()
	d.View()
	got := d.Tail(5)
	if string(got) != string(trailer) {
		t.Fatalf("Tail = %v, want %v", got, trailer)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}

	// Absent: Tail is nil and Done still passes.
	d = NewDecoder(msg)
	d.View()
	d.View()
	if d.Tail(5) != nil {
		t.Fatal("Tail invented a trailer")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}

	// Wrong remainder size: untouched, Done reports the trailing bytes.
	d = NewDecoder(withTail[:len(withTail)-1])
	d.View()
	d.View()
	if d.Tail(5) != nil {
		t.Fatal("Tail accepted a short remainder")
	}
	if d.Done() == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Errored decoder: inert.
	d = NewDecoder([]byte{0xff})
	d.U32()
	d.U32()
	if d.Tail(1) != nil {
		t.Fatal("Tail ran on an errored decoder")
	}
}
