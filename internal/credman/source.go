// Package credman keeps a proxy credential alive: a Manager watches the
// managed credential's remaining lifetime and, ahead of a configurable
// horizon, obtains a successor from a pluggable Source — the paper's
// MyProxy online repository, re-delegation against a local signer, or
// the OGSA delegation port type — then publishes it atomically so
// long-running grid work (job trees, pooled sessions, resumption trees)
// outlives any single short-lived proxy.
package credman

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcert"
	"repro/internal/myproxy"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/wire"
)

// Source obtains a successor for the managed credential. current is the
// credential being replaced (possibly already expired — sources must
// not require it to be live, that is the whole point of renewal).
// Implementations must be safe for concurrent use.
type Source interface {
	Renew(ctx context.Context, current *gridcert.Credential) (*gridcert.Credential, error)
}

// SourceFunc adapts a function to Source (static/test sources).
type SourceFunc func(ctx context.Context, current *gridcert.Credential) (*gridcert.Credential, error)

// Renew implements Source.
func (f SourceFunc) Renew(ctx context.Context, current *gridcert.Credential) (*gridcert.Credential, error) {
	return f(ctx, current)
}

// Static returns a source that hands out pre-made successors in order,
// then fails. Tests use it to script exact rotation sequences.
func Static(succ ...*gridcert.Credential) Source {
	i := 0
	return SourceFunc(func(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i >= len(succ) {
			return nil, errors.New("credman: static source exhausted")
		}
		c := succ[i]
		i++
		return c, nil
	})
}

// MyProxySource renews from an online credential repository: a fresh
// key pair is generated locally, only its public half crosses the
// exchange, and the repository signs a short-lived proxy below the
// stored credential (myproxy-logon as a renewal engine).
type MyProxySource struct {
	// Repo is the repository holding the deposited credential.
	Repo *myproxy.Server
	// Username and Passphrase authenticate the retrieval.
	Username, Passphrase string
	// Lifetime requests the successor's lifetime (the repository may
	// cap it); 0 accepts the repository's maximum.
	Lifetime time.Duration
	// Limited requests a limited proxy.
	Limited bool
}

// Renew implements Source.
func (s MyProxySource) Renew(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
	if s.Repo == nil {
		return nil, errors.New("credman: MyProxySource requires a repository")
	}
	delegatee, req, err := proxy.NewDelegatee(s.Lifetime, s.Limited)
	if err != nil {
		return nil, err
	}
	reply, err := s.Repo.RetrieveContext(ctx, s.Username, s.Passphrase, req)
	if err != nil {
		return nil, fmt.Errorf("credman: myproxy retrieve: %w", err)
	}
	return delegatee.Accept(reply)
}

// LocalSource renews by re-delegating below a locally held signer (the
// user's long-term credential or a medium-lived proxy): each renewal
// mints a fresh sibling proxy via the standard delegation exchange run
// in-process.
type LocalSource struct {
	// Signer issues the successors.
	Signer *gridcert.Credential
	// Options shape the minted proxies (lifetime, variant, depth).
	Options proxy.Options
}

// Renew implements Source.
func (s LocalSource) Renew(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
	if s.Signer == nil {
		return nil, errors.New("credman: LocalSource requires a signer")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	delegatee, req, err := proxy.NewDelegatee(s.Options.Lifetime, s.Options.Variant == gridcert.ProxyLimited)
	if err != nil {
		return nil, err
	}
	reply, err := proxy.HandleDelegation(s.Signer, req, s.Options)
	if err != nil {
		return nil, fmt.Errorf("credman: local delegation: %w", err)
	}
	return delegatee.Accept(reply)
}

// EndpointSource renews against the OGSA delegation port type
// (ogsa.DelegationHandle): the invoke function carries one secured
// operation to the remote service — typically ogsa.Client.InvokeSecure
// or a pkg/gsi exchange scoped to the handle — and the service mints a
// proxy below the credential the subject previously deposited.
type EndpointSource struct {
	// Invoke performs one secured call against the delegation service.
	Invoke func(ctx context.Context, op string, body []byte) ([]byte, error)
	// Lifetime requests the successor's lifetime (the service caps it).
	Lifetime time.Duration
	// Limited requests a limited proxy.
	Limited bool
}

// Renew implements Source.
func (s EndpointSource) Renew(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
	if s.Invoke == nil {
		return nil, errors.New("credman: EndpointSource requires an invoke function")
	}
	delegatee, req, err := proxy.NewDelegatee(s.Lifetime, s.Limited)
	if err != nil {
		return nil, err
	}
	out, err := s.Invoke(ctx, ogsa.DelegationOpRetrieve, req.Encode())
	if err != nil {
		return nil, fmt.Errorf("credman: delegation endpoint: %w", err)
	}
	reply, err := proxy.DecodeDelegationReply(out)
	if err != nil {
		return nil, fmt.Errorf("credman: delegation endpoint reply: %w", err)
	}
	return delegatee.Accept(reply)
}

// DepositRequest encodes the client half of the delegation-endpoint
// deposit flow: ask the service (the delegatee) for a key it generated
// (ogsa.DelegationOpInitiate), sign a proxy over it below cred, and
// hand the reply back (ogsa.DelegationOpDeposit) so the service can
// later mint successors for this subject. maxLifetime bounds proxies
// minted from the deposit; 0 accepts the service default.
func Deposit(ctx context.Context, invoke func(ctx context.Context, op string, body []byte) ([]byte, error), cred *gridcert.Credential, lifetime, maxLifetime time.Duration) error {
	reqBytes, err := invoke(ctx, ogsa.DelegationOpInitiate, wire.NewEncoder().I64(int64(lifetime/time.Second)).Finish())
	if err != nil {
		return fmt.Errorf("credman: deposit initiate: %w", err)
	}
	req, err := proxy.DecodeDelegationRequest(reqBytes)
	if err != nil {
		return fmt.Errorf("credman: deposit request: %w", err)
	}
	reply, err := proxy.HandleDelegation(cred, req, proxy.Options{Lifetime: lifetime})
	if err != nil {
		return fmt.Errorf("credman: deposit signing: %w", err)
	}
	body := wire.NewEncoder().
		Bytes(reply.Encode()).
		I64(int64(maxLifetime / time.Second)).
		Finish()
	if _, err := invoke(ctx, ogsa.DelegationOpDeposit, body); err != nil {
		return fmt.Errorf("credman: deposit: %w", err)
	}
	return nil
}
