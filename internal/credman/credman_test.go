package credman

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/myproxy"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/wssec"
)

type world struct {
	authority *ca.Authority
	trust     *gridcert.TrustStore
	user      *gridcert.Credential
	initial   *gridcert.Credential
}

func newWorld(t testing.TB, proxyLifetime time.Duration) world {
	t.Helper()
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=Credman CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	user, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := proxy.New(user, proxy.Options{Lifetime: proxyLifetime})
	if err != nil {
		t.Fatal(err)
	}
	return world{authority: authority, trust: trust, user: user, initial: initial}
}

func TestManagerRenewPublishesAndRunsHooks(t *testing.T) {
	w := newWorld(t, time.Hour)
	successor, err := proxy.New(w.user, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(w.initial, Config{Source: Static(successor)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var hookOld, hookNext, hookCurrent *gridcert.Credential
	m.OnRotate(func(old, next *gridcert.Credential) {
		hookOld, hookNext = old, next
		// Hooks run before publication: dependent state is rekeyed
		// before any caller can observe the successor.
		hookCurrent = m.Current()
	})

	if got := m.Current(); got != w.initial {
		t.Fatalf("Current before renewal = %v, want the initial credential", got.Identity())
	}
	next, err := m.Renew(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if next != successor || m.Current() != successor {
		t.Fatal("renewal did not publish the successor")
	}
	if hookOld != w.initial || hookNext != successor {
		t.Fatal("rotation hook did not receive (old, next)")
	}
	if hookCurrent != w.initial {
		t.Fatal("successor was visible through Current before the hooks finished")
	}
	if st := m.Stats(); st.Rotations != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 rotation, 0 failures", st)
	}
	// The scripted source is exhausted: the failure must count and the
	// published credential must survive.
	if _, err := m.Renew(context.Background()); err == nil {
		t.Fatal("expected exhausted source to fail")
	}
	if st := m.Stats(); st.Failures != 1 || m.Current() != successor {
		t.Fatalf("failed renewal must not unpublish (stats %+v)", st)
	}
}

func TestManagerRejectsUnusableSuccessors(t *testing.T) {
	w := newWorld(t, time.Hour)
	base := time.Now()
	// An "expired" successor: validate with a clock far past its NotAfter.
	expired, err := proxy.New(w.user, proxy.Options{Lifetime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"nil credential": {Source: SourceFunc(func(context.Context, *gridcert.Credential) (*gridcert.Credential, error) {
			return nil, nil
		})},
		"expired": {
			Source: Static(expired),
			Now:    func() time.Time { return base.Add(time.Hour) },
		},
	} {
		m, err := NewManager(w.initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Renew(context.Background()); err == nil {
			t.Errorf("%s: expected renewal to be rejected", name)
		}
		if m.Current() != w.initial {
			t.Errorf("%s: unusable successor was published", name)
		}
		if st := m.Stats(); st.Failures != 1 {
			t.Errorf("%s: failures = %d, want 1", name, st.Failures)
		}
		m.Close()
	}
}

func TestManagerBackgroundRotationAndBackoff(t *testing.T) {
	w := newWorld(t, 150*time.Millisecond)
	var attempts atomic.Int64
	src := SourceFunc(func(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
		// Fail twice to exercise the retry backoff, then deliver.
		if attempts.Add(1) <= 2 {
			return nil, errors.New("repository briefly down")
		}
		return proxy.New(w.user, proxy.Options{Lifetime: time.Hour})
	})
	m, err := NewManager(w.initial, Config{
		Source:   src,
		Horizon:  100 * time.Millisecond,
		Jitter:   20 * time.Millisecond,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	m.Start() // idempotent

	deadline := time.After(5 * time.Second)
	for m.Current() == w.initial {
		select {
		case <-deadline:
			t.Fatalf("no rotation after 5s (attempts=%d)", attempts.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if st := m.Stats(); st.Rotations < 1 || st.Failures < 2 {
		t.Fatalf("stats = %+v, want >=1 rotation after >=2 failures", st)
	}
	if !m.Current().Identity().Equal(w.user.Identity()) {
		t.Fatal("successor carries the wrong identity")
	}
}

func TestManagerCloseStopsRenewal(t *testing.T) {
	w := newWorld(t, time.Hour)
	m, err := NewManager(w.initial, Config{Source: Static()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if _, err := m.Renew(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Renew after Close = %v, want ErrClosed", err)
	}
	if m.Current() != w.initial {
		t.Fatal("Current must keep answering after Close")
	}
}

func TestMyProxySourceRenews(t *testing.T) {
	w := newWorld(t, time.Hour)
	repo := myproxy.NewServer()
	deposit, err := proxy.New(w.user, proxy.Options{Lifetime: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Store("alice", "open sesame", deposit, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	src := MyProxySource{Repo: repo, Username: "alice", Passphrase: "open sesame", Lifetime: time.Hour}
	next, err := src.Renew(context.Background(), w.initial)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Identity().Equal(w.user.Identity()) {
		t.Fatalf("renewed identity = %s, want %s", next.Identity(), w.user.Identity())
	}
	if _, err := w.trust.Verify(next.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("renewed chain does not validate: %v", err)
	}
	if remaining := time.Until(next.Leaf().NotAfter); remaining > time.Hour+time.Minute {
		t.Fatalf("renewed proxy lifetime %s exceeds the requested hour", remaining)
	}

	bad := MyProxySource{Repo: repo, Username: "alice", Passphrase: "wrong", Lifetime: time.Hour}
	if _, err := bad.Renew(context.Background(), w.initial); !errors.Is(err, myproxy.ErrBadPassphrase) {
		t.Fatalf("bad passphrase = %v, want ErrBadPassphrase", err)
	}
}

func TestLocalSourceRenews(t *testing.T) {
	w := newWorld(t, time.Hour)
	src := LocalSource{Signer: w.user, Options: proxy.Options{Lifetime: 30 * time.Minute}}
	next, err := src.Renew(context.Background(), w.initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.trust.Verify(next.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("renewed chain does not validate: %v", err)
	}
	if next.Leaf().Fingerprint() == w.initial.Leaf().Fingerprint() {
		t.Fatal("successor must be a fresh proxy, not the original")
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.Renew(canceled, w.initial); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled renew = %v, want context.Canceled", err)
	}
}

// delegationInvoke wires an EndpointSource to a container-hosted
// delegation service over an in-process secure conversation.
func delegationInvoke(t testing.TB, w world, caller *gridcert.Credential, container *ogsa.Container) func(ctx context.Context, op string, body []byte) ([]byte, error) {
	t.Helper()
	cl := &ogsa.Client{
		Transport:  soap.Pipe(container.Dispatcher()),
		Credential: caller,
		TrustStore: w.trust,
	}
	return func(ctx context.Context, op string, body []byte) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return cl.InvokeSecure(ogsa.DelegationHandle, op, body)
	}
}

func TestEndpointSourceDepositAndRenew(t *testing.T) {
	w := newWorld(t, time.Hour)
	host, err := w.authority.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host delegation.example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	container, err := ogsa.NewContainer(ogsa.ContainerConfig{
		Name:       "delegation-host",
		Credential: host,
		TrustStore: w.trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	container.EnableDelegation(ogsa.DelegationConfig{MaxLifetime: 2 * time.Hour})

	invoke := delegationInvoke(t, w, w.initial, container)
	if err := Deposit(context.Background(), invoke, w.initial, 6*time.Hour, 90*time.Minute); err != nil {
		t.Fatal(err)
	}

	src := EndpointSource{Invoke: invoke, Lifetime: time.Hour}
	next, err := src.Renew(context.Background(), w.initial)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Identity().Equal(w.user.Identity()) {
		t.Fatalf("endpoint successor identity = %s, want %s", next.Identity(), w.user.Identity())
	}
	if _, err := w.trust.Verify(next.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("endpoint successor does not validate: %v", err)
	}
	// The successor must actually be able to authenticate.
	m, err := NewManager(w.initial, Config{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Renew(context.Background()); err != nil {
		t.Fatal(err)
	}
	// An establishment under the rotated credential proves the
	// manager's published successor carries a working key.
	conv, err := wssec.EstablishConversation(
		gss.Config{Credential: m.Current(), TrustStore: w.trust},
		soap.Pipe(container.Dispatcher()),
	)
	if err != nil {
		t.Fatalf("handshake under rotated credential: %v", err)
	}
	if !conv.Peer().Identity.Equal(host.Identity()) {
		t.Fatalf("peer = %s, want the container host", conv.Peer().Identity)
	}
}

// When the source can only mint credentials shorter than the horizon,
// every successor is already inside the renewal window — the loop must
// pace itself at RetryMin instead of spinning a renewal storm.
func TestManagerPacesWhenSuccessorsInsideHorizon(t *testing.T) {
	w := newWorld(t, 200*time.Millisecond)
	var renews atomic.Int64
	src := SourceFunc(func(ctx context.Context, _ *gridcert.Credential) (*gridcert.Credential, error) {
		renews.Add(1)
		return proxy.New(w.user, proxy.Options{Lifetime: 200 * time.Millisecond})
	})
	m, err := NewManager(w.initial, Config{
		Source:   src,
		Horizon:  time.Hour, // always inside the window
		RetryMin: 50 * time.Millisecond,
		RetryMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	time.Sleep(300 * time.Millisecond)
	m.Close()
	if n := renews.Load(); n > 20 {
		t.Fatalf("renewal loop spun %d times in 300ms; want RetryMin pacing (~6)", n)
	}
	if n := renews.Load(); n == 0 {
		t.Fatal("loop never renewed")
	}
}

// A hook registered through OnRotateWhile that returns false is removed
// and never fires again.
func TestOnRotateWhilePrunes(t *testing.T) {
	w := newWorld(t, time.Hour)
	mk := func() *gridcert.Credential {
		c, err := proxy.New(w.user, proxy.Options{Lifetime: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	m, err := NewManager(w.initial, Config{Source: Static(mk(), mk(), mk())})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var oneShot, always int
	m.OnRotateWhile(func(_, _ *gridcert.Credential) bool { oneShot++; return false })
	m.OnRotate(func(_, _ *gridcert.Credential) { always++ })
	for i := 0; i < 3; i++ {
		if _, err := m.Renew(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if oneShot != 1 {
		t.Fatalf("self-pruning hook fired %d times, want 1", oneShot)
	}
	if always != 3 {
		t.Fatalf("persistent hook fired %d times, want 3", always)
	}
}
