package credman

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gridcert"
)

// Defaults for the renewal engine. The horizon follows the operational
// rule of thumb for short-lived grid proxies: start renewing with a
// quarter of a 12-hour proxy's typical working margin left, early
// enough that several retries fit before expiry.
const (
	// DefaultHorizon is how far before NotAfter renewal starts.
	DefaultHorizon = 15 * time.Minute
	// DefaultRetryMin is the first retry backoff after a failed renewal.
	DefaultRetryMin = time.Second
	// DefaultRetryMax caps the exponential retry backoff.
	DefaultRetryMax = time.Minute
)

// ErrClosed is returned by operations on a closed Manager.
var ErrClosed = errors.New("credman: manager closed")

// Config tunes a Manager.
type Config struct {
	// Source obtains successors. Required.
	Source Source
	// Horizon is how far before the credential's NotAfter the manager
	// starts renewing; 0 means DefaultHorizon. A horizon longer than
	// the credential's remaining lifetime renews immediately.
	Horizon time.Duration
	// Jitter desynchronizes fleets: each renewal fires up to Jitter
	// earlier than the horizon, uniformly at random. 0 disables.
	Jitter time.Duration
	// RetryMin/RetryMax bound the exponential backoff between failed
	// renewal attempts; 0 selects the defaults.
	RetryMin, RetryMax time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Stats is a snapshot of a Manager's activity.
type Stats struct {
	// Rotations counts successful credential replacements.
	Rotations uint64
	// Failures counts failed renewal attempts (each retried).
	Failures uint64
	// NotAfter is the managed credential's current expiry.
	NotAfter time.Time
}

// Manager keeps one credential alive: Current always returns a usable
// credential (fresh successors replace it atomically), Start runs the
// background renewal loop, and OnRotate hooks let dependent state —
// session pools, resumption caches — rekey at the moment of rotation.
// Safe for concurrent use.
type Manager struct {
	cfg  Config
	now  func() time.Time
	rng  *rand.Rand
	cur  atomic.Pointer[gridcert.Credential]
	base context.Context // canceled by Close; bounds background renewals
	stop context.CancelFunc

	mu      sync.Mutex
	hooks   []*rotateHook
	started bool
	closed  bool
	done    chan struct{}
	renewMu sync.Mutex // serializes Renew (loop vs. explicit callers)

	rotations atomic.Uint64
	failures  atomic.Uint64
}

// NewManager builds a Manager over an initial credential. The manager
// is passive until Start; Renew works immediately.
func NewManager(initial *gridcert.Credential, cfg Config) (*Manager, error) {
	if initial == nil {
		return nil, errors.New("credman: manager requires an initial credential")
	}
	if cfg.Source == nil {
		return nil, errors.New("credman: manager requires a renewal source")
	}
	if cfg.Horizon < 0 || cfg.Jitter < 0 || cfg.RetryMin < 0 || cfg.RetryMax < 0 {
		return nil, errors.New("credman: negative duration")
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.RetryMin == 0 {
		cfg.RetryMin = DefaultRetryMin
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.RetryMax < cfg.RetryMin {
		// An explicit ceiling always wins: a caller who set only
		// RetryMax below the default floor gets a tighter loop, not a
		// silently raised cap.
		cfg.RetryMin = cfg.RetryMax
	}
	nowFn := cfg.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	base, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:  cfg,
		now:  nowFn,
		rng:  rand.New(rand.NewSource(nowFn().UnixNano())),
		base: base,
		stop: stop,
	}
	m.cur.Store(initial)
	return m, nil
}

// Current returns the managed credential (never nil).
func (m *Manager) Current() *gridcert.Credential { return m.cur.Load() }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Rotations: m.rotations.Load(),
		Failures:  m.failures.Load(),
		NotAfter:  m.Current().Leaf().NotAfter,
	}
}

// OnRotate registers a hook called synchronously during each rotation
// with the replaced and the successor credential. Hooks run after the
// successor is validated but before it is published through Current,
// so dependent state (pool rekey, cache invalidation) is settled by
// the time any caller can observe the successor. Hooks must not call
// back into the Manager's renewal methods; Current still returns the
// replaced credential while they run.
func (m *Manager) OnRotate(fn func(old, next *gridcert.Credential)) {
	if fn == nil {
		return
	}
	m.OnRotateWhile(func(old, next *gridcert.Credential) bool {
		fn(old, next)
		return true
	})
}

// rotateHook is one registered rotation hook; fn returning false marks
// it dead.
type rotateHook struct {
	fn func(old, next *gridcert.Credential) bool
}

// OnRotateWhile is OnRotate for hooks with a natural end of life: a
// hook returning false is removed and never called again. Rotation
// hooks cannot be unregistered from outside (the registrant may be long
// gone by the time the hook fires), so a hook watching state that can
// die — a session pool that may be closed — prunes itself instead of
// accumulating on a long-lived manager.
func (m *Manager) OnRotateWhile(fn func(old, next *gridcert.Credential) bool) {
	if fn == nil {
		return
	}
	m.mu.Lock()
	m.hooks = append(m.hooks, &rotateHook{fn: fn})
	m.mu.Unlock()
}

// Renew performs one renewal now: obtain a successor from the source,
// validate it, publish it, and run the rotation hooks. The successor is
// returned. Concurrent Renew calls serialize; the loser of the race
// still performs its own renewal (rotation is idempotent for users of
// Current).
func (m *Manager) Renew(ctx context.Context) (*gridcert.Credential, error) {
	m.renewMu.Lock()
	defer m.renewMu.Unlock()
	if err := m.base.Err(); err != nil {
		return nil, ErrClosed
	}
	old := m.Current()
	next, err := m.cfg.Source.Renew(ctx, old)
	if err != nil {
		m.failures.Add(1)
		return nil, err
	}
	if err := m.usable(next); err != nil {
		m.failures.Add(1)
		return nil, err
	}
	// Hooks first, publication second: by the time Current can return
	// the successor, the old credential's dependent state (pooled
	// sessions, resumption trees) is already rekeyed. Work racing the
	// rotation under the old credential is safe either way — its
	// sessions carry a retired fingerprint and drain at return.
	var hooks []*rotateHook
	m.mu.Lock()
	hooks = append(hooks, m.hooks...)
	m.mu.Unlock()
	dead := make(map[*rotateHook]bool)
	for _, h := range hooks {
		if !h.fn(old, next) {
			dead[h] = true
		}
	}
	m.cur.Store(next)
	m.rotations.Add(1)
	if len(dead) > 0 {
		m.mu.Lock()
		kept := m.hooks[:0]
		for _, h := range m.hooks {
			if !dead[h] {
				kept = append(kept, h)
			}
		}
		m.hooks = kept
		m.mu.Unlock()
	}
	return next, nil
}

// usable rejects successors that cannot carry traffic: nil, already
// expired, or not yet valid.
func (m *Manager) usable(next *gridcert.Credential) error {
	if next == nil {
		return errors.New("credman: source returned no credential")
	}
	now := m.now()
	leaf := next.Leaf()
	if now.After(leaf.NotAfter) {
		return fmt.Errorf("credman: source returned an expired credential (NotAfter %s)", leaf.NotAfter.Format(time.RFC3339))
	}
	if now.Before(leaf.NotBefore) {
		return fmt.Errorf("credman: source returned a not-yet-valid credential (NotBefore %s)", leaf.NotBefore.Format(time.RFC3339))
	}
	return nil
}

// Start launches the background renewal loop: sleep until the horizon
// (minus jitter) before the managed credential's expiry, renew with
// exponential backoff until a successor is published, repeat. Start is
// idempotent; Close stops the loop.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.closed {
		return
	}
	m.started = true
	m.done = make(chan struct{})
	go m.run()
}

// Close stops the renewal loop and waits for it to exit. The managed
// credential remains readable through Current. Closing twice is safe.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	done := m.done
	m.mu.Unlock()
	m.stop()
	if done != nil {
		<-done
	}
	return nil
}

// renewIn computes how long the loop sleeps before renewing the given
// credential: until horizon (minus a random slice of jitter) before
// NotAfter, floored at zero for credentials already inside the window.
func (m *Manager) renewIn(cred *gridcert.Credential) time.Duration {
	at := cred.Leaf().NotAfter.Add(-m.cfg.Horizon)
	if m.cfg.Jitter > 0 {
		m.mu.Lock()
		j := time.Duration(m.rng.Int63n(int64(m.cfg.Jitter)))
		m.mu.Unlock()
		at = at.Add(-j)
	}
	d := at.Sub(m.now())
	if d < 0 {
		d = 0
	}
	return d
}

func (m *Manager) run() {
	defer close(m.done)
	renewed := false
	for {
		wait := m.renewIn(m.Current())
		if renewed && wait < m.cfg.RetryMin {
			// The freshly published successor is already inside the
			// renewal window (the source caps lifetimes below the
			// horizon). Renewing "immediately" forever would spin the
			// loop and hammer the source; pace it like a failure
			// instead.
			wait = m.cfg.RetryMin
		}
		timer := time.NewTimer(wait)
		select {
		case <-m.base.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		// Renew until a successor is published, backing off between
		// failures. The source sees the manager's lifetime as its
		// context, so Close aborts an in-flight attempt promptly.
		backoff := m.cfg.RetryMin
		for {
			if _, err := m.Renew(m.base); err == nil || errors.Is(err, ErrClosed) {
				renewed = true
				break
			}
			select {
			case <-m.base.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > m.cfg.RetryMax {
				backoff = m.cfg.RetryMax
			}
		}
		if m.base.Err() != nil {
			return
		}
	}
}
