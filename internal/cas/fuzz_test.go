package cas

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
)

// FuzzPolicyBundleDecode feeds arbitrary bytes to the bundle decoder
// and a live replica. Torn, truncated, or bit-flipped bundles must
// error — and, critically, must never move the replica: no partial
// state, no version or generation movement, fail closed throughout.
func FuzzPolicyBundleDecode(f *testing.F) {
	auth, err := ca.New(gridcert.MustParseName("/O=Fuzz/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		f.Fatal(err)
	}
	voCred, err := auth.NewEntity(gridcert.MustParseName("/O=Fuzz/CN=VO"), 12*time.Hour)
	if err != nil {
		f.Fatal(err)
	}
	server := NewServer(voCred)
	server.AddMember(gridcert.MustParseName("/O=Fuzz/CN=Member"), "g")
	good, err := server.ExportBundle()
	if err != nil {
		f.Fatal(err)
	}
	valid := good.Encode()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			return
		}
		// Decoded cleanly: re-encode must round-trip byte-identically —
		// a decoder that accepts two spellings of one bundle is a
		// signature-confusion hazard.
		if !bytes.Equal(b.Encode(), data) {
			t.Fatalf("decode/encode not canonical for %d-byte input", len(data))
		}
		r := NewReplica(voCred.Leaf())
		if err := r.Apply(good); err != nil {
			t.Fatal(err)
		}
		verBefore, genBefore := r.Version(), r.Generation()
		if err := r.Apply(b); err != nil {
			// Rejected: the replica must be exactly where it was.
			if r.Version() != verBefore || r.Generation() != genBefore {
				t.Fatal("rejected bundle moved the replica")
			}
			return
		}
		// The only bundle the fuzzer can produce that verifies under the
		// VO key is the genuine one (same version → no-op apply).
		if r.Version() != verBefore || r.Generation() != genBefore {
			t.Fatal("fuzzed bundle passed signature verification with new state")
		}
	})
}
