package cas

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
)

// FuzzPolicyBundleDecode feeds arbitrary bytes to the bundle decoder
// and a live replica. Torn, truncated, or bit-flipped bundles must
// error — and, critically, must never move the replica: no partial
// state, no version or generation movement, fail closed throughout.
func FuzzPolicyBundleDecode(f *testing.F) {
	auth, err := ca.New(gridcert.MustParseName("/O=Fuzz/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		f.Fatal(err)
	}
	voCred, err := auth.NewEntity(gridcert.MustParseName("/O=Fuzz/CN=VO"), 12*time.Hour)
	if err != nil {
		f.Fatal(err)
	}
	server := NewServer(voCred)
	server.AddMember(gridcert.MustParseName("/O=Fuzz/CN=Member"), "g")
	good, err := server.ExportBundle()
	if err != nil {
		f.Fatal(err)
	}
	valid := good.Encode()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			return
		}
		// Decoded cleanly: re-encode must round-trip byte-identically —
		// a decoder that accepts two spellings of one bundle is a
		// signature-confusion hazard.
		if !bytes.Equal(b.Encode(), data) {
			t.Fatalf("decode/encode not canonical for %d-byte input", len(data))
		}
		r := NewReplica(voCred.Leaf())
		if err := r.Apply(good); err != nil {
			t.Fatal(err)
		}
		verBefore, genBefore := r.Version(), r.Generation()
		if err := r.Apply(b); err != nil {
			// Rejected: the replica must be exactly where it was.
			if r.Version() != verBefore || r.Generation() != genBefore {
				t.Fatal("rejected bundle moved the replica")
			}
			return
		}
		// The only bundle the fuzzer can produce that verifies under the
		// VO key is the genuine one (same version → no-op apply).
		if r.Version() != verBefore || r.Generation() != genBefore {
			t.Fatal("fuzzed bundle passed signature verification with new state")
		}
	})
}

// deltaFuzzWorld builds the shared fixture for the delta fuzzers: a VO
// server, the base bundle a replica would have synced, and a genuine
// signed delta covering the mutations since.
func deltaFuzzWorld(f *testing.F) (voCred *gridcert.Credential, base *Bundle, delta *Delta) {
	f.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Fuzz/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		f.Fatal(err)
	}
	voCred, err = auth.NewEntity(gridcert.MustParseName("/O=Fuzz/CN=VO"), 12*time.Hour)
	if err != nil {
		f.Fatal(err)
	}
	server := NewServer(voCred)
	server.AddMember(gridcert.MustParseName("/O=Fuzz/CN=Member"), "g")
	base, err = server.ExportBundle()
	if err != nil {
		f.Fatal(err)
	}
	from := server.Version()
	server.AddMember(gridcert.MustParseName("/O=Fuzz/CN=Joiner"), "g", "h")
	server.AssignRole(gridcert.MustParseName("/O=Fuzz/CN=Joiner"), "admin")
	server.RemoveMember(gridcert.MustParseName("/O=Fuzz/CN=Member"))
	delta, err = server.ExportDelta(from)
	if err != nil {
		f.Fatal(err)
	}
	return voCred, base, delta
}

// FuzzDeltaBundleDecode feeds arbitrary bytes to the delta decoder.
// Torn, truncated, or bit-flipped deltas must error rather than panic,
// and anything that decodes must re-encode byte-identically — a decoder
// that accepts two spellings of one delta is a signature-confusion
// hazard, exactly as for full bundles.
func FuzzDeltaBundleDecode(f *testing.F) {
	_, _, delta := deltaFuzzWorld(f)
	valid := delta.Encode()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if !bytes.Equal(d.Encode(), data) {
			t.Fatalf("decode/encode not canonical for %d-byte input", len(data))
		}
		if d.ToVersion < d.FromVersion {
			t.Fatal("decoder accepted a version-regressing delta")
		}
		if uint64(len(d.Ops)) != d.ToVersion-d.FromVersion {
			t.Fatal("decoder accepted an op count that does not match the version span")
		}
	})
}

// FuzzDeltaApply drives decoded fuzz deltas into a live replica. Every
// outcome must fail closed: a rejected delta leaves version, generation,
// and membership exactly where they were; the only delta that can apply
// is the genuine signed one, it must land exactly at its ToVersion, and
// replaying it must be refused without movement.
func FuzzDeltaApply(f *testing.F) {
	voCred, base, delta := deltaFuzzWorld(f)
	valid := delta.Encode()

	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	sigFlipped := append([]byte(nil), valid...)
	sigFlipped[len(sigFlipped)-1] ^= 0x80
	f.Add(sigFlipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		r := NewReplica(voCred.Leaf())
		if err := r.Apply(base); err != nil {
			t.Fatal(err)
		}
		member := gridcert.MustParseName("/O=Fuzz/CN=Member")
		verBefore, genBefore := r.Version(), r.Generation()
		_, _, memberBefore := r.Lookup(member)
		if err := r.ApplyDelta(d); err != nil {
			if r.Version() != verBefore || r.Generation() != genBefore {
				t.Fatal("rejected delta moved the replica")
			}
			if _, _, ok := r.Lookup(member); ok != memberBefore {
				t.Fatal("rejected delta changed membership")
			}
			return
		}
		// Applied: only a genuinely signed delta can get here, and it must
		// land exactly on its ToVersion — never behind, never past.
		if r.Version() != d.ToVersion || r.Version() <= verBefore {
			t.Fatalf("applied delta left replica at %d (delta to %d, was %d)", r.Version(), d.ToVersion, verBefore)
		}
		if r.Generation() == genBefore {
			t.Fatal("applied delta did not refresh the generation")
		}
		// Replay must be refused as stale without moving anything.
		ver, gen := r.Version(), r.Generation()
		if err := r.ApplyDelta(d); err == nil {
			t.Fatal("replayed delta applied twice")
		}
		if r.Version() != ver || r.Generation() != gen {
			t.Fatal("refused replay moved the replica")
		}
	})
}
