package cas

import (
	"fmt"
	"sort"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/wire"
)

// Durable CAS state: every Server mutation — membership, role
// assignment, VO policy — is journaled BEFORE it applies, carrying the
// post-mutation bundle version so a restarted community server resumes
// the exact version counter and replicas never see it move backwards.

// casMutationKind discriminates journaled CAS mutations.
type casMutationKind uint8

const (
	casMutMemberAdd    casMutationKind = 1
	casMutMemberRemove casMutationKind = 2
	casMutRoleAssign   casMutationKind = 3
	casMutPolicyAdd    casMutationKind = 4
)

const casMutationCodecVersion = 1

// maxBundleMembers bounds decoded membership tables. A 10k-member VO
// bundle is the design point; the cap is headroom above it, well under
// what a 16 MiB wire frame can carry.
const maxBundleMembers = 1 << 20

// SetJournal installs the persistence hook: each mutation's encoded
// record is handed to fn under the server's lock, so journal order
// equals application order. A journal error refuses the mutation.
func (s *Server) SetJournal(fn func(payload []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = fn
}

// Version reports the bundle version: a monotonic counter bumped by
// every membership, role, or policy mutation. Exported bundles carry
// it; replicas refuse to move backwards.
func (s *Server) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

func encodeCASMutation(kind casMutationKind, version uint64, fill func(e *wire.Encoder)) []byte {
	e := wire.NewEncoder()
	e.U8(casMutationCodecVersion)
	e.U8(uint8(kind))
	e.U64(version)
	fill(e)
	return e.Finish()
}

// journalLocked journals one mutation record; the caller holds s.mu.
func (s *Server) journalLocked(kind casMutationKind, fill func(e *wire.Encoder)) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal(encodeCASMutation(kind, s.version+1, fill)); err != nil {
		return fmt.Errorf("cas: mutation not journaled: %w", err)
	}
	return nil
}

// AddMemberChecked is AddMember returning journal failures instead of
// panicking.
func (s *Server) AddMemberChecked(dn gridcert.Name, groups ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journalLocked(casMutMemberAdd, func(e *wire.Encoder) {
		e.Str(dn.String())
		authz.WireEncodeStrings(e, groups)
	}); err != nil {
		return err
	}
	s.members[dn.String()] = append([]string(nil), groups...)
	s.version++
	s.deltaLogAppendLocked(DeltaOp{Kind: casMutMemberAdd, DN: dn.String(), Strings: groups})
	return nil
}

// RemoveMemberChecked is RemoveMember returning journal failures.
func (s *Server) RemoveMemberChecked(dn gridcert.Name) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dn.String()
	_, isMember := s.members[key]
	_, hasRoles := s.roles[key]
	if !isMember && !hasRoles {
		return nil
	}
	if err := s.journalLocked(casMutMemberRemove, func(e *wire.Encoder) {
		e.Str(key)
	}); err != nil {
		return err
	}
	delete(s.members, key)
	delete(s.roles, key)
	s.version++
	s.deltaLogAppendLocked(DeltaOp{Kind: casMutMemberRemove, DN: key})
	return nil
}

// AssignRoleChecked is AssignRole returning journal failures.
func (s *Server) AssignRoleChecked(dn gridcert.Name, roles ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journalLocked(casMutRoleAssign, func(e *wire.Encoder) {
		e.Str(dn.String())
		authz.WireEncodeStrings(e, roles)
	}); err != nil {
		return err
	}
	s.roles[dn.String()] = append(s.roles[dn.String()], roles...)
	s.version++
	s.deltaLogAppendLocked(DeltaOp{Kind: casMutRoleAssign, DN: dn.String(), Strings: roles})
	return nil
}

// AddPolicyChecked is AddPolicy returning validation and journal
// failures. The VO policy's own generation advances inside s.policy;
// the bundle version advances here, under the same lock that ordered
// the journal record.
func (s *Server) AddPolicyChecked(rules ...authz.Rule) error {
	// Validate before journaling (the same check Policy.AddChecked
	// applies): a rule the policy would refuse must never reach the
	// journal — replay refuses it on every restart, so one rejected
	// live call would brick the durable state.
	for _, r := range rules {
		if !r.Effect.Valid() {
			return fmt.Errorf("cas: rule %q has invalid effect %d (want EffectPermit or EffectDeny)", r.ID, r.Effect)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journalLocked(casMutPolicyAdd, func(e *wire.Encoder) {
		e.U32(uint32(len(rules)))
		for _, r := range rules {
			authz.WireEncodeRule(e, r)
		}
	}); err != nil {
		return err
	}
	if err := s.policy.AddChecked(rules...); err != nil {
		return err
	}
	s.version++
	s.deltaLogAppendLocked(DeltaOp{Kind: casMutPolicyAdd, Rules: rules})
	return nil
}

// ApplyReplayed applies one journaled mutation record without
// re-journaling, restoring the journaled version counter. Validation
// matches the mutating APIs': a record that would have been refused
// live is refused on replay.
func (s *Server) ApplyReplayed(payload []byte) error {
	d := wire.NewDecoder(payload)
	if v := d.U8(); d.Err() == nil && v != casMutationCodecVersion {
		return fmt.Errorf("cas: unknown mutation codec version %d", v)
	}
	kind := casMutationKind(d.U8())
	version := d.U64()
	s.mu.Lock()
	defer s.mu.Unlock()
	var op DeltaOp
	switch kind {
	case casMutMemberAdd:
		dn := d.Str()
		groups := authz.WireDecodeStrings(d)
		if err := d.Done(); err != nil {
			return err
		}
		if dn == "" {
			return fmt.Errorf("cas: replayed member with empty DN")
		}
		s.members[dn] = groups
		op = DeltaOp{Kind: kind, DN: dn, Strings: groups}
	case casMutMemberRemove:
		dn := d.Str()
		if err := d.Done(); err != nil {
			return err
		}
		delete(s.members, dn)
		delete(s.roles, dn)
		op = DeltaOp{Kind: kind, DN: dn}
	case casMutRoleAssign:
		dn := d.Str()
		roles := authz.WireDecodeStrings(d)
		if err := d.Done(); err != nil {
			return err
		}
		if dn == "" {
			return fmt.Errorf("cas: replayed role assignment with empty DN")
		}
		s.roles[dn] = append(s.roles[dn], roles...)
		op = DeltaOp{Kind: kind, DN: dn, Strings: roles}
	case casMutPolicyAdd:
		n := d.Count("replayed rule", maxAssertionRules)
		rules := make([]authz.Rule, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rules = append(rules, authz.WireDecodeRule(d))
		}
		if err := d.Done(); err != nil {
			return err
		}
		if err := s.policy.AddChecked(rules...); err != nil {
			return err
		}
		op = DeltaOp{Kind: kind, Rules: rules}
	default:
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("cas: unknown mutation kind %d", kind)
	}
	s.version = version
	// Replayed mutations feed the delta log too, so a restarted
	// publisher can still serve deltas to replicas that tracked it
	// before the restart.
	s.deltaLogAppendLocked(op)
	return nil
}

const casStateVersion = 1

// EncodeState snapshots the server — version, membership, roles, and
// VO policy — for a durable-store snapshot. RestoreState reverses it.
func (s *Server) EncodeState() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := wire.NewEncoder()
	e.U8(casStateVersion)
	e.U64(s.version)
	encodeStringListMap(e, s.members)
	encodeStringListMap(e, s.roles)
	e.Bytes(s.policy.EncodeState())
	return e.Finish()
}

// RestoreState replaces the server's state with a snapshot's, without
// journaling. Fail closed: a malformed snapshot leaves the server
// untouched.
func (s *Server) RestoreState(b []byte) error {
	d := wire.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != casStateVersion {
		return fmt.Errorf("cas: unknown state version %d", v)
	}
	version := d.U64()
	members, err := decodeStringListMap(d, "snapshot member")
	if err != nil {
		return err
	}
	roles, err := decodeStringListMap(d, "snapshot role holder")
	if err != nil {
		return err
	}
	policyState := d.Bytes()
	if err := d.Done(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.policy.RestoreState(policyState); err != nil {
		return err
	}
	s.members = members
	s.roles = roles
	s.version = version
	// A snapshot collapses mutation history: deltas across the restore
	// point cannot be served, so replicas behind it fall back to a full
	// bundle.
	s.deltaLog = nil
	return nil
}

func encodeStringListMap(e *wire.Encoder, m map[string][]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		authz.WireEncodeStrings(e, m[k])
	}
}

func decodeStringListMap(d *wire.Decoder, what string) (map[string][]string, error) {
	n := d.Count(what, maxBundleMembers)
	m := make(map[string][]string, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		v := authz.WireDecodeStrings(d)
		if d.Err() == nil {
			if k == "" {
				return nil, fmt.Errorf("cas: %s with empty DN", what)
			}
			m[k] = v
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
