package cas

import (
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/soap"
	"repro/internal/wssec"
)

// TestCASOverWSTrust binds CAS assertion issuance to the WS-Trust token
// exchange (§4.4: "specified format for security tokens ... allows for
// interoperability"): the member requests a "cas:assertion" token from
// an STS whose issuer is the CAS server. Authentication comes from the
// signed request envelope, so the assertion subject is the authenticated
// requester — the STS cannot be talked into issuing for someone else.
func TestCASOverWSTrust(t *testing.T) {
	bed := newVOBed(t)

	sts := wssec.NewSTS(bed.trust)
	sts.RegisterIssuer("cas:assertion", func(req *gridcert.ChainInfo, claims []byte) ([]byte, error) {
		a, err := bed.server.IssueAssertion(req.Identity)
		if err != nil {
			return nil, err
		}
		return a.Encode(), nil
	})
	d := soap.NewDispatcher()
	sts.Register(d)
	transport := soap.Pipe(d)

	// Alice (a member) gets her assertion through the standard exchange.
	tok, err := wssec.RequestToken(transport, bed.alice, "cas:assertion", nil)
	if err != nil {
		t.Fatal(err)
	}
	assertion, err := DecodeAssertion(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !assertion.Subject.Equal(bed.alice.Identity()) {
		t.Fatalf("assertion subject = %q", assertion.Subject)
	}
	if err := assertion.Verify(bed.server.Certificate(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// And the full Figure-2 enforcement works with the WS-Trust-obtained
	// token.
	cred, err := EmbedInProxy(bed.alice, assertion)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.enforcer.Authorize(cred.Chain, "data:/climate/run1", "read", time.Time{})
	if err != nil || res.Decision != authz.Permit {
		t.Fatalf("%v %+v", err, res)
	}

	// Bob (not a member) authenticates fine but the issuer refuses.
	if _, err := wssec.RequestToken(transport, bed.bob, "cas:assertion", nil); err == nil {
		t.Fatal("non-member obtained an assertion via WS-Trust")
	}
}
