package cas

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
)

// Enforcer is the resource side of Figure 2 (step 3): it validates the
// presented chain, extracts and verifies the CAS assertion, evaluates the
// VO policy it carries, evaluates local policy, and permits the request
// only when *both* permit — keeping the resource the ultimate authority.
type Enforcer struct {
	// Trust validates requester chains.
	Trust *gridcert.TrustStore
	// Local is the resource's own policy.
	Local *authz.Policy

	mu  sync.RWMutex
	vos map[string]*gridcert.Certificate // trusted CAS signing certs by VO DN
}

// NewEnforcer creates a resource-side enforcer.
func NewEnforcer(trust *gridcert.TrustStore, local *authz.Policy) *Enforcer {
	return &Enforcer{
		Trust: trust,
		Local: local,
		vos:   make(map[string]*gridcert.Certificate),
	}
}

// TrustVO registers a CAS server certificate: the resource provider's act
// of outsourcing policy to that community.
func (e *Enforcer) TrustVO(casCert *gridcert.Certificate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vos[casCert.Subject.String()] = casCert
}

// Result is an explained decision, for auditing.
type Result struct {
	Decision authz.Decision
	// Local and VO hold the component decisions.
	Local authz.Decision
	VO    authz.Decision
	// Identity is the authenticated requester.
	Identity gridcert.Name
	// Reason is a human-readable explanation.
	Reason string
}

// Authorize runs the full step-3 check on a presented chain.
func (e *Enforcer) Authorize(chain []*gridcert.Certificate, resource, action string, now time.Time) (Result, error) {
	return e.AuthorizeContext(context.Background(), chain, resource, action, now)
}

// AuthorizeContext is Authorize honoring ctx: a canceled or expired
// context denies the request with ctx.Err() before any validation work.
func (e *Enforcer) AuthorizeContext(ctx context.Context, chain []*gridcert.Certificate, resource, action string, now time.Time) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Decision: authz.Deny, Reason: "request context ended"}, err
	}
	if now.IsZero() {
		now = time.Now()
	}
	info, err := e.Trust.Verify(chain, gridcert.VerifyOptions{Now: now})
	if err != nil {
		return Result{Decision: authz.Deny, Reason: "authentication failed"}, err
	}
	res := Result{Identity: info.Identity}
	req := authz.Request{Subject: info.Identity, Resource: resource, Action: action, Time: now}

	// Local policy always applies.
	res.Local = e.Local.Evaluate(req)

	// VO policy applies through the assertion, if one is present.
	assertion, aerr := ExtractAssertion(info)
	if aerr != nil {
		// No assertion: decision rests on local policy alone, which must
		// therefore permit explicitly.
		res.VO = authz.NotApplicable
		res.Decision = res.Local
		if res.Decision != authz.Permit {
			res.Decision = authz.Deny
			res.Reason = "no CAS assertion and local policy does not permit"
		} else {
			res.Reason = "permitted by local policy alone"
		}
		return res, nil
	}
	e.mu.RLock()
	casCert, trusted := e.vos[assertion.VO.String()]
	e.mu.RUnlock()
	if !trusted {
		res.Decision = authz.Deny
		res.Reason = fmt.Sprintf("assertion from untrusted VO %q", assertion.VO)
		return res, nil
	}
	if err := assertion.Verify(casCert, now); err != nil {
		res.Decision = authz.Deny
		res.Reason = "assertion verification failed"
		return res, err
	}
	if !assertion.Subject.Equal(info.Identity) {
		res.Decision = authz.Deny
		res.Reason = "assertion subject does not match authenticated identity"
		return res, nil
	}
	voPolicy := authz.NewPolicy(authz.DenyOverrides).Add(assertion.Rules...)
	res.VO = voPolicy.Evaluate(req)

	// The applied policy is the intersection: both must permit.
	res.Decision = authz.Combine(res.Local, res.VO)
	if res.Decision != authz.Permit {
		res.Decision = authz.Deny
		res.Reason = fmt.Sprintf("intersection of local (%s) and VO (%s) policy", res.Local, res.VO)
	} else {
		res.Reason = "permitted by local ∩ VO policy"
	}
	return res, nil
}
