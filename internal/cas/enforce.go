package cas

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
)

// Enforcer is the resource side of Figure 2 (step 3): it validates the
// presented chain, extracts and verifies the CAS assertion, evaluates the
// VO policy it carries, evaluates local policy, and permits the request
// only when *both* permit — keeping the resource the ultimate authority.
type Enforcer struct {
	// Trust validates requester chains.
	Trust *gridcert.TrustStore
	// Local is the resource's own policy.
	Local *authz.Policy

	mu  sync.RWMutex
	vos map[string]*gridcert.Certificate // trusted CAS signing certs by VO DN
}

// NewEnforcer creates a resource-side enforcer.
func NewEnforcer(trust *gridcert.TrustStore, local *authz.Policy) *Enforcer {
	return &Enforcer{
		Trust: trust,
		Local: local,
		vos:   make(map[string]*gridcert.Certificate),
	}
}

// TrustVO registers a CAS server certificate: the resource provider's act
// of outsourcing policy to that community.
func (e *Enforcer) TrustVO(casCert *gridcert.Certificate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vos[casCert.Subject.String()] = casCert
}

func (e *Enforcer) trustedVO(vo gridcert.Name) (*gridcert.Certificate, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cert, ok := e.vos[vo.String()]
	return cert, ok
}

// CheckAssertion extracts and fully verifies the CAS assertion a
// validated chain carries: decode, trusted-VO resolution, signature and
// validity window, subject binding. It is the one implementation of
// the "is this community statement usable?" question, shared by the
// Enforcer and the facade's authorization pipeline so the checks can
// never drift apart. Outcomes:
//
//   - (nil, "", nil): the chain carries no assertion at all — the
//     caller falls back to local policy;
//   - (a, "", nil): a is fully verified and bound to the chain's
//     identity;
//   - (nil, reason, err): an assertion is present but unusable — the
//     caller must deny, quoting reason (err adds detail and may be nil).
func CheckAssertion(info *gridcert.ChainInfo, trustedVO func(gridcert.Name) (*gridcert.Certificate, bool), now time.Time) (*Assertion, string, error) {
	assertion, aerr := ExtractAssertion(info)
	switch {
	case errors.Is(aerr, ErrNoAssertion):
		return nil, "", nil
	case aerr != nil:
		// Present but malformed: failing open here (degrading to
		// local-policy-only) is the bug this path exists to prevent.
		return nil, "CAS assertion present but invalid", aerr
	}
	casCert, trusted := trustedVO(assertion.VO)
	if !trusted {
		return nil, fmt.Sprintf("assertion from untrusted VO %q", assertion.VO), nil
	}
	if err := assertion.Verify(casCert, now); err != nil {
		return nil, "assertion verification failed", err
	}
	if !assertion.Subject.Equal(info.Identity) {
		return nil, "assertion subject does not match authenticated identity", nil
	}
	return assertion, "", nil
}

// Result is an explained decision, for auditing.
type Result struct {
	Decision authz.Decision
	// Local and VO hold the component decisions.
	Local authz.Decision
	VO    authz.Decision
	// Identity is the authenticated requester.
	Identity gridcert.Name
	// Reason is a human-readable explanation.
	Reason string
}

// Authorize runs the full step-3 check on a presented chain.
func (e *Enforcer) Authorize(chain []*gridcert.Certificate, resource, action string, now time.Time) (Result, error) {
	return e.AuthorizeContext(context.Background(), chain, resource, action, now)
}

// AuthorizeContext is Authorize honoring ctx: a canceled or expired
// context denies the request with ctx.Err() before any validation work.
func (e *Enforcer) AuthorizeContext(ctx context.Context, chain []*gridcert.Certificate, resource, action string, now time.Time) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Decision: authz.Deny, Reason: "request context ended"}, err
	}
	if now.IsZero() {
		now = time.Now()
	}
	info, err := e.Trust.Verify(chain, gridcert.VerifyOptions{Now: now})
	if err != nil {
		return Result{Decision: authz.Deny, Reason: "authentication failed"}, err
	}
	res := Result{Identity: info.Identity}
	req := authz.Request{Subject: info.Identity, Resource: resource, Action: action, Time: now}

	// VO policy applies through the assertion, if one is present. An
	// assertion that is present but malformed must deny outright — it
	// previously degraded to local-policy-only, letting a corrupted or
	// tampered CAS block widen access to whatever local policy allows.
	assertion, reason, aerr := CheckAssertion(info, e.trustedVO, now)
	if reason != "" {
		res.Decision = authz.Deny
		res.Reason = reason
		return res, aerr
	}

	if assertion == nil {
		// No assertion at all: decision rests on local policy alone,
		// which must therefore permit explicitly.
		res.Local = e.Local.Evaluate(req)
		res.VO = authz.NotApplicable
		res.Decision = res.Local
		if res.Decision != authz.Permit {
			res.Decision = authz.Deny
			res.Reason = "no CAS assertion and local policy does not permit"
		} else {
			res.Reason = "permitted by local policy alone"
		}
		return res, nil
	}
	// Only now — signature checked, subject bound — may the assertion's
	// VO attributes flow into the request, so local policy can match on
	// community groups and roles the VO actually vouched for.
	req.Groups = assertion.Groups
	req.Roles = assertion.Roles
	res.Local = e.Local.Evaluate(req)
	voPolicy := authz.NewPolicy(authz.DenyOverrides)
	if err := voPolicy.AddChecked(assertion.Rules...); err != nil {
		// A signed assertion can still carry an effect byte outside the
		// enum; refusing it here keeps an attacker-chosen zero effect from
		// ever reaching rule evaluation.
		res.Decision = authz.Deny
		res.Reason = "assertion carries a rule with an invalid effect"
		return res, err
	}
	res.VO = voPolicy.Evaluate(req)

	// The applied policy is the intersection: both must permit.
	res.Decision = authz.Combine(res.Local, res.VO)
	if res.Decision != authz.Permit {
		res.Decision = authz.Deny
		res.Reason = fmt.Sprintf("intersection of local (%s) and VO (%s) policy", res.Local, res.VO)
	} else {
		res.Reason = "permitted by local ∩ VO policy"
	}
	return res, nil
}
