package cas

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ogsa"
)

// SyncHandle is the reserved service handle the community server
// publishes its bundle feed under. Like gsi.__admin it lives in the
// gsi.__ namespace: infrastructure of the trust plane, never an
// application service. Authorization for it rides the container's
// normal route step (resource "ogsa:gsi.__cas.sync", op as the action),
// so a VO can restrict which resource servers may pull its policy.
const SyncHandle = "gsi.__cas.sync"

// Sync port type operations.
const (
	// SyncOpBundle returns the current signed policy bundle, encoded.
	// Body: empty.
	SyncOpBundle = "Bundle"
	// SyncOpVersion returns the current bundle version in decimal.
	// Body: empty.
	SyncOpVersion = "Version"
	// SyncOpDelta returns the signed mutation delta from the version in
	// the body (decimal) through the server's current version. Errors
	// when the bounded delta log no longer covers the range; the caller
	// falls back to SyncOpBundle.
	SyncOpDelta = "Delta"
	// SyncOpHotKeys returns the publisher's hottest decision-cache keys
	// (encoded HotKey list; empty when the host exports none). Body: the
	// maximum key count in decimal, 0 for the server cap.
	SyncOpHotKeys = "HotKeys"
)

// SyncService serves a CAS server's signed bundles to pulling replicas.
// Bundles carry their own signature, so the transport adds
// authenticity only in depth — but the service still requires an
// authenticated caller on a secure conversation: which resource servers
// may read the VO's full membership roll is itself policy.
type SyncService struct {
	*ogsa.Base
	server  *Server
	audit   ogsa.AuditSink
	hotKeys func(n int) []HotKey
}

// NewSyncService fronts server's bundle feed.
func NewSyncService(server *Server, audit ogsa.AuditSink) *SyncService {
	return &SyncService{Base: ogsa.NewBase(), server: server, audit: audit}
}

// SetHotKeySource installs the host's hot decision-key exporter (the
// resource server's pipeline cache, when cache warming is enabled).
// Without one, SyncOpHotKeys serves an empty list. Set before the
// service is published; not safe to swap while serving.
func (s *SyncService) SetHotKeySource(fn func(n int) []HotKey) {
	s.hotKeys = fn
}

var _ ogsa.Service = (*SyncService)(nil)

func (s *SyncService) record(event, subject, detail string) {
	if s.audit != nil {
		s.audit.Record(event, subject, detail)
	}
}

// Invoke implements ogsa.Service. Authorization already happened in the
// container's route step; the channel rules mirror the admin surface's.
func (s *SyncService) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	if !call.Conversation {
		s.record("cas-sync-refused", call.Caller.Name.String(), "no secure conversation")
		return nil, errors.New("cas: sync operations require an established secure conversation")
	}
	if call.Caller.Anonymous {
		s.record("cas-sync-refused", "", "anonymous caller")
		return nil, errors.New("cas: sync operations require an authenticated caller")
	}
	subject := call.Caller.Name.String()
	switch call.Op {
	case SyncOpBundle:
		b, err := s.server.ExportBundle()
		if err != nil {
			s.record("cas-sync-error", subject, err.Error())
			return nil, err
		}
		s.record("cas-sync-bundle", subject, fmt.Sprintf("version %d", b.Version))
		return b.Encode(), nil
	case SyncOpVersion:
		return []byte(strconv.FormatUint(s.server.Version(), 10)), nil
	case SyncOpDelta:
		from, err := strconv.ParseUint(string(call.Body), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cas: delta op wants a decimal from-version: %w", err)
		}
		d, err := s.server.ExportDelta(from)
		if err != nil {
			s.record("cas-sync-delta-miss", subject, err.Error())
			return nil, err
		}
		s.record("cas-sync-delta", subject, fmt.Sprintf("versions %d-%d, %d ops", d.FromVersion, d.ToVersion, len(d.Ops)))
		return d.Encode(), nil
	case SyncOpHotKeys:
		n := 0
		if len(call.Body) > 0 {
			v, err := strconv.Atoi(string(call.Body))
			if err != nil {
				return nil, fmt.Errorf("cas: hot-key op wants a decimal count: %w", err)
			}
			n = v
		}
		if n <= 0 || n > MaxHotKeys {
			n = MaxHotKeys
		}
		var keys []HotKey
		if s.hotKeys != nil {
			keys = s.hotKeys(n)
			if len(keys) > n {
				keys = keys[:n]
			}
		}
		s.record("cas-sync-hotkeys", subject, fmt.Sprintf("%d keys", len(keys)))
		return EncodeHotKeys(keys), nil
	default:
		return nil, fmt.Errorf("cas: sync port type has no op %q", call.Op)
	}
}
