package cas

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/wire"
)

// Policy bundles federate the VO outward: the community server exports
// its entire policy state — membership, roles, rules — as one signed,
// versioned document, and resource servers pull it to keep a local
// replica. The replica then answers VO-layer questions for requesters
// that did not present a CAS assertion, with the same intersection
// semantics: the resource stays the ultimate authority, the bundle only
// supplies the VO's half of the decision.

const bundleMagic = "cas-bundle-v1"

// Bundle is one signed export of a VO's policy state.
type Bundle struct {
	// VO is the issuing community's identity (the CAS server's DN).
	VO gridcert.Name
	// Version is the server's bundle version at export. Replicas apply
	// bundles in version order and never move backwards.
	Version uint64
	// IssuedAt stamps the export.
	IssuedAt time.Time
	// Members maps member DN -> VO groups; Roles maps member DN -> roles.
	Members map[string][]string
	Roles   map[string][]string
	// Rules is the full VO policy.
	Rules []authz.Rule

	Signature []byte
}

func (b *Bundle) tbs() []byte {
	e := wire.NewEncoder()
	e.Str(bundleMagic)
	e.Str(b.VO.String())
	e.U64(b.Version)
	e.I64(b.IssuedAt.Unix())
	encodeStringListMap(e, b.Members)
	encodeStringListMap(e, b.Roles)
	e.U32(uint32(len(b.Rules)))
	for _, r := range b.Rules {
		authz.WireEncodeRule(e, r)
	}
	return e.Finish()
}

// Encode serialises the bundle with its signature.
func (b *Bundle) Encode() []byte {
	return wire.NewEncoder().Bytes(b.tbs()).Bytes(b.Signature).Finish()
}

// DecodeBundle parses an encoded bundle (signature not verified).
func DecodeBundle(data []byte) (*Bundle, error) {
	d := wire.NewDecoder(data)
	tbs := d.Bytes()
	sig := d.Bytes()
	if err := d.Done(); err != nil {
		return nil, err
	}
	td := wire.NewDecoder(tbs)
	if magic := td.Str(); td.Err() == nil && magic != bundleMagic {
		return nil, fmt.Errorf("cas: bad bundle magic %q", magic)
	}
	b := &Bundle{}
	voStr := td.Str()
	b.Version = td.U64()
	b.IssuedAt = time.Unix(td.I64(), 0).UTC()
	var err error
	if b.Members, err = decodeStringListMap(td, "bundle member"); err != nil {
		return nil, err
	}
	if b.Roles, err = decodeStringListMap(td, "bundle role holder"); err != nil {
		return nil, err
	}
	n := td.Count("bundle rule", maxAssertionRules)
	for i := 0; i < n && td.Err() == nil; i++ {
		b.Rules = append(b.Rules, authz.WireDecodeRule(td))
	}
	if err := td.Done(); err != nil {
		return nil, err
	}
	if b.VO, err = gridcert.ParseName(voStr); err != nil {
		return nil, err
	}
	b.Signature = sig
	return b, nil
}

// Verify checks the bundle's signature against the CAS certificate.
func (b *Bundle) Verify(casCert *gridcert.Certificate) error {
	if !casCert.Subject.Equal(b.VO) {
		return fmt.Errorf("cas: bundle VO %q does not match CAS certificate %q", b.VO, casCert.Subject)
	}
	if err := casCert.PublicKey.Verify(b.tbs(), b.Signature); err != nil {
		return fmt.Errorf("cas: bundle signature: %w", err)
	}
	return nil
}

// ExportBundle snapshots the server's state as a signed bundle.
func (s *Server) ExportBundle() (*Bundle, error) {
	s.mu.RLock()
	members := make(map[string][]string, len(s.members))
	for k, v := range s.members {
		members[k] = append([]string(nil), v...)
	}
	roles := make(map[string][]string, len(s.roles))
	for k, v := range s.roles {
		roles[k] = append([]string(nil), v...)
	}
	version := s.version
	s.mu.RUnlock()
	b := &Bundle{
		VO:       s.VO(),
		Version:  version,
		IssuedAt: s.now().UTC(),
		Members:  members,
		Roles:    roles,
		Rules:    s.policy.Rules(),
	}
	sig, err := s.cred.Key.Sign(b.tbs())
	if err != nil {
		return nil, err
	}
	b.Signature = sig
	return b, nil
}

// ErrStaleBundle reports an Apply with a version below the replica's.
var ErrStaleBundle = errors.New("cas: bundle version is stale")

// Replica is a resource server's local copy of one VO's bundle. Apply
// is fail-closed and generation-counted: a bundle that does not verify,
// carries an older version, or contains an invalid rule leaves the
// previous bundle live and the generation unchanged, so decision caches
// keyed on the generation stay warm across rejected syncs.
type Replica struct {
	cert *gridcert.Certificate

	mu      sync.RWMutex
	version uint64
	gen     uint64
	members map[string][]string
	roles   map[string][]string
	policy  *authz.Policy
}

// NewReplica creates an empty replica trusting casCert as the VO's
// signing certificate. Until the first successful Apply the replica
// holds version 0 and vouches for nobody.
func NewReplica(casCert *gridcert.Certificate) *Replica {
	return &Replica{
		cert:    casCert,
		members: map[string][]string{},
		roles:   map[string][]string{},
		policy:  authz.NewPolicy(authz.DenyOverrides),
	}
}

// VO returns the community identity the replica mirrors.
func (r *Replica) VO() gridcert.Name { return r.cert.Subject }

// Apply installs a bundle. Equal version is an up-to-date no-op; lower
// is ErrStaleBundle; a bad signature or invalid rule is an error. In
// every failure case the previous bundle stays live.
func (r *Replica) Apply(b *Bundle) error {
	if err := b.Verify(r.cert); err != nil {
		return err
	}
	next := authz.NewPolicy(authz.DenyOverrides)
	if err := next.AddChecked(b.Rules...); err != nil {
		return fmt.Errorf("cas: bundle rejected: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b.Version == r.version {
		return nil
	}
	if b.Version < r.version {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleBundle, r.version, b.Version)
	}
	// Deep-copy the bundle's maps: ApplyDelta mutates the replica's maps
	// in place, and aliasing them to the caller's bundle would corrupt a
	// signed Bundle the caller still holds (its signature would stop
	// verifying after the first delta).
	members := make(map[string][]string, len(b.Members))
	for dn, groups := range b.Members {
		members[dn] = append([]string(nil), groups...)
	}
	roles := make(map[string][]string, len(b.Roles))
	for dn, rs := range b.Roles {
		roles[dn] = append([]string(nil), rs...)
	}
	r.members = members
	r.roles = roles
	r.policy = next
	r.version = b.Version
	r.gen++
	return nil
}

// Version reports the applied bundle version (0 = none yet).
func (r *Replica) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Generation counts successful Applies. Decisions computed against the
// replica are only valid for the generation they were computed under.
func (r *Replica) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Members reports the replica's membership count.
func (r *Replica) Members() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup reports whether dn is a VO member, and if so its groups and
// roles from the applied bundle.
func (r *Replica) Lookup(dn gridcert.Name) (groups, roles []string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.members[dn.String()]
	if !ok {
		return nil, nil, false
	}
	return g, r.roles[dn.String()], true
}

// Evaluate answers the VO's half of a decision from the replica: the
// request is scored against the bundle's rules with the subject's
// bundle groups and roles attached. The caller intersects the result
// with local policy, exactly as it would an assertion's.
func (r *Replica) Evaluate(req authz.Request) authz.Decision {
	r.mu.RLock()
	groups, ok := r.members[req.Subject.String()]
	roles := r.roles[req.Subject.String()]
	policy := r.policy
	r.mu.RUnlock()
	if !ok {
		return authz.Deny
	}
	req.Groups = groups
	req.Roles = roles
	return policy.Evaluate(req)
}
