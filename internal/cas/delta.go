package cas

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/wire"
)

// Delta bundles: a full bundle ships the VO's entire membership roll on
// every sync, which at 100k members is megabytes per pull for what is
// usually a handful of changes. A Delta carries only the mutations
// between two bundle versions — signed and monotonic like the bundle
// itself, one op per version step, so a replica can verify it covers
// exactly the gap between its version and the server's. Anything that
// does not line up (gap, replay, reorder, bad signature, malformed op)
// is refused and the puller falls back to a full bundle; the replica's
// last good state stays live throughout.

const deltaMagic = "cas-delta-v1"

// maxDeltaOps bounds one delta's op list; a replica further behind than
// this pulls a full bundle instead (the server's delta log is bounded
// anyway).
const maxDeltaOps = 1 << 16

// ErrDeltaUnavailable reports an ExportDelta whose requested range the
// server's bounded delta log no longer covers (or never did: a restore
// from snapshot collapses history). The caller serves a full bundle.
var ErrDeltaUnavailable = errors.New("cas: delta log does not cover requested version")

// ErrDeltaGap reports an ApplyDelta whose FromVersion is not the
// replica's current version: applying it would skip or replay
// mutations. The puller falls back to a full bundle.
var ErrDeltaGap = errors.New("cas: delta does not start at replica version")

// DeltaOp is one replicated mutation. Exactly one of the payload
// shapes is populated, selected by Kind: member add (DN + groups),
// member remove (DN), role assign (DN + roles), policy add (rules).
type DeltaOp struct {
	Kind    casMutationKind
	DN      string
	Strings []string
	Rules   []authz.Rule
}

func (op DeltaOp) clone() DeltaOp {
	c := DeltaOp{Kind: op.Kind, DN: op.DN}
	if op.Strings != nil {
		c.Strings = append([]string(nil), op.Strings...)
	}
	if op.Rules != nil {
		c.Rules = append([]authz.Rule(nil), op.Rules...)
	}
	return c
}

// Delta is a signed export of the mutations taking a VO's policy state
// from FromVersion to ToVersion: Ops[i] is the mutation that produced
// version FromVersion+i+1.
type Delta struct {
	VO          gridcert.Name
	FromVersion uint64
	ToVersion   uint64
	IssuedAt    time.Time
	Ops         []DeltaOp

	Signature []byte
}

func (d *Delta) tbs() []byte {
	e := wire.NewEncoder()
	e.Str(deltaMagic)
	e.Str(d.VO.String())
	e.U64(d.FromVersion)
	e.U64(d.ToVersion)
	e.I64(d.IssuedAt.Unix())
	e.U32(uint32(len(d.Ops)))
	for _, op := range d.Ops {
		e.U8(uint8(op.Kind))
		e.Str(op.DN)
		authz.WireEncodeStrings(e, op.Strings)
		e.U32(uint32(len(op.Rules)))
		for _, r := range op.Rules {
			authz.WireEncodeRule(e, r)
		}
	}
	return e.Finish()
}

// Encode serialises the delta with its signature.
func (d *Delta) Encode() []byte {
	return wire.NewEncoder().Bytes(d.tbs()).Bytes(d.Signature).Finish()
}

// DecodeDelta parses an encoded delta (signature not verified) and
// checks its structural invariants: versions must not regress, the op
// count must equal the version span, and every op must be well-formed
// for its kind.
func DecodeDelta(data []byte) (*Delta, error) {
	dec := wire.NewDecoder(data)
	tbs := dec.Bytes()
	sig := dec.Bytes()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	td := wire.NewDecoder(tbs)
	if magic := td.Str(); td.Err() == nil && magic != deltaMagic {
		return nil, fmt.Errorf("cas: bad delta magic %q", magic)
	}
	d := &Delta{}
	voStr := td.Str()
	d.FromVersion = td.U64()
	d.ToVersion = td.U64()
	d.IssuedAt = time.Unix(td.I64(), 0).UTC()
	n := td.Count("delta op", maxDeltaOps)
	for i := 0; i < n && td.Err() == nil; i++ {
		op := DeltaOp{Kind: casMutationKind(td.U8()), DN: td.Str()}
		op.Strings = authz.WireDecodeStrings(td)
		rn := td.Count("delta rule", maxAssertionRules)
		for j := 0; j < rn && td.Err() == nil; j++ {
			op.Rules = append(op.Rules, authz.WireDecodeRule(td))
		}
		d.Ops = append(d.Ops, op)
	}
	if err := td.Done(); err != nil {
		return nil, err
	}
	var err error
	if d.VO, err = gridcert.ParseName(voStr); err != nil {
		return nil, err
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	d.Signature = sig
	return d, nil
}

// validate checks the structural invariants a well-formed delta must
// satisfy, independent of any replica state. Shared by DecodeDelta and
// ApplyDelta so a hand-constructed delta gets the same scrutiny as a
// decoded one.
func (d *Delta) validate() error {
	if d.ToVersion < d.FromVersion {
		return fmt.Errorf("cas: delta versions regress (%d -> %d)", d.FromVersion, d.ToVersion)
	}
	span := d.ToVersion - d.FromVersion
	if span > maxDeltaOps {
		return fmt.Errorf("cas: delta spans %d versions (cap %d)", span, maxDeltaOps)
	}
	if uint64(len(d.Ops)) != span {
		return fmt.Errorf("cas: delta carries %d ops across %d version steps", len(d.Ops), span)
	}
	for i, op := range d.Ops {
		switch op.Kind {
		case casMutMemberAdd, casMutRoleAssign:
			if op.DN == "" {
				return fmt.Errorf("cas: delta op %d has empty DN", i)
			}
			if len(op.Rules) != 0 {
				return fmt.Errorf("cas: delta op %d carries rules on a membership op", i)
			}
		case casMutMemberRemove:
			if op.DN == "" {
				return fmt.Errorf("cas: delta op %d has empty DN", i)
			}
			if len(op.Strings) != 0 || len(op.Rules) != 0 {
				return fmt.Errorf("cas: delta op %d carries payload on a removal", i)
			}
		case casMutPolicyAdd:
			if op.DN != "" || len(op.Strings) != 0 {
				return fmt.Errorf("cas: delta op %d carries a DN on a policy op", i)
			}
			for _, r := range op.Rules {
				if !r.Effect.Valid() {
					return fmt.Errorf("cas: delta rule %q has invalid effect %d", r.ID, r.Effect)
				}
			}
		default:
			return fmt.Errorf("cas: delta op %d has unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// Verify checks the delta's signature against the CAS certificate.
func (d *Delta) Verify(casCert *gridcert.Certificate) error {
	if !casCert.Subject.Equal(d.VO) {
		return fmt.Errorf("cas: delta VO %q does not match CAS certificate %q", d.VO, casCert.Subject)
	}
	if err := casCert.PublicKey.Verify(d.tbs(), d.Signature); err != nil {
		return fmt.Errorf("cas: delta signature: %w", err)
	}
	return nil
}

// deltaLogSize bounds the server's in-memory mutation history: replicas
// further behind than this fall back to a full bundle.
const deltaLogSize = 4096

// deltaLogEntry records one applied mutation and the version it
// produced. Entries are contiguous: each mutation bumps the version by
// exactly one and appends exactly one entry.
type deltaLogEntry struct {
	version uint64
	op      DeltaOp
}

// deltaLogAppendLocked records an applied mutation at the server's
// current (post-bump) version; the caller holds s.mu. The log is
// bounded: when full, the oldest half is dropped and replicas that far
// behind pull a full bundle.
func (s *Server) deltaLogAppendLocked(op DeltaOp) {
	if len(s.deltaLog) >= deltaLogSize {
		keep := s.deltaLog[len(s.deltaLog)-deltaLogSize/2:]
		s.deltaLog = append(s.deltaLog[:0], keep...)
	}
	s.deltaLog = append(s.deltaLog, deltaLogEntry{version: s.version, op: op.clone()})
}

// ExportDelta exports the signed mutation sequence from version `from`
// (exclusive) through the server's current version. ErrDeltaUnavailable
// when the bounded log no longer reaches back that far; the caller
// serves a full bundle instead. A replica already at the current
// version gets a valid empty delta.
func (s *Server) ExportDelta(from uint64) (*Delta, error) {
	s.mu.RLock()
	version := s.version
	if from > version {
		s.mu.RUnlock()
		return nil, fmt.Errorf("cas: delta requested from version %d but server is at %d", from, version)
	}
	var ops []DeltaOp
	if from < version {
		log := s.deltaLog
		if len(log) == 0 || log[0].version > from+1 || log[len(log)-1].version != version {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: from %d, server at %d", ErrDeltaUnavailable, from, version)
		}
		start := int(from + 1 - log[0].version)
		ops = make([]DeltaOp, 0, version-from)
		for _, e := range log[start:] {
			ops = append(ops, e.op.clone())
		}
	}
	s.mu.RUnlock()
	d := &Delta{
		VO:          s.VO(),
		FromVersion: from,
		ToVersion:   version,
		IssuedAt:    s.now().UTC(),
		Ops:         ops,
	}
	sig, err := s.cred.Key.Sign(d.tbs())
	if err != nil {
		return nil, err
	}
	d.Signature = sig
	return d, nil
}

// ApplyDelta advances the replica by a signed delta. Fail closed and
// atomic: a bad signature, malformed op, version regression
// (ErrStaleBundle), or a delta not starting exactly at the replica's
// version (ErrDeltaGap) leaves the previous state live and the
// generation unchanged — every failure mode is the caller's cue to fall
// back to a full bundle. An empty delta at the replica's version is the
// up-to-date no-op.
func (r *Replica) ApplyDelta(d *Delta) error {
	if err := d.Verify(r.cert); err != nil {
		return err
	}
	if err := d.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.FromVersion == d.ToVersion {
		if d.ToVersion == r.version {
			return nil
		}
		return fmt.Errorf("%w: empty delta at version %d, replica at %d", ErrDeltaGap, d.ToVersion, r.version)
	}
	if d.ToVersion <= r.version {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleBundle, r.version, d.ToVersion)
	}
	if d.FromVersion != r.version {
		return fmt.Errorf("%w: delta from %d, replica at %d", ErrDeltaGap, d.FromVersion, r.version)
	}
	// Policy rules first: AddChecked is the only step below that can
	// still refuse (and validate() pre-checked its only failure mode),
	// so running it before any map mutation keeps a refusal atomic.
	// Rule order within the batch is append order either way.
	var rules []authz.Rule
	for _, op := range d.Ops {
		if op.Kind == casMutPolicyAdd {
			rules = append(rules, op.Rules...)
		}
	}
	if len(rules) > 0 {
		if err := r.policy.AddChecked(rules...); err != nil {
			return fmt.Errorf("cas: delta rejected: %w", err)
		}
	}
	for _, op := range d.Ops {
		switch op.Kind {
		case casMutMemberAdd:
			r.members[op.DN] = append([]string(nil), op.Strings...)
		case casMutMemberRemove:
			delete(r.members, op.DN)
			delete(r.roles, op.DN)
		case casMutRoleAssign:
			r.roles[op.DN] = append(r.roles[op.DN], op.Strings...)
		}
	}
	r.version = d.ToVersion
	r.gen++
	return nil
}
