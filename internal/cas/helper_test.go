package cas

import (
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// proxyNewForTest issues a restricted proxy carrying an arbitrary CAS
// policy blob without EmbedInProxy's subject check — used to simulate
// adversarial embeddings.
func proxyNewForTest(member *gridcert.Credential, blob []byte) (*gridcert.Credential, error) {
	return proxy.New(member, proxy.Options{
		Variant:        gridcert.ProxyRestricted,
		PolicyLanguage: PolicyLanguage,
		Policy:         blob,
	})
}
