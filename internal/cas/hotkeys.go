package cas

import (
	"fmt"

	"repro/internal/wire"
)

// Hot decision keys: the publisher exports the identifiers of its most-
// hit decision-cache entries — subject DN, chain fingerprint, resource,
// action — so a replica can pre-compute those decisions through its OWN
// pipeline and promote with a warm cache. Only keys cross the wire,
// never decisions: a forged or stale key can cost a replica one wasted
// evaluation, but can never inject an authorization result, which is
// why the list is a transport-authenticated hint rather than a signed
// document.

const hotKeysMagic = "cas-hotkeys-v1"

// MaxHotKeys bounds an exported or decoded hot-key list.
const MaxHotKeys = 4096

// HotKey identifies one hot decision-cache entry.
type HotKey struct {
	// Subject is the end-entity DN of the cached decision's requester.
	Subject string
	// FP is the subject chain fingerprint the cache entry is keyed on.
	FP [32]byte
	// Resource and Action complete the decision key.
	Resource string
	Action   string
	// NotAfter (unix seconds) is when the source cache entry expires; a
	// warmed decision must not outlive it, so warming can never extend a
	// decision past what the publisher itself would honor.
	NotAfter int64
}

// EncodeHotKeys serialises a hot-key list.
func EncodeHotKeys(keys []HotKey) []byte {
	e := wire.NewEncoder()
	e.Str(hotKeysMagic)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k.Subject)
		e.Bytes(k.FP[:])
		e.Str(k.Resource)
		e.Str(k.Action)
		e.I64(k.NotAfter)
	}
	return e.Finish()
}

// DecodeHotKeys parses a hot-key list, enforcing the MaxHotKeys cap and
// per-key shape.
func DecodeHotKeys(data []byte) ([]HotKey, error) {
	d := wire.NewDecoder(data)
	if magic := d.Str(); d.Err() == nil && magic != hotKeysMagic {
		return nil, fmt.Errorf("cas: bad hot-key magic %q", magic)
	}
	n := d.Count("hot key", MaxHotKeys)
	keys := make([]HotKey, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		var k HotKey
		k.Subject = d.Str()
		fp := d.Bytes()
		k.Resource = d.Str()
		k.Action = d.Str()
		k.NotAfter = d.I64()
		if d.Err() == nil {
			if len(fp) != len(k.FP) {
				return nil, fmt.Errorf("cas: hot key %d has %d-byte fingerprint", i, len(fp))
			}
			copy(k.FP[:], fp)
			if k.Subject == "" {
				return nil, fmt.Errorf("cas: hot key %d has empty subject", i)
			}
			keys = append(keys, k)
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return keys, nil
}
