package cas

import (
	"errors"
	"testing"

	"repro/internal/authz"
	"repro/internal/ogsa"
)

func newSyncCall(op string, bed *voBed, conversation, anonymous bool) *ogsa.Call {
	c := &ogsa.Call{Service: SyncHandle, Op: op, Conversation: conversation}
	if anonymous {
		c.Caller = ogsa.Identity{Anonymous: true}
	} else {
		c.Caller = ogsa.Identity{Name: bed.alice.Identity()}
	}
	return c
}

func TestBundleExportApplyRoundTrip(t *testing.T) {
	bed := newVOBed(t)
	bed.server.AssignRole(bed.alice.Identity(), "operator")

	b, err := bed.server.ExportBundle()
	if err != nil {
		t.Fatalf("ExportBundle: %v", err)
	}
	if b.Version != bed.server.Version() {
		t.Fatalf("bundle version %d != server version %d", b.Version, bed.server.Version())
	}

	decoded, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	r := NewReplica(bed.server.Certificate())
	if err := r.Apply(decoded); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if r.Version() != b.Version || r.Generation() != 1 {
		t.Fatalf("replica version=%d gen=%d, want %d and 1", r.Version(), r.Generation(), b.Version)
	}
	groups, roles, ok := r.Lookup(bed.alice.Identity())
	if !ok || len(groups) != 1 || groups[0] != "researchers" || len(roles) != 1 || roles[0] != "operator" {
		t.Fatalf("Lookup(alice) = %v,%v,%v", groups, roles, ok)
	}
	if _, _, ok := r.Lookup(bed.bob.Identity()); ok {
		t.Fatal("bob is not a member")
	}

	// The replica answers the VO's half of a decision.
	req := authz.Request{Subject: bed.alice.Identity(), Resource: "data:/climate/ocean", Action: "read"}
	if d := r.Evaluate(req); d != authz.Permit {
		t.Fatalf("replica Evaluate = %v, want permit", d)
	}
	req.Action = "write"
	if d := r.Evaluate(req); d == authz.Permit {
		t.Fatal("replica granted an action the VO policy does not")
	}
	if d := r.Evaluate(authz.Request{Subject: bed.bob.Identity(), Resource: "data:/climate/ocean", Action: "read"}); d != authz.Deny {
		t.Fatal("non-member must be denied at the replica")
	}
}

func TestReplicaApplyFailsClosed(t *testing.T) {
	bed := newVOBed(t)
	r := NewReplica(bed.server.Certificate())
	good, err := bed.server.ExportBundle()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(good); err != nil {
		t.Fatal(err)
	}
	wantVer, wantGen := r.Version(), r.Generation()

	// Tampered payload: signature breaks.
	tampered, err := bed.server.ExportBundle()
	if err != nil {
		t.Fatal(err)
	}
	tampered.Members["/O=Grid/CN=Mallory"] = []string{"researchers"}
	if err := r.Apply(tampered); err == nil {
		t.Fatal("tampered bundle accepted")
	}

	// Stale version: a rolled-back bundle must not regress the replica.
	bed.server.AddMember(bed.bob.Identity(), "researchers")
	fresh, err := bed.server.ExportBundle()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(good); !errors.Is(err, ErrStaleBundle) {
		t.Fatalf("stale bundle: err=%v, want ErrStaleBundle", err)
	}

	// Equal version: up-to-date no-op, no generation churn.
	genBefore := r.Generation()
	if err := r.Apply(fresh); err != nil {
		t.Fatalf("re-apply of current bundle: %v", err)
	}
	if r.Generation() != genBefore {
		t.Fatal("up-to-date apply churned the generation")
	}

	// Wrong signer: a bundle from another VO's key.
	other := newVOBed(t)
	forged, err := other.server.ExportBundle()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(forged); err == nil {
		t.Fatal("bundle signed by a different VO accepted")
	}
	_ = wantVer
	_ = wantGen
	if _, _, ok := r.Lookup(bed.alice.Identity()); !ok {
		t.Fatal("failed applies corrupted the live replica")
	}
}

func TestCASJournalAndReplay(t *testing.T) {
	bed := newVOBed(t) // two mutations already applied, unjournaled
	var journal [][]byte
	bed.server.SetJournal(func(p []byte) error {
		journal = append(journal, append([]byte(nil), p...))
		return nil
	})
	bed.server.AddMember(bed.bob.Identity(), "students")
	bed.server.AssignRole(bed.bob.Identity(), "reader")
	bed.server.AddPolicy(authz.Rule{
		ID: "vo-students", Effect: authz.EffectPermit,
		Groups: []string{"students"}, Resources: []string{"data:/climate/public/*"}, Actions: []string{"read"},
	})
	bed.server.RemoveMember(bed.alice.Identity())
	if len(journal) != 4 {
		t.Fatalf("journaled %d mutations, want 4", len(journal))
	}

	// Replay into a fresh server with the same credential: identical
	// version, membership, and policy.
	restored := NewServer(bed.server.cred)
	// Pre-journal state arrives via snapshot.
	preSnapshot := func() []byte {
		s := NewServer(bed.server.cred)
		s.AddMember(bed.alice.Identity(), "researchers")
		s.AddPolicy(authz.Rule{
			ID: "vo-read", Effect: authz.EffectPermit,
			Groups: []string{"researchers"}, Resources: []string{"data:/climate/*"}, Actions: []string{"read"},
		})
		return s.EncodeState()
	}()
	if err := restored.RestoreState(preSnapshot); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for i, p := range journal {
		if err := restored.ApplyReplayed(p); err != nil {
			t.Fatalf("ApplyReplayed(%d): %v", i, err)
		}
	}
	if restored.Version() != bed.server.Version() {
		t.Fatalf("restored version %d != live %d", restored.Version(), bed.server.Version())
	}
	if _, ok := restored.IsMember(bed.alice.Identity()); ok {
		t.Fatal("removed member survived replay")
	}
	g, ok := restored.IsMember(bed.bob.Identity())
	if !ok || len(g) != 1 || g[0] != "students" {
		t.Fatalf("IsMember(bob) = %v,%v", g, ok)
	}
	if roles := restored.Roles(bed.bob.Identity()); len(roles) != 1 || roles[0] != "reader" {
		t.Fatalf("Roles(bob) = %v", roles)
	}
	if restored.PolicySize() != bed.server.PolicySize() {
		t.Fatalf("restored policy size %d != live %d", restored.PolicySize(), bed.server.PolicySize())
	}
}

func TestCASJournalErrorRefusesMutation(t *testing.T) {
	bed := newVOBed(t)
	boom := errors.New("disk full")
	bed.server.SetJournal(func([]byte) error { return boom })
	verBefore := bed.server.Version()

	if err := bed.server.AddMemberChecked(bed.bob.Identity(), "students"); !errors.Is(err, boom) {
		t.Fatalf("AddMemberChecked: err=%v", err)
	}
	if err := bed.server.AssignRoleChecked(bed.bob.Identity(), "reader"); !errors.Is(err, boom) {
		t.Fatalf("AssignRoleChecked: err=%v", err)
	}
	if err := bed.server.RemoveMemberChecked(bed.alice.Identity()); !errors.Is(err, boom) {
		t.Fatalf("RemoveMemberChecked: err=%v", err)
	}
	if err := bed.server.AddPolicyChecked(authz.Rule{ID: "x", Effect: authz.EffectPermit}); !errors.Is(err, boom) {
		t.Fatalf("AddPolicyChecked: err=%v", err)
	}
	if bed.server.Version() != verBefore {
		t.Fatal("refused mutations advanced the version")
	}
	if _, ok := bed.server.IsMember(bed.bob.Identity()); ok {
		t.Fatal("refused AddMember applied")
	}
	if _, ok := bed.server.IsMember(bed.alice.Identity()); !ok {
		t.Fatal("refused RemoveMember applied")
	}
}

func TestCASInvalidRuleNeverJournaled(t *testing.T) {
	// A rule the VO policy refuses must be rejected BEFORE the journal
	// sees it: a journaled-but-unapplied record would fail replay on
	// every restart, permanently refusing to open the durable state.
	bed := newVOBed(t)
	var journal [][]byte
	bed.server.SetJournal(func(p []byte) error {
		journal = append(journal, append([]byte(nil), p...))
		return nil
	})
	verBefore := bed.server.Version()
	err := bed.server.AddPolicyChecked(authz.Rule{ID: "bad", Effect: authz.Effect(99)})
	if err == nil {
		t.Fatal("invalid effect accepted")
	}
	if len(journal) != 0 {
		t.Fatalf("refused rule reached the journal (%d records)", len(journal))
	}
	if bed.server.Version() != verBefore {
		t.Fatal("refused rule advanced the version")
	}
	// A batch with one bad rule is refused whole, like Policy.AddChecked.
	err = bed.server.AddPolicyChecked(
		authz.Rule{ID: "good", Effect: authz.EffectPermit},
		authz.Rule{ID: "bad", Effect: authz.Effect(99)},
	)
	if err == nil || len(journal) != 0 {
		t.Fatalf("mixed batch: err=%v journaled=%d", err, len(journal))
	}
	// Valid rules still journal and replay.
	if err := bed.server.AddPolicyChecked(authz.Rule{
		ID: "vo-ok", Effect: authz.EffectPermit,
		Groups: []string{"researchers"}, Resources: []string{"data:/climate/*"}, Actions: []string{"read"},
	}); err != nil {
		t.Fatalf("valid rule refused: %v", err)
	}
	if len(journal) != 1 {
		t.Fatalf("journaled %d records, want 1", len(journal))
	}
	restored := NewServer(bed.server.cred)
	if err := restored.ApplyReplayed(journal[0]); err != nil {
		t.Fatalf("replaying the valid rule: %v", err)
	}
}

func TestCASStateSnapshotRoundTrip(t *testing.T) {
	bed := newVOBed(t)
	bed.server.AssignRole(bed.alice.Identity(), "operator")
	snap := bed.server.EncodeState()

	restored := NewServer(bed.server.cred)
	if err := restored.RestoreState(snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if restored.Version() != bed.server.Version() || restored.PolicySize() != bed.server.PolicySize() {
		t.Fatal("snapshot round trip lost state")
	}
	// Truncated snapshot fails closed.
	fresh := NewServer(bed.server.cred)
	fresh.AddMember(bed.bob.Identity(), "keep")
	if err := fresh.RestoreState(snap[:len(snap)-2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, ok := fresh.IsMember(bed.bob.Identity()); !ok {
		t.Fatal("failed restore mutated the live server")
	}
}

func TestSyncServiceOps(t *testing.T) {
	bed := newVOBed(t)
	svc := NewSyncService(bed.server, nil)

	// Conversation + authenticated caller: both ops answer.
	body, err := svc.Invoke(newSyncCall(SyncOpVersion, bed, true, false))
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if string(body) != "2" {
		t.Fatalf("Version body = %q, want 2", body)
	}
	body, err = svc.Invoke(newSyncCall(SyncOpBundle, bed, true, false))
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	b, err := DecodeBundle(body)
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if err := b.Verify(bed.server.Certificate()); err != nil {
		t.Fatalf("served bundle does not verify: %v", err)
	}

	// Channel rules: no conversation, anonymous → refused.
	if _, err := svc.Invoke(newSyncCall(SyncOpBundle, bed, false, false)); err == nil {
		t.Fatal("per-message caller served a bundle")
	}
	if _, err := svc.Invoke(newSyncCall(SyncOpBundle, bed, true, true)); err == nil {
		t.Fatal("anonymous caller served a bundle")
	}
}
