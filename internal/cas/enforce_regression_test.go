package cas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// TestMalformedAssertionDenies is the fail-open regression: a chain
// carrying a CAS policy block that does not decode used to be treated
// exactly like a chain with no assertion at all, so a permissive local
// policy would still permit. "Present but invalid" must deny.
func TestMalformedAssertionDenies(t *testing.T) {
	bed := newVOBed(t)
	proxyCred, err := proxyNewForTest(bed.alice, []byte("!! not an assertion !!"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "read", time.Now())
	if err == nil {
		t.Fatal("malformed assertion produced no error")
	}
	if errors.Is(err, ErrNoAssertion) {
		t.Fatal("malformed assertion classified as absent")
	}
	if res.Decision != authz.Deny {
		t.Fatalf("malformed assertion decision %s, want deny (local policy alone would have permitted)", res.Decision)
	}
}

// TestAbsentAssertionFallsBackToLocal pins the other side of the
// distinction: truly assertion-free chains still ride on local policy.
func TestAbsentAssertionFallsBackToLocal(t *testing.T) {
	bed := newVOBed(t)
	plain, err := proxy.New(bed.alice, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.enforcer.Authorize(plain.Chain, "data:/climate/run1", "read", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Permit {
		t.Fatalf("assertion-free chain denied (%s): %s", res.Decision, res.Reason)
	}
	if res.VO != authz.NotApplicable {
		t.Fatalf("VO component %s, want not-applicable", res.VO)
	}
}

// TestExtractAssertionDistinguishesAbsence checks the sentinel contract
// directly.
func TestExtractAssertionDistinguishesAbsence(t *testing.T) {
	bed := newVOBed(t)
	plain, _ := proxy.New(bed.alice, proxy.Options{Lifetime: time.Hour})
	info, err := bed.trust.Verify(plain.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractAssertion(info); !errors.Is(err, ErrNoAssertion) {
		t.Fatalf("absent assertion: got %v, want ErrNoAssertion", err)
	}
	bad, _ := proxyNewForTest(bed.alice, []byte{0xff, 0x01})
	info, err = bed.trust.Verify(bad.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractAssertion(info); err == nil || errors.Is(err, ErrNoAssertion) {
		t.Fatalf("malformed assertion: got %v, want a non-ErrNoAssertion error", err)
	}
}

// TestSignedAssertionWithInvalidEffectDenies: even a correctly signed
// assertion must not smuggle a rule whose effect byte is outside the
// enum — the old engine treated effect 0 as Permit.
func TestSignedAssertionWithInvalidEffectDenies(t *testing.T) {
	bed := newVOBed(t)
	now := time.Now()
	a := &Assertion{
		VO:      bed.server.VO(),
		Subject: bed.alice.Identity(),
		Rules: []authz.Rule{{
			ID:        "zero-effect",
			Subjects:  []string{bed.alice.Identity().String()},
			Resources: []string{"data:/climate/*"},
			Actions:   []string{"read"},
			// Effect deliberately left at the zero value.
		}},
		IssuedAt:  now,
		ExpiresAt: now.Add(time.Hour),
	}
	sig, err := bed.server.cred.Key.Sign(a.tbs())
	if err != nil {
		t.Fatal(err)
	}
	a.Signature = sig
	proxyCred, err := EmbedInProxy(bed.alice, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "read", now)
	if res.Decision != authz.Deny {
		t.Fatalf("zero-effect assertion rule permitted (decision %s, err %v)", res.Decision, err)
	}
	if err == nil {
		t.Fatal("zero-effect assertion rule produced no error")
	}
}

// TestAssertionCarriesVOAttributes: issued assertions now carry the
// member's groups and roles, verified end to end through the enforcer —
// local policy can match on community attributes.
func TestAssertionCarriesVOAttributes(t *testing.T) {
	bed := newVOBed(t)
	bed.server.AssignRole(bed.alice.Identity(), "operator")
	a, err := bed.server.IssueAssertion(bed.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 1 || a.Groups[0] != "researchers" {
		t.Fatalf("assertion groups %v, want [researchers]", a.Groups)
	}
	if len(a.Roles) != 1 || a.Roles[0] != "operator" {
		t.Fatalf("assertion roles %v, want [operator]", a.Roles)
	}
	dec, err := DecodeAssertion(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Groups) != 1 || dec.Groups[0] != "researchers" || len(dec.Roles) != 1 {
		t.Fatal("attributes lost in encode/decode round trip")
	}

	// A resource whose local policy keys on the VO group: only holders
	// of a verified assertion carrying that group pass.
	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		ID:        "group-gate",
		Effect:    authz.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	enf := NewEnforcer(bed.trust, local)
	enf.TrustVO(bed.server.Certificate())
	proxyCred, err := EmbedInProxy(bed.alice, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := enf.Authorize(proxyCred.Chain, "data:/climate/run1", "read", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Permit {
		t.Fatalf("group-gated local policy denied assertion holder: %s (%s)", res.Decision, res.Reason)
	}
	// Without an assertion the same identity carries no group: denied.
	plain, _ := proxy.New(bed.alice, proxy.Options{Lifetime: time.Hour})
	res, _ = enf.Authorize(plain.Chain, "data:/climate/run1", "read", time.Now())
	if res.Decision == authz.Permit {
		t.Fatal("group-gated policy permitted a chain without the VO attribute")
	}
}
