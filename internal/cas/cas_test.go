package cas

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
)

// voBed is a full CAS test fixture: a CA, a VO with a CAS server, a
// member, and a resource enforcer.
type voBed struct {
	auth     *ca.Authority
	trust    *gridcert.TrustStore
	server   *Server
	alice    *gridcert.Credential
	bob      *gridcert.Credential
	enforcer *Enforcer
}

func newVOBed(t testing.TB) *voBed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	voCred, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=ClimateVO CAS"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(voCred)
	server.AddMember(alice.Identity(), "researchers")
	server.AddPolicy(authz.Rule{
		ID:        "vo-read",
		Effect:    authz.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})

	// The resource's local policy: members of the grid CA may read and
	// write its climate data (the VO will narrow this to read-only).
	local := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		ID:        "local-allow",
		Effect:    authz.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read", "write"},
	})
	enforcer := NewEnforcer(trust, local)
	enforcer.TrustVO(server.Certificate())
	return &voBed{auth: auth, trust: trust, server: server, alice: alice, bob: bob, enforcer: enforcer}
}

func TestAssertionRoundTrip(t *testing.T) {
	bed := newVOBed(t)
	a, err := bed.server.IssueAssertion(bed.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAssertion(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.VO.Equal(a.VO) || !dec.Subject.Equal(a.Subject) || len(dec.Rules) != len(a.Rules) {
		t.Fatal("assertion round-trip mismatch")
	}
	if err := dec.Verify(bed.server.Certificate(), time.Now()); err != nil {
		t.Fatalf("decoded assertion does not verify: %v", err)
	}
}

func TestAssertionTamperDetected(t *testing.T) {
	bed := newVOBed(t)
	a, _ := bed.server.IssueAssertion(bed.alice.Identity())
	enc := a.Encode()
	enc[len(enc)/3] ^= 1
	dec, err := DecodeAssertion(enc)
	if err != nil {
		return // structural rejection also fine
	}
	if err := dec.Verify(bed.server.Certificate(), time.Now()); err == nil {
		t.Fatal("tampered assertion verified")
	}
}

func TestNonMemberDeniedAssertion(t *testing.T) {
	bed := newVOBed(t)
	if _, err := bed.server.IssueAssertion(bed.bob.Identity()); err == nil {
		t.Fatal("non-member received assertion")
	}
	bed.server.AddMember(bed.bob.Identity())
	if _, err := bed.server.IssueAssertion(bed.bob.Identity()); err != nil {
		t.Fatal(err)
	}
	bed.server.RemoveMember(bed.bob.Identity())
	if _, err := bed.server.IssueAssertion(bed.bob.Identity()); err == nil {
		t.Fatal("expelled member received assertion")
	}
}

func TestAssertionScopedToMember(t *testing.T) {
	bed := newVOBed(t)
	// A rule for a different group must not leak into Alice's assertion.
	bed.server.AddPolicy(authz.Rule{
		ID:     "admins-only",
		Effect: authz.EffectPermit,
		Groups: []string{"admins"},
	})
	a, err := bed.server.IssueAssertion(bed.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Rules {
		if r.ID == "admins-only" {
			t.Fatal("rule for another group leaked into assertion")
		}
	}
}

// TestFigure2Flow exercises the full three-step CAS flow.
func TestFigure2Flow(t *testing.T) {
	bed := newVOBed(t)

	// Step 1: Alice gets her assertion.
	a, err := bed.server.IssueAssertion(bed.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	// Step 2: she embeds it in a restricted proxy.
	proxyCred, err := EmbedInProxy(bed.alice, a)
	if err != nil {
		t.Fatal(err)
	}
	// Step 3: the resource authorizes read (VO permits, local permits)…
	res, err := bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "read", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Permit {
		t.Fatalf("read: %+v", res)
	}
	// …but denies write: local policy would allow it, the VO assertion
	// does not, and the applied policy is the intersection.
	res, err = bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "write", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Deny {
		t.Fatalf("write: %+v", res)
	}
	if res.Local != authz.Permit || res.VO == authz.Permit {
		t.Fatalf("component decisions: %+v", res)
	}
}

func TestResourceRemainsUltimateAuthority(t *testing.T) {
	bed := newVOBed(t)
	// The VO grants delete on everything, but local policy does not.
	bed.server.AddPolicy(authz.Rule{
		ID:        "vo-generous",
		Effect:    authz.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"*"},
		Actions:   []string{"delete"},
	})
	a, _ := bed.server.IssueAssertion(bed.alice.Identity())
	proxyCred, _ := EmbedInProxy(bed.alice, a)
	res, err := bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "delete", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Deny {
		t.Fatal("VO policy overrode local authority")
	}
	if res.VO != authz.Permit || res.Local == authz.Permit {
		t.Fatalf("component decisions: %+v", res)
	}
}

func TestUntrustedVOAssertionRejected(t *testing.T) {
	bed := newVOBed(t)
	rogueVO, err := bed.auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Rogue CAS"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rogue := NewServer(rogueVO)
	rogue.AddMember(bed.alice.Identity(), "researchers")
	rogue.AddPolicy(authz.Rule{Effect: authz.EffectPermit, Groups: []string{"researchers"}})
	a, _ := rogue.IssueAssertion(bed.alice.Identity())
	proxyCred, _ := EmbedInProxy(bed.alice, a)
	res, _ := bed.enforcer.Authorize(proxyCred.Chain, "data:/climate/run1", "read", time.Time{})
	if res.Decision != authz.Deny {
		t.Fatal("assertion from untrusted VO accepted")
	}
	if !strings.Contains(res.Reason, "untrusted VO") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestStolenAssertionRejected(t *testing.T) {
	bed := newVOBed(t)
	// Bob embeds Alice's assertion in his own proxy: EmbedInProxy refuses,
	// and even a hand-rolled embedding fails at the enforcer because the
	// assertion subject must match the authenticated identity.
	a, _ := bed.server.IssueAssertion(bed.alice.Identity())
	if _, err := EmbedInProxy(bed.bob, a); err == nil {
		t.Fatal("EmbedInProxy accepted mismatched subject")
	}
	// Hand-rolled: bob issues his own restricted proxy carrying the blob.
	cred, err := handEmbed(bed.bob, a)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bed.enforcer.Authorize(cred.Chain, "data:/climate/run1", "read", time.Time{})
	if res.Decision != authz.Deny {
		t.Fatal("stolen assertion accepted")
	}
}

func handEmbed(member *gridcert.Credential, a *Assertion) (*gridcert.Credential, error) {
	// Mirrors EmbedInProxy without the subject check.
	return proxyNewForTest(member, a.Encode())
}

func TestExpiredAssertionRejected(t *testing.T) {
	bed := newVOBed(t)
	past := time.Now().Add(-3 * time.Hour)
	bed.server.SetClock(func() time.Time { return past })
	a, _ := bed.server.IssueAssertion(bed.alice.Identity())
	// Embed manually since the proxy lifetime computation would clip.
	cred, err := proxyNewForTest(bed.alice, a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bed.enforcer.Authorize(cred.Chain, "data:/climate/run1", "read", time.Time{})
	if res.Decision != authz.Deny {
		t.Fatal("expired assertion accepted")
	}
}

func TestNoAssertionFallsBackToLocalOnly(t *testing.T) {
	bed := newVOBed(t)
	// Alice presents her bare credential (no proxy, no assertion): local
	// policy alone decides — and it permits read.
	res, err := bed.enforcer.Authorize(bed.alice.Chain, "data:/climate/run1", "read", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != authz.Permit || res.VO != authz.NotApplicable {
		t.Fatalf("%+v", res)
	}
	// For a resource not covered by local policy, deny.
	res, _ = bed.enforcer.Authorize(bed.alice.Chain, "data:/secret", "read", time.Time{})
	if res.Decision != authz.Deny {
		t.Fatalf("%+v", res)
	}
}

func BenchmarkIssueAssertion(b *testing.B) {
	bed := newVOBed(b)
	for i := 0; i < 100; i++ {
		bed.server.AddPolicy(authz.Rule{
			Effect:    authz.EffectPermit,
			Groups:    []string{"researchers"},
			Resources: []string{"data:/other/*"},
			Actions:   []string{"read"},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bed.server.IssueAssertion(bed.alice.Identity()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnforcerAuthorize(b *testing.B) {
	bed := newVOBed(b)
	a, _ := bed.server.IssueAssertion(bed.alice.Identity())
	cred, _ := EmbedInProxy(bed.alice, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bed.enforcer.Authorize(cred.Chain, "data:/climate/run1", "read", time.Time{})
		if err != nil || res.Decision != authz.Permit {
			b.Fatalf("%v %+v", err, res)
		}
	}
}
