// Package cas implements the Community Authorization Service (paper §3,
// Figure 2; Pearlman et al. 2002). CAS lets resource providers outsource
// a slice of their policy to a virtual organization: the VO expresses
// policy about its members, members obtain signed policy assertions, and
// resources enforce the *intersection* of the VO assertion with local
// policy — so "a resource remains the ultimate authority over that
// resource, but the VO controls a subset of that enforced policy."
//
// The three-step flow of Figure 2:
//
//  1. the user authenticates to CAS and receives a signed assertion of
//     the VO's policy for that user;
//  2. the user presents the assertion to a VO resource along with the
//     request (embedded in a restricted proxy certificate);
//  3. the resource checks both local policy and the VO policy in the
//     assertion.
package cas

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/proxy"
	"repro/internal/wire"
)

// PolicyLanguage identifies CAS assertions inside restricted proxies.
const PolicyLanguage = "grid.cas.assertion.v1"

// Assertion is a signed statement of VO policy scoped to one member.
type Assertion struct {
	// VO is the issuing community's identity (the CAS server's DN).
	VO gridcert.Name
	// Subject is the member the assertion speaks about.
	Subject gridcert.Name
	// Groups and Roles are the VO attributes the community vouches for:
	// the subject's group memberships and role assignments at issuance.
	// Resources can reference them in local policy (e.g. a rule matching
	// group "climate-vo") without knowing VO internals.
	Groups []string
	Roles  []string
	// Rules is the slice of VO policy granted to the subject.
	Rules []authz.Rule
	// IssuedAt / ExpiresAt bound the assertion's life.
	IssuedAt  time.Time
	ExpiresAt time.Time

	Signature []byte
}

const maxAssertionRules = 4096

// The rule and string-list codec is authz.WireEncodeRule and friends —
// shared with journaled mutations and durable snapshots, so the
// assertion wire format and the persistence format cannot drift.

func (a *Assertion) tbs() []byte {
	e := wire.NewEncoder()
	e.Str("cas-assertion-v2")
	e.Str(a.VO.String())
	e.Str(a.Subject.String())
	authz.WireEncodeStrings(e, a.Groups)
	authz.WireEncodeStrings(e, a.Roles)
	e.I64(a.IssuedAt.Unix())
	e.I64(a.ExpiresAt.Unix())
	e.U32(uint32(len(a.Rules)))
	for _, r := range a.Rules {
		authz.WireEncodeRule(e, r)
	}
	return e.Finish()
}

// Encode serialises the assertion with its signature.
func (a *Assertion) Encode() []byte {
	return wire.NewEncoder().Bytes(a.tbs()).Bytes(a.Signature).Finish()
}

// DecodeAssertion parses an encoded assertion (signature not verified).
func DecodeAssertion(b []byte) (*Assertion, error) {
	d := wire.NewDecoder(b)
	tbs := d.Bytes()
	sig := d.Bytes()
	if err := d.Done(); err != nil {
		return nil, err
	}
	td := wire.NewDecoder(tbs)
	if magic := td.Str(); td.Err() == nil && magic != "cas-assertion-v2" {
		return nil, fmt.Errorf("cas: bad assertion magic %q", magic)
	}
	a := &Assertion{}
	voStr := td.Str()
	subjStr := td.Str()
	a.Groups = authz.WireDecodeStrings(td)
	a.Roles = authz.WireDecodeStrings(td)
	a.IssuedAt = time.Unix(td.I64(), 0).UTC()
	a.ExpiresAt = time.Unix(td.I64(), 0).UTC()
	n := td.Count("assertion rule", maxAssertionRules)
	for i := 0; i < n && td.Err() == nil; i++ {
		a.Rules = append(a.Rules, authz.WireDecodeRule(td))
	}
	if err := td.Done(); err != nil {
		return nil, err
	}
	var err error
	if a.VO, err = gridcert.ParseName(voStr); err != nil {
		return nil, err
	}
	if a.Subject, err = gridcert.ParseName(subjStr); err != nil {
		return nil, err
	}
	a.Signature = sig
	return a, nil
}

// Verify checks the signature and validity window against the CAS
// server's certificate.
func (a *Assertion) Verify(casCert *gridcert.Certificate, now time.Time) error {
	if !casCert.Subject.Equal(a.VO) {
		return fmt.Errorf("cas: assertion VO %q does not match CAS certificate %q", a.VO, casCert.Subject)
	}
	if err := casCert.PublicKey.Verify(a.tbs(), a.Signature); err != nil {
		return fmt.Errorf("cas: assertion signature: %w", err)
	}
	if now.Before(a.IssuedAt.Add(-time.Minute)) || now.After(a.ExpiresAt) {
		return errors.New("cas: assertion outside validity window")
	}
	return nil
}

// Server is the CAS server for one virtual organization.
type Server struct {
	cred *gridcert.Credential

	mu      sync.RWMutex
	members map[string][]string // member DN -> groups within the VO
	roles   map[string][]string // member DN -> roles within the VO
	policy  *authz.Policy
	// version is the bundle version: bumped by every mutation, journaled
	// with it, exported in signed bundles. See state.go.
	version uint64
	journal func(payload []byte) error
	// deltaLog is the bounded recent-mutation history backing
	// ExportDelta; see delta.go.
	deltaLog []deltaLogEntry
	// AssertionLifetime bounds issued assertions (default 1h).
	AssertionLifetime time.Duration
	now               func() time.Time
}

// NewServer creates a CAS server from the VO's credential.
func NewServer(cred *gridcert.Credential) *Server {
	return &Server{
		cred:              cred,
		members:           make(map[string][]string),
		roles:             make(map[string][]string),
		policy:            authz.NewPolicy(authz.DenyOverrides),
		AssertionLifetime: time.Hour,
		now:               time.Now,
	}
}

// SetClock overrides the server clock (tests).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

// VO returns the community identity.
func (s *Server) VO() gridcert.Name { return s.cred.Leaf().Subject }

// Certificate returns the CAS signing certificate that resources must
// trust for this VO.
func (s *Server) Certificate() *gridcert.Certificate { return s.cred.Leaf() }

// AddMember enrolls a user into the VO with the given groups, panicking
// on a journal failure; durable deployments use AddMemberChecked.
func (s *Server) AddMember(dn gridcert.Name, groups ...string) {
	if err := s.AddMemberChecked(dn, groups...); err != nil {
		panic(err)
	}
}

// RemoveMember expels a user; see AddMember for the journal contract.
func (s *Server) RemoveMember(dn gridcert.Name) {
	if err := s.RemoveMemberChecked(dn); err != nil {
		panic(err)
	}
}

// AssignRole grants VO roles to a member; issued assertions carry them
// so resources can write role-based local policy. See AddMember for the
// journal contract.
func (s *Server) AssignRole(dn gridcert.Name, roles ...string) {
	if err := s.AssignRoleChecked(dn, roles...); err != nil {
		panic(err)
	}
}

// Roles reports the member's VO roles.
func (s *Server) Roles(dn gridcert.Name) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.roles[dn.String()]...)
}

// IsMember reports membership and the member's groups.
func (s *Server) IsMember(dn gridcert.Name) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.members[dn.String()]
	return g, ok
}

// AddPolicy appends VO policy rules; see AddMember for the journal
// contract.
func (s *Server) AddPolicy(rules ...authz.Rule) {
	if err := s.AddPolicyChecked(rules...); err != nil {
		panic(err)
	}
}

// PolicySize returns the number of VO policy rules.
func (s *Server) PolicySize() int { return s.policy.Len() }

// IssueAssertion is step 1 of Figure 2: the authenticated member receives
// the subset of VO policy that applies to them, signed by the CAS server.
// The caller must have authenticated requester (e.g. via a GSS context);
// CAS trusts that identity here.
func (s *Server) IssueAssertion(requester gridcert.Name) (*Assertion, error) {
	return s.IssueAssertionContext(context.Background(), requester)
}

// IssueAssertionContext is IssueAssertion honoring ctx: the policy scan is
// abandoned when the context ends, so a request against a huge VO policy
// respects its deadline.
func (s *Server) IssueAssertionContext(ctx context.Context, requester gridcert.Name) (*Assertion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	groups, ok := s.IsMember(requester)
	if !ok {
		return nil, fmt.Errorf("cas: %q is not a member of VO %q", requester, s.VO())
	}
	roles := s.Roles(requester)
	// Select the rules that could ever apply to this member: rules that
	// name the member, one of its groups or roles, or everyone. CAS
	// resolves group membership at issuance, so each granted rule is
	// re-scoped to the subject directly — the resource need not know
	// VO-internal groups.
	var granted []authz.Rule
	probe := authz.Request{Subject: requester, Groups: groups, Roles: roles}
	for i, r := range s.policy.Rules() {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if ruleCouldApply(r, probe) {
			scoped := r
			scoped.Subjects = []string{requester.String()}
			scoped.Groups = nil
			scoped.Roles = nil
			granted = append(granted, scoped)
		}
	}
	now := s.now()
	// Final gate before signing: nothing is signed for a caller that has
	// already gone away.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a := &Assertion{
		VO:        s.VO(),
		Subject:   requester,
		Groups:    append([]string(nil), groups...),
		Roles:     roles,
		Rules:     granted,
		IssuedAt:  now,
		ExpiresAt: now.Add(s.AssertionLifetime),
	}
	sig, err := s.cred.Key.Sign(a.tbs())
	if err != nil {
		return nil, err
	}
	a.Signature = sig
	return a, nil
}

// ruleCouldApply checks subject/group applicability ignoring
// resource/action (those are evaluated at the resource).
func ruleCouldApply(r authz.Rule, probe authz.Request) bool {
	test := r
	test.Resources = nil
	test.Actions = nil
	test.NotBefore = time.Time{}
	test.NotAfter = time.Time{}
	return test.Matches(probe)
}

// EmbedInProxy is step 2 of Figure 2: wrap the assertion in a restricted
// proxy certificate signed by the member's credential, producing the
// credential the member presents to resources.
func EmbedInProxy(member *gridcert.Credential, a *Assertion) (*gridcert.Credential, error) {
	if !a.Subject.Equal(member.Identity()) {
		return nil, fmt.Errorf("cas: assertion subject %q does not match credential identity %q",
			a.Subject, member.Identity())
	}
	return proxy.New(member, proxy.Options{
		Variant:        gridcert.ProxyRestricted,
		PolicyLanguage: PolicyLanguage,
		Policy:         a.Encode(),
		Lifetime:       time.Until(a.ExpiresAt),
	})
}

// ErrNoAssertion reports a chain that carries no CAS policy block at
// all. Callers branch on it to distinguish "the requester simply did
// not present community credentials" (fall back to local policy) from
// "the requester presented a CAS block that does not parse" (which must
// deny — see Enforcer.AuthorizeContext).
var ErrNoAssertion = errors.New("cas: chain carries no CAS assertion")

// ExtractAssertion recovers a CAS assertion from a validated chain's
// restricted-proxy policy blocks. Absence is reported as ErrNoAssertion;
// any other error means a CAS block was present but malformed.
func ExtractAssertion(info *gridcert.ChainInfo) (*Assertion, error) {
	for _, pi := range info.Restricted {
		if pi.PolicyLanguage == PolicyLanguage {
			a, err := DecodeAssertion(pi.Policy)
			if err != nil {
				return nil, fmt.Errorf("cas: malformed assertion in chain: %w", err)
			}
			return a, nil
		}
	}
	return nil, ErrNoAssertion
}
