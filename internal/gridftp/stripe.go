package gridftp

import (
	"context"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/proxy"
	"repro/internal/record"
	"repro/internal/trace"
)

// Parallel striped transfers, GridFTP's signature move (paper §3): the
// control connection negotiates a stripe count in the GETS/PUTS round
// trip, the client dials that many secured data connections and binds
// each to the transfer with a JOIN carrying an unguessable token, and
// the file then crosses all stripes at once as globally sequenced
// chunks. Each stripe seals/opens on its own connection — K stripes
// drive up to K cores — and every stripe ends with a FIN trailer
// carrying the total chunk count, so a stripe that dies mid-flight is
// always an error, never a silently truncated file.

// opJoin binds a freshly dialed data connection to a pending striped
// transfer. Payload: 16-byte token + u32 stripe index.
const opJoin = "JOIN"

// maxTransferStripes caps the stripe count a server grants.
const maxTransferStripes = 16

// stripeTokenLen is the transfer token size: 128 unguessable bits.
const stripeTokenLen = 16

// stripeMarker prefixes a GETS/PUTS payload that requests striping
// (legacy payloads — empty, or the 8-byte PUT size hint — can never
// collide with the marked lengths).
const stripeMarker = 'S'

// xferJoinTimeout bounds how long the control goroutine waits for the
// client's data connections to arrive.
const xferJoinTimeout = 10 * time.Second

// maxPendingXfers bounds concurrently forming striped transfers.
const maxPendingXfers = 256

func encodeStripeGetReq(k int) []byte {
	p := make([]byte, 5)
	p[0] = stripeMarker
	binary.BigEndian.PutUint32(p[1:], uint32(k))
	return p
}

func decodeStripeGetReq(payload []byte) (k int, ok bool) {
	if len(payload) != 5 || payload[0] != stripeMarker {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(payload[1:])), true
}

func encodeStripePutReq(k int, hint uint64) []byte {
	p := make([]byte, 13)
	p[0] = stripeMarker
	binary.BigEndian.PutUint32(p[1:], uint32(k))
	binary.BigEndian.PutUint64(p[5:], hint)
	return p
}

func decodeStripePutReq(payload []byte) (k int, hint uint64, ok bool) {
	if len(payload) != 13 || payload[0] != stripeMarker {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(payload[1:])), binary.BigEndian.Uint64(payload[5:]), true
}

func clampStripes(k int) int {
	if k < 1 {
		return 1
	}
	if k > maxTransferStripes {
		return maxTransferStripes
	}
	return k
}

// --- server side ---------------------------------------------------------

// stripeXfer is one striped transfer forming (or running) on a server:
// data connections collected by JOINs until all granted stripes
// arrived. ready closes when the group is complete; done closes when
// the transfer finished and the data connections belong to their serve
// goroutines again.
type stripeXfer struct {
	identity gridcert.Name
	token    string
	conns    []*gsitransport.Conn
	joined   int
	failed   bool
	ready    chan struct{}
	done     chan struct{}
}

// newXfer registers a pending transfer under a fresh token.
func (s *Server) newXfer(identity gridcert.Name, granted int) (*stripeXfer, error) {
	tok, err := gridcrypto.RandomBytes(stripeTokenLen)
	if err != nil {
		return nil, err
	}
	x := &stripeXfer{
		identity: identity,
		token:    string(tok),
		conns:    make([]*gsitransport.Conn, granted),
		ready:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.xmu.Lock()
	defer s.xmu.Unlock()
	if len(s.xfers) >= maxPendingXfers {
		return nil, errors.New("gridftp: too many pending striped transfers")
	}
	s.xfers[x.token] = x
	return x, nil
}

// joinXfer binds one data connection to its pending transfer. The
// token is the capability; it is additionally bound to the control
// connection's authenticated identity, so a leaked token is useless
// without the credential that opened the transfer.
func (s *Server) joinXfer(token []byte, idx int, identity gridcert.Name, conn *gsitransport.Conn) (*stripeXfer, error) {
	s.xmu.Lock()
	defer s.xmu.Unlock()
	x := s.xfers[string(token)]
	if x == nil || subtle.ConstantTimeCompare([]byte(x.token), token) != 1 {
		return nil, errors.New("gridftp: unknown transfer token")
	}
	if x.identity.String() != identity.String() {
		return nil, errors.New("gridftp: transfer token bound to another identity")
	}
	if idx < 0 || idx >= len(x.conns) || x.conns[idx] != nil {
		return nil, errors.New("gridftp: bad stripe index")
	}
	x.conns[idx] = conn
	x.joined++
	if x.joined == len(x.conns) {
		close(x.ready)
		delete(s.xfers, x.token)
	}
	return x, nil
}

// abandonXfer fails a transfer whose stripes never all arrived.
// Reports false when the group completed concurrently — the transfer
// then runs and the caller must follow the ready path instead.
func (s *Server) abandonXfer(x *stripeXfer) bool {
	s.xmu.Lock()
	defer s.xmu.Unlock()
	select {
	case <-x.ready:
		return false
	default:
	}
	x.failed = true
	delete(s.xfers, x.token)
	return true
}

// serveJoin handles a JOIN on a data connection: validate the token,
// bind the connection to its transfer, and park until the transfer
// releases it. Reports whether the connection is still usable.
func (s *Server) serveJoin(conn *gsitransport.Conn, identity gridcert.Name, payload []byte, rctx trace.SpanContext) bool {
	if len(payload) != stripeTokenLen+4 {
		return conn.Send(encodeReply(opErr, "", []byte("gridftp: malformed JOIN"))) == nil
	}
	// The lane span continues the client's per-stripe context: it spans
	// the stripe's whole tenure in the transfer, join to release.
	sp := s.tracer.StartRemote(rctx, "gridftp.server.stripe")
	sp.SetPeer(identity.String())
	token := payload[:stripeTokenLen]
	idx := int(binary.BigEndian.Uint32(payload[stripeTokenLen:]))
	x, err := s.joinXfer(token, idx, identity, conn)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, "", []byte(err.Error()))) == nil
	}
	// From here the connection belongs to the transfer until done: even
	// on a failed reply it must not be closed out from under it.
	replyErr := conn.Send(encodeReply(opOK, "", nil))
	<-x.done
	sp.End()
	return replyErr == nil && !conn.Broken()
}

// awaitStripes waits for the client's data connections, abandoning the
// transfer if they never arrive. Reports whether the transfer is ready
// to run.
func (s *Server) awaitStripes(x *stripeXfer) bool {
	select {
	case <-x.ready:
		return true
	case <-time.After(xferJoinTimeout):
		if s.abandonXfer(x) {
			close(x.done) // release any stripes that did join
			return false
		}
		<-x.ready // lost the race with the final JOIN
		return true
	}
}

// serveGetStriped answers a striped GET: grant min(k, cap) stripes and
// a transfer token, wait for the JOINs, and stream the file over all
// stripes at once. The control connection carries no further reply —
// the data plane's FIN trailers are the completion signal.
func (s *Server) serveGetStriped(ctx context.Context, conn *gsitransport.Conn, identity gridcert.Name, path string, k int, rctx trace.SpanContext) bool {
	sp := s.tracer.StartRemote(rctx, "gridftp.server.get")
	sp.SetPeer(identity.String())
	data, err := s.store.Open(identity, path)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	granted := clampStripes(k)
	x, err := s.newXfer(identity, granted)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	xfer := s.tracer.Transfers().Begin("get:"+path, identity.String(), granted, sp.Context().TraceID)
	grant := make([]byte, 4+8+stripeTokenLen)
	binary.BigEndian.PutUint32(grant, uint32(granted))
	binary.BigEndian.PutUint64(grant[4:], uint64(len(data)))
	copy(grant[12:], x.token)
	if err := conn.Send(encodeReply(opOK, path, grant)); err != nil {
		if s.abandonXfer(x) {
			close(x.done)
		} else {
			s.runGetStripes(ctx, x, data, sp, xfer)
			return false
		}
		sp.SetError(err)
		sp.End()
		xfer.End()
		return false
	}
	if !s.awaitStripes(x) {
		err := errors.New("gridftp: stripes never joined")
		sp.SetError(err)
		sp.End()
		xfer.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	s.runGetStripes(ctx, x, data, sp, xfer)
	return true
}

func (s *Server) runGetStripes(ctx context.Context, x *stripeXfer, data []byte, sp *trace.Span, xfer *trace.Transfer) {
	defer close(x.done)
	defer xfer.End()
	defer sp.End()
	w := gsitransport.NewStripedWriter(ctx, x.conns)
	if _, err := w.Write(data); err != nil {
		sp.SetError(err)
		w.CloseWithError(err.Error())
		return
	}
	sp.AddBytes(int64(len(data)))
	xfer.Add(int64(len(data)))
	w.Close()
}

// servePutStriped answers a striped PUT: authorize before inviting any
// data, grant stripes and a token, reassemble the inbound stripes, and
// send the verdict on the control connection.
func (s *Server) servePutStriped(ctx context.Context, conn *gsitransport.Conn, identity gridcert.Name, path string, k int, hint uint64, rctx trace.SpanContext) bool {
	sp := s.tracer.StartRemote(rctx, "gridftp.server.put")
	sp.SetPeer(identity.String())
	if err := s.store.authorize(identity, path, "write"); err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	granted := clampStripes(k)
	x, err := s.newXfer(identity, granted)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	xfer := s.tracer.Transfers().Begin("put:"+path, identity.String(), granted, sp.Context().TraceID)
	done := func(err error) {
		sp.SetError(err)
		sp.End()
		xfer.End()
	}
	grant := make([]byte, 4+stripeTokenLen)
	binary.BigEndian.PutUint32(grant, uint32(granted))
	copy(grant[4:], x.token)
	if err := conn.Send(encodeReply(opOK, path, grant)); err != nil {
		if s.abandonXfer(x) {
			close(x.done)
		} else {
			s.runPutStripes(ctx, x, hint)
		}
		done(err)
		return false
	}
	if !s.awaitStripes(x) {
		err := errors.New("gridftp: stripes never joined")
		done(err)
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	assembled, err := s.runPutStripes(ctx, x, hint)
	if err != nil {
		done(err)
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			return conn.Send(encodeReply(opErr, path, []byte(peerErr.Msg))) == nil
		}
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	sp.AddBytes(int64(len(assembled)))
	xfer.Add(int64(len(assembled)))
	if err := s.store.PutOwned(identity, path, assembled); err != nil {
		done(err)
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	done(nil)
	return conn.Send(encodeReply(opOK, path, nil)) == nil
}

func (s *Server) runPutStripes(ctx context.Context, x *stripeXfer, hint uint64) ([]byte, error) {
	defer close(x.done)
	prealloc := uint64(1 << 20)
	if hint > prealloc {
		prealloc = min(hint, uint64(maxPutPrealloc))
	}
	r := gsitransport.NewStripedReader(ctx, x.conns, 0)
	data, err := r.ReadAll(int(prealloc))
	if err != nil {
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			r.Join() // clean abort: every stripe resynchronized
		} else {
			r.Abort()
		}
		return nil, err
	}
	r.Join()
	return data, nil
}

// --- client side ---------------------------------------------------------

// dialStripes dials and JOINs granted data connections, aligned by
// stripe index. On failure every dialed connection is closed and the
// pending control-connection verdict (the server's join-timeout ERR)
// is consumed so the session stays synchronized.
func (c *Client) dialStripes(granted int, token []byte, sp *trace.Span) ([]*gsitransport.Conn, []*trace.Span, error) {
	if granted < 1 || granted > maxTransferStripes || len(token) != stripeTokenLen {
		return nil, nil, errors.New("gridftp: malformed stripe grant")
	}
	var (
		conns []*gsitransport.Conn
		lanes []*trace.Span // per-stripe children of sp; nil entries never occur
	)
	fail := func(err error) ([]*gsitransport.Conn, []*trace.Span, error) {
		for _, dc := range conns {
			dc.Close()
		}
		for _, lane := range lanes {
			lane.SetError(err)
			lane.End()
		}
		// The server's control goroutine is waiting for the group; its
		// join timeout will deliver an ERR we must not leave in the
		// reply stream.
		c.readReply()
		return nil, nil, err
	}
	for i := 0; i < granted; i++ {
		var lane *trace.Span
		if sp != nil {
			// Each JOIN carries its own lane context so the server's
			// per-stripe spans parent under this lane, not the root.
			lane = sp.StartChild("gridftp.stripe")
			lanes = append(lanes, lane)
		}
		dc, err := gsitransport.Dial(c.addr, gss.Config{
			Credential:   c.cred,
			TrustStore:   c.trust,
			ExpectedPeer: c.expectHost,
		})
		if err != nil {
			return fail(err)
		}
		conns = append(conns, dc)
		payload := make([]byte, stripeTokenLen+4)
		copy(payload, token)
		binary.BigEndian.PutUint32(payload[stripeTokenLen:], uint32(i))
		msg, err := encodeCmd(opJoin, "", traceSuffix(lane, payload))
		if err != nil {
			return fail(err)
		}
		if err := dc.Send(msg); err != nil {
			return fail(err)
		}
		reply, err := dc.Receive()
		if err != nil {
			return fail(err)
		}
		rverb, _, rpayload, err := decodeCmd(reply)
		if err != nil {
			return fail(err)
		}
		if rverb == opErr {
			return fail(fmt.Errorf("gridftp: server: %s", rpayload))
		}
	}
	return conns, lanes, nil
}

// StripedGetReader is an in-flight striped GET: an io.ReadCloser
// delivering the file in order as its stripes arrive.
type StripedGetReader struct {
	r     *gsitransport.StripedReader
	conns []*gsitransport.Conn
	size  int64
	err   error
	sp    *trace.Span     // nil when untraced
	lanes []*trace.Span   // per-stripe children, ended at Close
	xfer  *trace.Transfer // nil when untraced
}

// Size is the transfer size the server announced in its grant.
func (g *StripedGetReader) Size() int64 { return g.size }

// Read returns file bytes in global order, io.EOF after every stripe's
// FIN agrees the file is complete.
func (g *StripedGetReader) Read(p []byte) (int, error) {
	n, err := g.r.Read(p)
	var peerErr *record.PeerError
	if errors.As(err, &peerErr) {
		err = fmt.Errorf("gridftp: server: %s", peerErr.Msg)
	}
	if err != nil && err != io.EOF {
		g.err = err
	}
	if n > 0 {
		g.sp.AddBytes(int64(n))
		g.xfer.Add(int64(n))
	}
	return n, err
}

// finishTrace ends lanes, root span, and transfer registration once.
func (g *StripedGetReader) finishTrace() {
	for _, lane := range g.lanes {
		lane.End()
	}
	g.sp.SetError(g.err)
	g.sp.End()
	g.xfer.End()
	g.sp, g.lanes, g.xfer = nil, nil, nil
}

// Close drains any unread remainder, reaps the stripe readers, and
// closes the data connections (they are transfer-scoped).
func (g *StripedGetReader) Close() error {
	defer g.finishTrace()
	var drainErr error
	if g.err == nil {
		var scratch [4096]byte
		for {
			_, err := g.r.Read(scratch[:])
			if err == io.EOF {
				g.r.Join()
				break
			}
			if err != nil {
				g.err = err
				drainErr = err
				break
			}
		}
	}
	if g.err != nil {
		g.r.Abort()
	}
	for _, dc := range g.conns {
		dc.Close()
	}
	return drainErr
}

// GetStripedReader starts a striped GET of path over up to stripes
// data connections (the server may grant fewer).
func (c *Client) GetStripedReader(path string, stripes int) (*StripedGetReader, error) {
	sp := c.tracer.StartRoot("gridftp.get")
	sp.SetPeer(c.expectHost.String())
	fail := func(err error) (*StripedGetReader, error) {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	grant, err := c.roundTrip(opGetS, path, traceSuffix(sp, encodeStripeGetReq(stripes)))
	if err != nil {
		return fail(err)
	}
	if len(grant) != 4+8+stripeTokenLen {
		return fail(errors.New("gridftp: malformed stripe grant"))
	}
	granted := int(binary.BigEndian.Uint32(grant))
	size := int64(binary.BigEndian.Uint64(grant[4:12]))
	conns, lanes, err := c.dialStripes(granted, grant[12:], sp)
	if err != nil {
		return fail(err)
	}
	return &StripedGetReader{
		r:     gsitransport.NewStripedReader(context.Background(), conns, 0),
		conns: conns,
		size:  size,
		sp:    sp,
		lanes: lanes,
		xfer:  c.tracer.Transfers().Begin("get:"+path, c.expectHost.String(), granted, sp.Context().TraceID),
	}, nil
}

// GetStriped fetches a file over parallel stripes into memory.
func (c *Client) GetStriped(path string, stripes int) ([]byte, error) {
	g, err := c.GetStripedReader(path, stripes)
	if err != nil {
		return nil, err
	}
	hint := 0
	if g.size > 0 && g.size <= maxPutPrealloc {
		hint = int(g.size)
	}
	data, err := g.r.ReadAll(hint)
	if err != nil {
		g.err = err
		g.Close()
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			return nil, fmt.Errorf("gridftp: server: %s", peerErr.Msg)
		}
		return nil, err
	}
	g.sp.AddBytes(int64(len(data)))
	g.xfer.Add(int64(len(data)))
	g.Close()
	return data, nil
}

// StripedPutWriter is an in-flight striped PUT: an io.WriteCloser
// whose Close completes the transfer and returns the server's verdict
// from the control connection.
type StripedPutWriter struct {
	c     *Client
	w     *gsitransport.StripedWriter
	conns []*gsitransport.Conn
	done  bool
	sp    *trace.Span     // nil when untraced
	lanes []*trace.Span   // per-stripe children, ended at Close/Abort
	xfer  *trace.Transfer // nil when untraced
}

// Write deals file bytes across the stripes.
func (w *StripedPutWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	if n > 0 {
		w.sp.AddBytes(int64(n))
		w.xfer.Add(int64(n))
	}
	return n, err
}

func (w *StripedPutWriter) finishTrace(err error) {
	for _, lane := range w.lanes {
		lane.End()
	}
	w.sp.SetError(err)
	w.sp.End()
	w.xfer.End()
	w.sp, w.lanes, w.xfer = nil, nil, nil
}

// Close sends the FIN trailer on every stripe and waits for the
// server's verdict.
func (w *StripedPutWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	werr := w.w.Close()
	_, rerr := w.c.readReply()
	for _, dc := range w.conns {
		dc.Close()
	}
	if rerr != nil {
		w.finishTrace(rerr)
		return rerr
	}
	w.finishTrace(werr)
	return werr
}

// Abort cancels the transfer: every stripe carries the ERROR record,
// the server discards the partial file, and the control session stays
// usable.
func (w *StripedPutWriter) Abort(reason string) error {
	if w.done {
		return nil
	}
	w.done = true
	w.finishTrace(errors.New(reason))
	w.w.CloseWithError(reason)
	_, rerr := w.c.readReply()
	for _, dc := range w.conns {
		dc.Close()
	}
	if rerr == nil {
		return errors.New("gridftp: server confirmed an aborted transfer")
	}
	return nil
}

// PutStripedWriter starts a striped PUT to path over up to stripes
// data connections. The server authorizes the write before any grant.
func (c *Client) PutStripedWriter(path string, stripes int, sizeHint int64) (*StripedPutWriter, error) {
	var hint uint64
	if sizeHint > 0 {
		hint = uint64(sizeHint)
	}
	sp := c.tracer.StartRoot("gridftp.put")
	sp.SetPeer(c.expectHost.String())
	fail := func(err error) (*StripedPutWriter, error) {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	grant, err := c.roundTrip(opPutS, path, traceSuffix(sp, encodeStripePutReq(stripes, hint)))
	if err != nil {
		return fail(err)
	}
	if len(grant) != 4+stripeTokenLen {
		return fail(errors.New("gridftp: malformed stripe grant"))
	}
	granted := int(binary.BigEndian.Uint32(grant))
	conns, lanes, err := c.dialStripes(granted, grant[4:], sp)
	if err != nil {
		return fail(err)
	}
	return &StripedPutWriter{
		c:     c,
		w:     gsitransport.NewStripedWriter(context.Background(), conns),
		conns: conns,
		sp:    sp,
		lanes: lanes,
		xfer:  c.tracer.Transfers().Begin("put:"+path, c.expectHost.String(), granted, sp.Context().TraceID),
	}, nil
}

// PutStriped stores a file over parallel stripes.
func (c *Client) PutStriped(path string, stripes int, data []byte) error {
	w, err := c.PutStripedWriter(path, stripes, int64(len(data)))
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort(err.Error())
		return err
	}
	return w.Close()
}

// ThirdPartyTransferStriped is ThirdPartyTransfer over parallel
// stripes on both legs: the delegated credential opens striped
// sessions to source and destination, and the file flows stripes-in to
// stripes-out without ever materializing.
func ThirdPartyTransferStriped(client *gridcert.Credential, trust *gridcert.TrustStore,
	srcAddr string, srcHost gridcert.Name,
	dstAddr string, dstHost gridcert.Name,
	srcPath, dstPath string, stripes int) error {

	delegatee, req, err := proxy.NewDelegatee(0, false)
	if err != nil {
		return err
	}
	reply, err := proxy.HandleDelegation(client, req, proxy.Options{})
	if err != nil {
		return err
	}
	delegated, err := delegatee.Accept(reply)
	if err != nil {
		return err
	}

	srcConn, err := Dial(srcAddr, delegated, trust, srcHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: source: %w", err)
	}
	defer srcConn.Close()
	dstConn, err := Dial(dstAddr, delegated, trust, dstHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: destination: %w", err)
	}
	defer dstConn.Close()

	get, err := srcConn.GetStripedReader(srcPath, stripes)
	if err != nil {
		return err
	}
	put, err := dstConn.PutStripedWriter(dstPath, stripes, get.Size())
	if err != nil {
		get.Close()
		return err
	}
	buf := record.Get(transferCopyBuffer)
	_, err = io.CopyBuffer(put, get, buf.B[:transferCopyBuffer])
	buf.Free()
	if err != nil {
		put.Abort(err.Error())
		get.Close()
		return err
	}
	if err := put.Close(); err != nil {
		get.Close()
		return err
	}
	return get.Close()
}
