package gridftp

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/gridcert"
	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/proxy"
)

// Server is a GridFTP endpoint: a secured listener in front of a Store.
type Server struct {
	store    *Store
	cred     *gridcert.Credential
	trust    *gridcert.TrustStore
	listener *gsitransport.Listener

	mu      sync.Mutex
	served  int
	closing bool
}

// NewServer starts a GridFTP server on addr ("127.0.0.1:0" for tests).
func NewServer(addr string, store *Store, cred *gridcert.Credential, trust *gridcert.TrustStore) (*Server, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store: store,
		cred:  cred,
		trust: trust,
		listener: gsitransport.NewListener(inner, gss.Config{
			Credential: cred,
			TrustStore: trust,
		}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Identity returns the server's host identity.
func (s *Server) Identity() gridcert.Name { return s.cred.Leaf().Subject }

// Served reports how many connections completed the handshake.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	return s.listener.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return
			}
			continue // failed handshake; keep serving
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn *gsitransport.Conn) {
	defer conn.Close()
	identity := conn.Peer().Identity
	for {
		msg, err := conn.Receive()
		if err != nil {
			return
		}
		verb, path, payload, err := decodeCmd(msg)
		if err != nil {
			conn.Send(encodeCmd(opErr, "", []byte(err.Error())))
			return
		}
		reply := s.execute(identity, verb, path, payload)
		if err := conn.Send(reply); err != nil {
			return
		}
	}
}

func (s *Server) execute(identity gridcert.Name, verb, path string, payload []byte) []byte {
	switch verb {
	case opGet:
		data, err := s.store.Get(identity, path)
		if err != nil {
			return encodeCmd(opErr, path, []byte(err.Error()))
		}
		return encodeCmd(opOK, path, data)
	case opPut:
		if err := s.store.Put(identity, path, payload); err != nil {
			return encodeCmd(opErr, path, []byte(err.Error()))
		}
		return encodeCmd(opOK, path, nil)
	case opDel:
		if err := s.store.Delete(identity, path); err != nil {
			return encodeCmd(opErr, path, []byte(err.Error()))
		}
		return encodeCmd(opOK, path, nil)
	case opList:
		names, err := s.store.List(identity, path)
		if err != nil {
			return encodeCmd(opErr, path, []byte(err.Error()))
		}
		return encodeCmd(opOK, path, []byte(strings.Join(names, "\n")))
	default:
		return encodeCmd(opErr, path, []byte("unknown verb "+verb))
	}
}

// Client is a GridFTP client session.
type Client struct {
	conn *gsitransport.Conn
	cred *gridcert.Credential
}

// Dial connects and authenticates to a GridFTP server.
func Dial(addr string, cred *gridcert.Credential, trust *gridcert.TrustStore, expectHost gridcert.Name) (*Client, error) {
	conn, err := gsitransport.Dial(addr, gss.Config{
		Credential:   cred,
		TrustStore:   trust,
		ExpectedPeer: expectHost,
	})
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, cred: cred}, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(verb, path string, payload []byte) ([]byte, error) {
	if err := c.conn.Send(encodeCmd(verb, path, payload)); err != nil {
		return nil, err
	}
	msg, err := c.conn.Receive()
	if err != nil {
		return nil, err
	}
	rverb, _, rpayload, err := decodeCmd(msg)
	if err != nil {
		return nil, err
	}
	if rverb == opErr {
		return nil, fmt.Errorf("gridftp: server: %s", rpayload)
	}
	return rpayload, nil
}

// Get fetches a file.
func (c *Client) Get(path string) ([]byte, error) { return c.roundTrip(opGet, path, nil) }

// Put stores a file.
func (c *Client) Put(path string, data []byte) error {
	_, err := c.roundTrip(opPut, path, data)
	return err
}

// Delete removes a file.
func (c *Client) Delete(path string) error {
	_, err := c.roundTrip(opDel, path, nil)
	return err
}

// List enumerates a prefix.
func (c *Client) List(prefix string) ([]string, error) {
	out, err := c.roundTrip(opList, prefix, nil)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return strings.Split(string(out), "\n"), nil
}

// ThirdPartyTransfer orchestrates src→dst copy of path on the client's
// authority: the client delegates a proxy to the source server, which
// then authenticates to the destination *as the client* and pushes the
// file. This is GSI delegation doing its canonical job.
//
// In this in-process reproduction the "source server side" runs in this
// function with the delegated credential, exactly as the source host
// would.
func ThirdPartyTransfer(client *gridcert.Credential, trust *gridcert.TrustStore,
	srcAddr string, srcHost gridcert.Name,
	dstAddr string, dstHost gridcert.Name,
	srcPath, dstPath string) error {

	// 1. The client connects to the source and fetches nothing itself —
	// it delegates. (Delegation rides the established secure channel in
	// real GridFTP; here we run the exchange directly.)
	delegatee, req, err := proxy.NewDelegatee(0, false)
	if err != nil {
		return err
	}
	reply, err := proxy.HandleDelegation(client, req, proxy.Options{})
	if err != nil {
		return err
	}
	delegated, err := delegatee.Accept(reply)
	if err != nil {
		return err
	}

	// 2. The source (acting with the delegated credential) reads the file
	// from itself and pushes it to the destination as the client.
	srcConn, err := Dial(srcAddr, delegated, trust, srcHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: source: %w", err)
	}
	defer srcConn.Close()
	data, err := srcConn.Get(srcPath)
	if err != nil {
		return err
	}
	dstConn, err := Dial(dstAddr, delegated, trust, dstHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: destination: %w", err)
	}
	defer dstConn.Close()
	if err := dstConn.Put(dstPath, data); err != nil {
		return err
	}
	return nil
}
