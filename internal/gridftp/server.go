package gridftp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/gridcert"
	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/proxy"
	"repro/internal/record"
	"repro/internal/trace"
)

// Server is a GridFTP endpoint: a secured listener in front of a Store.
type Server struct {
	store    *Store
	cred     *gridcert.Credential
	trust    *gridcert.TrustStore
	listener *gsitransport.Listener

	mu      sync.Mutex
	served  int
	closing bool

	// xmu guards xfers, the striped transfers still collecting their
	// data connections (keyed by transfer token).
	xmu   sync.Mutex
	xfers map[string]*stripeXfer

	// tracer, when set via SetTracer, spans every transfer and feeds
	// the active-transfer registry. Nil disables.
	tracer *trace.Tracer
}

// NewServer starts a GridFTP server on addr ("127.0.0.1:0" for tests).
func NewServer(addr string, store *Store, cred *gridcert.Credential, trust *gridcert.TrustStore) (*Server, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store: store,
		cred:  cred,
		trust: trust,
		xfers: make(map[string]*stripeXfer),
		listener: gsitransport.NewListener(inner, gss.Config{
			Credential: cred,
			TrustStore: trust,
		}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Identity returns the server's host identity.
func (s *Server) Identity() gridcert.Name { return s.cred.Leaf().Subject }

// Served reports how many connections completed the handshake.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	return s.listener.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return
			}
			continue // failed handshake; keep serving
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn *gsitransport.Conn) {
	defer conn.Close()
	ctx := context.Background()
	identity := conn.Peer().Identity
	for {
		msg, err := conn.Receive()
		if err != nil {
			return
		}
		verb, path, payload, err := decodeCmd(msg)
		if err != nil {
			conn.Send(encodeReply(opErr, "", []byte(err.Error())))
			return
		}
		payload, rctx := splitTrace(verb, payload)
		switch verb {
		case opGetS:
			if !s.serveGet(ctx, conn, identity, path, payload, rctx) {
				return
			}
		case opPutS:
			if !s.servePut(ctx, conn, identity, path, payload, rctx) {
				return
			}
		case opJoin:
			if !s.serveJoin(conn, identity, payload, rctx) {
				return
			}
		default:
			if err := conn.Send(s.execute(identity, verb, path, payload)); err != nil {
				return
			}
		}
	}
}

// serveGet answers a streamed GET: acknowledge, then send the file as
// chunk records straight out of the store (the seal is the only pass
// over the data). A stripe-marked payload diverts to the parallel
// striped path. Returns false when the connection is unusable.
func (s *Server) serveGet(ctx context.Context, conn *gsitransport.Conn, identity gridcert.Name, path string, payload []byte, rctx trace.SpanContext) bool {
	if k, ok := decodeStripeGetReq(payload); ok {
		return s.serveGetStriped(ctx, conn, identity, path, k, rctx)
	}
	sp := s.tracer.StartRemote(rctx, "gridftp.server.get")
	sp.SetPeer(identity.String())
	data, err := s.store.Open(identity, path)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	xfer := s.tracer.Transfers().Begin("get:"+path, identity.String(), 1, sp.Context().TraceID)
	done := func(err error) bool {
		sp.SetError(err)
		sp.End()
		xfer.End()
		return err == nil
	}
	if err := conn.Send(encodeReply(opOK, path, nil)); err != nil {
		return done(err)
	}
	st := gsitransport.NewStream(ctx, conn)
	if _, err := st.Write(data); err != nil {
		// Mid-stream store-side failures would abort via CloseWithError;
		// a transport failure here already broke the connection.
		st.CloseWithError(err.Error())
		return done(err)
	}
	sp.AddBytes(int64(len(data)))
	xfer.Add(int64(len(data)))
	return done(st.CloseWrite())
}

// servePut answers a streamed PUT: authorize before inviting any data,
// acknowledge, assemble the inbound chunks, and confirm. The command
// payload may carry an 8-byte size hint used to pre-size the assembly
// (bounded — a lying hint degrades to incremental growth, never to an
// oversized trust-the-peer allocation). Returns false when the
// connection is unusable.
func (s *Server) servePut(ctx context.Context, conn *gsitransport.Conn, identity gridcert.Name, path string, payload []byte, rctx trace.SpanContext) bool {
	if k, hint, ok := decodeStripePutReq(payload); ok {
		return s.servePutStriped(ctx, conn, identity, path, k, hint, rctx)
	}
	sp := s.tracer.StartRemote(rctx, "gridftp.server.put")
	sp.SetPeer(identity.String())
	// Fail-closed before the client ships a byte.
	if err := s.store.authorize(identity, path, "write"); err != nil {
		sp.SetError(err)
		sp.End()
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	var hint int64
	if len(payload) == 8 {
		hint = int64(binary.BigEndian.Uint64(payload))
	}
	xfer := s.tracer.Transfers().Begin("put:"+path, identity.String(), 1, sp.Context().TraceID)
	done := func(err error) {
		sp.SetError(err)
		sp.End()
		xfer.End()
	}
	st := gsitransport.NewStream(ctx, conn)
	if err := conn.Send(encodeReply(opOK, path, nil)); err != nil {
		done(err)
		return false
	}
	assembled, err := readAllStream(st, hint)
	if err != nil {
		done(err)
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			// Clean client abort: the terminal record resynchronized the
			// stream; report and keep serving.
			return conn.Send(encodeReply(opErr, path, []byte(peerErr.Msg))) == nil
		}
		return false
	}
	sp.AddBytes(int64(len(assembled)))
	xfer.Add(int64(len(assembled)))
	if err := s.store.PutOwned(identity, path, assembled); err != nil {
		done(err)
		return conn.Send(encodeReply(opErr, path, []byte(err.Error()))) == nil
	}
	done(nil)
	return conn.Send(encodeReply(opOK, path, nil)) == nil
}

// maxPutPrealloc caps how much memory a declared size hint may reserve
// up front; larger (or lying) hints grow incrementally past it.
const maxPutPrealloc = 256 << 20

// transferCopyBuffer sizes the relay buffer for streamed copies. It
// matches the stream layer's bulk-write threshold so each relay write
// takes the pipelined seal path instead of sealing chunk by chunk.
const transferCopyBuffer = 4 * record.DefaultChunkSize

// readAllStream assembles a whole inbound stream through the stream's
// pipelined receive path (the open worker overlaps with assembly). A
// trusted-bounded size hint pre-sizes the buffer so well-declared
// transfers never pay a growth copy; lying hints degrade to amortized
// growth, never to an oversized trust-the-peer allocation.
func readAllStream(st *gsitransport.Stream, hint int64) ([]byte, error) {
	prealloc := int64(1 << 20)
	if hint > prealloc {
		prealloc = min(hint, maxPutPrealloc)
	}
	return st.ReadAll(int(prealloc))
}

func (s *Server) execute(identity gridcert.Name, verb, path string, payload []byte) []byte {
	switch verb {
	case opDel:
		if err := s.store.Delete(identity, path); err != nil {
			return encodeReply(opErr, path, []byte(err.Error()))
		}
		return encodeReply(opOK, path, nil)
	case opList:
		names, err := s.store.List(identity, path)
		if err != nil {
			return encodeReply(opErr, path, []byte(err.Error()))
		}
		return encodeReply(opOK, path, []byte(strings.Join(names, "\n")))
	default:
		return encodeReply(opErr, path, []byte("unknown verb "+verb))
	}
}

// Client is a GridFTP client session. The dial parameters are retained
// so striped transfers can open matching data connections.
type Client struct {
	conn       *gsitransport.Conn
	cred       *gridcert.Credential
	trust      *gridcert.TrustStore
	addr       string
	expectHost gridcert.Name
	tracer     *trace.Tracer // nil disables tracing (SetTracer)
}

// Dial connects and authenticates to a GridFTP server.
func Dial(addr string, cred *gridcert.Credential, trust *gridcert.TrustStore, expectHost gridcert.Name) (*Client, error) {
	conn, err := gsitransport.Dial(addr, gss.Config{
		Credential:   cred,
		TrustStore:   trust,
		ExpectedPeer: expectHost,
	})
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, cred: cred, trust: trust, addr: addr, expectHost: expectHost}, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(verb, path string, payload []byte) ([]byte, error) {
	msg, err := encodeCmd(verb, path, payload)
	if err != nil {
		return nil, err
	}
	if err := c.conn.Send(msg); err != nil {
		return nil, err
	}
	return c.readReply()
}

// GetReader is an in-flight streamed GET: an io.ReadCloser delivering
// the file as its chunks arrive. Close before issuing further commands
// on the same client.
type GetReader struct {
	st   *gsitransport.Stream
	err  error
	sp   *trace.Span     // nil when untraced
	xfer *trace.Transfer // nil when untraced
}

// Read returns file bytes, io.EOF at the end of a complete transfer,
// and the server's abort reason if it failed mid-stream.
func (g *GetReader) Read(p []byte) (int, error) {
	n, err := g.st.Read(p)
	var peerErr *record.PeerError
	if errors.As(err, &peerErr) {
		err = fmt.Errorf("gridftp: server: %s", peerErr.Msg)
	}
	if err != nil && err != io.EOF {
		g.err = err
	}
	if n > 0 {
		g.sp.AddBytes(int64(n))
		g.xfer.Add(int64(n))
	}
	return n, err
}

// finishTrace ends the span and transfer registration exactly once.
func (g *GetReader) finishTrace() {
	g.sp.SetError(g.err)
	g.sp.End()
	g.xfer.End()
	g.sp, g.xfer = nil, nil
}

// Close drains any unread remainder so the session is reusable.
func (g *GetReader) Close() error {
	defer g.finishTrace()
	if g.err != nil {
		g.st.Release()
		return nil // already failed; connection state is settled
	}
	return g.st.Drain()
}

// GetStream starts a streamed GET of path.
func (c *Client) GetStream(path string) (*GetReader, error) {
	sp := c.tracer.StartRoot("gridftp.get")
	sp.SetPeer(c.expectHost.String())
	if _, err := c.roundTrip(opGetS, path, traceSuffix(sp, nil)); err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	return &GetReader{
		st:   gsitransport.NewStream(context.Background(), c.conn),
		sp:   sp,
		xfer: c.tracer.Transfers().Begin("get:"+path, c.expectHost.String(), 1, sp.Context().TraceID),
	}, nil
}

// GetTo fetches path, writing the content to w as it arrives, and
// returns the byte count.
func (c *Client) GetTo(path string, w io.Writer) (int64, error) {
	g, err := c.GetStream(path)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(w, g)
	if cerr := g.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return n, err
}

// Get fetches a file into memory through the pipelined receive path.
func (c *Client) Get(path string) ([]byte, error) {
	g, err := c.GetStream(path)
	if err != nil {
		return nil, err
	}
	data, err := g.st.ReadAll(0)
	if err != nil {
		g.err = err
		g.st.Release()
		g.finishTrace()
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			return nil, fmt.Errorf("gridftp: server: %s", peerErr.Msg)
		}
		return nil, err
	}
	g.sp.AddBytes(int64(len(data)))
	g.xfer.Add(int64(len(data)))
	g.finishTrace()
	return data, nil
}

// PutWriter is an in-flight streamed PUT: an io.WriteCloser whose Close
// completes the transfer and returns the server's verdict. Abort
// cancels mid-stream. Finish (Close or Abort) before issuing further
// commands on the same client.
type PutWriter struct {
	c    *Client
	st   *gsitransport.Stream
	done bool
	sp   *trace.Span     // nil when untraced
	xfer *trace.Transfer // nil when untraced
}

// Write ships file bytes as chunk records.
func (w *PutWriter) Write(p []byte) (int, error) {
	n, err := w.st.Write(p)
	if n > 0 {
		w.sp.AddBytes(int64(n))
		w.xfer.Add(int64(n))
	}
	return n, err
}

func (w *PutWriter) finishTrace(err error) {
	w.sp.SetError(err)
	w.sp.End()
	w.xfer.End()
	w.sp, w.xfer = nil, nil
}

// Close sends FIN and waits for the server's confirmation.
func (w *PutWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	defer w.st.Release()
	if err := w.st.CloseWrite(); err != nil {
		w.finishTrace(err)
		return err
	}
	_, err := w.c.readReply()
	w.finishTrace(err)
	return err
}

// Abort cancels the transfer mid-stream: the server discards the
// partial file and the session stays usable.
func (w *PutWriter) Abort(reason string) error {
	if w.done {
		return nil
	}
	w.done = true
	defer w.st.Release()
	w.finishTrace(errors.New(reason))
	if err := w.st.CloseWithError(reason); err != nil {
		return err
	}
	// The server acknowledges the abort with its ERR reply.
	if _, err := w.c.readReply(); err == nil {
		return errors.New("gridftp: server confirmed an aborted transfer")
	}
	return nil
}

// readReply consumes one OK/ERR control message.
func (c *Client) readReply() ([]byte, error) {
	msg, err := c.conn.Receive()
	if err != nil {
		return nil, err
	}
	rverb, _, rpayload, err := decodeCmd(msg)
	if err != nil {
		return nil, err
	}
	if rverb == opErr {
		return nil, fmt.Errorf("gridftp: server: %s", rpayload)
	}
	return rpayload, nil
}

// PutStream starts a streamed PUT to path. The server authorizes the
// write before any data flows. sizeHint, when positive, lets the
// server pre-size its assembly; 0 means unknown.
func (c *Client) PutStream(path string, sizeHint int64) (*PutWriter, error) {
	var payload []byte
	if sizeHint > 0 {
		payload = binary.BigEndian.AppendUint64(nil, uint64(sizeHint))
	}
	sp := c.tracer.StartRoot("gridftp.put")
	sp.SetPeer(c.expectHost.String())
	if _, err := c.roundTrip(opPutS, path, traceSuffix(sp, payload)); err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	return &PutWriter{
		c:    c,
		st:   gsitransport.NewStream(context.Background(), c.conn),
		sp:   sp,
		xfer: c.tracer.Transfers().Begin("put:"+path, c.expectHost.String(), 1, sp.Context().TraceID),
	}, nil
}

// PutFrom stores r's content at path, streaming as it reads, and
// returns the byte count. Readers that know their length (bytes.Reader,
// strings.Reader, os.File via Seek-implemented Len) declare it so the
// server assembles without growth copies. A read failure aborts the
// transfer so the server discards the partial file.
func (c *Client) PutFrom(path string, r io.Reader) (int64, error) {
	var hint int64
	if l, ok := r.(interface{ Len() int }); ok {
		hint = int64(l.Len())
	}
	w, err := c.PutStream(path, hint)
	if err != nil {
		return 0, err
	}
	buf := record.Get(transferCopyBuffer)
	n, err := io.CopyBuffer(w, r, buf.B[:transferCopyBuffer])
	buf.Free()
	if err != nil {
		w.Abort(err.Error())
		return n, err
	}
	return n, w.Close()
}

// Put stores a file from memory.
func (c *Client) Put(path string, data []byte) error {
	w, err := c.PutStream(path, int64(len(data)))
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Delete removes a file.
func (c *Client) Delete(path string) error {
	_, err := c.roundTrip(opDel, path, nil)
	return err
}

// List enumerates a prefix.
func (c *Client) List(prefix string) ([]string, error) {
	out, err := c.roundTrip(opList, prefix, nil)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return strings.Split(string(out), "\n"), nil
}

// ThirdPartyTransfer orchestrates src→dst copy of path on the client's
// authority: the client delegates a proxy to the source server, which
// then authenticates to the destination *as the client* and pushes the
// file. This is GSI delegation doing its canonical job.
//
// The copy is streamed end to end — source chunks flow into destination
// chunks through one transfer-sized buffer, never materializing the
// file — so third-party moves are unbounded too.
//
// In this in-process reproduction the "source server side" runs in this
// function with the delegated credential, exactly as the source host
// would.
func ThirdPartyTransfer(client *gridcert.Credential, trust *gridcert.TrustStore,
	srcAddr string, srcHost gridcert.Name,
	dstAddr string, dstHost gridcert.Name,
	srcPath, dstPath string) error {

	// 1. The client connects to the source and fetches nothing itself —
	// it delegates. (Delegation rides the established secure channel in
	// real GridFTP; here we run the exchange directly.)
	delegatee, req, err := proxy.NewDelegatee(0, false)
	if err != nil {
		return err
	}
	reply, err := proxy.HandleDelegation(client, req, proxy.Options{})
	if err != nil {
		return err
	}
	delegated, err := delegatee.Accept(reply)
	if err != nil {
		return err
	}

	// 2. The source (acting with the delegated credential) streams the
	// file from itself into the destination as the client.
	srcConn, err := Dial(srcAddr, delegated, trust, srcHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: source: %w", err)
	}
	defer srcConn.Close()
	dstConn, err := Dial(dstAddr, delegated, trust, dstHost)
	if err != nil {
		return fmt.Errorf("gridftp: third-party: destination: %w", err)
	}
	defer dstConn.Close()

	get, err := srcConn.GetStream(srcPath)
	if err != nil {
		return err
	}
	put, err := dstConn.PutStream(dstPath, 0)
	if err != nil {
		get.Close()
		return err
	}
	buf := record.Get(transferCopyBuffer)
	_, err = io.CopyBuffer(put, get, buf.B[:transferCopyBuffer])
	buf.Free()
	if err != nil {
		put.Abort(err.Error())
		get.Close()
		return err
	}
	if err := put.Close(); err != nil {
		get.Close()
		return err
	}
	return get.Close()
}
