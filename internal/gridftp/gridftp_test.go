package gridftp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

type bed struct {
	trust *gridcert.TrustStore
	alice *gridcert.Credential
	bob   *gridcert.Credential
	srv   *Server
	store *Store
}

func openAll(subjects ...string) *authz.Policy {
	p := authz.NewPolicy(authz.DenyOverrides)
	for _, s := range subjects {
		p.Add(authz.Rule{
			Effect:   authz.EffectPermit,
			Subjects: []string{s},
			Actions:  []string{"read", "write", "delete", "list"},
		})
	}
	return p
}

func newBed(t testing.TB, policy *authz.Policy) *bed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	bob, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	host, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host ftp1"), 12*time.Hour)
	store := NewStore(policy)
	srv, err := NewServer("127.0.0.1:0", store, host, trust)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &bed{trust: trust, alice: alice, bob: bob, srv: srv, store: store}
}

func TestPutGetListDelete(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := bytes.Repeat([]byte("climate "), 1000)
	if err := c.Put("/data/run1", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/data/run1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := c.Put("/data/run2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := c.List("/data/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "/data/run1" {
		t.Fatalf("List = %v", names)
	}
	if err := c.Delete("/data/run1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/data/run1"); err == nil {
		t.Fatal("deleted file readable")
	}
}

func TestAuthorizationPerIdentity(t *testing.T) {
	// Alice full access; Bob read-only on /shared.
	pol := authz.NewPolicy(authz.DenyOverrides).Add(
		authz.Rule{
			Effect:   authz.EffectPermit,
			Subjects: []string{"/O=Grid/CN=Alice"},
			Actions:  []string{"read", "write", "delete", "list"},
		},
		authz.Rule{
			Effect:    authz.EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Bob"},
			Resources: []string{"/shared/*"},
			Actions:   []string{"read", "list"},
		},
	)
	b := newBed(t, pol)
	ca_, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer ca_.Close()
	if err := ca_.Put("/shared/doc", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := ca_.Put("/private/alice", []byte("secret")); err != nil {
		t.Fatal(err)
	}

	cb, err := Dial(b.srv.Addr(), b.bob, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if got, err := cb.Get("/shared/doc"); err != nil || string(got) != "hello" {
		t.Fatalf("bob read shared: %q %v", got, err)
	}
	if err := cb.Put("/shared/doc", []byte("overwrite")); err == nil {
		t.Fatal("bob wrote to read-only share")
	}
	if _, err := cb.Get("/private/alice"); err == nil {
		t.Fatal("bob read alice's private file")
	}
	if err := cb.Delete("/shared/doc"); err == nil {
		t.Fatal("bob deleted from read-only share")
	}
}

func TestProxyCredentialWorks(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	p, err := proxy.New(b.alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.srv.Addr(), p, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The store authorizes against the *identity* (Alice), not the proxy
	// subject.
	if err := c.Put("/data/via-proxy", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestUntrustedClientRejected(t *testing.T) {
	b := newBed(t, openAll("/O=Rogue/CN=Eve"))
	rogueAuth, _ := ca.New(gridcert.MustParseName("/O=Rogue/CN=CA"), time.Hour, ca.DefaultPolicy())
	eve, _ := rogueAuth.NewEntity(gridcert.MustParseName("/O=Rogue/CN=Eve"), time.Hour)
	rogueTrust := gridcert.NewTrustStore()
	rogueTrust.AddRoot(rogueAuth.Certificate())
	// Eve trusts the server's CA so her side proceeds; the server must
	// still refuse her chain. Because the initiator sends the final
	// handshake token, her Dial may return before the server's rejection
	// lands — but no operation can succeed.
	for _, r := range b.trust.Roots() {
		rogueTrust.AddRoot(r)
	}
	c, err := Dial(b.srv.Addr(), eve, rogueTrust, b.srv.Identity())
	if err != nil {
		return // rejected during the handshake: fine
	}
	defer c.Close()
	if _, err := c.Get("/anything"); err == nil {
		t.Fatal("untrusted client performed an operation")
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	// Two servers; Alice orchestrates src→dst without the data passing
	// through her.
	auth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	srcHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host src"), 12*time.Hour)
	dstHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host dst"), 12*time.Hour)

	pol := openAll("/O=Grid/CN=Alice")
	srcStore, dstStore := NewStore(pol), NewStore(pol)
	src, err := NewServer("127.0.0.1:0", srcStore, srcHost, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := NewServer("127.0.0.1:0", dstStore, dstHost, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Seed the source (as Alice).
	payload := bytes.Repeat([]byte("dataset "), 500)
	if err := srcStore.Put(alice.Identity(), "/exp/результат", payload); err != nil {
		t.Fatal(err)
	}

	if err := ThirdPartyTransfer(alice, trust,
		src.Addr(), src.Identity(),
		dst.Addr(), dst.Identity(),
		"/exp/результат", "/mirror/copy"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get(alice.Identity(), "/mirror/copy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("third-party copy mismatch")
	}
}

func TestThirdPartyTransferDeniedWithoutRights(t *testing.T) {
	auth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	srcHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host src2"), 12*time.Hour)
	dstHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host dst2"), 12*time.Hour)

	// Destination denies Alice writes.
	srcStore := NewStore(openAll("/O=Grid/CN=Alice"))
	dstStore := NewStore(authz.NewPolicy(authz.DenyOverrides)) // deny all
	src, _ := NewServer("127.0.0.1:0", srcStore, srcHost, trust)
	defer src.Close()
	dst, _ := NewServer("127.0.0.1:0", dstStore, dstHost, trust)
	defer dst.Close()
	srcStore.Put(alice.Identity(), "/f", []byte("x"))
	err := ThirdPartyTransfer(alice, trust, src.Addr(), src.Identity(), dst.Addr(), dst.Identity(), "/f", "/f")
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("transfer into deny-all store: %v", err)
	}
}

func TestCommandCodec(t *testing.T) {
	msg, err := encodeCmd("PUT", "/path/with\x01weird", []byte{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	verb, path, payload, err := decodeCmd(msg)
	if err != nil || verb != "PUT" || path != "/path/with\x01weird" || !bytes.Equal(payload, []byte{0, 1, 2}) {
		t.Fatalf("%v %q %q %v", err, verb, path, payload)
	}
	if _, _, _, err := decodeCmd([]byte("nonulls")); err == nil {
		t.Fatal("malformed command accepted")
	}
}

// Regression: a hostile path (or verb) carrying a NUL byte used to
// shift the frame silently — "evil\x00smuggled" encoded as path would
// decode with "evil" as the path and "smuggled\x00..." flowing into the
// payload, letting an attacker move bytes between authorization-relevant
// fields. encodeCmd must reject it outright.
func TestCommandCodecRejectsNULInjection(t *testing.T) {
	if _, err := encodeCmd(opPutS, "/evil\x00/smuggled", nil); err == nil {
		t.Fatal("NUL in path accepted at encode")
	}
	if _, err := encodeCmd("PU\x00TS", "/fine", nil); err == nil {
		t.Fatal("NUL in verb accepted at encode")
	}
	// The pre-fix frame an injecting encoder would have produced: the
	// decoder must refuse to dispatch it as a valid command rather than
	// silently reinterpreting the smuggled bytes.
	hostile := []byte("PU\x00TS\x00/evil")
	if verb, _, _, err := decodeCmd(hostile); err == nil && verb == opPutS {
		t.Fatalf("shifted frame decoded as %q", verb)
	}
	// End-to-end: the client refuses to send the command at all.
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("/data\x00/injected", []byte("x")); err == nil {
		t.Fatal("Put with NUL path accepted")
	}
	if _, err := c.Get("/data\x00/injected"); err == nil {
		t.Fatal("Get with NUL path accepted")
	}
	// The refusal is local; the session stays usable.
	if err := c.Put("/data/clean", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSecuredTransfer64K(b *testing.B) {
	bd := newBed(b, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(bd.srv.Addr(), bd.alice, bd.trust, bd.srv.Identity())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{7}, 64<<10)
	if err := c.Put("/bench", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("/bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// Streamed transfers are unbounded: a payload larger than the old
// whole-message cap (wire.MaxField, 16 MiB) crosses in 256 KiB chunk
// records and survives intact, and the session stays usable.
func TestStreamedTransferBeyondOldCap(t *testing.T) {
	if testing.Short() {
		t.Skip("17 MiB transfer")
	}
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	defer b.srv.Close()
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	big := make([]byte, 17<<20) // > wire.MaxField
	for i := range big {
		big[i] = byte(i>>8) ^ byte(i)
	}
	if _, err := c.PutFrom("/big/dataset", bytes.NewReader(big)); err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	n, err := c.GetTo("/big/dataset", &back)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(big)) || !bytes.Equal(back.Bytes(), big) {
		t.Fatalf("big transfer corrupted: %d bytes", n)
	}
	// Session still serves ordinary commands after two streams.
	names, err := c.List("/big/")
	if err != nil || len(names) != 1 {
		t.Fatalf("post-stream list: %v %v", names, err)
	}
}

// An aborted PUT discards the partial file server-side and leaves the
// session usable.
func TestStreamedPutAbort(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	defer b.srv.Close()
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w, err := c.PutStream("/wip/half", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 600_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort("client changed its mind"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/wip/half"); err == nil {
		t.Fatal("partial file materialized despite abort")
	}
	// Unauthorized PUT is refused before any data is invited.
	if err := c.Put("/ok/after", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/ok/after")
	if err != nil || string(got) != "fine" {
		t.Fatalf("post-abort session unusable: %q %v", got, err)
	}
}

// A PUT denied by policy is rejected at the command stage — the client
// never streams a byte.
func TestStreamedPutDeniedUpFront(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	defer b.srv.Close()
	c, err := Dial(b.srv.Addr(), b.bob, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.PutStream("/secret/file", 0); err == nil {
		t.Fatal("unauthorized streamed PUT accepted")
	}
	// The refusal left no half-open stream: further commands work.
	if _, err := c.List("/"); err == nil {
		t.Fatal("bob should be denied list too")
	}
}
