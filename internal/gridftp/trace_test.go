package gridftp

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// waitTraceSpans polls a recorder until min spans of one trace landed.
func waitTraceSpans(t *testing.T, tr *trace.Tracer, tid string, min int) []trace.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := tr.Recorder().Snapshot(trace.Query{TraceID: tid, N: 100})
		if len(recs) >= min {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("wanted %d spans of trace %s, recorder holds %d: %+v", min, tid, len(recs), recs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A traced striped GET produces ONE trace spanning both processes:
// the client's root and per-stripe lanes, and — via the trailing
// context on the command and on every JOIN — the server's transfer
// span and its per-stripe lanes, all under the same trace id.
func TestStripedGetTracePropagation(t *testing.T) {
	const stripes = 3
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	serverTracer := trace.New(trace.Config{})
	defer serverTracer.Close()
	b.srv.SetTracer(serverTracer)

	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clientTracer := trace.New(trace.Config{})
	defer clientTracer.Close()
	c.SetTracer(clientTracer)

	payload := stripedPayload(2<<20 + 77)
	if err := b.store.Put(b.alice.Identity(), "/data/traced", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetStriped("/data/traced", stripes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("GetStriped returned %d bytes, want %d", len(got), len(payload))
	}

	roots := clientTracer.Recorder().Snapshot(trace.Query{Op: "gridftp.get"})
	if len(roots) != 1 {
		t.Fatalf("client recorded %d gridftp.get roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Bytes < int64(len(payload)) {
		t.Fatalf("root span accounts %d bytes, transferred %d", root.Bytes, len(payload))
	}
	tid := root.TraceID.String()

	cli := waitTraceSpans(t, clientTracer, tid, 1+stripes)
	lanes := 0
	for _, r := range cli {
		if r.Op == "gridftp.stripe" {
			lanes++
		}
	}
	if lanes != stripes {
		t.Fatalf("client trace holds %d gridftp.stripe lanes, want %d: %+v", lanes, stripes, cli)
	}

	srv := waitTraceSpans(t, serverTracer, tid, 1+stripes)
	srvOps := make(map[string]int)
	for _, r := range srv {
		srvOps[r.Op]++
		if !r.Remote {
			t.Fatalf("server span %s of trace %s not marked remote", r.Op, tid)
		}
	}
	if srvOps["gridftp.server.get"] != 1 || srvOps["gridftp.server.stripe"] != stripes {
		t.Fatalf("server trace ops = %v, want 1 gridftp.server.get + %d gridftp.server.stripe", srvOps, stripes)
	}
}

// A traced client against an untraced server — and the reverse — must
// interoperate: the length-discriminated suffix is stripped (or simply
// absent) without disturbing the transfer.
func TestTraceInteropUntracedPeers(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))

	// Traced client, untraced server.
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ct := trace.New(trace.Config{})
	defer ct.Close()
	c.SetTracer(ct)
	payload := stripedPayload(1 << 20)
	if err := c.PutStriped("/data/interop", 2, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetStriped("/data/interop", 2)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("traced→untraced striped round trip: %d bytes, %v", len(got), err)
	}
	if err := c.Put("/data/plain", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/data/plain"); err != nil {
		t.Fatal(err)
	}

	// Untraced client, traced server: roots a server-local trace.
	st := trace.New(trace.Config{})
	defer st.Close()
	b.srv.SetTracer(st)
	c2, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err = c2.GetStriped("/data/interop", 2)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("untraced→traced striped GET: %d bytes, %v", len(got), err)
	}
	recs := st.Recorder().Snapshot(trace.Query{Op: "gridftp.server.get"})
	if len(recs) != 1 {
		t.Fatalf("traced server recorded %d gridftp.server.get spans, want 1", len(recs))
	}
	if recs[0].Remote {
		t.Fatal("server span marked remote despite untraced client")
	}
}
