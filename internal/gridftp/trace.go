package gridftp

import (
	"repro/internal/trace"
)

// End-to-end tracing for the data-movement service. The control
// protocol's command payloads have fixed legal lengths per verb, so the
// trace context crosses the wire as a trailing trace.EncodedLen-byte
// suffix discriminated purely by length: a payload exactly EncodedLen
// longer than a legal untraced form carries one. Untraced peers on
// either side keep interoperating — an untraced server strips (and
// ignores) the suffix, an untraced client simply never appends one.

// SetTracer attaches a tracer to the server: every GET/PUT — plain or
// striped — gets a server-side span continuing the client's trace, and
// active transfers register in the tracer's transfer registry for the
// admin plane. Call before traffic arrives; a nil tracer (the default)
// disables tracing.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// SetTracer attaches a tracer to the client: GET/PUT operations become
// root spans whose context crosses on the command (and per-stripe on
// each JOIN), and in-flight transfers register in the tracer's
// transfer registry.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// traceSuffix appends sp's wire context to a command payload; untraced
// (nil span) payloads pass through untouched.
func traceSuffix(sp *trace.Span, payload []byte) []byte {
	if sp == nil {
		return payload
	}
	return sp.Context().Encode(payload)
}

// Legal untraced payload lengths per verb; a trailing trace context is
// present exactly when the payload is trace.EncodedLen longer than one
// of these (the sets {0,5}, {0,8,13}, {20} and their +25 forms are
// disjoint, so the discrimination is unambiguous).
var (
	tracedGetLens  = []int{0, 5}
	tracedPutLens  = []int{0, 8, 13}
	tracedJoinLens = []int{stripeTokenLen + 4}
)

// splitTrace strips and decodes a trailing trace context from an
// inbound command payload. It runs regardless of whether this server
// traces, so traced clients interoperate with untraced servers.
func splitTrace(verb string, payload []byte) ([]byte, trace.SpanContext) {
	var bases []int
	switch verb {
	case opGetS:
		bases = tracedGetLens
	case opPutS:
		bases = tracedPutLens
	case opJoin:
		bases = tracedJoinLens
	default:
		return payload, trace.SpanContext{}
	}
	n := len(payload) - trace.EncodedLen
	for _, b := range bases {
		if n == b {
			if sc, ok := trace.DecodeSpanContext(payload[n:]); ok {
				return payload[:n], sc
			}
			return payload, trace.SpanContext{}
		}
	}
	return payload, trace.SpanContext{}
}
