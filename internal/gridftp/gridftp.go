// Package gridftp implements the data-movement service of the Globus
// Toolkit (paper §3): file storage and transfer secured by GSI. The
// control protocol runs over the GT2 secured transport
// (internal/gsitransport); every operation is authorized against a
// per-path policy under the client's authenticated grid identity.
//
// The GSI showcase is the third-party transfer: a client directs server
// A to push a file to server B. A authenticates to B *as the client*
// using a credential the client delegated — single sign-on and
// delegation doing real work.
package gridftp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/authz"
	"repro/internal/gridcert"
)

// Store is an in-memory file tree with per-path authorization.
type Store struct {
	mu     sync.RWMutex
	files  map[string][]byte
	policy *authz.Policy
}

// NewStore creates a store governed by the given policy. Actions used:
// "read", "write", "delete", "list".
func NewStore(policy *authz.Policy) *Store {
	return &Store{files: make(map[string][]byte), policy: policy}
}

// Put writes a file as identity.
func (s *Store) Put(identity gridcert.Name, path string, data []byte) error {
	return s.PutOwned(identity, path, append([]byte(nil), data...))
}

// PutOwned installs data without copying; ownership transfers to the
// store, which treats every stored slice as immutable from then on.
// The streaming PUT path assembles the file once from its chunks and
// hands the assembly straight over.
func (s *Store) PutOwned(identity gridcert.Name, path string, data []byte) error {
	if err := s.authorize(identity, path, "write"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = data
	return nil
}

// Get reads a file as identity (copied out of the store).
func (s *Store) Get(identity gridcert.Name, path string) ([]byte, error) {
	data, err := s.Open(identity, path)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// Open returns the stored content as an immutable reference: stored
// slices are never mutated in place (Put installs fresh ones), so the
// streaming GET path can seal records straight out of the store without
// a defensive copy.
func (s *Store) Open(identity gridcert.Name, path string) ([]byte, error) {
	if err := s.authorize(identity, path, "read"); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("gridftp: no such file %q", path)
	}
	return data, nil
}

// Delete removes a file as identity.
func (s *Store) Delete(identity gridcert.Name, path string) error {
	if err := s.authorize(identity, path, "delete"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("gridftp: no such file %q", path)
	}
	delete(s.files, path)
	return nil
}

// List enumerates files under a prefix as identity.
func (s *Store) List(identity gridcert.Name, prefix string) ([]string, error) {
	if err := s.authorize(identity, prefix, "list"); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (s *Store) authorize(identity gridcert.Name, path, action string) error {
	d := s.policy.Evaluate(authz.Request{Subject: identity, Resource: path, Action: action})
	if d != authz.Permit {
		return fmt.Errorf("gridftp: %q denied %s on %q", identity, action, path)
	}
	return nil
}

// --- control protocol ----------------------------------------------------

// Command opcodes of the control protocol. GETS/PUTS stream their file
// body as chunk records after the command/acknowledgement round trip,
// so transfers are unbounded (no whole-message 16 MiB cap) and flow
// through the pooled record layer in DefaultChunkSize pieces.
const (
	opGetS = "GETS"
	opPutS = "PUTS"
	opDel  = "DEL"
	opList = "LIST"
	opOK   = "OK"
	opErr  = "ERR"
)

// encodeCmd frames a command: verb \x00 path \x00 payload. NUL is the
// frame delimiter, so a verb or path containing one would silently
// shift the frame — payload bytes would parse as path on the far side
// (a classic injection: a hostile "file\x00extra" path smuggles bytes
// into a different field). Both fields are rejected up front.
func encodeCmd(verb, path string, payload []byte) ([]byte, error) {
	if strings.IndexByte(verb, 0) >= 0 || strings.IndexByte(path, 0) >= 0 {
		return nil, errNULInCommand
	}
	out := make([]byte, 0, len(verb)+len(path)+len(payload)+2)
	out = append(out, verb...)
	out = append(out, 0)
	out = append(out, path...)
	out = append(out, 0)
	return append(out, payload...), nil
}

var errNULInCommand = errors.New("gridftp: NUL byte in command verb or path")

// encodeReply frames a server-side reply. Reply verbs are protocol
// constants and echoed paths were decoded from between NUL delimiters,
// so they cannot contain NUL; if a future caller violates that, the
// reply degrades to a bare error frame instead of a shifted one.
func encodeReply(verb, path string, payload []byte) []byte {
	out, err := encodeCmd(verb, path, payload)
	if err != nil {
		out, _ = encodeCmd(opErr, "", []byte(err.Error()))
	}
	return out
}

// decodeCmd reverses encodeCmd. The verb field is additionally held to
// the short uppercase-ASCII opcode alphabet so a shifted or hostile
// frame fails loudly instead of dispatching garbage.
func decodeCmd(msg []byte) (verb, path string, payload []byte, err error) {
	i := indexByte(msg, 0)
	if i < 0 {
		return "", "", nil, errors.New("gridftp: malformed command")
	}
	j := indexByte(msg[i+1:], 0)
	if j < 0 {
		return "", "", nil, errors.New("gridftp: malformed command")
	}
	verb = string(msg[:i])
	if !validVerb(verb) {
		return "", "", nil, fmt.Errorf("gridftp: invalid command verb %q", verb)
	}
	return verb, string(msg[i+1 : i+1+j]), msg[i+2+j:], nil
}

// validVerb accepts 1-8 uppercase ASCII letters — the opcode alphabet.
func validVerb(v string) bool {
	if len(v) == 0 || len(v) > 8 {
		return false
	}
	for i := 0; i < len(v); i++ {
		if v[i] < 'A' || v[i] > 'Z' {
			return false
		}
	}
	return true
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}
