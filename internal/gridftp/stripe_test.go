package gridftp

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gsitransport"
	"repro/internal/gss"
)

func stripedPayload(n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(data)
	return data
}

// A striped PUT then striped GET must reproduce the file exactly, with
// the data crossing K parallel data connections each way.
func TestStripedPutGetRoundTrip(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := stripedPayload(6<<20 + 333)
	if err := c.PutStriped("/data/striped", 4, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetStriped("/data/striped", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped round trip mismatch")
	}
	// The control session must be reusable for further commands.
	names, err := c.List("/data/")
	if err != nil || len(names) != 1 {
		t.Fatalf("List after striped transfer: %v %v", names, err)
	}
}

// The streaming reader variant delivers the announced size in order.
func TestStripedGetReaderStreams(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := stripedPayload(3<<20 + 17)
	if err := c.Put("/data/f", payload); err != nil {
		t.Fatal(err)
	}
	g, err := c.GetStripedReader("/data/f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", g.Size(), len(payload))
	}
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped streamed GET mismatch")
	}
}

// A server grants at most maxTransferStripes regardless of the ask,
// and a single-stripe request degrades to a working one-lane transfer.
func TestStripedGrantClamp(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := stripedPayload(1 << 20)
	if err := c.PutStriped("/data/one", 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetStriped("/data/one", maxTransferStripes+7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("clamped striped GET mismatch")
	}
}

// An unauthorized striped PUT is denied in the command round trip —
// before any data connection is invited — and the session survives.
func TestStripedPutUnauthorized(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.bob, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.PutStripedWriter("/data/nope", 4, 1024); err == nil ||
		!strings.Contains(err.Error(), "denied") {
		t.Fatalf("unauthorized striped PUT: %v", err)
	}
	// The session must stay synchronized: the next command gets a
	// proper (here: denied) reply, not a desynced stream.
	if _, err := c.List("/"); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("session desynced after denial: %v", err)
	}
}

// An aborted striped PUT discards the partial file and keeps the
// control session synchronized.
func TestStripedPutAbort(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w, err := c.PutStripedWriter("/data/partial", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(stripedPayload(2 << 20)); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort("disk on fire"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/data/partial"); err == nil {
		t.Fatal("aborted striped PUT left a file behind")
	}
	if err := c.Put("/data/next", []byte("still works")); err != nil {
		t.Fatalf("session unusable after abort: %v", err)
	}
}

// A JOIN with an unknown token must be refused: the token is the
// capability binding data connections to a granted transfer.
func TestStripedJoinUnknownToken(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice"))
	conn, err := gsitransport.Dial(b.srv.Addr(), gss.Config{
		Credential:   b.alice,
		TrustStore:   b.trust,
		ExpectedPeer: b.srv.Identity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, stripeTokenLen+4) // all-zero token, idx 0
	msg, err := encodeCmd(opJoin, "", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	verb, _, body, err := decodeCmd(reply)
	if err != nil || verb != opErr || !strings.Contains(string(body), "unknown transfer token") {
		t.Fatalf("forged JOIN answered %q %q %v", verb, body, err)
	}
}

// A transfer token is bound to the identity that opened it: another
// (fully trusted) identity replaying a stolen token is refused.
func TestStripedTokenBoundToIdentity(t *testing.T) {
	b := newBed(t, openAll("/O=Grid/CN=Alice", "/O=Grid/CN=Bob"))
	c, err := Dial(b.srv.Addr(), b.alice, b.trust, b.srv.Identity())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := b.store.Put(b.alice.Identity(), "/data/f", stripedPayload(1<<16)); err != nil {
		t.Fatal(err)
	}
	grant, err := c.roundTrip(opGetS, "/data/f", encodeStripeGetReq(2))
	if err != nil {
		t.Fatal(err)
	}
	token := grant[12:]

	// Bob steals the token and tries to join Alice's transfer.
	eavesdrop, err := gsitransport.Dial(b.srv.Addr(), gss.Config{
		Credential:   b.bob,
		TrustStore:   b.trust,
		ExpectedPeer: b.srv.Identity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eavesdrop.Close()
	payload := make([]byte, stripeTokenLen+4)
	copy(payload, token)
	msg, _ := encodeCmd(opJoin, "", payload)
	if err := eavesdrop.Send(msg); err != nil {
		t.Fatal(err)
	}
	reply, err := eavesdrop.Receive()
	if err != nil {
		t.Fatal(err)
	}
	verb, _, body, _ := decodeCmd(reply)
	if verb != opErr || !strings.Contains(string(body), "another identity") {
		t.Fatalf("stolen token accepted: %q %q", verb, body)
	}

	// Alice still completes her transfer normally.
	conns, _, err := c.dialStripes(2, token, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &StripedGetReader{
		r:     gsitransport.NewStripedReader(context.Background(), conns, 0),
		conns: conns,
	}
	got, err := io.ReadAll(g)
	if err != nil || len(got) != 1<<16 {
		t.Fatalf("post-theft transfer: %d bytes, %v", len(got), err)
	}
	g.Close()
}

// Striped third-party transfer: both legs run over parallel stripes
// with the delegated credential, end to end.
func TestThirdPartyTransferStriped(t *testing.T) {
	auth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	srcHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host ssrc"), 12*time.Hour)
	dstHost, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host sdst"), 12*time.Hour)

	pol := openAll("/O=Grid/CN=Alice")
	srcStore, dstStore := NewStore(pol), NewStore(pol)
	src, err := NewServer("127.0.0.1:0", srcStore, srcHost, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := NewServer("127.0.0.1:0", dstStore, dstHost, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	payload := stripedPayload(5<<20 + 99)
	if err := srcStore.Put(alice.Identity(), "/exp/big", payload); err != nil {
		t.Fatal(err)
	}
	if err := ThirdPartyTransferStriped(alice, trust,
		src.Addr(), src.Identity(),
		dst.Addr(), dst.Identity(),
		"/exp/big", "/mirror/big", 4); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get(alice.Identity(), "/mirror/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped third-party copy mismatch")
	}
}
