package gram

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// TestMultiUserConcurrentSubmissions exercises the router, MMJFS and
// per-account LMJFS machinery under concurrent load from several users.
func TestMultiUserConcurrentSubmissions(t *testing.T) {
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=bigcluster"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	const users = 4
	const jobsPerUser = 3
	gm := authz.NewGridMap()
	creds := make([]*gridcert.Credential, users)
	for i := range creds {
		dn := gridcert.MustParseName(fmt.Sprintf("/O=Grid/CN=User%02d", i))
		c, err := auth.NewEntity(dn, 12*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		creds[i] = c
		gm.Add(dn, fmt.Sprintf("user%02d", i))
	}
	res, err := NewResource(host, trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < users; i++ {
		if err := res.CreateAccount(fmt.Sprintf("user%02d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, users*jobsPerUser)
	for i := 0; i < users; i++ {
		p, err := proxy.New(creds[i], proxy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		client := &Client{Credential: p, Trust: trust, Resource: res}
		for j := 0; j < jobsPerUser; j++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				mjs, err := c.SubmitAndRun(JobDescription{Executable: JobProgram, DelegateCredential: true})
				if err != nil {
					errs <- err
					return
				}
				if mjs.Job().State() != StateDone {
					errs <- fmt.Errorf("job state %s", mjs.Job().State())
				}
			}(client)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := res.Stats()
	if st.JobsAccepted != users*jobsPerUser {
		t.Fatalf("jobs accepted = %d", st.JobsAccepted)
	}
	// Each user needed at most a handful of cold starts (races on the
	// first submissions may cold-start more than once per account), and
	// GRIM ran only for cold starts.
	if st.ColdStarts < users || st.ColdStarts > users*jobsPerUser {
		t.Fatalf("cold starts = %d", st.ColdStarts)
	}
	if st.GRIMRuns != st.ColdStarts || st.StarterRuns != st.ColdStarts {
		t.Fatalf("privileged runs: %+v", st)
	}
	// Still zero privileged network services afterwards.
	if snap := res.Sys.Audit(); len(snap.PrivilegedNetworkServices) != 0 {
		t.Fatalf("privileged network services: %v", snap.PrivilegedNetworkServices)
	}
}

// TestJobsIsolatedPerAccount: one user's MJS cannot be driven by another
// user even when both are valid local users.
func TestJobsIsolatedPerAccount(t *testing.T) {
	auth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	host, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=c2"), 12*time.Hour)
	u1, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=U1"), 12*time.Hour)
	u2, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=U2"), 12*time.Hour)
	gm := authz.NewGridMap()
	gm.Add(u1.Identity(), "u1")
	gm.Add(u2.Identity(), "u2")
	res, err := NewResource(host, trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	res.CreateAccount("u1")
	res.CreateAccount("u2")

	p1, _ := proxy.New(u1, proxy.Options{})
	p2, _ := proxy.New(u2, proxy.Options{})
	c1 := &Client{Credential: p1, Trust: trust, Resource: res}
	h, err := c1.Submit(JobDescription{Executable: JobProgram})
	if err != nil {
		t.Fatal(err)
	}
	// U2 tries to run U1's MJS.
	c2 := &Client{Credential: p2, Trust: trust, Resource: res}
	if _, err := c2.Run(h); err == nil {
		t.Fatal("cross-user MJS control allowed")
	}
	// U1 succeeds.
	if _, err := c1.Run(h); err != nil {
		t.Fatal(err)
	}
}
