package gram

import (
	"context"
	"fmt"

	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/xmlsec"
)

// Client is the requestor side of GT3 GRAM.
type Client struct {
	// Credential authenticates and signs requests (a user proxy,
	// typically).
	Credential *gridcert.Credential
	// Trust validates the resource (must include the host CA).
	Trust *gridcert.TrustStore
	// Resource is the target (the in-memory stand-in for its network
	// address).
	Resource *Resource
	// ConnectConfig augments the requestor-side GSS options for the
	// step-7 MJS connection (delegation intent, expected peer,
	// limited-proxy rejection, depth caps). Credential and TrustStore
	// in it are ignored — the Client's own fields always apply.
	ConnectConfig gss.Config
}

// JobHandle identifies a submitted job.
type JobHandle struct {
	MJSHandle string
	Account   string
}

// Submit runs steps 1–6 of Figure 4: "the requestor forms a job
// description and signs it with appropriate GSI credentials", sends it to
// the resource, and receives the service reference of the created MJS.
func (c *Client) Submit(desc JobDescription) (JobHandle, error) {
	return c.SubmitContext(context.Background(), desc)
}

// SubmitContext is Submit honoring ctx: the request is not signed or
// delivered once the context ends.
func (c *Client) SubmitContext(ctx context.Context, desc JobDescription) (JobHandle, error) {
	if err := ctx.Err(); err != nil {
		return JobHandle{}, err
	}
	env := soap.NewEnvelope(ActionSubmit, desc.Encode())
	env.To = "gram://" + c.Resource.HostIdentity().CommonName()
	if err := xmlsec.SignEnvelope(env, c.Credential); err != nil {
		return JobHandle{}, err
	}
	if err := ctx.Err(); err != nil {
		return JobHandle{}, err
	}
	reply, err := c.Resource.Deliver(env)
	if err != nil {
		return JobHandle{}, err
	}
	if reply.Fault != nil {
		return JobHandle{}, reply.Fault
	}
	sr, err := decodeSubmitReply(reply.Body)
	if err != nil {
		return JobHandle{}, err
	}
	return JobHandle{MJSHandle: sr.MJSHandle, Account: sr.Account}, nil
}

// Run completes step 7 for a submitted job: connect to the MJS with
// mutual authentication, optionally delegate, and start the job.
func (c *Client) Run(h JobHandle) (*MJS, error) {
	return c.RunContext(context.Background(), h)
}

// RunContext is Run honoring ctx between the connect, delegate, and start
// steps.
func (c *Client) RunContext(ctx context.Context, h JobHandle) (*MJS, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, ok := c.Resource.LookupMJS(h.MJSHandle)
	if !ok {
		return nil, fmt.Errorf("gram: no MJS %q", h.MJSHandle)
	}
	reqCfg := c.ConnectConfig
	reqCfg.Credential = c.Credential
	reqCfg.TrustStore = c.Trust
	conn, err := m.ConnectWith(reqCfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.Job().Description.DelegateCredential {
		if err := conn.Delegate(c.Credential); err != nil {
			return nil, fmt.Errorf("gram: delegation: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := conn.Start(); err != nil {
		return nil, err
	}
	return m, nil
}

// SubmitAndRun is the full Figure-4 flow in one call.
func (c *Client) SubmitAndRun(desc JobDescription) (*MJS, error) {
	return c.SubmitAndRunContext(context.Background(), desc)
}

// SubmitAndRunContext is SubmitAndRun honoring ctx.
func (c *Client) SubmitAndRunContext(ctx context.Context, desc JobDescription) (*MJS, error) {
	h, err := c.SubmitContext(ctx, desc)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, h)
}
