package gram

import (
	"fmt"
	"sync"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/osim"
	"repro/internal/soap"
	"repro/internal/xmlsec"
)

// GT2Resource is the GT2 GRAM baseline: a single *privileged* network
// service — the gatekeeper — runs as root, authenticates requests itself,
// and forks job managers into user accounts. It is the design GT3's
// least-privilege architecture replaces (§5.2): every byte of request
// parsing and every authentication step executes with root privileges,
// and a compromise of the gatekeeper yields the host.
type GT2Resource struct {
	Sys   *osim.System
	Trust *gridcert.TrustStore

	hostCred       *gridcert.Credential
	gatekeeperProc *osim.Process

	mu    sync.Mutex
	seq   int
	jobs  map[string]*Job
	stats Stats
}

// NewGT2Resource boots a GT2 gatekeeper host.
func NewGT2Resource(hostCred *gridcert.Credential, trust *gridcert.TrustStore, gridmap *authz.GridMap) (*GT2Resource, error) {
	r := &GT2Resource{
		Sys:      osim.NewSystem(),
		Trust:    trust,
		hostCred: hostCred,
		jobs:     make(map[string]*Job),
	}
	r.Sys.WriteFileAs(osim.RootUID, HostCredPath, gridcert.EncodeChain(hostCred.Chain), false)
	r.Sys.WriteFileAs(osim.RootUID, GridMapPath, []byte(gridmap.Serialize()), true)
	r.Sys.InstallProgram(osim.RootUID, JobProgram, false, func(p *osim.Process, args []string) error {
		return nil
	})
	// THE defining property: the gatekeeper is a privileged network
	// service — root AND listening.
	var err error
	if r.gatekeeperProc, err = r.Sys.Boot("gatekeeper", "root", true); err != nil {
		return nil, err
	}
	return r, nil
}

// CreateAccount provisions a local account.
func (r *GT2Resource) CreateAccount(name string) error {
	_, err := r.Sys.CreateAccount(name)
	return err
}

// GatekeeperProcess exposes the privileged service for compromise
// simulation.
func (r *GT2Resource) GatekeeperProcess() *osim.Process { return r.gatekeeperProc }

// Stats returns activity counters.
func (r *GT2Resource) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Submit processes a signed job request entirely inside the privileged
// gatekeeper: signature verification, grid-mapfile lookup, and job-manager
// creation all run as root.
func (r *GT2Resource) Submit(env *soap.Envelope) (*Job, error) {
	if env.Action != ActionSubmit {
		return nil, fmt.Errorf("gram: gatekeeper: unknown action %q", env.Action)
	}
	// All of this work is charged as privileged operations (EUID 0):
	// the gatekeeper parses and verifies untrusted network input as root.
	if err := r.gatekeeperProc.Work(verifyWork); err != nil {
		return nil, err
	}
	info, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{
		TrustStore:    r.Trust,
		RejectLimited: true,
	})
	if err != nil {
		return nil, fmt.Errorf("gram: gatekeeper: %w", err)
	}
	mapBytes, err := r.gatekeeperProc.ReadFile(GridMapPath)
	if err != nil {
		return nil, err
	}
	gm, err := authz.ParseGridMap(string(mapBytes))
	if err != nil {
		return nil, err
	}
	account, ok := gm.Lookup(info.Identity)
	if !ok {
		return nil, fmt.Errorf("gram: gatekeeper: no grid-mapfile entry for %q", info.Identity)
	}
	acct, ok := r.Sys.Lookup(account)
	if !ok {
		return nil, fmt.Errorf("gram: gatekeeper: no account %q", account)
	}
	desc, err := DecodeJobDescription(env.Body)
	if err != nil {
		return nil, err
	}
	// Fork a job manager and drop it into the user account.
	jm, err := r.gatekeeperProc.Fork("jobmanager-" + account)
	if err != nil {
		return nil, err
	}
	if err := jm.SetEUID(acct.UID); err != nil {
		return nil, err
	}
	job := NewJob(desc, account, nil)
	if err := job.Transition(StatePending); err != nil {
		return nil, err
	}
	jobProc, err := jm.Exec(desc.Executable, "job-"+account, false, desc.Args...)
	if err != nil {
		job.Transition(StateFailed)
		return job, err
	}
	if err := job.Transition(StateActive); err != nil {
		return nil, err
	}
	jobProc.Exit()
	jm.Exit()
	if err := job.Transition(StateDone); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.seq++
	r.jobs[fmt.Sprintf("gt2-job-%d", r.seq)] = job
	r.stats.JobsAccepted++
	r.mu.Unlock()
	return job, nil
}

// SubmitSigned is a convenience building the signed envelope from a
// description, mirroring the GT3 client.
func SubmitSigned(r *GT2Resource, cred *gridcert.Credential, desc JobDescription) (*Job, error) {
	env := soap.NewEnvelope(ActionSubmit, desc.Encode())
	if err := xmlsec.SignEnvelope(env, cred); err != nil {
		return nil, err
	}
	return r.Submit(env)
}
