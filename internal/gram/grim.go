package gram

import (
	"errors"
	"fmt"

	"repro/internal/gridcert"
	"repro/internal/wire"
)

// GRIMPolicy is the content of the Grid Resource Identity Mapper
// extension embedded in an LMJFS/MJS credential (§5.3 step 5): "the
// user's Grid identity, local account name, and local policy to help the
// requestor verify that the LMJFS is appropriate for its needs."
type GRIMPolicy struct {
	// User is the grid identity the hosting environment serves.
	User gridcert.Name
	// Account is the local account the hosting environment runs in.
	Account string
	// Host is the resource's host identity.
	Host gridcert.Name
}

// Encode serialises the policy for the certificate extension.
func (g GRIMPolicy) Encode() []byte {
	return wire.NewEncoder().
		Str(g.User.String()).
		Str(g.Account).
		Str(g.Host.String()).
		Finish()
}

// DecodeGRIMPolicy parses the extension payload.
func DecodeGRIMPolicy(b []byte) (GRIMPolicy, error) {
	d := wire.NewDecoder(b)
	userStr := d.Str()
	account := d.Str()
	hostStr := d.Str()
	if err := d.Done(); err != nil {
		return GRIMPolicy{}, err
	}
	user, err := gridcert.ParseName(userStr)
	if err != nil {
		return GRIMPolicy{}, err
	}
	host, err := gridcert.ParseName(hostStr)
	if err != nil {
		return GRIMPolicy{}, err
	}
	return GRIMPolicy{User: user, Account: account, Host: host}, nil
}

// VerifyGRIMCredential is the requestor-side check of Figure 4 step 7:
// the client authorizes the MJS by checking that its credential (a) chains
// to an acceptable host certificate, (b) carries a GRIM policy extension,
// and (c) that policy names the client's own grid identity — proving the
// MJS "is running not only on the right host but also in an appropriate
// account."
func VerifyGRIMCredential(chain []*gridcert.Certificate, trust *gridcert.TrustStore, expectUser gridcert.Name) (GRIMPolicy, error) {
	info, err := trust.Verify(chain, gridcert.VerifyOptions{})
	if err != nil {
		return GRIMPolicy{}, fmt.Errorf("gram: GRIM chain: %w", err)
	}
	ext, ok := chain[0].FindExtension(gridcert.ExtGRIMIdentity)
	if !ok {
		return GRIMPolicy{}, errors.New("gram: credential carries no GRIM policy")
	}
	pol, err := DecodeGRIMPolicy(ext.Value)
	if err != nil {
		return GRIMPolicy{}, fmt.Errorf("gram: GRIM policy: %w", err)
	}
	if !pol.Host.Equal(info.Identity) {
		return GRIMPolicy{}, fmt.Errorf("gram: GRIM policy host %q does not match credential identity %q", pol.Host, info.Identity)
	}
	if !pol.User.Equal(expectUser) {
		return GRIMPolicy{}, fmt.Errorf("gram: GRIM credential is for %q, not %q — wrong account or stolen service",
			pol.User, expectUser)
	}
	return pol, nil
}
