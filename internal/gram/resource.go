package gram

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/ogsa"
	"repro/internal/osim"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/wire"
	"repro/internal/xmlsec"
)

// Well-known paths on the simulated resource.
const (
	HostCredPath = "/etc/grid-security/hostcred"
	GridMapPath  = "/etc/grid-security/grid-mapfile"
	StarterPath  = "/usr/sbin/gram-setuid-starter"
	GRIMPath     = "/usr/sbin/grim"
	FactoryAcct  = "globus" // the non-privileged account MMJFS runs in
	JobProgram   = "/bin/sim-app"
	ActionSubmit = "gram/submit"
)

// verifyWork is the accounted cost of parsing and verifying one signed
// request (envelope parse, chain validation, signature check). GT2
// executes it at root; GT3 in unprivileged accounts — the §5.2 contrast.
const verifyWork = 3

// Stats counts GRAM activity for experiment E4.
type Stats struct {
	ColdStarts   int // submissions that had to create an LMJFS
	WarmHits     int // submissions routed to an existing LMJFS
	GRIMRuns     int
	StarterRuns  int
	JobsAccepted int
}

// Resource is a GT3 GRAM resource: a simulated host running the Proxy
// Router and MMJFS in a non-privileged account, with the Setuid Starter
// and GRIM as the only privileged code (§5.2: "All privileged code is
// contained in two small, tightly constrained setuid programs").
type Resource struct {
	Sys   *osim.System
	Trust *gridcert.TrustStore

	hostCred *gridcert.Credential
	gridmap  *authz.GridMap

	routerProc *osim.Process
	mmjfsProc  *osim.Process

	mu     sync.Mutex
	lmjfs  map[string]*LMJFS // keyed by local account
	mjs    map[string]*MJS   // keyed by MJS handle
	seq    int
	stats  Stats
	grimEx *grimExchange // active GRIM invocation (guarded by mu)
}

// grimExchange passes parameters and results between the LMJFS and the
// GRIM setuid program across the osim Exec boundary.
type grimExchange struct {
	account string
	user    gridcert.Name
	cred    *gridcert.Credential
	err     error
}

// NewResource boots a GT3 GRAM resource. hostCred is the host identity
// credential (conceptually root-owned on disk), trust the CA roots the
// resource accepts, gridmap the DN→account mapping.
func NewResource(hostCred *gridcert.Credential, trust *gridcert.TrustStore, gridmap *authz.GridMap) (*Resource, error) {
	r := &Resource{
		Sys:      osim.NewSystem(),
		Trust:    trust,
		hostCred: hostCred,
		gridmap:  gridmap,
		lmjfs:    make(map[string]*LMJFS),
		mjs:      make(map[string]*MJS),
	}
	if _, err := r.Sys.CreateAccount(FactoryAcct); err != nil {
		return nil, err
	}
	// Host credential: root-owned, NOT world readable — only privileged
	// code may touch it. (The private key lives in process memory; the
	// file models its access control.)
	r.Sys.WriteFileAs(osim.RootUID, HostCredPath, gridcert.EncodeChain(hostCred.Chain), false)
	// grid-mapfile: root-owned, world readable.
	r.Sys.WriteFileAs(osim.RootUID, GridMapPath, []byte(gridmap.Serialize()), true)
	// A job executable for jobs to run.
	r.Sys.InstallProgram(osim.RootUID, JobProgram, false, func(p *osim.Process, args []string) error {
		return nil // the simulated application body
	})

	// The two privileged programs.
	r.Sys.InstallProgram(osim.RootUID, StarterPath, true, r.starterProgram)
	r.Sys.InstallProgram(osim.RootUID, GRIMPath, true, r.grimProgram)

	// Boot the non-privileged network services: Proxy Router and MMJFS.
	var err error
	if r.routerProc, err = r.Sys.Boot("proxy-router", FactoryAcct, true); err != nil {
		return nil, err
	}
	if r.mmjfsProc, err = r.Sys.Boot("mmjfs", FactoryAcct, true); err != nil {
		return nil, err
	}
	return r, nil
}

// CreateAccount provisions a local account (administrative act).
func (r *Resource) CreateAccount(name string) error {
	_, err := r.Sys.CreateAccount(name)
	return err
}

// Stats returns a snapshot of activity counters.
func (r *Resource) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// HostIdentity returns the resource's host DN.
func (r *Resource) HostIdentity() gridcert.Name { return r.hostCred.Leaf().Subject }

// --- privileged programs -------------------------------------------------

// starterProgram is the Setuid Starter (§5.3 step 4): "a privileged
// program whose sole function is to start a preconfigured LMJFS for a
// user." It immediately drops privileges into the target account.
func (r *Resource) starterProgram(p *osim.Process, args []string) error {
	if len(args) != 1 {
		return errors.New("gram: setuid-starter: want exactly one argument (account)")
	}
	account := args[0]
	acct, ok := r.Sys.Lookup(account)
	if !ok {
		return fmt.Errorf("gram: setuid-starter: no account %q", account)
	}
	// The ONLY privileged action: become the user.
	return p.SetEUID(acct.UID)
}

// grimProgram is the Grid Resource Identity Mapper (§5.3 step 5): a
// privileged program that "accesses the local host credentials and from
// them generates a set of GSI proxy credentials for the LMJFS", embedding
// the user's grid identity and local account, then drops privileges.
func (r *Resource) grimProgram(p *osim.Process, args []string) error {
	r.mu.Lock()
	ex := r.grimEx
	r.mu.Unlock()
	if ex == nil {
		return errors.New("gram: grim: no pending exchange")
	}
	// Privileged read of the host credential (fails unless setuid worked).
	chainBytes, err := p.ReadFile(HostCredPath)
	if err != nil {
		ex.err = fmt.Errorf("gram: grim: reading host credential: %w", err)
		return ex.err
	}
	if _, err := gridcert.DecodeChain(chainBytes); err != nil {
		ex.err = fmt.Errorf("gram: grim: host credential corrupt: %w", err)
		return ex.err
	}
	// Drop privileges before any further work.
	acct, ok := r.Sys.Lookup(ex.account)
	if !ok {
		ex.err = fmt.Errorf("gram: grim: no account %q", ex.account)
		return ex.err
	}
	if err := p.SetEUID(acct.UID); err != nil {
		ex.err = err
		return err
	}
	// Issue the GRIM proxy over a fresh key.
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		ex.err = err
		return err
	}
	pol := GRIMPolicy{User: ex.user, Account: ex.account, Host: r.hostCred.Leaf().Subject}
	cert, err := proxy.Issue(r.hostCred, key.Public(), proxy.Options{
		Extensions: []gridcert.Extension{{ID: gridcert.ExtGRIMIdentity, Value: pol.Encode()}},
	})
	if err != nil {
		ex.err = fmt.Errorf("gram: grim: issuing credential: %w", err)
		return ex.err
	}
	cred, err := gridcert.NewCredential(append([]*gridcert.Certificate{cert}, r.hostCred.Chain...), key)
	if err != nil {
		ex.err = err
		return err
	}
	ex.cred = cred
	return nil
}

// runGRIM invokes the GRIM setuid program on behalf of an LMJFS process.
func (r *Resource) runGRIM(invoker *osim.Process, account string, user gridcert.Name) (*gridcert.Credential, error) {
	ex := &grimExchange{account: account, user: user}
	r.mu.Lock()
	r.grimEx = ex
	r.stats.GRIMRuns++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.grimEx = nil
		r.mu.Unlock()
	}()
	child, err := invoker.Exec(GRIMPath, "grim", false)
	if err != nil {
		if ex.err != nil {
			return nil, ex.err
		}
		return nil, err
	}
	child.Exit()
	if ex.err != nil {
		return nil, ex.err
	}
	return ex.cred, nil
}

// --- Proxy Router ---------------------------------------------------------

// Deliver is the Proxy Router (§5.3 step 2): it "routes incoming requests
// from a user to either that user's LMJFS, if present, or the MMJFS".
// Routing uses the *claimed* signer and the world-readable grid-mapfile;
// all verification happens downstream.
func (r *Resource) Deliver(env *soap.Envelope) (*soap.Envelope, error) {
	if env.Action != ActionSubmit {
		return nil, fmt.Errorf("gram: router: unknown action %q", env.Action)
	}
	claimed, err := xmlsec.PeekSigner(env)
	if err != nil {
		return nil, fmt.Errorf("gram: router: %w", err)
	}
	// The router resolves DN→account from the grid-mapfile (an
	// unprivileged read: the file is world readable).
	mapBytes, err := r.routerProc.ReadFile(GridMapPath)
	if err != nil {
		return nil, err
	}
	gm, err := authz.ParseGridMap(string(mapBytes))
	if err != nil {
		return nil, err
	}
	account, ok := gm.Lookup(claimed)
	if ok {
		r.mu.Lock()
		l := r.lmjfs[account]
		r.mu.Unlock()
		if l != nil {
			r.mu.Lock()
			r.stats.WarmHits++
			r.mu.Unlock()
			return l.handleSubmit(env)
		}
	}
	return r.handleMMJFS(env)
}

// handleMMJFS is steps 3–5: verify the signature, map to an account,
// start an LMJFS via the Setuid Starter, and forward the request.
func (r *Resource) handleMMJFS(env *soap.Envelope) (*soap.Envelope, error) {
	// Step 3: "The MMJFS verifies the signature on the request and
	// establishes the identity of the requestor." Limited proxies must be
	// rejected for job initiation (GSI rule). The parsing and signature
	// verification are charged to the (unprivileged) MMJFS process.
	if err := r.mmjfsProc.Work(verifyWork); err != nil {
		return nil, err
	}
	info, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{
		TrustStore:    r.Trust,
		RejectLimited: true,
	})
	if err != nil {
		return nil, fmt.Errorf("gram: mmjfs: %w", err)
	}
	// Determine the local account from the grid-mapfile (read through the
	// unprivileged MMJFS process).
	mapBytes, err := r.mmjfsProc.ReadFile(GridMapPath)
	if err != nil {
		return nil, err
	}
	gm, err := authz.ParseGridMap(string(mapBytes))
	if err != nil {
		return nil, err
	}
	account, ok := gm.Lookup(info.Identity)
	if !ok {
		return nil, fmt.Errorf("gram: mmjfs: no grid-mapfile entry for %q", info.Identity)
	}
	// Step 4: invoke the Setuid Starter to start an LMJFS in the account.
	r.mu.Lock()
	r.stats.ColdStarts++
	r.stats.StarterRuns++
	r.mu.Unlock()
	lmjfsProc, err := r.mmjfsProc.Exec(StarterPath, "lmjfs-"+account, true, account)
	if err != nil {
		return nil, fmt.Errorf("gram: setuid-starter: %w", err)
	}
	// Step 5: the LMJFS acquires GRIM credentials and registers.
	l := &LMJFS{res: r, account: account, proc: lmjfsProc}
	cred, err := r.runGRIM(lmjfsProc, account, info.Identity)
	if err != nil {
		return nil, err
	}
	l.cred = cred
	r.mu.Lock()
	r.lmjfs[account] = l
	r.mu.Unlock()
	// Step 6 happens inside the LMJFS.
	return l.handleSubmit(env)
}

// LookupMJS resolves an MJS handle (the in-memory analog of connecting to
// the MJS's network endpoint).
func (r *Resource) LookupMJS(handle string) (*MJS, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.mjs[handle]
	return m, ok
}

// submitReply is the wire form of a successful submission.
type submitReply struct {
	MJSHandle string
	Account   string
}

func (s submitReply) encode() []byte {
	return wire.NewEncoder().Str(s.MJSHandle).Str(s.Account).Finish()
}

func decodeSubmitReply(b []byte) (submitReply, error) {
	d := wire.NewDecoder(b)
	s := submitReply{MJSHandle: d.Str(), Account: d.Str()}
	if err := d.Done(); err != nil {
		return submitReply{}, err
	}
	return s, nil
}

// LMJFS is a Local Managed Job Factory Service: one per active account,
// running *in* that account, created by the Setuid Starter and holding a
// GRIM credential.
type LMJFS struct {
	res     *Resource
	account string
	proc    *osim.Process
	cred    *gridcert.Credential
}

// handleSubmit is step 6: "The LMJFS verifies the signature on the
// request … and verifies the requestor is authorized to access the local
// user account in which the LMJFS is running", then creates an MJS.
func (l *LMJFS) handleSubmit(env *soap.Envelope) (*soap.Envelope, error) {
	// Verification work runs in the user's own account.
	if err := l.proc.Work(verifyWork); err != nil {
		return nil, err
	}
	info, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{
		TrustStore:    l.res.Trust,
		RejectLimited: true,
	})
	if err != nil {
		return nil, fmt.Errorf("gram: lmjfs: %w", err)
	}
	// Authorization: the requester must map to this LMJFS's account.
	mapBytes, err := l.proc.ReadFile(GridMapPath)
	if err != nil {
		return nil, err
	}
	gm, err := authz.ParseGridMap(string(mapBytes))
	if err != nil {
		return nil, err
	}
	account, ok := gm.Lookup(info.Identity)
	if !ok || account != l.account {
		return nil, fmt.Errorf("gram: lmjfs: %q is not authorized for account %q", info.Identity, l.account)
	}
	desc, err := DecodeJobDescription(env.Body)
	if err != nil {
		return nil, err
	}
	// Create the MJS in this hosting environment.
	l.res.mu.Lock()
	l.res.seq++
	handle := fmt.Sprintf("mjs://%s/%s/%d", l.res.hostCred.Leaf().Subject.CommonName(), l.account, l.res.seq)
	l.res.stats.JobsAccepted++
	l.res.mu.Unlock()

	base := ogsa.NewBase()
	m := &MJS{
		Base:    base,
		res:     l.res,
		account: l.account,
		owner:   info.Identity,
		cred:    l.cred,
		proc:    l.proc,
		job:     NewJob(desc, l.account, base.Data),
		handle:  handle,
	}
	l.res.mu.Lock()
	l.res.mjs[handle] = m
	l.res.mu.Unlock()
	return env.Reply(submitReply{MJSHandle: handle, Account: l.account}.encode()), nil
}
