// Package gram implements the GT3 Grid Resource Allocation and
// Management system of the paper's §5.3 (Figure 4) — Master Managed Job
// Factory Service (MMJFS), Local Managed Job Factory Services (LMJFS),
// Managed Job Services (MJS), the Proxy Router, the Setuid Starter, the
// Grid Resource Identity Mapper (GRIM) and the grid-mapfile — plus the
// GT2 gatekeeper baseline for the least-privilege comparison (§5.2).
//
// The resource's operating system is simulated by internal/osim so that
// privilege use is observable: the only privileged code paths are the two
// setuid programs, exactly as the paper claims for GT3.
package gram

import (
	"fmt"
	"sync"

	"repro/internal/ogsa"
	"repro/internal/wire"
)

// JobState is the lifecycle state of a managed job.
type JobState uint8

const (
	// StateUnsubmitted: the MJS exists but the job has not started.
	StateUnsubmitted JobState = iota
	// StateStageIn: input staging.
	StateStageIn
	// StatePending: queued at the scheduler.
	StatePending
	// StateActive: running.
	StateActive
	// StateDone: finished successfully.
	StateDone
	// StateFailed: finished with an error.
	StateFailed
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case StateUnsubmitted:
		return "Unsubmitted"
	case StateStageIn:
		return "StageIn"
	case StatePending:
		return "Pending"
	case StateActive:
		return "Active"
	case StateDone:
		return "Done"
	case StateFailed:
		return "Failed"
	default:
		return fmt.Sprintf("JobState(%d)", uint8(s))
	}
}

// validTransitions is the job state machine.
var validTransitions = map[JobState][]JobState{
	StateUnsubmitted: {StateStageIn, StatePending, StateFailed},
	StateStageIn:     {StatePending, StateFailed},
	StatePending:     {StateActive, StateFailed},
	StateActive:      {StateDone, StateFailed},
}

// JobDescription is what a requestor submits: "the name of the
// executable, the working directory, where input and output should be
// stored, and the queue in which it should run" (§5.3).
type JobDescription struct {
	Executable string
	Args       []string
	Directory  string
	Stdout     string
	Queue      string
	// DelegateCredential asks the client to delegate a proxy to the MJS
	// for the job's own grid operations.
	DelegateCredential bool
}

// Encode serialises the description.
func (d JobDescription) Encode() []byte {
	e := wire.NewEncoder()
	e.Str(d.Executable)
	e.U32(uint32(len(d.Args)))
	for _, a := range d.Args {
		e.Str(a)
	}
	e.Str(d.Directory)
	e.Str(d.Stdout)
	e.Str(d.Queue)
	e.Bool(d.DelegateCredential)
	return e.Finish()
}

// DecodeJobDescription parses a description.
func DecodeJobDescription(b []byte) (JobDescription, error) {
	dec := wire.NewDecoder(b)
	var d JobDescription
	d.Executable = dec.Str()
	n := dec.Count("args", 1024)
	for i := 0; i < n; i++ {
		d.Args = append(d.Args, dec.Str())
	}
	d.Directory = dec.Str()
	d.Stdout = dec.Str()
	d.Queue = dec.Str()
	d.DelegateCredential = dec.Bool()
	if err := dec.Done(); err != nil {
		return JobDescription{}, err
	}
	if d.Executable == "" {
		return JobDescription{}, fmt.Errorf("gram: job description missing executable")
	}
	return d, nil
}

// Job tracks one computational task's lifecycle. State changes surface as
// the "jobState" service data element of its MJS, so clients can query or
// subscribe with standard Grid service mechanisms.
type Job struct {
	Description JobDescription
	Account     string

	mu      sync.Mutex
	state   JobState
	history []JobState
	sde     *ogsa.ServiceData
}

// NewJob creates a job in StateUnsubmitted bound to an SDE set.
func NewJob(desc JobDescription, account string, sde *ogsa.ServiceData) *Job {
	j := &Job{Description: desc, Account: account, state: StateUnsubmitted, sde: sde}
	j.publish()
	return j
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// History returns the visited states.
func (j *Job) History() []JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JobState{j.state}, j.history...)
}

// Transition moves the job to a new state, enforcing the state machine.
func (j *Job) Transition(to JobState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, ok := range validTransitions[j.state] {
		if ok == to {
			j.history = append(j.history, j.state)
			j.state = to
			j.mu.Unlock()
			j.publish()
			j.mu.Lock()
			return nil
		}
	}
	return fmt.Errorf("gram: invalid job transition %s -> %s", j.state, to)
}

func (j *Job) publish() {
	if j.sde != nil {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		j.sde.Set("jobState", []byte(st.String()))
	}
}

// Terminal reports whether the job has finished.
func (j *Job) Terminal() bool {
	s := j.State()
	return s == StateDone || s == StateFailed
}
