package gram

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/ogsa"
	"repro/internal/osim"
	"repro/internal/proxy"
)

// MJS is a Managed Job Service: "a Grid service that acts as an interface
// to its associated job, instantiating it and then allowing it to be
// controlled and monitored with standard Grid and Web service
// mechanisms" (§5.3). It authenticates with the GRIM credential of its
// hosting environment and runs in the user's account.
type MJS struct {
	*ogsa.Base

	res     *Resource
	account string
	owner   gridcert.Name
	cred    *gridcert.Credential // GRIM credential
	proc    *osim.Process        // hosting-environment process (user account)
	job     *Job
	handle  string

	mu        sync.Mutex
	delegated *gridcert.Credential
	jobProc   *osim.Process
}

// Handle returns the MJS's service handle.
func (m *MJS) Handle() string { return m.handle }

// Job exposes the managed job.
func (m *MJS) Job() *Job { return m.job }

// Owner returns the grid identity the MJS serves.
func (m *MJS) Owner() gridcert.Name { return m.owner }

// DelegatedCredential returns the credential delegated by the requestor
// (nil until delegation completes).
func (m *MJS) DelegatedCredential() *gridcert.Credential {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delegated
}

// Invoke implements ogsa.Service for monitoring operations.
func (m *MJS) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := m.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "GetState":
		return []byte(m.job.State().String()), nil
	case "Cancel":
		if m.job.Terminal() {
			return nil, errors.New("gram: job already terminal")
		}
		if err := m.job.Transition(StateFailed); err != nil {
			return nil, err
		}
		return []byte("cancelled"), nil
	default:
		return nil, fmt.Errorf("gram: MJS has no op %q", call.Op)
	}
}

// Connection is an authenticated requestor↔MJS session (Figure 4 step 7).
type Connection struct {
	mjs  *MJS
	ictx *gss.Context // requestor side
	actx *gss.Context // MJS side
	pol  GRIMPolicy
}

// Connect performs step 7's mutual authentication: "the requestor and MJS
// perform mutual authentication, the MJS using the credentials acquired
// from GRIM. The MJS verifies that the requestor is authorized to
// initiate processes in the local account. The requestor authorizes the
// MJS as having a GRIM credential issued from an appropriate host
// credential and containing a Grid identity matching its own."
func (m *MJS) Connect(requestor *gridcert.Credential, requestorTrust *gridcert.TrustStore) (*Connection, error) {
	return m.ConnectWith(gss.Config{Credential: requestor, TrustStore: requestorTrust})
}

// ConnectWith is Connect with full control over the requestor-side GSS
// options (delegation intent, expected peer, limited-proxy rejection,
// proxy-depth caps). reqCfg.Credential and reqCfg.TrustStore are
// mandatory.
func (m *MJS) ConnectWith(reqCfg gss.Config) (*Connection, error) {
	requestor, requestorTrust := reqCfg.Credential, reqCfg.TrustStore
	ictx, actx, err := gss.Establish(
		reqCfg,
		gss.Config{Credential: m.cred, TrustStore: m.res.Trust, RejectLimited: true},
	)
	if err != nil {
		return nil, fmt.Errorf("gram: MJS mutual authentication: %w", err)
	}
	// MJS side: requestor must be the owner this service was created for.
	if !actx.Peer().Identity.Equal(m.owner) {
		return nil, fmt.Errorf("gram: requestor %q is not the owner %q of this MJS",
			actx.Peer().Identity, m.owner)
	}
	// Requestor side: GRIM-credential authorization.
	pol, err := VerifyGRIMCredential(ictx.Peer().Chain, requestorTrust, requestor.Identity())
	if err != nil {
		return nil, err
	}
	if pol.Account != m.account {
		return nil, fmt.Errorf("gram: GRIM policy account %q does not match MJS account %q", pol.Account, m.account)
	}
	return &Connection{mjs: m, ictx: ictx, actx: actx, pol: pol}, nil
}

// Delegate runs the credential delegation of step 7 over the established
// context: the MJS generates a key, the requestor signs a proxy, and the
// delegated credential is installed for the job's own grid operations.
func (c *Connection) Delegate(requestor *gridcert.Credential) error {
	delegatee, req, err := proxy.NewDelegatee(0, false)
	if err != nil {
		return err
	}
	// MJS → requestor: the request travels MJS-side wrapped.
	reqTok, err := c.actx.Wrap(req.Encode())
	if err != nil {
		return err
	}
	reqPlain, err := c.ictx.Unwrap(reqTok)
	if err != nil {
		return err
	}
	reqDec, err := proxy.DecodeDelegationRequest(reqPlain)
	if err != nil {
		return err
	}
	reply, err := proxy.HandleDelegation(requestor, reqDec, proxy.Options{})
	if err != nil {
		return err
	}
	// requestor → MJS.
	repTok, err := c.ictx.Wrap(reply.Encode())
	if err != nil {
		return err
	}
	repPlain, err := c.actx.Unwrap(repTok)
	if err != nil {
		return err
	}
	repDec, err := proxy.DecodeDelegationReply(repPlain)
	if err != nil {
		return err
	}
	cred, err := delegatee.Accept(repDec)
	if err != nil {
		return err
	}
	// The delegated chain must verify at the resource.
	if _, err := c.mjs.res.Trust.Verify(cred.Chain, gridcert.VerifyOptions{}); err != nil {
		return fmt.Errorf("gram: delegated credential: %w", err)
	}
	c.mjs.mu.Lock()
	c.mjs.delegated = cred
	c.mjs.mu.Unlock()
	return nil
}

// Start launches the job: the MJS instantiates the process in the local
// account and drives the state machine to completion.
func (c *Connection) Start() error {
	m := c.mjs
	if m.job.State() != StateUnsubmitted {
		return fmt.Errorf("gram: job already %s", m.job.State())
	}
	if m.job.Description.DelegateCredential && m.DelegatedCredential() == nil {
		return errors.New("gram: job requires a delegated credential; call Delegate first")
	}
	if err := m.job.Transition(StateStageIn); err != nil {
		return err
	}
	if err := m.job.Transition(StatePending); err != nil {
		return err
	}
	// Instantiate the job process in the user's account (unprivileged:
	// the hosting environment already runs there).
	jobProc, err := m.proc.Exec(m.job.Description.Executable, "job-"+m.account, false, m.job.Description.Args...)
	if err != nil {
		m.job.Transition(StateFailed)
		return fmt.Errorf("gram: starting job: %w", err)
	}
	m.mu.Lock()
	m.jobProc = jobProc
	m.mu.Unlock()
	if err := m.job.Transition(StateActive); err != nil {
		return err
	}
	// The simulated application runs to completion immediately.
	jobProc.Exit()
	return m.job.Transition(StateDone)
}

// PeerIdentity returns the identity each side authenticated.
func (c *Connection) PeerIdentity() (requestorSaw, mjsSaw gridcert.Name) {
	return c.ictx.Peer().Identity, c.actx.Peer().Identity
}
