package gram

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/xmlsec"
)

// gramBed is a full GT3 GRAM fixture.
type gramBed struct {
	auth   *ca.Authority
	trust  *gridcert.TrustStore
	alice  *gridcert.Credential
	bob    *gridcert.Credential
	res    *Resource
	client *Client
}

func newGramBed(t testing.TB) *gramBed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=cluster.example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := authz.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	res, err := NewResource(host, trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	// The user submits with a proxy (single sign-on), not the long-term key.
	aliceProxy, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{Credential: aliceProxy, Trust: trust, Resource: res}
	return &gramBed{auth: auth, trust: trust, alice: alice, bob: bob, res: res, client: client}
}

func testJob() JobDescription {
	return JobDescription{
		Executable:         JobProgram,
		Args:               []string{"-n", "16"},
		Directory:          "/home/alice",
		Stdout:             "/home/alice/out",
		Queue:              "debug",
		DelegateCredential: true,
	}
}

func TestFigure4ColdPath(t *testing.T) {
	b := newGramBed(t)
	mjs, err := b.client.SubmitAndRun(testJob())
	if err != nil {
		t.Fatal(err)
	}
	if mjs.Job().State() != StateDone {
		t.Fatalf("job state = %s", mjs.Job().State())
	}
	st := b.res.Stats()
	if st.ColdStarts != 1 || st.WarmHits != 0 || st.GRIMRuns != 1 || st.StarterRuns != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Delegation happened and the delegated identity is Alice.
	if mjs.DelegatedCredential() == nil {
		t.Fatal("no delegated credential")
	}
	if !mjs.DelegatedCredential().Identity().Equal(b.alice.Identity()) {
		t.Fatalf("delegated identity = %q", mjs.DelegatedCredential().Identity())
	}
	// State history covers the lifecycle.
	hist := mjs.Job().History()
	if len(hist) < 4 {
		t.Fatalf("history = %v", hist)
	}
}

func TestWarmPathUsesLMJFS(t *testing.T) {
	b := newGramBed(t)
	if _, err := b.client.SubmitAndRun(testJob()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.client.SubmitAndRun(testJob()); err != nil {
		t.Fatal(err)
	}
	st := b.res.Stats()
	if st.ColdStarts != 1 || st.WarmHits != 1 {
		t.Fatalf("stats = %+v (want 1 cold, 1 warm)", st)
	}
	// The privileged programs ran only once, for the cold start.
	if st.GRIMRuns != 1 || st.StarterRuns != 1 {
		t.Fatalf("privileged program runs = %+v", st)
	}
}

func TestUnmappedUserRejected(t *testing.T) {
	b := newGramBed(t)
	bobProxy, _ := proxy.New(b.bob, proxy.Options{})
	client := &Client{Credential: bobProxy, Trust: b.trust, Resource: b.res}
	_, err := client.Submit(testJob())
	if err == nil || !strings.Contains(err.Error(), "grid-mapfile") {
		t.Fatalf("unmapped user: %v", err)
	}
}

func TestLimitedProxyRejectedForJobs(t *testing.T) {
	b := newGramBed(t)
	lim, err := proxy.New(b.alice, proxy.Options{Variant: gridcert.ProxyLimited})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{Credential: lim, Trust: b.trust, Resource: b.res}
	if _, err := client.Submit(testJob()); err == nil {
		t.Fatal("limited proxy submitted a job")
	}
}

func TestTamperedRequestRejected(t *testing.T) {
	b := newGramBed(t)
	env := soap.NewEnvelope(ActionSubmit, testJob().Encode())
	if err := xmlsec.SignEnvelope(env, b.client.Credential); err != nil {
		t.Fatal(err)
	}
	env.Body = JobDescription{Executable: "/bin/evil"}.Encode()
	if _, err := b.res.Deliver(env); err == nil {
		t.Fatal("tampered job request accepted")
	}
}

func TestUnsignedRequestRejected(t *testing.T) {
	b := newGramBed(t)
	env := soap.NewEnvelope(ActionSubmit, testJob().Encode())
	if _, err := b.res.Deliver(env); err == nil {
		t.Fatal("unsigned request accepted")
	}
}

func TestMJSOwnershipEnforced(t *testing.T) {
	b := newGramBed(t)
	h, err := b.client.Submit(testJob())
	if err != nil {
		t.Fatal(err)
	}
	// Bob (even though trusted) cannot connect to Alice's MJS.
	bobProxy, _ := proxy.New(b.bob, proxy.Options{})
	m, _ := b.res.LookupMJS(h.MJSHandle)
	if _, err := m.Connect(bobProxy, b.trust); err == nil {
		t.Fatal("non-owner connected to MJS")
	}
}

func TestGRIMCredentialVerification(t *testing.T) {
	b := newGramBed(t)
	h, err := b.client.Submit(testJob())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := b.res.LookupMJS(h.MJSHandle)
	// The MJS credential verifies for Alice…
	pol, err := VerifyGRIMCredential(m.cred.Chain, b.trust, b.alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if pol.Account != "alice" || !pol.Host.Equal(b.res.HostIdentity()) {
		t.Fatalf("policy = %+v", pol)
	}
	// …but not for Bob: the embedded grid identity must match.
	if _, err := VerifyGRIMCredential(m.cred.Chain, b.trust, b.bob.Identity()); err == nil {
		t.Fatal("GRIM credential accepted for wrong user")
	}
	// And not against an empty trust store.
	if _, err := VerifyGRIMCredential(m.cred.Chain, gridcert.NewTrustStore(), b.alice.Identity()); err == nil {
		t.Fatal("GRIM credential accepted with no trust roots")
	}
}

func TestMJSMonitoring(t *testing.T) {
	b := newGramBed(t)
	h, err := b.client.Submit(testJob())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := b.res.LookupMJS(h.MJSHandle)
	// Subscribe to jobState before running.
	ch := m.Data.Subscribe("jobState")
	if _, err := b.client.Run(h); err != nil {
		t.Fatal(err)
	}
	// Collect notifications until Done.
	deadline := time.After(time.Second)
	var states []string
	for {
		select {
		case ev := <-ch:
			states = append(states, string(ev.Value))
			if string(ev.Value) == "Done" {
				goto done
			}
		case <-deadline:
			t.Fatalf("never saw Done; states = %v", states)
		}
	}
done:
	joined := strings.Join(states, ",")
	if !strings.Contains(joined, "Active") {
		t.Fatalf("states = %v", states)
	}
}

func TestJobStateMachine(t *testing.T) {
	j := NewJob(JobDescription{Executable: "/x"}, "a", nil)
	if err := j.Transition(StateActive); err == nil {
		t.Fatal("Unsubmitted -> Active allowed")
	}
	for _, s := range []JobState{StateStageIn, StatePending, StateActive, StateDone} {
		if err := j.Transition(s); err != nil {
			t.Fatalf("to %s: %v", s, err)
		}
	}
	if err := j.Transition(StateFailed); err == nil {
		t.Fatal("transition out of Done allowed")
	}
	if !j.Terminal() {
		t.Fatal("Done not terminal")
	}
}

func TestJobDescriptionRoundTrip(t *testing.T) {
	d := testJob()
	dec, err := DecodeJobDescription(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Executable != d.Executable || len(dec.Args) != 2 || dec.Queue != "debug" || !dec.DelegateCredential {
		t.Fatalf("round trip: %+v", dec)
	}
	if _, err := DecodeJobDescription([]byte("junk")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeJobDescription(JobDescription{}.Encode()); err == nil {
		t.Fatal("empty executable accepted")
	}
}

func TestMJSCancel(t *testing.T) {
	b := newGramBed(t)
	h, err := b.client.Submit(testJob())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := b.res.LookupMJS(h.MJSHandle)
	cancel := &ogsa.Call{Op: "Cancel", Caller: ogsa.Identity{Name: b.alice.Identity()}}
	reply, err := m.Invoke(cancel)
	if err != nil || string(reply) != "cancelled" {
		t.Fatalf("cancel: %q %v", reply, err)
	}
	if m.Job().State() != StateFailed {
		t.Fatalf("state after cancel = %s", m.Job().State())
	}
	if _, err := m.Invoke(cancel); err == nil {
		t.Fatal("double cancel allowed")
	}
	state, err := m.Invoke(&ogsa.Call{Op: "GetState"})
	if err != nil || string(state) != "Failed" {
		t.Fatalf("GetState: %q %v", state, err)
	}
}

// --- GT2 baseline ----------------------------------------------------

func newGT2Bed(t testing.TB) (*GT2Resource, *gridcert.Credential, *gridcert.TrustStore) {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=gt2host"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := authz.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	res, err := NewGT2Resource(host, trust, gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	aliceProxy, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, aliceProxy, trust
}

func TestGT2SubmitWorks(t *testing.T) {
	res, aliceProxy, _ := newGT2Bed(t)
	job, err := SubmitSigned(res, aliceProxy, JobDescription{Executable: JobProgram})
	if err != nil {
		t.Fatal(err)
	}
	if job.State() != StateDone {
		t.Fatalf("state = %s", job.State())
	}
}

// TestE5LeastPrivilegeComparison reproduces the §5.2 claim: GT3 has zero
// privileged network services and its gatekeeper-equivalent compromise
// yields one user account; GT2's gatekeeper is a privileged network
// service whose compromise yields root.
func TestE5LeastPrivilegeComparison(t *testing.T) {
	// GT3 side.
	b := newGramBed(t)
	if _, err := b.client.SubmitAndRun(testJob()); err != nil {
		t.Fatal(err)
	}
	gt3 := b.res.Sys.Audit()
	if len(gt3.PrivilegedNetworkServices) != 0 {
		t.Fatalf("GT3 privileged network services = %v, want none", gt3.PrivilegedNetworkServices)
	}
	if len(gt3.SetuidPrograms) != 2 {
		t.Fatalf("GT3 setuid programs = %v, want the two of §5.2", gt3.SetuidPrograms)
	}

	// GT2 side.
	res2, aliceProxy, _ := newGT2Bed(t)
	if _, err := SubmitSigned(res2, aliceProxy, JobDescription{Executable: JobProgram}); err != nil {
		t.Fatal(err)
	}
	gt2 := res2.Sys.Audit()
	if len(gt2.PrivilegedNetworkServices) != 1 {
		t.Fatalf("GT2 privileged network services = %v, want [gatekeeper]", gt2.PrivilegedNetworkServices)
	}
	// GT2 performs far more privileged operations per job than GT3.
	if gt2.PrivilegedOps <= gt3.PrivilegedOps {
		t.Fatalf("privileged ops: GT2=%d GT3=%d — GT2 should dominate", gt2.PrivilegedOps, gt3.PrivilegedOps)
	}

	// Blast radii: compromising GT3's network-facing MMJFS yields one
	// non-root account; compromising GT2's gatekeeper yields root.
	gt3Blast := b.res.Sys.Compromise(b.res.mmjfsProc)
	if gt3Blast.Root {
		t.Fatal("GT3 MMJFS compromise yields root")
	}
	if containsStr(gt3Blast.ReadableFiles, HostCredPath) {
		t.Fatal("GT3 MMJFS compromise exposes host credential")
	}
	gt2Blast := res2.Sys.Compromise(res2.GatekeeperProcess())
	if !gt2Blast.Root {
		t.Fatal("GT2 gatekeeper compromise does not yield root")
	}
	if !containsStr(gt2Blast.ReadableFiles, HostCredPath) {
		t.Fatal("GT2 gatekeeper compromise misses host credential (unexpected)")
	}
}

func containsStr(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func BenchmarkGT3JobColdPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bed := newGramBed(b)
		b.StartTimer()
		if _, err := bed.client.SubmitAndRun(testJob()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGT3JobWarmPath(b *testing.B) {
	bed := newGramBed(b)
	if _, err := bed.client.SubmitAndRun(testJob()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bed.client.SubmitAndRun(testJob()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGT2Job(b *testing.B) {
	res, aliceProxy, _ := newGT2Bed(b)
	desc := JobDescription{Executable: JobProgram}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SubmitSigned(res, aliceProxy, desc); err != nil {
			b.Fatal(err)
		}
	}
}
