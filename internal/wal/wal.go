// Package wal is the durable trust plane's write-ahead log: a
// segmented, CRC-framed, append-only record log with snapshot +
// truncate. The authorization stores (policy, gridmap), the CAS
// community state, and the secsvc audit chain all journal through one
// WAL, multiplexed by a record-kind byte, so a single fsync policy and
// a single replay pass govern every piece of security state a restart
// must recover.
//
// On-disk layout (one directory per WAL):
//
//	00000000000000000001.seg   segment files, named by first record seq
//	00000000000000004201.seg
//	SNAPSHOT                   latest state snapshot + covered seq
//
// Record frame, all integers big-endian:
//
//	[u32 payload len][u32 crc][u64 seq][u8 kind][payload]
//
// The CRC (Castagnoli) covers seq, kind, and payload. Sequence numbers
// start at 1 and increment by exactly one across segment boundaries, so
// replay detects reordered, dropped, or spliced records. A torn tail —
// an incomplete or corrupt frame at the end of the LAST segment — is
// the expected crash signature and is repaired by truncation at open;
// the same damage anywhere else is corruption and fails the open, so a
// replayed state is always an exact prefix of what was appended, never
// a fabrication.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxPayload bounds one record's payload (matches wire.MaxField: WAL
// payloads are wire-encoded mutations, so nothing legitimate is
// larger).
const MaxPayload = 16 << 20

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero.
const DefaultSegmentSize = 4 << 20

// frameHeader is the fixed-size frame prefix: len, crc, seq, kind.
const frameHeader = 4 + 4 + 8 + 1

const (
	segSuffix     = ".seg"
	snapshotName  = "SNAPSHOT"
	snapshotMagic = "walsnap1"
)

// ErrCorrupt reports damage that truncation cannot repair: a bad frame
// anywhere but the tail of the last segment, a sequence discontinuity,
// or a snapshot that fails its checksum. Fail closed: the caller must
// not serve from a log it cannot fully trust.
var ErrCorrupt = errors.New("wal: log corrupt")

// ErrSnapshotStale reports a WriteSnapshotAt whose covered sequence no
// longer matches the log: records were appended between the caller's
// state capture and the snapshot write. Persisting the stale payload
// would truncate acknowledged records it does not contain, so the write
// is refused; re-capture the state and retry.
var ErrSnapshotStale = errors.New("wal: snapshot stale")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives kill -9. The default — durability is why the WAL exists.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS (tests, bulk loads, benches).
	// Close and explicit Sync still flush.
	SyncNever
	// SyncBatched is group commit: concurrent Appends coalesce onto one
	// fsync via a leader/follower commit queue, but every Append still
	// blocks until its own record is on stable storage — SyncAlways
	// durability at a fraction of the fsync count under write
	// concurrency. A failed group fsync is sticky: the affected Appends
	// report it and every later Append is refused, because the log can
	// no longer promise durability.
	SyncBatched
)

// MaxBatchWindow caps Options.BatchWindow: group commit may delay an
// acknowledgement to gather companions, but never by more than this.
const MaxBatchWindow = 2 * time.Millisecond

// Options parameterize Open.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (0 selects
	// DefaultSegmentSize). A record never splits across segments.
	SegmentSize int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// BatchWindow (SyncBatched only) is how long a commit leader waits
	// for companion appends before issuing the group fsync. Zero fsyncs
	// immediately — batching still emerges naturally from appends that
	// land while an fsync is in flight. Clamped to MaxBatchWindow.
	BatchWindow time.Duration
}

// Record is one replayed log entry. Payload aliases an internal read
// buffer only for the duration of the replay callback; callers that
// retain it must copy.
type Record struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// WAL is an open write-ahead log. Safe for concurrent use; appends are
// serialized.
type WAL struct {
	dir  string
	opts Options

	mu        sync.Mutex
	active    *os.File
	activeSz  int64
	liveBytes int64    // bytes across live segments (≈ journal since snapshot)
	segments  []uint64 // first seq of each live segment, ascending
	nextSeq   uint64

	snapPayload []byte
	snapSeq     uint64
	hasSnap     bool

	closed bool

	// snapMu serializes snapshot writers so the staged tmp file (written
	// outside w.mu to keep appends flowing) has a single owner. Lock
	// order: snapMu before mu.
	snapMu sync.Mutex

	// Group commit (SyncBatched). cmu guards the commit queue; it nests
	// inside mu (mu → cmu) and the leader never holds it across the
	// fsync itself.
	cmu       sync.Mutex
	commit    *sync.Cond // signalled when syncedSeq advances or syncErr sets
	syncing   bool       // a leader's fsync is in flight
	syncedSeq uint64     // every record ≤ syncedSeq is on stable storage
	syncErr   error      // sticky: a failed group fsync poisons the log
}

// Open opens (or creates) the WAL in dir, validating every segment: a
// torn tail on the last segment is truncated away, any other damage is
// ErrCorrupt. The log is single-writer; concurrent opens of one
// directory are a deployment error the WAL does not arbitrate.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.BatchWindow < 0 {
		opts.BatchWindow = 0
	}
	if opts.BatchWindow > MaxBatchWindow {
		opts.BatchWindow = MaxBatchWindow
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 1}
	w.commit = sync.NewCond(&w.cmu)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	if err := w.loadSnapshot(); err != nil {
		return nil, err
	}
	if w.hasSnap {
		w.nextSeq = w.snapSeq + 1
	}
	if err := w.scanSegments(); err != nil {
		return nil, err
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	w.syncedSeq = w.nextSeq - 1 // everything recovered from disk is durable
	return w, nil
}

// loadSnapshot reads and verifies the snapshot file if present.
//
// Snapshot layout: "walsnap1" | u64 covered seq | u32 crc | u32 len | payload.
func (w *WAL) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(w.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(snapshotMagic)+8+4+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	rest := data[len(snapshotMagic):]
	seq := binary.BigEndian.Uint64(rest)
	sum := binary.BigEndian.Uint32(rest[8:])
	n := binary.BigEndian.Uint32(rest[12:])
	payload := rest[16:]
	if uint64(n) != uint64(len(payload)) {
		return fmt.Errorf("%w: snapshot length mismatch", ErrCorrupt)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	w.snapPayload = payload
	w.snapSeq = seq
	w.hasSnap = true
	return nil
}

// scanSegments validates every segment, repairs a torn tail on the last
// one, and leaves w.segments / w.nextSeq describing the live log.
//
// Beyond per-segment frame checks, it enforces continuity ACROSS
// segments and against the snapshot: every sequence number must be
// accounted for either by a live segment or by the snapshot. A gap the
// snapshot does not cover — a deleted middle segment, or a first
// segment starting past snapSeq+1 — would replay a silently truncated
// history, so it is ErrCorrupt.
func (w *WAL) scanSegments() error {
	names, err := w.segmentNames()
	if err != nil {
		return err
	}
	var prevEnd uint64
	for i, first := range names {
		if i > 0 && first <= prevEnd {
			return fmt.Errorf("%w: segment %020x overlaps its predecessor (ends at record %d)", ErrCorrupt, first, prevEnd)
		}
		if first != prevEnd+1 && (!w.hasSnap || first > w.snapSeq+1) {
			return fmt.Errorf("%w: records %d-%d are on no live segment and no snapshot covers them", ErrCorrupt, prevEnd+1, first-1)
		}
		last := i == len(names)-1
		endSeq, err := w.scanSegment(first, last)
		if err != nil {
			return err
		}
		w.segments = append(w.segments, first)
		if endSeq >= w.nextSeq {
			w.nextSeq = endSeq + 1
		}
		prevEnd = endSeq
	}
	return nil
}

// segmentNames lists segment first-seqs in ascending order.
func (w *WAL) segmentNames() ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: alien segment name %q", ErrCorrupt, name)
		}
		firsts = append(firsts, first)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

func (w *WAL) segPath(first uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%020x%s", first, segSuffix))
}

// scanSegment validates one segment's frames. For the last segment the
// first bad frame is treated as a torn write: the file is truncated at
// the last good offset. Anywhere else it is ErrCorrupt. Returns the
// seq of the segment's last valid record (or first-1 when it holds
// none after truncation).
func (w *WAL) scanSegment(first uint64, last bool) (uint64, error) {
	path := w.segPath(first)
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	wantSeq := first
	offset := 0
	for offset < len(data) {
		n, seq, _, _, ferr := decodeFrame(data[offset:])
		if ferr != nil || seq != wantSeq {
			if last {
				// Torn tail: everything before offset replays; the rest is
				// the crash's half-written frame (or garbage after it,
				// unreachable anyway since frames only chain forward).
				if terr := os.Truncate(path, int64(offset)); terr != nil {
					return 0, terr
				}
				w.liveBytes += int64(offset)
				return wantSeq - 1, nil
			}
			if ferr == nil {
				ferr = fmt.Errorf("record %d where %d expected", seq, wantSeq)
			}
			return 0, fmt.Errorf("%w: segment %020x offset %d: %v", ErrCorrupt, first, offset, ferr)
		}
		offset += n
		wantSeq++
	}
	w.liveBytes += int64(len(data))
	return wantSeq - 1, nil
}

// decodeFrame parses one frame from b, returning its total encoded
// length, seq, kind, and payload.
func decodeFrame(b []byte) (n int, seq uint64, kind uint8, payload []byte, err error) {
	if len(b) < frameHeader {
		return 0, 0, 0, nil, errors.New("short frame header")
	}
	plen := binary.BigEndian.Uint32(b)
	if plen > MaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("payload length %d exceeds cap", plen)
	}
	total := frameHeader + int(plen)
	if len(b) < total {
		return 0, 0, 0, nil, errors.New("short frame payload")
	}
	sum := binary.BigEndian.Uint32(b[4:])
	seq = binary.BigEndian.Uint64(b[8:])
	kind = b[16]
	payload = b[frameHeader:total]
	if crc32.Checksum(b[8:total], castagnoli) != sum {
		return 0, 0, 0, nil, errors.New("crc mismatch")
	}
	return total, seq, kind, payload, nil
}

// openActive opens the last segment for append, or creates the first.
func (w *WAL) openActive() error {
	if len(w.segments) == 0 {
		return w.newSegment()
	}
	first := w.segments[len(w.segments)-1]
	f, err := os.OpenFile(w.segPath(first), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeSz = st.Size()
	return nil
}

// newSegment rotates to a fresh segment starting at nextSeq. Caller
// holds w.mu (or is Open, pre-publication). Invariant the group-commit
// leader relies on: a segment is synced before it is closed, so every
// record NOT in the current active file is on stable storage.
func (w *WAL) newSegment() error {
	if w.active != nil {
		if err := w.active.Sync(); err != nil {
			return err
		}
		if err := w.active.Close(); err != nil {
			return err
		}
		w.active = nil
		w.markSynced(w.nextSeq - 1)
	}
	f, err := os.OpenFile(w.segPath(w.nextSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	w.active = f
	w.activeSz = 0
	w.segments = append(w.segments, w.nextSeq)
	syncDir(w.dir)
	return nil
}

// Append journals one record and returns its sequence number. Under
// SyncAlways and SyncBatched the record is on stable storage when
// Append returns; the caller applies the mutation only after
// (journal-then-apply).
func (w *WAL) Append(kind uint8, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds %d-byte cap", len(payload), MaxPayload)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errors.New("wal: append on closed log")
	}
	if w.opts.Sync == SyncBatched {
		w.cmu.Lock()
		err := w.syncErr
		w.cmu.Unlock()
		if err != nil {
			// The log already failed to make an append durable; writing
			// more records it may never be able to acknowledge would only
			// widen the divergence between the file and the applied state.
			w.mu.Unlock()
			return 0, fmt.Errorf("wal: append after failed group commit: %w", err)
		}
	}
	if w.activeSz >= w.opts.SegmentSize {
		if err := w.newSegment(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	seq := w.nextSeq
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[8:], seq)
	frame[16] = kind
	copy(frame[frameHeader:], payload)
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	if _, err := w.active.Write(frame); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if w.opts.Sync == SyncAlways {
		if err := w.active.Sync(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	w.activeSz += int64(len(frame))
	w.liveBytes += int64(len(frame))
	w.nextSeq = seq + 1
	w.mu.Unlock()
	if w.opts.Sync == SyncBatched {
		if err := w.awaitDurable(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// awaitDurable blocks until record seq is on stable storage, fsyncing
// as the commit leader when no fsync is in flight. Followers whose
// records were written while a leader's fsync was running form the next
// batch — that accumulation is where the group-commit win comes from.
func (w *WAL) awaitDurable(seq uint64) error {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.syncedSeq >= seq {
			return nil
		}
		if w.syncing {
			w.commit.Wait()
			continue
		}
		// Leader: optionally linger to gather companions, then fsync the
		// active file outside both locks. Every record ≤ target is either
		// in the captured file or in an earlier segment, and segments are
		// synced before they are closed — so one successful fsync makes
		// all of them durable.
		w.syncing = true
		w.cmu.Unlock()
		if d := w.opts.BatchWindow; d > 0 {
			time.Sleep(d)
		}
		w.mu.Lock()
		target := w.nextSeq - 1
		f := w.active
		w.mu.Unlock()
		var err error
		if f != nil {
			err = f.Sync()
			if err != nil && errors.Is(err, os.ErrClosed) {
				// A rotation (or Close) took the file between capture and
				// fsync — but it synced the file first, so records ≤ target
				// are durable regardless.
				err = nil
			}
		}
		w.cmu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if target > w.syncedSeq {
			w.syncedSeq = target
		}
		w.commit.Broadcast()
	}
}

// markSynced records that every record ≤ seq is on stable storage and
// wakes group-commit waiters. Safe to call with w.mu held (mu → cmu).
func (w *WAL) markSynced(seq uint64) {
	if w.opts.Sync != SyncBatched {
		return
	}
	w.cmu.Lock()
	if seq > w.syncedSeq {
		w.syncedSeq = seq
		w.commit.Broadcast()
	}
	w.cmu.Unlock()
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.active == nil {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	w.markSynced(w.nextSeq - 1)
	return nil
}

// Stats describes the journal's growth since its last snapshot, for
// compaction policies that watch bytes/records rather than guessing.
type Stats struct {
	Segments             int    // live segment files
	LastSeq              uint64 // most recent record (0 on a fresh log)
	SnapshotSeq          uint64 // last record the snapshot covers (0 if none)
	RecordsSinceSnapshot uint64
	BytesSinceSnapshot   int64 // frame bytes across live segments
}

// Stats reports the journal's current shape.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Segments:             len(w.segments),
		LastSeq:              w.nextSeq - 1,
		SnapshotSeq:          w.snapSeq,
		RecordsSinceSnapshot: w.nextSeq - 1 - w.snapSeq,
		BytesSinceSnapshot:   w.liveBytes,
	}
}

// LastSeq reports the sequence number of the most recent record (0
// before the first append on a fresh log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Snapshot returns the latest snapshot payload and the seq it covers
// (records ≤ seq are folded into it). ok is false when none exists.
func (w *WAL) Snapshot() (payload []byte, seq uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.hasSnap {
		return nil, 0, false
	}
	return w.snapPayload, w.snapSeq, true
}

// Replay iterates every record after the snapshot's covered seq, in
// order. The callback's Record.Payload is only valid for the call.
// Stop early by returning an error (it is passed through).
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	segments := append([]uint64(nil), w.segments...)
	snapSeq := w.snapSeq
	w.mu.Unlock()
	for _, first := range segments {
		data, err := os.ReadFile(w.segPath(first))
		if err != nil {
			return err
		}
		offset := 0
		for offset < len(data) {
			n, seq, kind, payload, ferr := decodeFrame(data[offset:])
			if ferr != nil {
				// Open validated and repaired; damage appearing between
				// then and now is corruption, not a torn tail.
				return fmt.Errorf("%w: segment %020x offset %d: %v", ErrCorrupt, first, offset, ferr)
			}
			if seq > snapSeq {
				if err := fn(Record{Seq: seq, Kind: kind, Payload: payload}); err != nil {
					return err
				}
			}
			offset += n
		}
	}
	return nil
}

// WriteSnapshot atomically records payload as the state through
// LastSeq and truncates every fully covered segment, bounding the
// log's disk footprint. The snapshot lands via rename, so a crash
// mid-write leaves the previous snapshot (and the segments it needs)
// intact.
//
// WriteSnapshot trusts the caller that payload reflects every record
// through LastSeq. When appends can race the caller's state capture,
// use WriteSnapshotAt, which refuses a payload the log has outrun.
func (w *WAL) WriteSnapshot(payload []byte) error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: snapshot on closed log")
	}
	covered := w.nextSeq - 1
	tmp, err := w.stageSnapshot(payload, covered)
	if err != nil {
		return err
	}
	return w.commitSnapshotLocked(payload, covered, tmp)
}

// WriteSnapshotAt is WriteSnapshot for state captured at a known
// sequence: the caller reads LastSeq, encodes its state, and passes
// that sequence as covered. If any record landed in between — the
// payload cannot account for it, and truncating its segment would lose
// an acknowledged durable mutation — the write is refused with
// ErrSnapshotStale and the caller re-captures and retries.
//
// The expensive part — writing and fsyncing the snapshot payload — runs
// OUTSIDE the append lock, so a large snapshot stalls concurrent
// mutations only for the commit step (rotate, rename, cleanup: a few
// fixed-cost syscalls), which is the bounded mutation-stall budget the
// background compactor relies on. The staleness check runs twice:
// cheaply before staging the payload, and authoritatively under the
// lock at commit.
func (w *WAL) WriteSnapshotAt(payload []byte, covered uint64) error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if last := w.LastSeq(); last != covered {
		return fmt.Errorf("%w: state captured at seq %d, log now at %d", ErrSnapshotStale, covered, last)
	}
	w.mu.Lock()
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return errors.New("wal: snapshot on closed log")
	}
	tmp, err := w.stageSnapshot(payload, covered)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		os.Remove(tmp)
		return errors.New("wal: snapshot on closed log")
	}
	if covered != w.nextSeq-1 {
		os.Remove(tmp)
		return fmt.Errorf("%w: state captured at seq %d, log now at %d", ErrSnapshotStale, covered, w.nextSeq-1)
	}
	return w.commitSnapshotLocked(payload, covered, tmp)
}

// SnapshotStageHook, when non-nil, is called after each stage of a
// snapshot write ("staged", "rotated", "renamed", "cleaned"). Test
// instrumentation: crash-consistency tests have a child process report
// the stage so the parent can SIGKILL it mid-compaction. Nil in
// production; set before any snapshot activity, never concurrently.
var SnapshotStageHook func(stage string)

func snapshotStage(stage string) {
	if SnapshotStageHook != nil {
		SnapshotStageHook(stage)
	}
}

// stageSnapshot writes the framed snapshot payload to the tmp file and
// fsyncs it. Caller holds snapMu (sole tmp owner) but need not hold
// w.mu. Returns the tmp path for commitSnapshotLocked to rename.
func (w *WAL) stageSnapshot(payload []byte, covered uint64) (string, error) {
	buf := make([]byte, 0, len(snapshotMagic)+16+len(payload))
	buf = append(buf, snapshotMagic...)
	buf = binary.BigEndian.AppendUint64(buf, covered)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)

	tmp := filepath.Join(w.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	snapshotStage("staged")
	return tmp, nil
}

// commitSnapshotLocked publishes a staged snapshot: rotate so the
// active segment starts past covered, rename the tmp into place, drop
// covered segments. Caller holds w.mu and has verified covered ==
// nextSeq-1; every step is a fixed-cost syscall, so this is the whole
// of the mutation stall a snapshot imposes.
func (w *WAL) commitSnapshotLocked(payload []byte, covered uint64, tmp string) error {
	// Rotate first: the active segment then starts at covered+1, and
	// every earlier segment is fully covered by the snapshot.
	if w.activeSz > 0 {
		if err := w.newSegment(); err != nil {
			os.Remove(tmp)
			return err
		}
	} else if w.active != nil {
		if err := w.active.Sync(); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	snapshotStage("rotated")

	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(w.dir)
	snapshotStage("renamed")

	w.snapPayload = append([]byte(nil), payload...)
	w.snapSeq = covered
	w.hasSnap = true
	w.markSynced(covered)

	// Drop segments whose every record the snapshot now covers: all but
	// the active (last) one, since rotation pinned its first seq at
	// covered+1. The segment list is updated first and removal is
	// best-effort cleanup — an undeletable covered segment must not
	// leave w.segments referencing files already gone from disk, and a
	// leftover file is harmless: the next Open rescans it (the covered
	// gap rule in scanSegments tolerates it) and replay skips its
	// records.
	drop := w.segments[:len(w.segments)-1]
	w.segments = append([]uint64(nil), w.segments[len(w.segments)-1:]...)
	for _, first := range drop {
		os.Remove(w.segPath(first))
	}
	syncDir(w.dir)
	w.liveBytes = w.activeSz
	snapshotStage("cleaned")
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return err
	}
	w.markSynced(w.nextSeq - 1)
	return w.active.Close()
}

// syncDir fsyncs a directory so renames and creates are durable;
// best-effort on filesystems that refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
