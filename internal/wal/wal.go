// Package wal is the durable trust plane's write-ahead log: a
// segmented, CRC-framed, append-only record log with snapshot +
// truncate. The authorization stores (policy, gridmap), the CAS
// community state, and the secsvc audit chain all journal through one
// WAL, multiplexed by a record-kind byte, so a single fsync policy and
// a single replay pass govern every piece of security state a restart
// must recover.
//
// On-disk layout (one directory per WAL):
//
//	00000000000000000001.seg   segment files, named by first record seq
//	00000000000000004201.seg
//	SNAPSHOT                   latest state snapshot + covered seq
//
// Record frame, all integers big-endian:
//
//	[u32 payload len][u32 crc][u64 seq][u8 kind][payload]
//
// The CRC (Castagnoli) covers seq, kind, and payload. Sequence numbers
// start at 1 and increment by exactly one across segment boundaries, so
// replay detects reordered, dropped, or spliced records. A torn tail —
// an incomplete or corrupt frame at the end of the LAST segment — is
// the expected crash signature and is repaired by truncation at open;
// the same damage anywhere else is corruption and fails the open, so a
// replayed state is always an exact prefix of what was appended, never
// a fabrication.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MaxPayload bounds one record's payload (matches wire.MaxField: WAL
// payloads are wire-encoded mutations, so nothing legitimate is
// larger).
const MaxPayload = 16 << 20

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero.
const DefaultSegmentSize = 4 << 20

// frameHeader is the fixed-size frame prefix: len, crc, seq, kind.
const frameHeader = 4 + 4 + 8 + 1

const (
	segSuffix     = ".seg"
	snapshotName  = "SNAPSHOT"
	snapshotMagic = "walsnap1"
)

// ErrCorrupt reports damage that truncation cannot repair: a bad frame
// anywhere but the tail of the last segment, a sequence discontinuity,
// or a snapshot that fails its checksum. Fail closed: the caller must
// not serve from a log it cannot fully trust.
var ErrCorrupt = errors.New("wal: log corrupt")

// ErrSnapshotStale reports a WriteSnapshotAt whose covered sequence no
// longer matches the log: records were appended between the caller's
// state capture and the snapshot write. Persisting the stale payload
// would truncate acknowledged records it does not contain, so the write
// is refused; re-capture the state and retry.
var ErrSnapshotStale = errors.New("wal: snapshot stale")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives kill -9. The default — durability is why the WAL exists.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS (tests, bulk loads, benches).
	// Close and explicit Sync still flush.
	SyncNever
)

// Options parameterize Open.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (0 selects
	// DefaultSegmentSize). A record never splits across segments.
	SegmentSize int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
}

// Record is one replayed log entry. Payload aliases an internal read
// buffer only for the duration of the replay callback; callers that
// retain it must copy.
type Record struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// WAL is an open write-ahead log. Safe for concurrent use; appends are
// serialized.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	active   *os.File
	activeSz int64
	segments []uint64 // first seq of each live segment, ascending
	nextSeq  uint64

	snapPayload []byte
	snapSeq     uint64
	hasSnap     bool

	closed bool
}

// Open opens (or creates) the WAL in dir, validating every segment: a
// torn tail on the last segment is truncated away, any other damage is
// ErrCorrupt. The log is single-writer; concurrent opens of one
// directory are a deployment error the WAL does not arbitrate.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 1}
	if err := w.loadSnapshot(); err != nil {
		return nil, err
	}
	if w.hasSnap {
		w.nextSeq = w.snapSeq + 1
	}
	if err := w.scanSegments(); err != nil {
		return nil, err
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

// loadSnapshot reads and verifies the snapshot file if present.
//
// Snapshot layout: "walsnap1" | u64 covered seq | u32 crc | u32 len | payload.
func (w *WAL) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(w.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(snapshotMagic)+8+4+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	rest := data[len(snapshotMagic):]
	seq := binary.BigEndian.Uint64(rest)
	sum := binary.BigEndian.Uint32(rest[8:])
	n := binary.BigEndian.Uint32(rest[12:])
	payload := rest[16:]
	if uint64(n) != uint64(len(payload)) {
		return fmt.Errorf("%w: snapshot length mismatch", ErrCorrupt)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	w.snapPayload = payload
	w.snapSeq = seq
	w.hasSnap = true
	return nil
}

// scanSegments validates every segment, repairs a torn tail on the last
// one, and leaves w.segments / w.nextSeq describing the live log.
//
// Beyond per-segment frame checks, it enforces continuity ACROSS
// segments and against the snapshot: every sequence number must be
// accounted for either by a live segment or by the snapshot. A gap the
// snapshot does not cover — a deleted middle segment, or a first
// segment starting past snapSeq+1 — would replay a silently truncated
// history, so it is ErrCorrupt.
func (w *WAL) scanSegments() error {
	names, err := w.segmentNames()
	if err != nil {
		return err
	}
	var prevEnd uint64
	for i, first := range names {
		if i > 0 && first <= prevEnd {
			return fmt.Errorf("%w: segment %020x overlaps its predecessor (ends at record %d)", ErrCorrupt, first, prevEnd)
		}
		if first != prevEnd+1 && (!w.hasSnap || first > w.snapSeq+1) {
			return fmt.Errorf("%w: records %d-%d are on no live segment and no snapshot covers them", ErrCorrupt, prevEnd+1, first-1)
		}
		last := i == len(names)-1
		endSeq, err := w.scanSegment(first, last)
		if err != nil {
			return err
		}
		w.segments = append(w.segments, first)
		if endSeq >= w.nextSeq {
			w.nextSeq = endSeq + 1
		}
		prevEnd = endSeq
	}
	return nil
}

// segmentNames lists segment first-seqs in ascending order.
func (w *WAL) segmentNames() ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: alien segment name %q", ErrCorrupt, name)
		}
		firsts = append(firsts, first)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

func (w *WAL) segPath(first uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%020x%s", first, segSuffix))
}

// scanSegment validates one segment's frames. For the last segment the
// first bad frame is treated as a torn write: the file is truncated at
// the last good offset. Anywhere else it is ErrCorrupt. Returns the
// seq of the segment's last valid record (or first-1 when it holds
// none after truncation).
func (w *WAL) scanSegment(first uint64, last bool) (uint64, error) {
	path := w.segPath(first)
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	wantSeq := first
	offset := 0
	for offset < len(data) {
		n, seq, _, _, ferr := decodeFrame(data[offset:])
		if ferr != nil || seq != wantSeq {
			if last {
				// Torn tail: everything before offset replays; the rest is
				// the crash's half-written frame (or garbage after it,
				// unreachable anyway since frames only chain forward).
				if terr := os.Truncate(path, int64(offset)); terr != nil {
					return 0, terr
				}
				return wantSeq - 1, nil
			}
			if ferr == nil {
				ferr = fmt.Errorf("record %d where %d expected", seq, wantSeq)
			}
			return 0, fmt.Errorf("%w: segment %020x offset %d: %v", ErrCorrupt, first, offset, ferr)
		}
		offset += n
		wantSeq++
	}
	return wantSeq - 1, nil
}

// decodeFrame parses one frame from b, returning its total encoded
// length, seq, kind, and payload.
func decodeFrame(b []byte) (n int, seq uint64, kind uint8, payload []byte, err error) {
	if len(b) < frameHeader {
		return 0, 0, 0, nil, errors.New("short frame header")
	}
	plen := binary.BigEndian.Uint32(b)
	if plen > MaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("payload length %d exceeds cap", plen)
	}
	total := frameHeader + int(plen)
	if len(b) < total {
		return 0, 0, 0, nil, errors.New("short frame payload")
	}
	sum := binary.BigEndian.Uint32(b[4:])
	seq = binary.BigEndian.Uint64(b[8:])
	kind = b[16]
	payload = b[frameHeader:total]
	if crc32.Checksum(b[8:total], castagnoli) != sum {
		return 0, 0, 0, nil, errors.New("crc mismatch")
	}
	return total, seq, kind, payload, nil
}

// openActive opens the last segment for append, or creates the first.
func (w *WAL) openActive() error {
	if len(w.segments) == 0 {
		return w.newSegment()
	}
	first := w.segments[len(w.segments)-1]
	f, err := os.OpenFile(w.segPath(first), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeSz = st.Size()
	return nil
}

// newSegment rotates to a fresh segment starting at nextSeq. Caller
// holds w.mu (or is Open, pre-publication).
func (w *WAL) newSegment() error {
	if w.active != nil {
		if err := w.active.Sync(); err != nil {
			return err
		}
		if err := w.active.Close(); err != nil {
			return err
		}
		w.active = nil
	}
	f, err := os.OpenFile(w.segPath(w.nextSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	w.active = f
	w.activeSz = 0
	w.segments = append(w.segments, w.nextSeq)
	syncDir(w.dir)
	return nil
}

// Append journals one record and returns its sequence number. Under
// SyncAlways the record is on stable storage when Append returns; the
// caller applies the mutation only after (journal-then-apply).
func (w *WAL) Append(kind uint8, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds %d-byte cap", len(payload), MaxPayload)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: append on closed log")
	}
	if w.activeSz >= w.opts.SegmentSize {
		if err := w.newSegment(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[8:], seq)
	frame[16] = kind
	copy(frame[frameHeader:], payload)
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	if _, err := w.active.Write(frame); err != nil {
		return 0, err
	}
	if w.opts.Sync == SyncAlways {
		if err := w.active.Sync(); err != nil {
			return 0, err
		}
	}
	w.activeSz += int64(len(frame))
	w.nextSeq = seq + 1
	return seq, nil
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.active == nil {
		return nil
	}
	return w.active.Sync()
}

// LastSeq reports the sequence number of the most recent record (0
// before the first append on a fresh log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Snapshot returns the latest snapshot payload and the seq it covers
// (records ≤ seq are folded into it). ok is false when none exists.
func (w *WAL) Snapshot() (payload []byte, seq uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.hasSnap {
		return nil, 0, false
	}
	return w.snapPayload, w.snapSeq, true
}

// Replay iterates every record after the snapshot's covered seq, in
// order. The callback's Record.Payload is only valid for the call.
// Stop early by returning an error (it is passed through).
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	segments := append([]uint64(nil), w.segments...)
	snapSeq := w.snapSeq
	w.mu.Unlock()
	for _, first := range segments {
		data, err := os.ReadFile(w.segPath(first))
		if err != nil {
			return err
		}
		offset := 0
		for offset < len(data) {
			n, seq, kind, payload, ferr := decodeFrame(data[offset:])
			if ferr != nil {
				// Open validated and repaired; damage appearing between
				// then and now is corruption, not a torn tail.
				return fmt.Errorf("%w: segment %020x offset %d: %v", ErrCorrupt, first, offset, ferr)
			}
			if seq > snapSeq {
				if err := fn(Record{Seq: seq, Kind: kind, Payload: payload}); err != nil {
					return err
				}
			}
			offset += n
		}
	}
	return nil
}

// WriteSnapshot atomically records payload as the state through
// LastSeq and truncates every fully covered segment, bounding the
// log's disk footprint. The snapshot lands via rename, so a crash
// mid-write leaves the previous snapshot (and the segments it needs)
// intact.
//
// WriteSnapshot trusts the caller that payload reflects every record
// through LastSeq. When appends can race the caller's state capture,
// use WriteSnapshotAt, which refuses a payload the log has outrun.
func (w *WAL) WriteSnapshot(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeSnapshotLocked(payload)
}

// WriteSnapshotAt is WriteSnapshot for state captured at a known
// sequence: the caller reads LastSeq, encodes its state, and passes
// that sequence as covered. If any record landed in between — the
// payload cannot account for it, and truncating its segment would lose
// an acknowledged durable mutation — the write is refused with
// ErrSnapshotStale and the caller re-captures and retries.
func (w *WAL) WriteSnapshotAt(payload []byte, covered uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if covered != w.nextSeq-1 {
		return fmt.Errorf("%w: state captured at seq %d, log now at %d", ErrSnapshotStale, covered, w.nextSeq-1)
	}
	return w.writeSnapshotLocked(payload)
}

func (w *WAL) writeSnapshotLocked(payload []byte) error {
	if w.closed {
		return errors.New("wal: snapshot on closed log")
	}
	covered := w.nextSeq - 1
	// Rotate first: the active segment then starts at covered+1, and
	// every earlier segment is fully covered by the snapshot.
	if w.activeSz > 0 {
		if err := w.newSegment(); err != nil {
			return err
		}
	} else if w.active != nil {
		if err := w.active.Sync(); err != nil {
			return err
		}
	}

	buf := make([]byte, 0, len(snapshotMagic)+16+len(payload))
	buf = append(buf, snapshotMagic...)
	buf = binary.BigEndian.AppendUint64(buf, covered)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)

	tmp := filepath.Join(w.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(w.dir)

	w.snapPayload = append([]byte(nil), payload...)
	w.snapSeq = covered
	w.hasSnap = true

	// Drop segments whose every record the snapshot now covers: all but
	// the active (last) one, since rotation pinned its first seq at
	// covered+1. The segment list is updated first and removal is
	// best-effort cleanup — an undeletable covered segment must not
	// leave w.segments referencing files already gone from disk, and a
	// leftover file is harmless: the next Open rescans it (the covered
	// gap rule in scanSegments tolerates it) and replay skips its
	// records.
	drop := w.segments[:len(w.segments)-1]
	w.segments = append([]uint64(nil), w.segments[len(w.segments)-1:]...)
	for _, first := range drop {
		os.Remove(w.segPath(first))
	}
	syncDir(w.dir)
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return err
	}
	return w.active.Close()
}

// syncDir fsyncs a directory so renames and creates are durable;
// best-effort on filesystems that refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
