package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, w *WAL) []Record {
	t.Helper()
	var out []Record
	if err := w.Replay(func(r Record) error {
		out = append(out, Record{Seq: r.Seq, Kind: r.Kind, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("mutation-%03d", i))
		seq, err := w.Append(uint8(i%7), payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d for append %d", seq, i)
		}
		want = append(want, Record{Seq: seq, Kind: uint8(i % 7), Payload: payload})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if w2.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d, want 100", w2.LastSeq())
	}
	// Appends resume at the replayed seq — identical numbering after a
	// restart, as the generation counters riding on it require.
	seq, err := w2.Append(1, []byte("after-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 101 {
		t.Fatalf("post-restart seq = %d, want 101", seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := w.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	w2, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := replayAll(t, w2); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(2, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a torn write: chop the last frame mid-payload.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("torn tail must repair, not fail: %v", err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(got))
	}
	if w2.LastSeq() != 9 {
		t.Fatalf("LastSeq = %d, want 9", w2.LastSeq())
	}
	// The repaired log accepts appends at the rewound seq.
	if seq, err := w2.Append(1, []byte("fresh")); err != nil || seq != 10 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
}

func TestBitFlipMidSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := w.Append(1, bytes.Repeat([]byte("p"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	// Flip a payload bit in the FIRST segment: not a torn tail, so the
	// open must refuse the whole log rather than silently dropping or
	// mutating history.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log bit flip: got %v, want ErrCorrupt", err)
	}
}

func TestMissingMiddleSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := w.Append(1, bytes.Repeat([]byte("m"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Delete a MIDDLE segment: every remaining segment is internally
	// valid, but replaying around the hole would fabricate a spliced
	// history. No snapshot covers the gap, so the open must refuse.
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing middle segment: got %v, want ErrCorrupt", err)
	}
}

func TestFirstSegmentPastSnapshotIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w.Append(1, bytes.Repeat([]byte("g"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteSnapshot([]byte("state-through-6")); err != nil {
		t.Fatal(err)
	}
	// Records 7-8 live only in the post-snapshot segment.
	for i := 0; i < 2; i++ {
		if _, err := w.Append(1, []byte("tail")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Replace the post-snapshot segment with one starting two records
	// later: the gap 7-8 is past the snapshot's coverage, so opening
	// must not silently resume from record 9.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 live segment, got %d", len(segs))
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%020x%s", 9, segSuffix)), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("first segment past snapshot coverage: got %v, want ErrCorrupt", err)
	}
}

func TestLeftoverCoveredSegmentTolerated(t *testing.T) {
	// A crash (or EPERM) between snapshot rename and covered-segment
	// removal leaves fully covered segments on disk. They are garbage,
	// not corruption: the open must succeed and replay must skip them.
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := w.Append(1, bytes.Repeat([]byte("c"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	// Preserve the covered segments past the snapshot's cleanup.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	saved := map[string][]byte{}
	for _, s := range segs {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		saved[s] = b
	}
	if err := w.WriteSnapshot([]byte("state-through-12")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(2, []byte("after-snap")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	for s, b := range saved {
		if _, err := os.Stat(s); err == nil {
			continue
		}
		if err := os.WriteFile(s, b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	w2, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatalf("leftover covered segments must be tolerated: %v", err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != 1 || got[0].Seq != 13 || string(got[0].Payload) != "after-snap" {
		t.Fatalf("replay over leftover covered segments = %+v", got)
	}
}

func TestWriteSnapshotAtRefusesStaleState(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append(1, []byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	captured := w.LastSeq()
	// A mutation lands between the caller's state capture and the
	// snapshot write: persisting the stale payload would truncate an
	// acknowledged record it does not contain.
	if _, err := w.Append(1, []byte("raced")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshotAt([]byte("stale"), captured); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("stale snapshot: got %v, want ErrSnapshotStale", err)
	}
	if _, _, ok := w.Snapshot(); ok {
		t.Fatal("refused snapshot must not land")
	}
	// Re-captured, it succeeds and the raced record stays replayable
	// state (folded into the fresh payload's coverage).
	if err := w.WriteSnapshotAt([]byte("fresh"), w.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if payload, seq, ok := w.Snapshot(); !ok || seq != 6 || string(payload) != "fresh" {
		t.Fatalf("snapshot = %q seq=%d ok=%v", payload, seq, ok)
	}
}

func TestSnapshotTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append(1, bytes.Repeat([]byte("s"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("state-through-30")
	if err := w.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("snapshot should leave 1 segment, got %d", len(segs))
	}
	// Post-snapshot appends replay; covered ones do not.
	if _, err := w.Append(2, []byte("after-snap")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	payload, seq, ok := w2.Snapshot()
	if !ok || seq != 30 || !bytes.Equal(payload, state) {
		t.Fatalf("snapshot = %q seq=%d ok=%v", payload, seq, ok)
	}
	got := replayAll(t, w2)
	if len(got) != 1 || got[0].Seq != 31 || string(got[0].Payload) != "after-snap" {
		t.Fatalf("post-snapshot replay = %+v", got)
	}
	if w2.LastSeq() != 31 {
		t.Fatalf("LastSeq = %d, want 31", w2.LastSeq())
	}
}

func TestCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := filepath.Join(dir, "SNAPSHOT")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
}

func TestPayloadCap(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(1, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload must be refused")
	}
}

// TestSyncBatchedConcurrentAppendsDurable is the group-commit
// correctness test: many writers appending under SyncBatched must each
// get a unique sequence, and every acknowledged record must replay
// after a reopen — the batching may coalesce fsyncs, never skip them.
func TestSyncBatchedConcurrentAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncBatched})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	seqs := make(chan uint64, writers*each)
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			for i := 0; i < each; i++ {
				seq, err := w.Append(1, []byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				seqs <- seq
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < writers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(seqs)
	seen := make(map[uint64]bool)
	for s := range seqs {
		if seen[s] {
			t.Fatalf("sequence %d acknowledged twice", s)
		}
		seen[s] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("%d acknowledged sequences, want %d", len(seen), writers*each)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{Sync: SyncBatched})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d (gap or reorder)", i, r.Seq)
		}
		if !seen[r.Seq] {
			t.Fatalf("replayed seq %d was never acknowledged", r.Seq)
		}
	}
}

// TestSyncBatchedAcrossRotation drives concurrent batched appends
// through many segment rotations: a follower whose segment was synced
// and closed by rotation mid-batch must still be acknowledged, and
// everything must replay in order.
func TestSyncBatchedAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncBatched, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 40
	errs := make(chan error, writers)
	payload := make([]byte, 64)
	for g := 0; g < writers; g++ {
		go func() {
			for i := 0; i < each; i++ {
				if _, err := w.Append(1, payload); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < writers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("only %d segments — rotation never happened, test proves nothing", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{Sync: SyncBatched})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := replayAll(t, w2); len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
}

// TestSyncBatchedClosedLogRefused: appends racing Close either complete
// durably or fail — after Close returns, new appends must error, not
// hang waiting on a commit that will never run.
func TestSyncBatchedClosedLogRefused(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncBatched})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("after")); err == nil {
		t.Fatal("append on closed batched log must fail")
	}
}

func TestFrameLengthLieRejected(t *testing.T) {
	// A frame whose length field claims more payload than the cap must
	// be rejected before any allocation is sized from it.
	var b [frameHeader]byte
	binary.BigEndian.PutUint32(b[:], MaxPayload+1)
	if _, _, _, _, err := decodeFrame(b[:]); err == nil {
		t.Fatal("oversized length field must fail decode")
	}
}
