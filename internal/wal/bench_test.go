// Benchmarks for the journal's append path: what one durable mutation
// costs under each sync policy as write concurrency grows. SyncAlways
// pays one fsync per append, so 64 writers pay 64 fsyncs for 64
// records; SyncBatched coalesces concurrent appends onto one group
// fsync with identical per-record durability, so the same 64 records
// share a handful. `make bench-ctrlplane` records the six rows into
// BENCH_ctrlplane.json; the widening gap at 8 and 64 writers is the
// group-commit claim of PR 10. The 1-writer rows also gate allocs/op:
// batching must not add allocations over the SyncAlways frame build.
package wal

import (
	"sync"
	"testing"
)

// benchmarkAppend drives b.N appends split across the given number of
// concurrent writers, each append blocking until its record is durable
// (both measured policies acknowledge only after fsync).
func benchmarkAppend(b *testing.B, policy SyncPolicy, writers int) {
	w, err := Open(b.TempDir(), Options{Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		n := b.N / writers
		if g < b.N%writers {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := w.Append(1, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

func BenchmarkWALAppendSyncAlways1(b *testing.B)  { benchmarkAppend(b, SyncAlways, 1) }
func BenchmarkWALAppendSyncAlways8(b *testing.B)  { benchmarkAppend(b, SyncAlways, 8) }
func BenchmarkWALAppendSyncAlways64(b *testing.B) { benchmarkAppend(b, SyncAlways, 64) }

func BenchmarkWALAppendSyncBatched1(b *testing.B)  { benchmarkAppend(b, SyncBatched, 1) }
func BenchmarkWALAppendSyncBatched8(b *testing.B)  { benchmarkAppend(b, SyncBatched, 8) }
func BenchmarkWALAppendSyncBatched64(b *testing.B) { benchmarkAppend(b, SyncBatched, 64) }
