package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes as a segment file and requires
// the recovery invariant: Open either refuses the log or repairs it to
// a state whose replay is a contiguous, CRC-valid record sequence — a
// prefix of some append history. Torn, truncated, and bit-flipped
// frames must never surface partial or fabricated state.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed two-record segment so mutations explore
	// the frame format, not just noise.
	seed := func() []byte {
		dir := f.TempDir()
		w, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			f.Fatal(err)
		}
		w.Append(1, []byte("policy-add rule-a"))
		w.Append(2, []byte("gridmap-add /O=Grid/CN=Alice alice"))
		w.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
		data, err := os.ReadFile(segs[0])
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// The lone segment claims to start at seq 1.
		if err := os.WriteFile(filepath.Join(dir, "00000000000000000001.seg"), data, 0o600); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			return // refused outright: fail closed is always acceptable
		}
		defer w.Close()
		wantSeq := uint64(1)
		err = w.Replay(func(r Record) error {
			if r.Seq != wantSeq {
				t.Fatalf("replayed seq %d where %d expected", r.Seq, wantSeq)
			}
			wantSeq++
			return nil
		})
		if err != nil {
			t.Fatalf("open repaired the log but replay failed: %v", err)
		}
		if w.LastSeq() != wantSeq-1 {
			t.Fatalf("LastSeq %d disagrees with replayed tail %d", w.LastSeq(), wantSeq-1)
		}
		// The repaired log must accept appends exactly after the
		// replayed prefix.
		seq, err := w.Append(1, []byte("post-repair"))
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if seq != wantSeq {
			t.Fatalf("append seq %d after replayed tail %d", seq, wantSeq-1)
		}
	})
}
