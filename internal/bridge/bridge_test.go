package bridge

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/kerberos"
)

// site models an organisation with a Kerberos realm and a KCA.
type site struct {
	kdc    *kerberos.KDC
	kca    *KCA
	mapper *IdentityMapper
	trust  *gridcert.TrustStore
}

func newSite(t testing.TB) *site {
	t.Helper()
	kdc := kerberos.NewKDC("ANL.GOV")
	kcaPrincipal, kcaKey, err := kdc.RegisterService("kca/grid")
	if err != nil {
		t.Fatal(err)
	}
	authority, err := ca.New(gridcert.MustParseName("/O=ANL/CN=Kerberos CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mapper := NewIdentityMapper()
	kca := NewKCA(authority, kerberos.NewService(kcaPrincipal, kcaKey), mapper)
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	return &site{kdc: kdc, kca: kca, mapper: mapper, trust: trust}
}

// login performs AS+TGS to get a service ticket for the KCA.
func login(t testing.TB, s *site, name, password string) (kerberos.Principal, kerberos.Ticket, []byte) {
	t.Helper()
	client := kerberos.Principal{Name: name, Realm: s.kdc.Realm()}
	tgt, tgtSession, err := s.kdc.ASExchange(name, password)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := kerberos.NewAuthenticator(client, tgtSession, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	st, stSession, err := s.kdc.TGSExchange(tgt, auth, "kca/grid")
	if err != nil {
		t.Fatal(err)
	}
	return client, st, stSession
}

func TestKCAConvert(t *testing.T) {
	s := newSite(t)
	s.kdc.RegisterPrincipal("alice", "pw")
	aliceDN := gridcert.MustParseName("/O=ANL/CN=Alice")
	s.mapper.MapKerberos(aliceDN, kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})

	client, st, stSession := login(t, s, "alice", "pw")
	apAuth, err := kerberos.NewAuthenticator(client, stSession, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cred, err := s.kca.Convert(st, apAuth)
	if err != nil {
		t.Fatal(err)
	}
	// The issued credential chains to the KCA's CA and carries the
	// originating principal.
	info, err := s.trust.Verify(cred.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatalf("KCA credential does not verify: %v", err)
	}
	if !info.Identity.Equal(aliceDN) {
		t.Fatalf("identity = %q", info.Identity)
	}
	ext, ok := cred.Leaf().FindExtension(gridcert.ExtKCAOrigin)
	if !ok || string(ext.Value) != "alice@ANL.GOV" {
		t.Fatalf("KCA origin extension: ok=%v val=%q", ok, ext.Value)
	}
}

func TestKCAUnmappedPrincipalRejected(t *testing.T) {
	s := newSite(t)
	s.kdc.RegisterPrincipal("bob", "pw")
	client, st, stSession := login(t, s, "bob", "pw")
	apAuth, _ := kerberos.NewAuthenticator(client, stSession, time.Now())
	if _, err := s.kca.Convert(st, apAuth); err == nil {
		t.Fatal("KCA issued certificate for unmapped principal")
	}
}

func TestKCABadAuthenticatorRejected(t *testing.T) {
	s := newSite(t)
	s.kdc.RegisterPrincipal("alice", "pw")
	s.mapper.MapKerberos(gridcert.MustParseName("/O=ANL/CN=Alice"), kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})
	client, st, _ := login(t, s, "alice", "pw")
	// Authenticator under the wrong key.
	wrongKey := make([]byte, 32)
	apAuth, _ := kerberos.NewAuthenticator(client, wrongKey, time.Now())
	if _, err := s.kca.Convert(st, apAuth); err == nil {
		t.Fatal("bad authenticator accepted")
	}
}

func TestKCACredentialUsableForGSI(t *testing.T) {
	// The full paper scenario: Kerberos login, KCA conversion, then a GSI
	// mutual authentication using the converted credential.
	s := newSite(t)
	s.kdc.RegisterPrincipal("alice", "pw")
	aliceDN := gridcert.MustParseName("/O=ANL/CN=Alice")
	s.mapper.MapKerberos(aliceDN, kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})
	client, st, stSession := login(t, s, "alice", "pw")
	apAuth, _ := kerberos.NewAuthenticator(client, stSession, time.Now())
	cred, err := s.kca.Convert(st, apAuth)
	if err != nil {
		t.Fatal(err)
	}

	gridAuth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	host, err := gridAuth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host svc"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Host trusts the KCA's CA; Alice trusts the grid CA.
	hostTrust := gridcert.NewTrustStore()
	hostTrust.AddRoot(s.kca.Authority())
	aliceTrust := gridcert.NewTrustStore()
	aliceTrust.AddRoot(gridAuth.Certificate())

	_, actx, err := gss.Establish(
		gss.Config{Credential: cred, TrustStore: aliceTrust},
		gss.Config{Credential: host, TrustStore: hostTrust},
	)
	if err != nil {
		t.Fatalf("GSI establishment with KCA credential: %v", err)
	}
	if !actx.Peer().Identity.Equal(aliceDN) {
		t.Fatalf("host saw %q", actx.Peer().Identity)
	}
}

func TestPKINITConvert(t *testing.T) {
	s := newSite(t)
	s.kdc.RegisterPrincipal("alice", "pw")
	aliceDN := gridcert.MustParseName("/O=Grid/CN=Alice")
	gridAuth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	aliceCred, err := gridAuth.NewEntity(aliceDN, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(gridAuth.Certificate())
	s.mapper.MapKerberos(aliceDN, kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})

	gw := NewPKINIT(s.kdc, trust, s.mapper)
	tgt, session, err := gw.Convert(aliceCred.Chain)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Service.Name != "krbtgt/ANL.GOV" {
		t.Fatalf("TGT service = %q", tgt.Service)
	}
	// The TGT is redeemable at the KDC.
	s.kdc.RegisterService("host/x")
	auth, _ := kerberos.NewAuthenticator(kerberos.Principal{Name: "alice", Realm: "ANL.GOV"}, session, time.Now())
	if _, _, err := s.kdc.TGSExchange(tgt, auth, "host/x"); err != nil {
		t.Fatalf("redeeming PKINIT TGT: %v", err)
	}
}

func TestPKINITUnmappedAndUntrusted(t *testing.T) {
	s := newSite(t)
	gridAuth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	cred, _ := gridAuth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Nobody"), time.Hour)
	trust := gridcert.NewTrustStore()
	trust.AddRoot(gridAuth.Certificate())
	gw := NewPKINIT(s.kdc, trust, s.mapper)
	if _, _, err := gw.Convert(cred.Chain); err == nil {
		t.Fatal("unmapped DN converted")
	}
	// Untrusted chain.
	emptyTrust := gridcert.NewTrustStore()
	gw2 := NewPKINIT(s.kdc, emptyTrust, s.mapper)
	if _, _, err := gw2.Convert(cred.Chain); err == nil {
		t.Fatal("untrusted chain converted")
	}
}

func TestIdentityMapperRoundTrips(t *testing.T) {
	m := NewIdentityMapper()
	dn := gridcert.MustParseName("/O=Grid/CN=Alice")
	p := kerberos.Principal{Name: "alice", Realm: "R"}
	m.MapKerberos(dn, p)
	m.MapLocal(dn, "alice_local")

	if got, ok := m.KerberosFor(dn); !ok || got != p {
		t.Fatalf("KerberosFor: %v %v", got, ok)
	}
	if got, ok := m.DNForKerberos(p); !ok || !got.Equal(dn) {
		t.Fatalf("DNForKerberos: %v %v", got, ok)
	}
	if got, ok := m.LocalFor(dn); !ok || got != "alice_local" {
		t.Fatalf("LocalFor: %v %v", got, ok)
	}
	if got, ok := m.DNForLocal("alice_local"); !ok || !got.Equal(dn) {
		t.Fatalf("DNForLocal: %v %v", got, ok)
	}
	if _, ok := m.LocalFor(gridcert.MustParseName("/CN=unknown")); ok {
		t.Fatal("mapping for unknown DN")
	}
}

func TestConverterDescriptions(t *testing.T) {
	s := newSite(t)
	gw := NewPKINIT(s.kdc, s.trust, s.mapper)
	var cs []Converter = []Converter{s.kca, gw}
	if cs[0].Describe() == cs[1].Describe() {
		t.Fatal("converters indistinguishable")
	}
}

func BenchmarkKCAConversion(b *testing.B) {
	s := newSite(b)
	s.kdc.RegisterPrincipal("alice", "pw")
	s.mapper.MapKerberos(gridcert.MustParseName("/O=ANL/CN=Alice"), kerberos.Principal{Name: "alice", Realm: "ANL.GOV"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, st, stSession := login(b, s, "alice", "pw")
		apAuth, _ := kerberos.NewAuthenticator(client, stSession, time.Now())
		if _, err := s.kca.Convert(st, apAuth); err != nil {
			b.Fatal(err)
		}
	}
}
