// Package bridge implements the credential-conversion gateways of the
// paper (§3 and §4.1): the Kerberos Certificate Authority (KCA), which
// turns a Kerberos authentication into a short-lived GSI certificate; the
// SSLK5/PKINIT gateway, which turns a GSI authentication into Kerberos
// credentials; and the identity-mapping service that relates names across
// mechanism domains. Together they let "a site with an existing Kerberos
// infrastructure continue using that installation and convert credentials
// between Kerberos and GSI as needed."
package bridge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/kerberos"
)

// IdentityMapper relates identities across three naming domains: grid
// distinguished names, Kerberos principals, and local account names. It
// backs both the gateways here and the OGSA identity-mapping service.
type IdentityMapper struct {
	mu        sync.RWMutex
	dnToKrb   map[string]kerberos.Principal
	krbToDN   map[string]gridcert.Name
	dnToLocal map[string]string
	localToDN map[string]gridcert.Name
}

// NewIdentityMapper creates an empty mapper.
func NewIdentityMapper() *IdentityMapper {
	return &IdentityMapper{
		dnToKrb:   make(map[string]kerberos.Principal),
		krbToDN:   make(map[string]gridcert.Name),
		dnToLocal: make(map[string]string),
		localToDN: make(map[string]gridcert.Name),
	}
}

// MapKerberos records a bidirectional DN ↔ principal mapping.
func (m *IdentityMapper) MapKerberos(dn gridcert.Name, p kerberos.Principal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dnToKrb[dn.String()] = p
	m.krbToDN[p.String()] = dn
}

// MapLocal records a bidirectional DN ↔ local account mapping (the
// grid-mapfile relation).
func (m *IdentityMapper) MapLocal(dn gridcert.Name, account string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dnToLocal[dn.String()] = account
	m.localToDN[account] = dn
}

// KerberosFor returns the principal mapped to a grid DN.
func (m *IdentityMapper) KerberosFor(dn gridcert.Name) (kerberos.Principal, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.dnToKrb[dn.String()]
	return p, ok
}

// DNForKerberos returns the grid DN mapped to a principal.
func (m *IdentityMapper) DNForKerberos(p kerberos.Principal) (gridcert.Name, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dn, ok := m.krbToDN[p.String()]
	return dn, ok
}

// LocalFor returns the local account mapped to a grid DN.
func (m *IdentityMapper) LocalFor(dn gridcert.Name) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	acct, ok := m.dnToLocal[dn.String()]
	return acct, ok
}

// DNForLocal returns the grid DN mapped to a local account.
func (m *IdentityMapper) DNForLocal(account string) (gridcert.Name, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dn, ok := m.localToDN[account]
	return dn, ok
}

// KCA is the Kerberos Certificate Authority: a service principal in the
// site realm that issues short-lived grid certificates to clients who
// authenticate with Kerberos.
type KCA struct {
	authority *ca.Authority
	service   *kerberos.Service
	mapper    *IdentityMapper
	// CertLifetime bounds issued certificates; KCA certs are short-lived
	// (default 12h) because they stand in for a Kerberos session.
	CertLifetime time.Duration
}

// NewKCA builds a KCA from its grid CA, its registered Kerberos service,
// and the identity mapper.
func NewKCA(authority *ca.Authority, service *kerberos.Service, mapper *IdentityMapper) *KCA {
	return &KCA{
		authority:    authority,
		service:      service,
		mapper:       mapper,
		CertLifetime: 12 * time.Hour,
	}
}

// Authority exposes the KCA's grid CA certificate so relying parties can
// install it as a trust root.
func (k *KCA) Authority() *gridcert.Certificate { return k.authority.Certificate() }

// Convert validates a Kerberos AP exchange and issues a grid credential
// for the mapped DN, generating the key pair locally. The returned
// credential chains to the KCA's CA. For remote clients that keep their
// own key, use IssueForKey.
func (k *KCA) Convert(ticket kerberos.Ticket, auth kerberos.Authenticator) (*gridcert.Credential, error) {
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		return nil, err
	}
	cert, err := k.IssueForKey(ticket, auth, key.Public())
	if err != nil {
		return nil, err
	}
	return gridcert.NewCredential([]*gridcert.Certificate{cert}, key)
}

// IssueForKey validates a Kerberos AP exchange and issues a grid
// certificate over a client-supplied public key — the wire-safe variant:
// the private key never leaves the client.
func (k *KCA) IssueForKey(ticket kerberos.Ticket, auth kerberos.Authenticator, pub gridcrypto.PublicKey) (*gridcert.Certificate, error) {
	client, _, err := k.service.APExchange(ticket, auth)
	if err != nil {
		return nil, fmt.Errorf("bridge: kerberos authentication: %w", err)
	}
	dn, ok := k.mapper.DNForKerberos(client)
	if !ok {
		return nil, fmt.Errorf("bridge: no grid identity mapped for principal %q", client)
	}
	cert, err := k.authority.Issue(ca.Request{
		Subject:   dn,
		PublicKey: pub,
		Lifetime:  k.CertLifetime,
		Extensions: []gridcert.Extension{
			{ID: gridcert.ExtKCAOrigin, Value: []byte(client.String())},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("bridge: issuing KCA certificate: %w", err)
	}
	return cert, nil
}

// PKINIT is the reverse gateway (SSLK5/PKINIT): it authenticates a grid
// credential chain and issues Kerberos credentials for the mapped
// principal.
type PKINIT struct {
	kdc    *kerberos.KDC
	trust  *gridcert.TrustStore
	mapper *IdentityMapper
}

// NewPKINIT builds the gateway.
func NewPKINIT(kdc *kerberos.KDC, trust *gridcert.TrustStore, mapper *IdentityMapper) *PKINIT {
	return &PKINIT{kdc: kdc, trust: trust, mapper: mapper}
}

// Convert validates the presented chain and returns a TGT plus session
// key for the mapped principal.
func (p *PKINIT) Convert(chain []*gridcert.Certificate) (kerberos.Ticket, []byte, error) {
	info, err := p.trust.Verify(chain, gridcert.VerifyOptions{})
	if err != nil {
		return kerberos.Ticket{}, nil, fmt.Errorf("bridge: grid authentication: %w", err)
	}
	principal, ok := p.mapper.KerberosFor(info.Identity)
	if !ok {
		return kerberos.Ticket{}, nil, fmt.Errorf("bridge: no principal mapped for %q", info.Identity)
	}
	if principal.Realm != p.kdc.Realm() {
		return kerberos.Ticket{}, nil, fmt.Errorf("bridge: principal %q is not in realm %q", principal, p.kdc.Realm())
	}
	return p.kdc.PKINITExchange(principal.Name)
}

// Converter is the generic credential-conversion interface of the OGSA
// security-services roadmap (§4.1): a service that bridges trust or
// mechanism domains. Both gateways satisfy it via adapters in
// internal/secsvc.
type Converter interface {
	// Describe names the conversion, e.g. "kerberos->gsi".
	Describe() string
}

// Describe implements Converter.
func (k *KCA) Describe() string { return "kerberos->gsi (KCA)" }

// Describe implements Converter.
func (p *PKINIT) Describe() string { return "gsi->kerberos (SSLK5/PKINIT)" }
