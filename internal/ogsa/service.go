// Package ogsa implements the Grid-service framework of OGSA as the
// paper uses it (§4): stateful services with service data elements
// (SDEs), factories for dynamic service creation, lifetime management,
// and a container ("hosting environment") that pulls security handling
// out of the application — authentication, authorization and auditing
// run in the container's handler pipeline, and the service sees only
// authorized, identified calls (§4.2, §4.5).
package ogsa

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gridcert"
	"repro/internal/trace"
)

// Identity is the authenticated caller presented to services.
type Identity struct {
	// Anonymous marks unauthenticated callers (allowed only for
	// operations the container exempts, like policy retrieval).
	Anonymous bool
	// Name is the caller's grid identity.
	Name gridcert.Name
	// Limited reports a limited-proxy authentication.
	Limited bool
	// LocalAccount is the local account the container's chain-aware
	// authorizer mapped the caller to (empty when no gridmap applies).
	LocalAccount string
}

// Call is one inbound, already-authenticated and authorized invocation.
type Call struct {
	// Service is the target service handle.
	Service string
	// Op is the operation name within the service's port type.
	Op string
	// Body is the request payload.
	Body []byte
	// Caller is the authenticated identity established by the container.
	Caller Identity
	// Conversation reports that the call arrived over an established
	// secure conversation (WS-SecureConversation), as opposed to a
	// stateless per-message signature. Services that hand out live
	// key material — the delegation port type — require it.
	Conversation bool
	// Trace is the caller's trace context, lifted off the envelope's
	// trace header by the router (zero when the call is untraced).
	// Services that start spans parent them under it so client and
	// server spans share one trace id.
	Trace trace.SpanContext
}

// Service is a Grid service: a named set of operations plus the standard
// GridService port type behaviours (service data, lifetime).
type Service interface {
	// Invoke handles one operation call.
	Invoke(call *Call) ([]byte, error)
}

// SDE is a service data element: a queryable, subscribable named value
// (§4: "Grid services can define, as part of their interface, service
// data elements that other entities can query or subscribe to").
type SDE struct {
	Name  string
	Value []byte
}

// ServiceData is the SDE set of one service instance.
type ServiceData struct {
	mu     sync.RWMutex
	values map[string][]byte
	subs   map[string][]chan SDE
}

// NewServiceData creates an empty SDE set.
func NewServiceData() *ServiceData {
	return &ServiceData{
		values: make(map[string][]byte),
		subs:   make(map[string][]chan SDE),
	}
}

// Set updates an element and notifies subscribers.
func (sd *ServiceData) Set(name string, value []byte) {
	sd.mu.Lock()
	sd.values[name] = append([]byte(nil), value...)
	subs := append([]chan SDE(nil), sd.subs[name]...)
	sd.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- SDE{Name: name, Value: value}:
		default: // slow subscribers drop notifications rather than block
		}
	}
}

// Query returns the current value of an element.
func (sd *ServiceData) Query(name string) ([]byte, bool) {
	sd.mu.RLock()
	defer sd.mu.RUnlock()
	v, ok := sd.values[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Names lists the defined elements.
func (sd *ServiceData) Names() []string {
	sd.mu.RLock()
	defer sd.mu.RUnlock()
	out := make([]string, 0, len(sd.values))
	for n := range sd.values {
		out = append(out, n)
	}
	return out
}

// Subscribe returns a channel receiving future updates of the element.
// The buffer absorbs bursts; overflow drops.
func (sd *ServiceData) Subscribe(name string) <-chan SDE {
	ch := make(chan SDE, 16)
	sd.mu.Lock()
	sd.subs[name] = append(sd.subs[name], ch)
	sd.mu.Unlock()
	return ch
}

// Base provides the standard GridService port type: service data and
// termination time. Concrete services embed it.
type Base struct {
	Data *ServiceData

	mu          sync.Mutex
	termination time.Time // zero = no scheduled termination
	destroyed   bool
}

// NewBase creates the standard behaviour bundle.
func NewBase() *Base {
	return &Base{Data: NewServiceData()}
}

// SetTerminationTime schedules destruction (OGSA soft-state lifetime).
func (b *Base) SetTerminationTime(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.termination = t
}

// TerminationTime reports the scheduled termination.
func (b *Base) TerminationTime() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.termination
}

// Destroy marks the service destroyed.
func (b *Base) Destroy() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.destroyed = true
}

// Destroyed reports destruction.
func (b *Base) Destroyed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.destroyed
}

// ExpiredAt reports whether the soft-state lifetime has lapsed at t.
func (b *Base) ExpiredAt(t time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.destroyed || (!b.termination.IsZero() && t.After(b.termination))
}

// HandleStandardOp implements the GridService port type operations that
// every service shares. Returns handled=false for service-specific ops.
func (b *Base) HandleStandardOp(call *Call) (reply []byte, handled bool, err error) {
	switch call.Op {
	case "FindServiceData":
		name := string(call.Body)
		v, ok := b.Data.Query(name)
		if !ok {
			return nil, true, fmt.Errorf("ogsa: no service data element %q", name)
		}
		return v, true, nil
	case "SetTerminationTime":
		t, perr := time.Parse(time.RFC3339, string(call.Body))
		if perr != nil {
			return nil, true, fmt.Errorf("ogsa: bad termination time: %w", perr)
		}
		b.SetTerminationTime(t)
		return []byte("ok"), true, nil
	case "Destroy":
		b.Destroy()
		return []byte("destroyed"), true, nil
	default:
		return nil, false, nil
	}
}

// Factory creates service instances on demand (the dynamic-service
// mechanism of §2 requirement 2 and the MJS-factory pattern of §5.3).
type Factory interface {
	// Create instantiates a service for the caller, returning its handle.
	Create(caller Identity, params []byte) (string, Service, error)
}

// FactoryFunc adapts a function to Factory.
type FactoryFunc func(caller Identity, params []byte) (string, Service, error)

// Create implements Factory.
func (f FactoryFunc) Create(caller Identity, params []byte) (string, Service, error) {
	return f(caller, params)
}

// ErrServiceDestroyed is returned when invoking a destroyed service.
var ErrServiceDestroyed = errors.New("ogsa: service destroyed")

// ErrNoSuchService is returned for unknown handles.
var ErrNoSuchService = errors.New("ogsa: no such service")
