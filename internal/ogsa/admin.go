package ogsa

import (
	"errors"
	"fmt"
	"strings"
)

// The administrative port type of the observability plane: a
// container-hosted control surface over the hosting environment's own
// security machinery — session pools, decision caches, credential
// lifecycle, trust/policy reload. Like delegation it lives in the
// reserved gsi.__ namespace: it is infrastructure of the hosting
// environment, never an application service.
//
// Admin calls ride the same server-side pipeline as everything else
// (Figure 3): the container authorizes resource "ogsa:gsi.__admin" with
// the op name as the action BEFORE Invoke runs, so which identities may
// read stats or force a reload is decided by the same local policy that
// gates application traffic. Enabling the surface on a container with
// no authorizer is refused outright — a control plane must never be
// reachable by "anyone who authenticated".
const AdminHandle = "gsi.__admin"

// Admin port type operations. Read ops expose state; the mutating ops
// (Retire, Drain, Reload) act on it — local policy can grant them to
// disjoint identities since the op is the authorization action.
const (
	// AdminOpStats returns a JSON snapshot of pool, cache, credential,
	// reload, and transport statistics. Body: empty.
	AdminOpStats = "Stats"
	// AdminOpMetrics returns the full metrics registry in Prometheus
	// text exposition format. Body: empty.
	AdminOpMetrics = "Metrics"
	// AdminOpRetire retires a credential from the server's session pool:
	// idle sessions under it are discarded and in-flight returns refused.
	// Body: the credential fingerprint in hex (a unique prefix suffices).
	AdminOpRetire = "Retire"
	// AdminOpDrain discards every idle pooled session. Body: empty.
	AdminOpDrain = "Drain"
	// AdminOpReload forces a full re-read of every watched
	// configuration file (trust roots, CRLs, gridmap, policy),
	// regardless of mtime. Body: empty.
	AdminOpReload = "Reload"
	// AdminOpTraces queries the flight recorder: recent spans filtered
	// and ranked server-side (slowest-N, by-op, by-peer-DN,
	// errors-only, or one full trace). Body: a JSON query object
	// (empty body = defaults).
	AdminOpTraces = "Traces"
	// AdminOpTransfers lists the in-flight bulk transfers (op, peer DN,
	// bytes moved so far, stripe count, start time). Body: empty.
	AdminOpTransfers = "Transfers"
	// AdminOpCASStatus reports the CAS bundle replication state: applied
	// bundle version and generation, configured upstreams, and pull
	// history. Body: empty.
	AdminOpCASStatus = "CASStatus"
	// AdminOpCASSync forces an immediate bundle pull from the configured
	// upstreams and reports how it went (a failed pull is reported, not
	// an op error — the previous bundle stays live). Body: empty.
	AdminOpCASSync = "CASSync"
	// AdminOpCompact folds the durable journal into a snapshot now,
	// bounding replay time, and reports the journal's shape after. Body:
	// empty.
	AdminOpCompact = "Compact"
)

// AdminBackend is what the admin port type fronts. pkg/gsi implements
// it over the facade's pool, pipeline, credential manager, and reload
// watcher; each method returns the response body verbatim.
type AdminBackend interface {
	// AdminStats returns the JSON statistics snapshot.
	AdminStats() ([]byte, error)
	// AdminMetrics returns the Prometheus text exposition.
	AdminMetrics() ([]byte, error)
	// AdminRetire retires the credential matching the hex fingerprint
	// (prefix) and reports what was discarded.
	AdminRetire(fingerprint string) ([]byte, error)
	// AdminDrain discards idle pooled sessions and reports the count.
	AdminDrain() ([]byte, error)
	// AdminReload forces a configuration reload and reports per-source
	// outcomes; a source failing keeps its previous state live.
	AdminReload() ([]byte, error)
	// AdminTraces answers a flight-recorder query (JSON in, JSON out).
	AdminTraces(query []byte) ([]byte, error)
	// AdminTransfers lists active bulk transfers as JSON.
	AdminTransfers() ([]byte, error)
	// AdminCASStatus reports the CAS replication state as JSON.
	AdminCASStatus() ([]byte, error)
	// AdminCASSync forces a bundle pull and reports the outcome as JSON.
	AdminCASSync() ([]byte, error)
	// AdminCompact compacts the durable journal and reports its shape as
	// JSON.
	AdminCompact() ([]byte, error)
}

// AdminConfig assembles an AdminService.
type AdminConfig struct {
	// Backend fronts the live state. Required.
	Backend AdminBackend
	// Audit receives admin events (one per op, refusals included); nil
	// disables. EnableAdmin inherits the container's sink when unset.
	Audit AuditSink
}

// AdminService implements the admin port type. Every operation requires
// an authenticated caller on an established secure conversation: the
// surface controls live security state (pool membership, trust
// configuration), so per-message signatures — which authenticate a
// request, not a channel — are not accepted, and limited proxies are
// refused just as they are for delegation.
type AdminService struct {
	cfg AdminConfig
}

// NewAdminService builds the port type implementation. Publish it on a
// container under AdminHandle (or use Container.EnableAdmin, which also
// enforces that the container can authorize it).
func NewAdminService(cfg AdminConfig) (*AdminService, error) {
	if cfg.Backend == nil {
		return nil, errors.New("ogsa: admin service requires a backend")
	}
	return &AdminService{cfg: cfg}, nil
}

// EnableAdmin publishes the admin port type under AdminHandle. It
// refuses a container with neither a ChainAuthorizer nor an Authorizer:
// on such a container every authenticated caller could command the
// control plane, which fails the gated-by-local-policy requirement.
func (c *Container) EnableAdmin(cfg AdminConfig) (*AdminService, error) {
	if c.cfg.ChainAuthorizer == nil && c.cfg.Authorizer == nil {
		return nil, errors.New("ogsa: admin surface requires an authorizing container (configure an authorization pipeline)")
	}
	if cfg.Audit == nil {
		cfg.Audit = c.cfg.Audit
	}
	svc, err := NewAdminService(cfg)
	if err != nil {
		return nil, err
	}
	c.Publish(AdminHandle, svc)
	return svc, nil
}

func (s *AdminService) audit(event, subject, detail string) {
	if s.cfg.Audit != nil {
		s.cfg.Audit.Record(event, subject, detail)
	}
}

// Invoke implements Service. Authorization already happened in the
// container's route step; what remains here are the channel rules.
func (s *AdminService) Invoke(call *Call) ([]byte, error) {
	if !call.Conversation {
		s.audit("admin-refused", call.Caller.Name.String(), "no secure conversation")
		return nil, errors.New("ogsa: admin operations require an established secure conversation")
	}
	if call.Caller.Anonymous {
		s.audit("admin-refused", "", "anonymous caller")
		return nil, errors.New("ogsa: admin operations require an authenticated caller")
	}
	if call.Caller.Limited {
		s.audit("admin-refused", call.Caller.Name.String(), "limited proxy")
		return nil, errors.New("ogsa: limited proxies cannot administer")
	}
	subject := call.Caller.Name.String()
	switch call.Op {
	case AdminOpStats:
		s.audit("admin-stats", subject, "")
		return s.cfg.Backend.AdminStats()
	case AdminOpMetrics:
		s.audit("admin-metrics", subject, "")
		return s.cfg.Backend.AdminMetrics()
	case AdminOpRetire:
		fp := strings.TrimSpace(string(call.Body))
		if fp == "" {
			return nil, errors.New("ogsa: Retire requires a credential fingerprint")
		}
		s.audit("admin-retire", subject, fp)
		return s.cfg.Backend.AdminRetire(fp)
	case AdminOpDrain:
		s.audit("admin-drain", subject, "")
		return s.cfg.Backend.AdminDrain()
	case AdminOpReload:
		s.audit("admin-reload", subject, "")
		return s.cfg.Backend.AdminReload()
	case AdminOpTraces:
		s.audit("admin-traces", subject, "")
		return s.cfg.Backend.AdminTraces(call.Body)
	case AdminOpTransfers:
		s.audit("admin-transfers", subject, "")
		return s.cfg.Backend.AdminTransfers()
	case AdminOpCASStatus:
		s.audit("admin-cas-status", subject, "")
		return s.cfg.Backend.AdminCASStatus()
	case AdminOpCASSync:
		s.audit("admin-cas-sync", subject, "")
		return s.cfg.Backend.AdminCASSync()
	case AdminOpCompact:
		s.audit("admin-compact", subject, "")
		return s.cfg.Backend.AdminCompact()
	default:
		return nil, fmt.Errorf("ogsa: admin port type has no op %q", call.Op)
	}
}
