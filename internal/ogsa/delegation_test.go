package ogsa

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/wire"
)

type recordingSink struct {
	mu     sync.Mutex
	events []string
}

func (r *recordingSink) Record(event, subject, detail string) {
	r.mu.Lock()
	r.events = append(r.events, event+"|"+subject+"|"+detail)
	r.mu.Unlock()
}

func (r *recordingSink) has(prefix string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.events {
		if strings.HasPrefix(e, prefix) {
			return true
		}
	}
	return false
}

type delegationWorld struct {
	trust  *gridcert.TrustStore
	alice  *gridcert.Credential
	proxy  *gridcert.Credential
	mallet *gridcert.Credential
	svc    *DelegationService
	audit  *recordingSink
}

func newDelegationWorld(t *testing.T, cfg DelegationConfig) delegationWorld {
	t.Helper()
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=Deleg CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	aliceProxy, err := proxy.New(alice, proxy.Options{Lifetime: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	mallet, err := authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Mallet"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	audit := &recordingSink{}
	if cfg.Audit == nil {
		cfg.Audit = audit
	}
	return delegationWorld{
		trust:  trust,
		alice:  alice,
		proxy:  aliceProxy,
		mallet: mallet,
		svc:    NewDelegationService(cfg),
		audit:  audit,
	}
}

// call builds a conversation-secured Call from a credential's identity.
func delegCall(cred *gridcert.Credential, op string, body []byte) *Call {
	return &Call{
		Service:      DelegationHandle,
		Op:           op,
		Body:         body,
		Caller:       Identity{Name: cred.Identity()},
		Conversation: true,
	}
}

// depositFor runs the full Initiate/Deposit exchange for cred.
func depositFor(t *testing.T, svc *DelegationService, cred *gridcert.Credential, lifetime, max time.Duration) {
	t.Helper()
	reqBytes, err := svc.Invoke(delegCall(cred, DelegationOpInitiate,
		wire.NewEncoder().I64(int64(lifetime/time.Second)).Finish()))
	if err != nil {
		t.Fatal(err)
	}
	req, err := proxy.DecodeDelegationRequest(reqBytes)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := proxy.HandleDelegation(cred, req, proxy.Options{Lifetime: lifetime})
	if err != nil {
		t.Fatal(err)
	}
	body := wire.NewEncoder().Bytes(reply.Encode()).I64(int64(max / time.Second)).Finish()
	if _, err := svc.Invoke(delegCall(cred, DelegationOpDeposit, body)); err != nil {
		t.Fatal(err)
	}
}

func TestDelegationDepositAndRetrieve(t *testing.T) {
	w := newDelegationWorld(t, DelegationConfig{MaxLifetime: 2 * time.Hour})
	depositFor(t, w.svc, w.proxy, 4*time.Hour, time.Hour)
	if w.svc.Deposits() != 1 {
		t.Fatalf("deposits = %d, want 1", w.svc.Deposits())
	}

	// Retrieve a successor: lifetime must honor the tightest cap (the
	// per-deposit hour, not the requested 12h or the service 2h).
	delegatee, req, err := proxy.NewDelegatee(12*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	req.Lifetime = 12 * time.Hour
	out, err := w.svc.Invoke(delegCall(w.proxy, DelegationOpRetrieve, req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := proxy.DecodeDelegationReply(out)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := delegatee.Accept(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !cred.Identity().Equal(w.alice.Identity()) {
		t.Fatalf("retrieved identity = %s, want Alice", cred.Identity())
	}
	if _, err := w.trust.Verify(cred.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("retrieved chain does not validate: %v", err)
	}
	if remaining := time.Until(cred.Leaf().NotAfter); remaining > time.Hour+time.Minute {
		t.Fatalf("retrieved proxy lives %s, want <= the 1h deposit cap", remaining)
	}

	info, err := w.svc.Invoke(delegCall(w.proxy, DelegationOpInfo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(info), "max=1h") {
		t.Fatalf("info = %q, want the per-deposit cap", info)
	}
	if !w.audit.has("delegation-deposit|") || !w.audit.has("delegation-retrieve|") {
		t.Fatalf("audit trail incomplete: %v", w.audit.events)
	}
}

func TestDelegationRefusals(t *testing.T) {
	w := newDelegationWorld(t, DelegationConfig{})
	initBody := wire.NewEncoder().I64(0).Finish()

	// Not over a secure conversation.
	signedCall := delegCall(w.proxy, DelegationOpInitiate, initBody)
	signedCall.Conversation = false
	if _, err := w.svc.Invoke(signedCall); err == nil {
		t.Fatal("per-message-signed call must be refused")
	}

	// Anonymous.
	anon := &Call{Service: DelegationHandle, Op: DelegationOpInitiate, Body: initBody,
		Caller: Identity{Anonymous: true}, Conversation: true}
	if _, err := w.svc.Invoke(anon); err == nil {
		t.Fatal("anonymous caller must be refused")
	}

	// Limited proxies must not beget credentials.
	limited := delegCall(w.proxy, DelegationOpInitiate, initBody)
	limited.Caller.Limited = true
	if _, err := w.svc.Invoke(limited); err == nil {
		t.Fatal("limited-proxy caller must be refused")
	}

	// Retrieve without a deposit.
	_, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.svc.Invoke(delegCall(w.proxy, DelegationOpRetrieve, req.Encode())); !errors.Is(err, ErrNoDeposit) {
		t.Fatalf("retrieve without deposit = %v, want ErrNoDeposit", err)
	}

	// Deposit without Initiate.
	body := wire.NewEncoder().Bytes([]byte("junk")).I64(0).Finish()
	if _, err := w.svc.Invoke(delegCall(w.proxy, DelegationOpDeposit, body)); err == nil {
		t.Fatal("deposit of junk without Initiate must fail")
	}

	if !w.audit.has("delegation-refused|") {
		t.Fatalf("refusals must audit: %v", w.audit.events)
	}
}

// A subject can only retrieve below its own deposit: Mallet, fully
// authenticated, must not obtain proxies for Alice — and a deposit
// whose chain does not match the channel identity is rejected outright.
func TestDelegationIsolatesSubjects(t *testing.T) {
	w := newDelegationWorld(t, DelegationConfig{})
	depositFor(t, w.svc, w.proxy, 2*time.Hour, time.Hour)

	_, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.svc.Invoke(delegCall(w.mallet, DelegationOpRetrieve, req.Encode())); !errors.Is(err, ErrNoDeposit) {
		t.Fatalf("cross-subject retrieve = %v, want ErrNoDeposit", err)
	}

	// Mallet initiates, then deposits a chain signed by Alice's proxy:
	// the channel identity (Mallet) and the chain identity (Alice)
	// disagree, so the deposit is refused.
	reqBytes, err := w.svc.Invoke(delegCall(w.mallet, DelegationOpInitiate,
		wire.NewEncoder().I64(int64(time.Hour/time.Second)).Finish()))
	if err != nil {
		t.Fatal(err)
	}
	mreq, err := proxy.DecodeDelegationRequest(reqBytes)
	if err != nil {
		t.Fatal(err)
	}
	stolen, err := proxy.HandleDelegation(w.proxy, mreq, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	body := wire.NewEncoder().Bytes(stolen.Encode()).I64(0).Finish()
	if _, err := w.svc.Invoke(delegCall(w.mallet, DelegationOpDeposit, body)); err == nil {
		t.Fatal("identity-mismatched deposit must be refused")
	}
	if w.svc.Deposits() != 1 {
		t.Fatalf("deposits = %d, want only Alice's", w.svc.Deposits())
	}
}

// An expired deposit is refused (and dropped) rather than minting dead
// proxies.
func TestDelegationExpiredDeposit(t *testing.T) {
	base := time.Now()
	clock := base
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	w := newDelegationWorld(t, DelegationConfig{Now: now})
	depositFor(t, w.svc, w.proxy, time.Hour, time.Hour)

	mu.Lock()
	clock = base.Add(2 * time.Hour)
	mu.Unlock()

	_, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.svc.Invoke(delegCall(w.proxy, DelegationOpRetrieve, req.Encode())); err == nil {
		t.Fatal("retrieve below an expired deposit must fail")
	}
	if w.svc.Deposits() != 0 {
		t.Fatalf("expired deposit must be dropped, have %d", w.svc.Deposits())
	}
}

// EnableDelegation publishes the port type on the container and routes
// conversation-secured calls to it end to end.
func TestContainerEnableDelegation(t *testing.T) {
	w := newDelegationWorld(t, DelegationConfig{})
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=Host CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host c.example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	audit := &recordingSink{}
	container, err := NewContainer(ContainerConfig{
		Name:       "deleg-container",
		Credential: host,
		TrustStore: w.trust,
		Audit:      audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	container.EnableDelegation(DelegationConfig{})
	if _, ok := container.Lookup(DelegationHandle); !ok {
		t.Fatal("delegation handle not published")
	}

	cl := &Client{
		Transport:  soap.Pipe(container.Dispatcher()),
		Credential: w.proxy,
		TrustStore: w.trust,
	}
	reqBytes, err := cl.InvokeSecure(DelegationHandle, DelegationOpInitiate,
		wire.NewEncoder().I64(int64(time.Hour/time.Second)).Finish())
	if err != nil {
		t.Fatal(err)
	}
	req, err := proxy.DecodeDelegationRequest(reqBytes)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := proxy.HandleDelegation(w.proxy, req, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	body := wire.NewEncoder().Bytes(reply.Encode()).I64(0).Finish()
	if _, err := cl.InvokeSecure(DelegationHandle, DelegationOpDeposit, body); err != nil {
		t.Fatal(err)
	}
	// The inherited container audit sink sees the delegation events.
	if !audit.has("delegation-deposit|") {
		t.Fatalf("container audit sink missed the deposit: %v", audit.events)
	}

	// The same deposit over the per-message-signed pipeline must be
	// refused: stateless signatures are not a secure conversation.
	if _, err := cl.InvokeSigned(DelegationHandle, DelegationOpInitiate,
		wire.NewEncoder().I64(0).Finish()); err == nil {
		t.Fatal("signed-pipeline delegation must be refused")
	}
}
