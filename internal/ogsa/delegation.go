package ogsa

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/gridcert"
	"repro/internal/proxy"
	"repro/internal/wire"
)

// The delegation port type of the paper's §4.1: an online endpoint a
// subject delegates a credential *to* (deposit) and later renews *from*
// (retrieve) — the container-hosted analogue of MyProxy, reached over
// an established secure conversation instead of a passphrase.
//
// The handle lives in the reserved gsi.__ namespace: it is security
// infrastructure of the hosting environment, not an application
// service, and pkg/gsi keeps application ops out of that namespace on
// both transports.
const DelegationHandle = "gsi.__delegate"

// Delegation port type operations.
const (
	// DelegationOpInitiate starts a deposit: the service (the delegatee)
	// generates a fresh key pair and returns its DelegationRequest.
	// Body: i64 requested proxy lifetime in seconds (0 = caller default).
	DelegationOpInitiate = "Initiate"
	// DelegationOpDeposit completes a deposit: the caller signed a proxy
	// over the service's key and hands back the DelegationReply.
	// Body: bytes(reply) || i64 max retrieval lifetime in seconds.
	DelegationOpDeposit = "Deposit"
	// DelegationOpRetrieve mints a successor: the caller sends a
	// DelegationRequest over its own fresh key and receives a proxy
	// below its deposited credential. Body: DelegationRequest encoding.
	DelegationOpRetrieve = "Retrieve"
	// DelegationOpInfo reports the caller's deposit (expiry, cap) as
	// "notAfter=<RFC3339> max=<duration>".
	DelegationOpInfo = "Info"
)

// DefaultDelegationLifetime caps proxies minted by Retrieve when
// neither the deposit nor the service configured a tighter bound.
const DefaultDelegationLifetime = 12 * time.Hour

// ErrNoDeposit is returned by Retrieve/Info when the caller has no
// stored delegation.
var ErrNoDeposit = errors.New("ogsa: no deposited credential for subject")

// DelegationConfig tunes a DelegationService.
type DelegationConfig struct {
	// MaxLifetime caps proxies minted by Retrieve service-wide; 0 means
	// DefaultDelegationLifetime. Per-deposit caps tighten it further.
	MaxLifetime time.Duration
	// Audit receives delegation events (deposit, retrieve, refusals);
	// nil disables. Wire the container's security-services audit log
	// (internal/secsvc) here so delegations land in the tamper-evident
	// chain.
	Audit AuditSink
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// deposit is one subject's stored delegated credential.
type deposit struct {
	cred *gridcert.Credential
	max  time.Duration // per-deposit retrieval cap
}

// DelegationService implements the delegation port type. Every
// operation requires an authenticated caller on an established secure
// conversation: the service hands out live key material (proxies it
// mints), so per-message signatures — which authenticate a request, not
// a channel — are not accepted. Deposits are keyed by the caller's grid
// identity; a subject can only ever retrieve below its own deposit.
type DelegationService struct {
	cfg DelegationConfig

	mu       sync.Mutex
	pending  map[string]*proxy.Delegatee // in-flight Initiate per subject
	deposits map[string]deposit
}

// NewDelegationService builds the port type implementation. Publish it
// on a container under DelegationHandle (or use Container.EnableDelegation).
func NewDelegationService(cfg DelegationConfig) *DelegationService {
	if cfg.MaxLifetime <= 0 {
		cfg.MaxLifetime = DefaultDelegationLifetime
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &DelegationService{
		cfg:      cfg,
		pending:  make(map[string]*proxy.Delegatee),
		deposits: make(map[string]deposit),
	}
}

// EnableDelegation publishes the delegation port type on the container
// under DelegationHandle, inheriting the container's audit sink when
// the config carries none.
func (c *Container) EnableDelegation(cfg DelegationConfig) *DelegationService {
	if cfg.Audit == nil {
		cfg.Audit = c.cfg.Audit
	}
	svc := NewDelegationService(cfg)
	c.Publish(DelegationHandle, svc)
	return svc
}

// Deposits reports how many subjects currently have a stored
// delegation.
func (s *DelegationService) Deposits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deposits)
}

func (s *DelegationService) audit(event, subject, detail string) {
	if s.cfg.Audit != nil {
		s.cfg.Audit.Record(event, subject, detail)
	}
}

// Invoke implements Service.
func (s *DelegationService) Invoke(call *Call) ([]byte, error) {
	if !call.Conversation {
		s.audit("delegation-refused", call.Caller.Name.String(), "no secure conversation")
		return nil, errors.New("ogsa: delegation requires an established secure conversation")
	}
	if call.Caller.Anonymous {
		s.audit("delegation-refused", "", "anonymous caller")
		return nil, errors.New("ogsa: delegation requires an authenticated caller")
	}
	if call.Caller.Limited {
		// The GSI limited-proxy rule: a limited proxy must not beget
		// further credentials.
		s.audit("delegation-refused", call.Caller.Name.String(), "limited proxy")
		return nil, errors.New("ogsa: limited proxies cannot delegate or retrieve")
	}
	subject := call.Caller.Name.String()
	switch call.Op {
	case DelegationOpInitiate:
		return s.initiate(subject, call.Body)
	case DelegationOpDeposit:
		return s.deposit(subject, call.Caller.Name, call.Body)
	case DelegationOpRetrieve:
		return s.retrieve(subject, call.Body)
	case DelegationOpInfo:
		return s.info(subject)
	default:
		return nil, fmt.Errorf("ogsa: delegation port type has no op %q", call.Op)
	}
}

// initiate generates the service-side key pair for a deposit and
// returns the delegation request the caller must sign.
func (s *DelegationService) initiate(subject string, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	seconds := d.I64()
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("ogsa: malformed Initiate body: %w", err)
	}
	if seconds < 0 {
		return nil, errors.New("ogsa: negative deposit lifetime")
	}
	if seconds > math.MaxInt64/int64(time.Second) {
		// Mirror DecodeDelegationRequest: a count this large would wrap
		// time.Duration into an arbitrary lifetime.
		return nil, errors.New("ogsa: deposit lifetime overflows")
	}
	delegatee, req, err := proxy.NewDelegatee(time.Duration(seconds)*time.Second, false)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.pending[subject] = delegatee
	s.mu.Unlock()
	s.audit("delegation-initiate", subject, "")
	return req.Encode(), nil
}

// deposit completes a deposit: accept the signed reply under the
// pending key pair, check the chain really is the caller's, and store
// it.
func (s *DelegationService) deposit(subject string, caller gridcert.Name, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	replyBytes := d.Bytes()
	maxSeconds := d.I64()
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("ogsa: malformed Deposit body: %w", err)
	}
	if maxSeconds < 0 {
		return nil, errors.New("ogsa: negative retrieval cap")
	}
	if maxSeconds > math.MaxInt64/int64(time.Second) {
		return nil, errors.New("ogsa: retrieval cap overflows")
	}
	reply, err := proxy.DecodeDelegationReply(replyBytes)
	if err != nil {
		return nil, fmt.Errorf("ogsa: bad delegation reply: %w", err)
	}
	s.mu.Lock()
	delegatee := s.pending[subject]
	delete(s.pending, subject)
	s.mu.Unlock()
	if delegatee == nil {
		return nil, fmt.Errorf("ogsa: no pending delegation for %q (Initiate first)", subject)
	}
	cred, err := delegatee.Accept(reply)
	if err != nil {
		return nil, fmt.Errorf("ogsa: accepting delegation: %w", err)
	}
	// The authenticated channel identity and the delegated chain's
	// end-entity identity must agree: a caller may only deposit power
	// over its own identity.
	if !cred.Identity().Equal(caller) {
		s.audit("delegation-refused", subject, "deposit identity mismatch: "+cred.Identity().String())
		return nil, fmt.Errorf("ogsa: deposited chain is for %q, caller is %q", cred.Identity(), caller)
	}
	if s.cfg.Now().After(cred.Leaf().NotAfter) {
		return nil, errors.New("ogsa: deposited credential already expired")
	}
	max := time.Duration(maxSeconds) * time.Second
	if max <= 0 || max > s.cfg.MaxLifetime {
		max = s.cfg.MaxLifetime
	}
	s.mu.Lock()
	s.deposits[subject] = deposit{cred: cred, max: max}
	s.mu.Unlock()
	s.audit("delegation-deposit", subject,
		fmt.Sprintf("notAfter=%s max=%s", cred.Leaf().NotAfter.Format(time.RFC3339), max))
	return []byte("ok"), nil
}

// retrieve mints a proxy below the caller's deposit: lifetime is the
// minimum of the request, the per-deposit cap, the service cap, and —
// via proxy issuance clipping — the deposit's own remaining validity.
func (s *DelegationService) retrieve(subject string, body []byte) ([]byte, error) {
	req, err := proxy.DecodeDelegationRequest(body)
	if err != nil {
		return nil, fmt.Errorf("ogsa: bad delegation request: %w", err)
	}
	s.mu.Lock()
	dep, ok := s.deposits[subject]
	s.mu.Unlock()
	if !ok {
		s.audit("delegation-refused", subject, "no deposit")
		return nil, fmt.Errorf("%w: %q", ErrNoDeposit, subject)
	}
	if s.cfg.Now().After(dep.cred.Leaf().NotAfter) {
		s.mu.Lock()
		// Re-check under the lock so a concurrent fresh deposit is not
		// discarded by a stale expiry observation.
		if cur, still := s.deposits[subject]; still && cur.cred == dep.cred {
			delete(s.deposits, subject)
		}
		s.mu.Unlock()
		s.audit("delegation-refused", subject, "deposit expired")
		return nil, fmt.Errorf("ogsa: deposited credential for %q expired", subject)
	}
	lifetime := dep.max
	if req.Lifetime > 0 && req.Lifetime < lifetime {
		lifetime = req.Lifetime
	}
	reply, err := proxy.HandleDelegation(dep.cred, proxy.DelegationRequest{
		PublicKey: req.PublicKey,
		Limited:   req.Limited,
	}, proxy.Options{Lifetime: lifetime})
	if err != nil {
		return nil, fmt.Errorf("ogsa: minting delegated proxy: %w", err)
	}
	s.audit("delegation-retrieve", subject, fmt.Sprintf("lifetime=%s limited=%v", lifetime, req.Limited))
	return reply.Encode(), nil
}

// info reports the caller's deposit metadata.
func (s *DelegationService) info(subject string) ([]byte, error) {
	s.mu.Lock()
	dep, ok := s.deposits[subject]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDeposit, subject)
	}
	return []byte(fmt.Sprintf("notAfter=%s max=%s",
		dep.cred.Leaf().NotAfter.Format(time.RFC3339), dep.max)), nil
}
