package ogsa

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/wssec"
	"repro/internal/xmlsec"
)

// AuditSink receives security-relevant events from the container. The
// audit service of §4.1 implements it.
type AuditSink interface {
	Record(event, subject, detail string)
}

// ChainAuthorizer is the chain-aware authorization hook (Figure 3 step
// 5, upgraded): unlike authz.Engine it receives the caller's full
// authenticated peer — validated chain and ChainInfo included — so
// implementations can verify CAS assertions, combine VO and local
// policy, and map the identity through a grid-mapfile. It returns the
// mapped local account (empty if no mapping applies) or an error to
// deny the call. The pkg/gsi AuthorizationPipeline implements it.
//
// ctx is the lifetime of the authorization question; the container
// passes context.Background() because the SOAP request path carries no
// caller deadline, but other hosts (and future transports) thread the
// real one.
type ChainAuthorizer interface {
	AuthorizeChain(ctx context.Context, peer gss.Peer, resource, action string) (localAccount string, err error)
}

// ContainerConfig assembles a hosting environment.
type ContainerConfig struct {
	// Name labels the container (host identity).
	Name string
	// Credential authenticates the container's services.
	Credential *gridcert.Credential
	// TrustStore validates callers.
	TrustStore *gridcert.TrustStore
	// Authorizer decides inbound calls; nil permits everything that
	// authenticated (used by per-user containers whose OS account is the
	// authorization boundary).
	Authorizer authz.Engine
	// ChainAuthorizer, when set, takes precedence over Authorizer: it
	// sees the caller's validated chain, so CAS assertions and gridmap
	// mappings participate in the decision.
	ChainAuthorizer ChainAuthorizer
	// Now overrides the clock authorization requests are stamped with
	// (nil means time.Now). Wired from the facade Environment so
	// time-bounded policy rules see the same clock as chain validation.
	Now func() time.Time
	// Audit receives events; nil disables auditing.
	Audit AuditSink
	// Policy is the published security policy; nil publishes a default
	// (both mechanisms, gsi:proxy tokens, container trust roots).
	Policy *wssec.PolicyDocument
	// RejectLimited refuses limited-proxy callers container-wide (set on
	// job-creating containers per the GSI limited-proxy rule).
	RejectLimited bool
}

// Container is a hosting environment: it holds service instances, routes
// secured SOAP traffic to them, and runs the Figure-3 server-side
// security pipeline (token processing, identity establishment,
// authorization, audit) so that "the application, knowing that the
// hosting environment has already taken care of security, can focus on
// application-specific request processing".
type Container struct {
	cfg        ContainerConfig
	dispatcher *soap.Dispatcher
	convMgr    *wssec.ConversationManager

	mu        sync.RWMutex
	services  map[string]Service
	factories map[string]Factory
	seq       uint64
}

// NewContainer builds a hosting environment and its SOAP dispatcher.
func NewContainer(cfg ContainerConfig) (*Container, error) {
	if cfg.Credential == nil {
		return nil, errors.New("ogsa: container requires a credential")
	}
	if cfg.TrustStore == nil {
		return nil, errors.New("ogsa: container requires a trust store")
	}
	c := &Container{
		cfg:        cfg,
		dispatcher: soap.NewDispatcher(),
		services:   make(map[string]Service),
		factories:  make(map[string]Factory),
	}
	c.convMgr = wssec.NewConversationManager(gss.Config{
		Credential:    cfg.Credential,
		TrustStore:    cfg.TrustStore,
		RejectLimited: cfg.RejectLimited,
	})
	c.convMgr.Register(c.dispatcher)

	// Publish security policy (§4.3). The default policy is recomputed on
	// every fetch so trust roots added after boot are reflected.
	c.dispatcher.Handle(wssec.ActionGetPolicy, func(env *soap.Envelope) (*soap.Envelope, error) {
		pol := cfg.Policy
		if pol == nil {
			pol = c.defaultPolicy()
		}
		data, err := pol.Marshal()
		if err != nil {
			return nil, err
		}
		return env.Reply(data), nil
	})

	// Secured application traffic: stateful (conversation-wrapped) and
	// stateless (signed) variants share the routing logic.
	c.dispatcher.Handle("ogsa/", c.handleSigned)
	c.dispatcher.Handle("ogsa-sc/", c.convMgr.Secure(c.handleConversation))
	return c, nil
}

func (c *Container) defaultPolicy() *wssec.PolicyDocument {
	var roots []string
	for _, r := range c.cfg.TrustStore.Roots() {
		fp := r.Fingerprint()
		roots = append(roots, fmt.Sprintf("%x", fp[:]))
	}
	return &wssec.PolicyDocument{
		Service:            c.cfg.Name,
		Mechanisms:         []wssec.Mechanism{wssec.MechSecureConversation, wssec.MechMessageSignature},
		AcceptedTokenTypes: []string{"gsi:proxy", "cas:assertion"},
		TrustRoots:         roots,
	}
}

// Dispatcher exposes the container's SOAP dispatcher for binding to a
// transport (HTTP server or in-memory pipe).
func (c *Container) Dispatcher() *soap.Dispatcher { return c.dispatcher }

// ConversationManager exposes the WS-SecureConversation state (tests and
// expiry sweeps).
func (c *Container) ConversationManager() *wssec.ConversationManager { return c.convMgr }

// Publish registers a service instance under a handle.
func (c *Container) Publish(handle string, svc Service) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.services[handle] = svc
}

// PublishFactory registers a factory under a handle; its Create operation
// becomes invocable as <handle> op "CreateService".
func (c *Container) PublishFactory(handle string, f Factory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.factories[handle] = f
}

// Lookup returns a published service.
func (c *Container) Lookup(handle string) (Service, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.services[handle]
	return s, ok
}

// Handles lists published service handles.
func (c *Container) Handles() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.services))
	for h := range c.services {
		out = append(out, h)
	}
	return out
}

// Remove unpublishes a service.
func (c *Container) Remove(handle string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.services, handle)
}

// SweepExpired destroys services whose soft-state lifetime has lapsed.
// Returns the handles removed.
func (c *Container) SweepExpired(now time.Time) []string {
	type expirer interface{ ExpiredAt(time.Time) bool }
	c.mu.Lock()
	defer c.mu.Unlock()
	var removed []string
	for h, s := range c.services {
		if e, ok := s.(expirer); ok && e.ExpiredAt(now) {
			delete(c.services, h)
			removed = append(removed, h)
		}
	}
	return removed
}

// --- inbound pipeline --------------------------------------------------

// handleSigned processes stateless, XML-Signature-authenticated traffic
// with action form "ogsa/<handle>/<op>".
func (c *Container) handleSigned(env *soap.Envelope) (*soap.Envelope, error) {
	info, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{
		TrustStore:    c.cfg.TrustStore,
		RejectLimited: c.cfg.RejectLimited,
		Now:           c.now(),
	})
	if err != nil {
		c.audit("auth-fail", "", err.Error())
		return nil, fmt.Errorf("ogsa: authentication: %w", err)
	}
	caller := Identity{Name: info.Identity, Limited: info.Limited}
	peer := gss.Peer{Identity: info.Identity, Subject: info.Subject, Info: info}
	return c.route(env, "ogsa/", caller, peer, false)
}

// handleConversation processes conversation-secured traffic with action
// form "ogsa-sc/<handle>/<op>". The peer was authenticated at context
// establishment.
func (c *Container) handleConversation(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
	caller := Identity{Anonymous: peer.Anonymous, Name: peer.Identity}
	if peer.Info != nil {
		caller.Limited = peer.Info.Limited
	}
	return c.route(env, "ogsa-sc/", caller, peer, true)
}

func (c *Container) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// route authorizes and delivers an authenticated call. conversation
// marks calls that arrived over an established secure conversation.
func (c *Container) route(env *soap.Envelope, prefix string, caller Identity, peer gss.Peer, conversation bool) (*soap.Envelope, error) {
	rest := strings.TrimPrefix(env.Action, prefix)
	slash := strings.LastIndexByte(rest, '/')
	if slash <= 0 || slash == len(rest)-1 {
		return nil, fmt.Errorf("ogsa: malformed action %q (want %s<handle>/<op>)", env.Action, prefix)
	}
	handle, op := rest[:slash], rest[slash+1:]

	// The trace header (when present and well-formed) joins this call
	// to the caller's trace: the context rides the authorization
	// context and the Call so downstream spans parent under it. The
	// header is unauthenticated metadata — it influences telemetry
	// only, never routing or authorization decisions.
	authCtx := context.Background()
	var tc trace.SpanContext
	if h, ok := env.Header(trace.SOAPHeader); ok {
		if sc, valid := trace.DecodeSpanContext(h.Content); valid {
			tc = sc
			authCtx = trace.ContextWithRemote(authCtx, sc)
		}
	}

	// Authorization (Figure 3 step 5). The chain-aware hook sees the
	// full peer and wins over the plain engine when both are set.
	if c.cfg.ChainAuthorizer != nil {
		account, err := c.cfg.ChainAuthorizer.AuthorizeChain(authCtx, peer, "ogsa:"+handle, op)
		if err != nil {
			c.audit("authz-deny", caller.Name.String(), handle+"/"+op)
			return nil, fmt.Errorf("ogsa: %q denied %s on %s: %w", caller.Name, op, handle, err)
		}
		caller.LocalAccount = account
	} else if c.cfg.Authorizer != nil {
		decision, err := c.cfg.Authorizer.Authorize(authz.Request{
			Subject:  caller.Name,
			Resource: "ogsa:" + handle,
			Action:   op,
			Time:     c.now(),
		})
		if err != nil {
			return nil, fmt.Errorf("ogsa: authorization service: %w", err)
		}
		if decision != authz.Permit {
			c.audit("authz-deny", caller.Name.String(), handle+"/"+op)
			return nil, fmt.Errorf("ogsa: %q denied %s on %s", caller.Name, op, handle)
		}
	}
	c.audit("invoke", caller.Name.String(), handle+"/"+op)

	// Factories answer CreateService.
	if op == "CreateService" {
		c.mu.RLock()
		f, ok := c.factories[handle]
		c.mu.RUnlock()
		if ok {
			newHandle, svc, err := f.Create(caller, env.Body)
			if err != nil {
				return nil, fmt.Errorf("ogsa: factory %q: %w", handle, err)
			}
			c.Publish(newHandle, svc)
			c.audit("create-service", caller.Name.String(), newHandle)
			return env.Reply([]byte(newHandle)), nil
		}
	}
	c.mu.RLock()
	svc, ok := c.services[handle]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchService, handle)
	}
	if b, ok := svc.(interface{ Destroyed() bool }); ok && b.Destroyed() {
		return nil, ErrServiceDestroyed
	}
	reply, err := svc.Invoke(&Call{Service: handle, Op: op, Body: env.Body, Caller: caller, Conversation: conversation, Trace: tc})
	if err != nil {
		return nil, err
	}
	return env.Reply(reply), nil
}

func (c *Container) audit(event, subject, detail string) {
	if c.cfg.Audit != nil {
		c.cfg.Audit.Record(event, subject, detail)
	}
}

// Client is the client side of container invocation: it wraps transports
// and credentials into typed calls. Stateless calls sign each envelope;
// stateful calls run over an established conversation.
type Client struct {
	// Transport delivers envelopes to the container.
	Transport wssec.Transport
	// Credential signs stateless requests and establishes conversations.
	Credential *gridcert.Credential
	// TrustStore validates the container.
	TrustStore *gridcert.TrustStore

	mu   sync.Mutex
	conv *wssec.Conversation
}

// InvokeSigned makes a stateless, per-message-signed call.
func (cl *Client) InvokeSigned(handle, op string, body []byte) ([]byte, error) {
	env := soap.NewEnvelope("ogsa/"+handle+"/"+op, body)
	if err := xmlsec.SignEnvelope(env, cl.Credential); err != nil {
		return nil, err
	}
	reply, err := cl.Transport(env)
	if err != nil {
		return nil, err
	}
	if reply.Fault != nil {
		return nil, reply.Fault
	}
	return reply.Body, nil
}

// InvokeSecure makes a stateful call, establishing the conversation on
// first use.
func (cl *Client) InvokeSecure(handle, op string, body []byte) ([]byte, error) {
	cl.mu.Lock()
	if cl.conv == nil || cl.conv.Context().Expired() {
		conv, err := wssec.EstablishConversation(gss.Config{
			Credential: cl.Credential,
			TrustStore: cl.TrustStore,
		}, cl.Transport)
		if err != nil {
			cl.mu.Unlock()
			return nil, err
		}
		cl.conv = conv
	}
	conv := cl.conv
	cl.mu.Unlock()
	reply, err := conv.Call(soap.NewEnvelope("ogsa-sc/"+handle+"/"+op, body))
	if err != nil {
		return nil, err
	}
	return reply.Body, nil
}

// FetchPolicy retrieves the container's published security policy
// (Figure 3 step 1).
func (cl *Client) FetchPolicy() (*wssec.PolicyDocument, error) {
	return wssec.FetchPolicy(cl.Transport)
}
