package ogsa

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
	"repro/internal/soap"
)

// echoService is a minimal Grid service for tests.
type echoService struct {
	*Base
}

func newEchoService() *echoService {
	s := &echoService{Base: NewBase()}
	s.Data.Set("status", []byte("idle"))
	return s
}

func (s *echoService) Invoke(call *Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	switch call.Op {
	case "echo":
		return append([]byte(call.Caller.Name.String()+":"), call.Body...), nil
	default:
		return nil, fmt.Errorf("unknown op %q", call.Op)
	}
}

type memAudit struct {
	mu     sync.Mutex
	events []string
}

func (a *memAudit) Record(event, subject, detail string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = append(a.events, event+" "+subject+" "+detail)
}

func (a *memAudit) contains(substr string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.events {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

type bed struct {
	auth      *ca.Authority
	ts        *gridcert.TrustStore
	alice     *gridcert.Credential
	host      *gridcert.Credential
	container *Container
	client    *Client
	audit     *memAudit
}

func newBed(t testing.TB, authorizer authz.Engine) *bed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host c1"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	audit := &memAudit{}
	container, err := NewContainer(ContainerConfig{
		Name:       "c1",
		Credential: host,
		TrustStore: ts,
		Authorizer: authorizer,
		Audit:      audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Transport:  soap.Pipe(container.Dispatcher()),
		Credential: alice,
		TrustStore: ts,
	}
	return &bed{auth: auth, ts: ts, alice: alice, host: host, container: container, client: client, audit: audit}
}

func TestSignedInvocation(t *testing.T) {
	b := newBed(t, nil)
	b.container.Publish("echo", newEchoService())
	reply, err := b.client.InvokeSigned("echo", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "/O=Grid/CN=Alice:hi" {
		t.Fatalf("reply = %q", reply)
	}
	if !b.audit.contains("invoke /O=Grid/CN=Alice echo/echo") {
		t.Fatalf("audit missing invoke event: %v", b.audit.events)
	}
}

func TestSecureConversationInvocation(t *testing.T) {
	b := newBed(t, nil)
	b.container.Publish("echo", newEchoService())
	reply, err := b.client.InvokeSecure("echo", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "/O=Grid/CN=Alice:hi" {
		t.Fatalf("reply = %q", reply)
	}
	// Second call reuses the conversation.
	if _, err := b.client.InvokeSecure("echo", "echo", []byte("again")); err != nil {
		t.Fatal(err)
	}
	if got := b.container.ConversationManager().Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1 (reused)", got)
	}
}

func TestUnsignedInvocationRejected(t *testing.T) {
	b := newBed(t, nil)
	b.container.Publish("echo", newEchoService())
	env := soap.NewEnvelope("ogsa/echo/echo", []byte("x"))
	if _, err := b.container.Dispatcher().Dispatch(env); err == nil {
		t.Fatal("unsigned call accepted")
	}
	if !b.audit.contains("auth-fail") {
		t.Fatal("auth failure not audited")
	}
}

func TestAuthorizationPipeline(t *testing.T) {
	pol := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"ogsa:echo"},
		Actions:   []string{"echo", "FindServiceData"},
	})
	b := newBed(t, &authz.PolicyEngine{Policy: pol, DefaultDeny: true})
	b.container.Publish("echo", newEchoService())

	if _, err := b.client.InvokeSigned("echo", "echo", []byte("x")); err != nil {
		t.Fatalf("permitted op denied: %v", err)
	}
	// Unlisted op denied.
	if _, err := b.client.InvokeSigned("echo", "Destroy", nil); err == nil {
		t.Fatal("unpermitted op allowed")
	}
	if !b.audit.contains("authz-deny") {
		t.Fatal("denial not audited")
	}
}

func TestFactoryCreateService(t *testing.T) {
	b := newBed(t, nil)
	var created int
	b.container.PublishFactory("jobs", FactoryFunc(func(caller Identity, params []byte) (string, Service, error) {
		created++
		handle := fmt.Sprintf("jobs/instance-%d", created)
		svc := newEchoService()
		svc.Data.Set("owner", []byte(caller.Name.String()))
		return handle, svc, nil
	}))
	handle, err := b.client.InvokeSigned("jobs", "CreateService", []byte("params"))
	if err != nil {
		t.Fatal(err)
	}
	if string(handle) != "jobs/instance-1" {
		t.Fatalf("handle = %q", handle)
	}
	// The new instance is invocable and knows its creator.
	owner, err := b.client.InvokeSigned(string(handle), "FindServiceData", []byte("owner"))
	if err != nil {
		t.Fatal(err)
	}
	if string(owner) != "/O=Grid/CN=Alice" {
		t.Fatalf("owner = %q", owner)
	}
	if !b.audit.contains("create-service") {
		t.Fatal("creation not audited")
	}
}

func TestServiceDataQuerySubscribe(t *testing.T) {
	sd := NewServiceData()
	ch := sd.Subscribe("jobState")
	sd.Set("jobState", []byte("Active"))
	select {
	case ev := <-ch:
		if ev.Name != "jobState" || string(ev.Value) != "Active" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification")
	}
	v, ok := sd.Query("jobState")
	if !ok || string(v) != "Active" {
		t.Fatalf("query = %q %v", v, ok)
	}
	if _, ok := sd.Query("missing"); ok {
		t.Fatal("query invented element")
	}
	if len(sd.Names()) != 1 {
		t.Fatalf("names = %v", sd.Names())
	}
}

func TestLifetimeManagement(t *testing.T) {
	b := newBed(t, nil)
	svc := newEchoService()
	b.container.Publish("tmp", svc)

	// Set termination in the past, sweep, and the service is gone.
	when := time.Now().Add(-time.Minute).Format(time.RFC3339)
	if _, err := b.client.InvokeSigned("tmp", "SetTerminationTime", []byte(when)); err != nil {
		t.Fatal(err)
	}
	removed := b.container.SweepExpired(time.Now())
	if len(removed) != 1 || removed[0] != "tmp" {
		t.Fatalf("removed = %v", removed)
	}
	if _, err := b.client.InvokeSigned("tmp", "echo", nil); err == nil {
		t.Fatal("swept service still invocable")
	}
}

func TestDestroyedServiceRejects(t *testing.T) {
	b := newBed(t, nil)
	svc := newEchoService()
	b.container.Publish("d", svc)
	if _, err := b.client.InvokeSigned("d", "Destroy", nil); err != nil {
		t.Fatal(err)
	}
	_, err := b.client.InvokeSigned("d", "echo", nil)
	if err == nil || !strings.Contains(err.Error(), "destroyed") {
		t.Fatalf("destroyed service: %v", err)
	}
}

func TestLimitedProxyRejectedByJobContainer(t *testing.T) {
	// A container with RejectLimited (job-creating) refuses limited
	// proxies in both stateless and stateful modes.
	auth, _ := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	ts := gridcert.NewTrustStore()
	ts.AddRoot(auth.Certificate())
	alice, _ := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	host, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host jc"), 12*time.Hour)
	container, err := NewContainer(ContainerConfig{
		Name: "jc", Credential: host, TrustStore: ts, RejectLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	container.Publish("echo", newEchoService())
	lim, err := proxy.New(alice, proxy.Options{Variant: gridcert.ProxyLimited})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{Transport: soap.Pipe(container.Dispatcher()), Credential: lim, TrustStore: ts}
	if _, err := client.InvokeSigned("echo", "echo", nil); err == nil {
		t.Fatal("limited proxy accepted for signed call")
	}
	if _, err := client.InvokeSecure("echo", "echo", nil); err == nil {
		t.Fatal("limited proxy accepted for conversation")
	}
	// A full proxy works.
	full, _ := proxy.New(alice, proxy.Options{})
	client2 := &Client{Transport: soap.Pipe(container.Dispatcher()), Credential: full, TrustStore: ts}
	if _, err := client2.InvokeSigned("echo", "echo", nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchContainerPolicy(t *testing.T) {
	b := newBed(t, nil)
	pol, err := b.client.FetchPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Service != "c1" || len(pol.Mechanisms) != 2 || len(pol.TrustRoots) == 0 {
		t.Fatalf("policy = %+v", pol)
	}
}

func TestUnknownHandleAndMalformedAction(t *testing.T) {
	b := newBed(t, nil)
	if _, err := b.client.InvokeSigned("ghost", "op", nil); !errorContains(err, "no such service") {
		t.Fatalf("unknown handle: %v", err)
	}
	env := soap.NewEnvelope("ogsa/nopslash", nil)
	if _, err := b.container.Dispatcher().Dispatch(env); err == nil {
		t.Fatal("malformed action accepted")
	}
}

func errorContains(err error, substr string) bool {
	return err != nil && strings.Contains(err.Error(), substr)
}

func TestConcurrentInvocations(t *testing.T) {
	b := newBed(t, nil)
	b.container.Publish("echo", newEchoService())
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.client.InvokeSigned("echo", "echo", []byte("x")); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkSignedInvocation(b *testing.B) {
	bd := newBed(b, nil)
	bd.container.Publish("echo", newEchoService())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bd.client.InvokeSigned("echo", "echo", []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecureInvocation(b *testing.B) {
	bd := newBed(b, nil)
	bd.container.Publish("echo", newEchoService())
	if _, err := bd.client.InvokeSecure("echo", "echo", []byte("warm")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bd.client.InvokeSecure("echo", "echo", []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}
