package proxy

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/wire"
)

// Remote delegation (paper §3 and GRAM step 7): the delegatee generates a
// key pair locally and sends only the public key; the delegator signs a
// proxy certificate over it and returns the certificate plus its own
// chain. The private key never crosses the wire — this is the property
// that makes GSI delegation safe to perform over the network.
//
// The exchange is two messages:
//
//	delegatee -> delegator: DelegationRequest (public key, desired options)
//	delegator -> delegatee: DelegationReply   (proxy cert + signer chain)

// DelegationRequest is the delegatee's half of the exchange.
type DelegationRequest struct {
	PublicKey gridcrypto.PublicKey
	Lifetime  time.Duration // 0 = delegator default
	Limited   bool          // request only a limited proxy
}

// Encode serialises the request.
func (r DelegationRequest) Encode() []byte {
	return wire.NewEncoder().
		Bytes(r.PublicKey.Encode()).
		I64(int64(r.Lifetime / time.Second)).
		Bool(r.Limited).
		Finish()
}

// DecodeDelegationRequest parses a request.
func DecodeDelegationRequest(b []byte) (DelegationRequest, error) {
	d := wire.NewDecoder(b)
	pkBytes := d.Bytes()
	seconds := d.I64()
	limited := d.Bool()
	if err := d.Done(); err != nil {
		return DelegationRequest{}, fmt.Errorf("proxy: bad delegation request: %w", err)
	}
	if seconds < 0 {
		return DelegationRequest{}, errors.New("proxy: negative delegation lifetime")
	}
	if seconds > math.MaxInt64/int64(time.Second) {
		// A seconds count this large would overflow time.Duration and
		// wrap into an arbitrary (possibly negative) lifetime.
		return DelegationRequest{}, errors.New("proxy: delegation lifetime overflows")
	}
	pk, err := gridcrypto.DecodePublicKey(pkBytes)
	if err != nil {
		return DelegationRequest{}, err
	}
	return DelegationRequest{
		PublicKey: pk,
		Lifetime:  time.Duration(seconds) * time.Second,
		Limited:   limited,
	}, nil
}

// DelegationReply carries the issued proxy certificate and the signer's
// chain so the delegatee can assemble a complete credential.
type DelegationReply struct {
	ProxyCert   *gridcert.Certificate
	SignerChain []*gridcert.Certificate
}

// Encode serialises the reply.
func (r DelegationReply) Encode() []byte {
	return wire.NewEncoder().
		Bytes(r.ProxyCert.Encode()).
		Bytes(gridcert.EncodeChain(r.SignerChain)).
		Finish()
}

// DecodeDelegationReply parses a reply.
func DecodeDelegationReply(b []byte) (DelegationReply, error) {
	d := wire.NewDecoder(b)
	certBytes := d.Bytes()
	chainBytes := d.Bytes()
	if err := d.Done(); err != nil {
		return DelegationReply{}, fmt.Errorf("proxy: bad delegation reply: %w", err)
	}
	cert, err := gridcert.Decode(certBytes)
	if err != nil {
		return DelegationReply{}, err
	}
	chain, err := gridcert.DecodeChain(chainBytes)
	if err != nil {
		return DelegationReply{}, err
	}
	return DelegationReply{ProxyCert: cert, SignerChain: chain}, nil
}

// Delegatee drives the receiving side of a delegation.
type Delegatee struct {
	key *gridcrypto.KeyPair
}

// NewDelegatee generates the fresh key pair and produces the request.
func NewDelegatee(lifetime time.Duration, limited bool) (*Delegatee, DelegationRequest, error) {
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		return nil, DelegationRequest{}, err
	}
	return &Delegatee{key: key}, DelegationRequest{
		PublicKey: key.Public(),
		Lifetime:  lifetime,
		Limited:   limited,
	}, nil
}

// Accept consumes the reply and assembles the delegated credential,
// verifying that the proxy certificate really covers our key.
func (d *Delegatee) Accept(reply DelegationReply) (*gridcert.Credential, error) {
	if !reply.ProxyCert.PublicKey.Equal(d.key.Public()) {
		return nil, errors.New("proxy: delegated certificate is for a different key")
	}
	chain := append([]*gridcert.Certificate{reply.ProxyCert}, reply.SignerChain...)
	return gridcert.NewCredential(chain, d.key)
}

// HandleDelegation is the delegator side: given an incoming request and
// the local credential, issue the proxy and build the reply. The options
// act as the delegator's policy; a requested lifetime can only shorten it,
// and a requested limitation is honoured.
func HandleDelegation(signer *gridcert.Credential, req DelegationRequest, opts Options) (DelegationReply, error) {
	if req.Lifetime > 0 && (opts.Lifetime == 0 || req.Lifetime < opts.Lifetime) {
		opts.Lifetime = req.Lifetime
	}
	if req.Limited && opts.Variant == 0 {
		opts.Variant = gridcert.ProxyLimited
	}
	cert, err := Issue(signer, req.PublicKey, opts)
	if err != nil {
		return DelegationReply{}, err
	}
	return DelegationReply{ProxyCert: cert, SignerChain: signer.Chain}, nil
}
