// Package proxy implements X.509 proxy-certificate creation and
// delegation (paper §3, "Dynamic creation of entities"). A user creates a
// proxy by signing a new certificate with their own credentials instead
// of involving a CA — this is the mechanism that lets new identities be
// created "quickly without the involvement of a traditional
// administrator", and it underpins single sign-on and rights delegation.
package proxy

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

// DefaultLifetime matches the grid-proxy-init default of 12 hours: long
// enough for a working session, short enough that an unprotected proxy
// key is a bounded liability.
const DefaultLifetime = 12 * time.Hour

// Options controls proxy creation.
type Options struct {
	// Variant selects delegation semantics; zero value means impersonation.
	Variant gridcert.ProxyVariant
	// Lifetime of the new proxy; 0 means DefaultLifetime. The window is
	// additionally clipped to the signer's own validity.
	Lifetime time.Duration
	// PathLenConstraint caps further delegation below the new proxy.
	// 0 (the zero value) means unlimited; to forbid any further
	// delegation set NoFurtherDelegation.
	PathLenConstraint int
	// NoFurtherDelegation issues the proxy with path length 0, so no
	// proxy may be derived below it.
	NoFurtherDelegation bool
	// PolicyLanguage/Policy attach a restriction document (required for
	// ProxyRestricted).
	PolicyLanguage string
	Policy         []byte
	// Extensions are copied into the proxy certificate (e.g. GRIM or CAS
	// payloads).
	Extensions []gridcert.Extension
	// KeyAlgorithm for the new proxy key; zero value means Ed25519.
	KeyAlgorithm gridcrypto.Algorithm
}

// New creates a proxy credential below signer. The returned credential
// contains the new proxy certificate, the signer's chain, and the fresh
// private key — exactly what grid-proxy-init leaves in /tmp/x509up_uNNN.
func New(signer *gridcert.Credential, opts Options) (*gridcert.Credential, error) {
	key, err := gridcrypto.GenerateKeyPair(keyAlg(opts))
	if err != nil {
		return nil, err
	}
	cert, err := Issue(signer, key.Public(), opts)
	if err != nil {
		return nil, err
	}
	chain := append([]*gridcert.Certificate{cert}, signer.Chain...)
	return gridcert.NewCredential(chain, key)
}

// Issue signs a proxy certificate for an externally supplied public key.
// This is the signer-side half of remote delegation: the remote party
// generated the key and we certify it.
func Issue(signer *gridcert.Credential, pub gridcrypto.PublicKey, opts Options) (*gridcert.Certificate, error) {
	if signer == nil {
		return nil, errors.New("proxy: nil signer credential")
	}
	leaf := signer.Leaf()
	if leaf.Type == gridcert.TypeCA {
		return nil, errors.New("proxy: CA credentials must not sign proxies")
	}
	if leaf.KeyUsage&gridcert.UsageDelegation == 0 {
		return nil, fmt.Errorf("proxy: signer %q lacks delegation usage", leaf.Subject)
	}
	if leaf.IsProxy() && leaf.Proxy.PathLenConstraint == 0 {
		return nil, fmt.Errorf("proxy: signer %q has path-length constraint 0", leaf.Subject)
	}
	variant := opts.Variant
	if variant == 0 {
		variant = gridcert.ProxyImpersonation
	}
	if variant == gridcert.ProxyRestricted && opts.PolicyLanguage == "" {
		return nil, errors.New("proxy: restricted proxy requires a policy language")
	}
	life := opts.Lifetime
	if life <= 0 {
		life = DefaultLifetime
	}
	now := time.Now()
	notAfter := now.Add(life)
	// A proxy must not outlive its signer.
	if notAfter.After(leaf.NotAfter) {
		notAfter = leaf.NotAfter
	}
	serial, err := gridcrypto.RandomSerial()
	if err != nil {
		return nil, err
	}
	pathLen := opts.PathLenConstraint
	if pathLen <= 0 {
		pathLen = -1 // unlimited
	}
	if opts.NoFurtherDelegation {
		pathLen = 0
	}
	cert, err := gridcert.Sign(gridcert.Template{
		SerialNumber: serial,
		Type:         gridcert.TypeProxy,
		Subject:      leaf.Subject.WithCN("proxy-" + strconv.FormatUint(serial, 10)),
		NotBefore:    now.Add(-time.Minute),
		NotAfter:     notAfter,
		KeyUsage:     leaf.KeyUsage,
		Proxy: &gridcert.ProxyInfo{
			Variant:           variant,
			PathLenConstraint: pathLen,
			PolicyLanguage:    opts.PolicyLanguage,
			Policy:            opts.Policy,
		},
		Extensions: opts.Extensions,
	}, pub, leaf.Subject, signer.Key)
	if err != nil {
		return nil, err
	}
	return cert, nil
}

func keyAlg(opts Options) gridcrypto.Algorithm {
	if opts.KeyAlgorithm.Valid() {
		return opts.KeyAlgorithm
	}
	return gridcrypto.AlgEd25519
}
