package proxy

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

// Round-trip invariants for the delegation wire format, the two
// messages the online delegation endpoint and MyProxy accept from the
// network: a decoder must never panic on arbitrary bytes, and anything
// it accepts must re-encode to a value that decodes back equal
// (encode∘decode is the identity on the accepted set).

func FuzzDecodeDelegationRequest(f *testing.F) {
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		f.Fatal(err)
	}
	seedReq := DelegationRequest{PublicKey: key.Public(), Lifetime: time.Hour, Limited: true}
	f.Add(seedReq.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeDelegationRequest(data)
		if err != nil {
			return
		}
		if req.Lifetime < 0 {
			t.Fatalf("accepted negative lifetime %v", req.Lifetime)
		}
		enc := req.Encode()
		again, err := DecodeDelegationRequest(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if !bytes.Equal(again.PublicKey.Encode(), req.PublicKey.Encode()) ||
			again.Lifetime != req.Lifetime || again.Limited != req.Limited {
			t.Fatalf("round trip diverged: %+v vs %+v", req, again)
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatal("re-encode is not canonical")
		}
	})
}

func FuzzDecodeDelegationReply(f *testing.F) {
	// Seed with a genuine reply: CA → user → delegated proxy.
	signer := fuzzSigner(f)
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		f.Fatal(err)
	}
	reply, err := HandleDelegation(signer, DelegationRequest{PublicKey: key.Public()}, Options{Lifetime: time.Hour})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(reply.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(bytes.Repeat([]byte{0x41}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeDelegationReply(data)
		if err != nil {
			return
		}
		if r.ProxyCert == nil {
			t.Fatal("accepted reply with nil proxy certificate")
		}
		enc := r.Encode()
		again, err := DecodeDelegationReply(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted reply failed: %v", err)
		}
		if !bytes.Equal(again.ProxyCert.Encode(), r.ProxyCert.Encode()) {
			t.Fatal("proxy certificate did not round-trip")
		}
		if len(again.SignerChain) != len(r.SignerChain) {
			t.Fatalf("chain length diverged: %d vs %d", len(again.SignerChain), len(r.SignerChain))
		}
		for i := range r.SignerChain {
			if !bytes.Equal(again.SignerChain[i].Encode(), r.SignerChain[i].Encode()) {
				t.Fatalf("chain[%d] did not round-trip", i)
			}
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatal("re-encode is not canonical")
		}
	})
}

// fuzzSigner builds a minimal credential able to sign proxies.
func fuzzSigner(f *testing.F) *gridcert.Credential {
	f.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=Fuzz CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		f.Fatal(err)
	}
	cred, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Fuzz User"), 12*time.Hour)
	if err != nil {
		f.Fatal(err)
	}
	return cred
}
