package proxy

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

func testUser(t testing.TB) (*ca.Authority, *gridcert.Credential, *gridcert.TrustStore) {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	cred, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	return auth, cred, ts
}

func TestNewProxyVerifies(t *testing.T) {
	_, user, ts := testUser(t)
	p, err := New(user, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ts.Verify(p.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatalf("proxy chain: %v", err)
	}
	if info.ProxyDepth != 1 {
		t.Fatalf("ProxyDepth = %d", info.ProxyDepth)
	}
	if !info.Identity.Equal(user.Leaf().Subject) {
		t.Fatalf("Identity = %q", info.Identity)
	}
	if p.Leaf().Proxy.Variant != gridcert.ProxyImpersonation {
		t.Fatalf("default variant = %v", p.Leaf().Proxy.Variant)
	}
}

func TestProxyLifetimeClippedToSigner(t *testing.T) {
	_, user, _ := testUser(t)
	p, err := New(user, Options{Lifetime: 1000 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if p.Leaf().NotAfter.After(user.Leaf().NotAfter) {
		t.Fatal("proxy outlives signer")
	}
}

func TestProxyChainDeep(t *testing.T) {
	_, user, ts := testUser(t)
	cur := user
	for i := 0; i < 8; i++ {
		next, err := New(cur, Options{})
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
		cur = next
	}
	info, err := ts.Verify(cur.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ProxyDepth != 8 {
		t.Fatalf("ProxyDepth = %d", info.ProxyDepth)
	}
}

func TestNoFurtherDelegation(t *testing.T) {
	_, user, _ := testUser(t)
	p, err := New(user, Options{NoFurtherDelegation: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Options{}); err == nil {
		t.Fatal("delegation below pathlen-0 proxy succeeded at issue time")
	}
}

func TestLimitedAndRestrictedProxies(t *testing.T) {
	_, user, ts := testUser(t)
	lim, err := New(user, Options{Variant: gridcert.ProxyLimited})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ts.Verify(lim.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Limited || !lim.Limited() {
		t.Fatal("limited proxy not flagged")
	}

	res, err := New(user, Options{
		Variant:        gridcert.ProxyRestricted,
		PolicyLanguage: "grid.cas.v1",
		Policy:         []byte(`{"rights":["read"]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err = ts.Verify(res.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Restricted) != 1 {
		t.Fatalf("Restricted = %+v", info.Restricted)
	}
	// Restricted without language is rejected.
	if _, err := New(user, Options{Variant: gridcert.ProxyRestricted}); err == nil {
		t.Fatal("restricted proxy without policy language accepted")
	}
}

func TestCACannotSignProxy(t *testing.T) {
	auth, _, _ := testUser(t)
	// Build a "credential" from the CA cert to ensure Issue refuses it.
	caKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	_ = caKey
	// We cannot access the CA private key (by design); construct a fake CA
	// credential with a fresh self-signed CA instead.
	cert, key, err := gridcert.NewSelfSignedCA(gridcert.MustParseName("/CN=Rogue CA"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gridcert.NewCredential([]*gridcert.Certificate{cert}, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cred, Options{}); err == nil {
		t.Fatal("CA credential allowed to sign proxy")
	}
	_ = auth
}

func TestDelegationExchange(t *testing.T) {
	_, user, ts := testUser(t)

	// Delegatee (e.g. an MJS) generates its key and request.
	delegatee, req, err := NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the request over the wire.
	reqDec, err := DecodeDelegationRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reqDec.PublicKey.Equal(req.PublicKey) || reqDec.Lifetime != time.Hour {
		t.Fatal("request round trip mismatch")
	}

	// Delegator issues.
	reply, err := HandleDelegation(user, reqDec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replyDec, err := DecodeDelegationReply(reply.Encode())
	if err != nil {
		t.Fatal(err)
	}

	// Delegatee assembles and the chain verifies.
	cred, err := delegatee.Accept(replyDec)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ts.Verify(cred.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Identity.Equal(user.Leaf().Subject) {
		t.Fatalf("delegated identity = %q", info.Identity)
	}
}

func TestDelegationRequestedLifetimeShortens(t *testing.T) {
	_, user, _ := testUser(t)
	_, req, _ := NewDelegatee(30*time.Minute, false)
	reply, err := HandleDelegation(user, req, Options{Lifetime: 5 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	life := reply.ProxyCert.NotAfter.Sub(reply.ProxyCert.NotBefore)
	if life > 35*time.Minute {
		t.Fatalf("delegated lifetime %v exceeds requested 30m", life)
	}
}

func TestDelegationLimitedRequest(t *testing.T) {
	_, user, _ := testUser(t)
	_, req, _ := NewDelegatee(0, true)
	reply, err := HandleDelegation(user, req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reply.ProxyCert.Proxy.Variant != gridcert.ProxyLimited {
		t.Fatalf("variant = %v, want limited", reply.ProxyCert.Proxy.Variant)
	}
}

func TestDelegateeRejectsWrongKey(t *testing.T) {
	_, user, _ := testUser(t)
	d1, _, _ := NewDelegatee(0, false)
	_, req2, _ := NewDelegatee(0, false)
	reply, err := HandleDelegation(user, req2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Accept(reply); err == nil {
		t.Fatal("delegatee accepted certificate for another key")
	}
}

func TestDecodeDelegationGarbage(t *testing.T) {
	if _, err := DecodeDelegationRequest([]byte("junk")); err == nil {
		t.Fatal("accepted junk request")
	}
	if _, err := DecodeDelegationReply([]byte("junk")); err == nil {
		t.Fatal("accepted junk reply")
	}
}

func BenchmarkProxyCreation(b *testing.B) {
	_, user, _ := testUser(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(user, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelegationExchange(b *testing.B) {
	_, user, _ := testUser(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, req, err := NewDelegatee(time.Hour, false)
		if err != nil {
			b.Fatal(err)
		}
		reply, err := HandleDelegation(user, req, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Accept(reply); err != nil {
			b.Fatal(err)
		}
	}
}
