// Package ca implements a certificate authority for the grid PKI: the
// trusted third party that issues identity certificates to users and
// hosts (paper §3). A CA here is deliberately simple — issuance policy,
// a registry of issued certificates, and revocation — because the paper's
// point is that *trust in a CA is established unilaterally*, so the CA
// itself needs no inter-organization machinery.
package ca

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

// Policy constrains what a CA will issue.
type Policy struct {
	// MaxLifetime caps the validity window of issued certificates.
	MaxLifetime time.Duration
	// NamespacePrefix, if non-empty, requires every issued subject to have
	// this name as a prefix (e.g. "/O=Grid" for the Grid CA). This mirrors
	// real CA namespace constraints.
	NamespacePrefix gridcert.Name
	// AllowHostCerts permits issuing certificates whose CN contains a
	// hostname (service identity).
	AllowHostCerts bool
}

// DefaultPolicy issues 1-year certificates with no namespace constraint.
func DefaultPolicy() Policy {
	return Policy{MaxLifetime: 365 * 24 * time.Hour, AllowHostCerts: true}
}

// Authority is a certificate authority.
type Authority struct {
	mu     sync.Mutex
	cert   *gridcert.Certificate
	key    *gridcrypto.KeyPair
	policy Policy

	issued   map[uint64]*gridcert.Certificate // serial -> cert
	revoked  map[uint64]bool
	crlSeq   uint64
	nextStat Stats
}

// Stats summarises CA activity, used by the E1 trust-establishment
// experiment to count administrative acts.
type Stats struct {
	Issued  int
	Revoked int
	CRLs    int
}

// New creates a CA with a fresh self-signed root.
func New(subject gridcert.Name, lifetime time.Duration, policy Policy) (*Authority, error) {
	cert, key, err := gridcert.NewSelfSignedCA(subject, lifetime, gridcrypto.AlgEd25519)
	if err != nil {
		return nil, fmt.Errorf("ca: creating root: %w", err)
	}
	return &Authority{
		cert:    cert,
		key:     key,
		policy:  policy,
		issued:  make(map[uint64]*gridcert.Certificate),
		revoked: make(map[uint64]bool),
	}, nil
}

// Certificate returns the CA's own (root) certificate.
func (a *Authority) Certificate() *gridcert.Certificate { return a.cert }

// Name returns the CA subject name.
func (a *Authority) Name() gridcert.Name { return a.cert.Subject }

// Request describes a certificate signing request: the applicant's public
// key and desired subject.
type Request struct {
	Subject   gridcert.Name
	PublicKey gridcrypto.PublicKey
	Lifetime  time.Duration
	// Host marks a request for a host/service certificate.
	Host bool
	// Extensions are copied into the issued certificate.
	Extensions []gridcert.Extension
}

// Issue signs an end-entity certificate for the request, enforcing policy.
// This is the only "administrative act" required to admit a new entity to
// the grid PKI.
func (a *Authority) Issue(req Request) (*gridcert.Certificate, error) {
	if req.Subject.Empty() {
		return nil, errors.New("ca: request missing subject")
	}
	if req.Host && !a.policy.AllowHostCerts {
		return nil, fmt.Errorf("ca: policy forbids host certificates")
	}
	if !a.policy.NamespacePrefix.Empty() && !hasPrefix(req.Subject, a.policy.NamespacePrefix) {
		return nil, fmt.Errorf("ca: subject %q outside CA namespace %q", req.Subject, a.policy.NamespacePrefix)
	}
	life := req.Lifetime
	if life <= 0 || life > a.policy.MaxLifetime {
		life = a.policy.MaxLifetime
	}
	usage := gridcert.UsageDigitalSignature | gridcert.UsageKeyAgreement | gridcert.UsageDelegation
	now := time.Now()
	cert, err := gridcert.Sign(gridcert.Template{
		Type:       gridcert.TypeEndEntity,
		Subject:    req.Subject,
		NotBefore:  now.Add(-5 * time.Minute),
		NotAfter:   now.Add(life),
		KeyUsage:   usage,
		Extensions: req.Extensions,
	}, req.PublicKey, a.cert.Subject, a.key)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.issued[cert.SerialNumber] = cert
	a.nextStat.Issued++
	a.mu.Unlock()
	return cert, nil
}

// IssueIntermediate signs a subordinate CA certificate.
func (a *Authority) IssueIntermediate(subject gridcert.Name, pub gridcrypto.PublicKey, maxPathLen int, lifetime time.Duration) (*gridcert.Certificate, error) {
	if lifetime <= 0 || lifetime > a.policy.MaxLifetime {
		lifetime = a.policy.MaxLifetime
	}
	now := time.Now()
	cert, err := gridcert.Sign(gridcert.Template{
		Type:       gridcert.TypeCA,
		Subject:    subject,
		NotBefore:  now.Add(-5 * time.Minute),
		NotAfter:   now.Add(lifetime),
		KeyUsage:   gridcert.UsageCertSign | gridcert.UsageCRLSign,
		MaxPathLen: maxPathLen,
	}, pub, a.cert.Subject, a.key)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.issued[cert.SerialNumber] = cert
	a.nextStat.Issued++
	a.mu.Unlock()
	return cert, nil
}

// Revoke marks a serial number revoked. The revocation takes effect for
// relying parties when they install the next CRL.
func (a *Authority) Revoke(serial uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.issued[serial]; !ok {
		return fmt.Errorf("ca: serial %d was not issued by this CA", serial)
	}
	if !a.revoked[serial] {
		a.revoked[serial] = true
		a.nextStat.Revoked++
	}
	return nil
}

// CRL produces a freshly signed revocation list.
func (a *Authority) CRL() (*gridcert.CRL, error) {
	a.mu.Lock()
	serials := make([]uint64, 0, len(a.revoked))
	for s := range a.revoked {
		serials = append(serials, s)
	}
	a.crlSeq++
	seq := a.crlSeq
	a.nextStat.CRLs++
	a.mu.Unlock()
	return gridcert.NewCRL(a.cert.Subject, seq, serials, a.key)
}

// Lookup returns an issued certificate by serial.
func (a *Authority) Lookup(serial uint64) (*gridcert.Certificate, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.issued[serial]
	return c, ok
}

// Stats returns a snapshot of CA activity counters.
func (a *Authority) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextStat
}

// NewEntity is a convenience that generates a key pair and has the CA
// issue a certificate for it, returning a ready credential.
func (a *Authority) NewEntity(subject gridcert.Name, lifetime time.Duration) (*gridcert.Credential, error) {
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		return nil, err
	}
	cert, err := a.Issue(Request{Subject: subject, PublicKey: key.Public(), Lifetime: lifetime})
	if err != nil {
		return nil, err
	}
	return gridcert.NewCredential([]*gridcert.Certificate{cert}, key)
}

// NewHostEntity issues a host (service) credential.
func (a *Authority) NewHostEntity(subject gridcert.Name, lifetime time.Duration) (*gridcert.Credential, error) {
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		return nil, err
	}
	cert, err := a.Issue(Request{Subject: subject, PublicKey: key.Public(), Lifetime: lifetime, Host: true})
	if err != nil {
		return nil, err
	}
	return gridcert.NewCredential([]*gridcert.Certificate{cert}, key)
}

func hasPrefix(n, prefix gridcert.Name) bool {
	if len(prefix.Components) > len(n.Components) {
		return false
	}
	for i, c := range prefix.Components {
		if n.Components[i] != c {
			return false
		}
	}
	return true
}
