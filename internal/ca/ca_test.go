package ca

import (
	"testing"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

func newTestCA(t testing.TB, policy Policy) *Authority {
	t.Helper()
	a, err := New(gridcert.MustParseName("/O=Grid/CN=Test CA"), 24*time.Hour, policy)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIssueAndVerify(t *testing.T) {
	a := newTestCA(t, DefaultPolicy())
	cred, err := a.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(a.Certificate()); err != nil {
		t.Fatal(err)
	}
	info, err := ts.Verify(cred.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatalf("issued credential does not verify: %v", err)
	}
	if info.Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("Identity = %q", info.Identity)
	}
	if got := a.Stats().Issued; got != 1 {
		t.Fatalf("Stats.Issued = %d", got)
	}
}

func TestIssuePolicyEnforcement(t *testing.T) {
	pol := Policy{
		MaxLifetime:     time.Hour,
		NamespacePrefix: gridcert.MustParseName("/O=Grid"),
		AllowHostCerts:  false,
	}
	a := newTestCA(t, pol)
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)

	// Outside namespace.
	if _, err := a.Issue(Request{Subject: gridcert.MustParseName("/O=Evil/CN=X"), PublicKey: key.Public()}); err == nil {
		t.Error("issued outside namespace")
	}
	// Host cert forbidden.
	if _, err := a.Issue(Request{Subject: gridcert.MustParseName("/O=Grid/CN=host node1"), PublicKey: key.Public(), Host: true}); err == nil {
		t.Error("issued forbidden host cert")
	}
	// Empty subject.
	if _, err := a.Issue(Request{PublicKey: key.Public()}); err == nil {
		t.Error("issued empty subject")
	}
	// Lifetime clamp: requesting 100h must clamp to 1h.
	c, err := a.Issue(Request{Subject: gridcert.MustParseName("/O=Grid/CN=Y"), PublicKey: key.Public(), Lifetime: 100 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if c.NotAfter.Sub(c.NotBefore) > time.Hour+10*time.Minute {
		t.Errorf("lifetime not clamped: %v", c.NotAfter.Sub(c.NotBefore))
	}
}

func TestRevocationFlow(t *testing.T) {
	a := newTestCA(t, DefaultPolicy())
	cred, err := a.NewEntity(gridcert.MustParseName("/O=Grid/CN=Mallory"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(a.Certificate()); err != nil {
		t.Fatal(err)
	}
	if err := a.Revoke(cred.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	// Revoking twice is idempotent.
	if err := a.Revoke(cred.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	// Unknown serial rejected.
	if err := a.Revoke(999999999); err == nil {
		t.Error("revoked unknown serial")
	}
	crl, err := a.CRL()
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Verify(cred.Chain, gridcert.VerifyOptions{}); err == nil {
		t.Fatal("revoked credential still verifies")
	}
	st := a.Stats()
	if st.Revoked != 1 || st.CRLs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIssueIntermediate(t *testing.T) {
	root := newTestCA(t, DefaultPolicy())
	interKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	interCert, err := root.IssueIntermediate(gridcert.MustParseName("/O=Grid/CN=Sub CA"), interKey.Public(), 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	userKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	userCert, err := gridcert.Sign(gridcert.Template{
		Type:    gridcert.TypeEndEntity,
		Subject: gridcert.MustParseName("/O=Grid/CN=Carol"),
	}, userKey.Public(), interCert.Subject, interKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(root.Certificate()); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Verify([]*gridcert.Certificate{userCert, interCert}, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("intermediate-issued cert: %v", err)
	}
}

func TestLookup(t *testing.T) {
	a := newTestCA(t, DefaultPolicy())
	cred, _ := a.NewEntity(gridcert.MustParseName("/O=Grid/CN=D"), time.Hour)
	got, ok := a.Lookup(cred.Leaf().SerialNumber)
	if !ok || !got.Subject.Equal(cred.Leaf().Subject) {
		t.Fatal("Lookup failed for issued cert")
	}
	if _, ok := a.Lookup(12345); ok {
		t.Fatal("Lookup returned unknown serial")
	}
}

func TestConcurrentIssue(t *testing.T) {
	a := newTestCA(t, DefaultPolicy())
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, err := a.NewEntity(gridcert.MustParseName("/O=Grid/CN=user"+string(rune('a'+i))), time.Hour)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Issued; got != 16 {
		t.Fatalf("Issued = %d, want 16", got)
	}
}
