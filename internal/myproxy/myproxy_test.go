package myproxy

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

type bed struct {
	trust *gridcert.TrustStore
	alice *gridcert.Credential
	srv   *Server
}

func newBed(t testing.TB) *bed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 7*24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &bed{trust: trust, alice: alice, srv: NewServer()}
}

// store deposits a week-long proxy for alice.
func (b *bed) store(t testing.TB, pass string) {
	t.Helper()
	deposit, err := proxy.New(b.alice, proxy.Options{Lifetime: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.srv.Store("alice", pass, deposit, 0); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRetrieve(t *testing.T) {
	b := newBed(t)
	b.store(t, "pw")

	delegatee, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := b.srv.Retrieve("alice", "pw", req)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := delegatee.Accept(reply)
	if err != nil {
		t.Fatal(err)
	}
	info, err := b.trust.Verify(cred.Chain, gridcert.VerifyOptions{})
	if err != nil {
		t.Fatalf("retrieved credential invalid: %v", err)
	}
	if info.Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("identity = %q", info.Identity)
	}
	if info.ProxyDepth != 2 { // stored proxy + retrieved proxy
		t.Fatalf("proxy depth = %d", info.ProxyDepth)
	}
	// Requested 1h lifetime is honoured (leaf expires within ~1h).
	life := time.Until(cred.Leaf().NotAfter)
	if life > 90*time.Minute {
		t.Fatalf("retrieved lifetime %v exceeds request", life)
	}
}

func TestBadPassphraseAndLockout(t *testing.T) {
	b := newBed(t)
	b.store(t, "pw")
	_, req, _ := proxy.NewDelegatee(time.Hour, false)
	for i := 0; i < maxFailures; i++ {
		if _, err := b.srv.Retrieve("alice", "wrong", req); !errors.Is(err, ErrBadPassphrase) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	// Now locked even with the right passphrase.
	if _, err := b.srv.Retrieve("alice", "pw", req); !errors.Is(err, ErrLocked) {
		t.Fatalf("after lockout: %v", err)
	}
	info, _ := b.srv.Info("alice")
	if !info.Locked {
		t.Fatal("Info does not report lock")
	}
}

func TestFailureCounterResets(t *testing.T) {
	b := newBed(t)
	b.store(t, "pw")
	_, req, _ := proxy.NewDelegatee(time.Hour, false)
	for i := 0; i < maxFailures-1; i++ {
		b.srv.Retrieve("alice", "wrong", req)
	}
	if _, err := b.srv.Retrieve("alice", "pw", req); err != nil {
		t.Fatalf("valid retrieve before lockout: %v", err)
	}
	// Counter reset: more failures allowed again.
	if _, err := b.srv.Retrieve("alice", "wrong", req); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("after reset: %v", err)
	}
}

func TestUnknownUserAndDestroy(t *testing.T) {
	b := newBed(t)
	_, req, _ := proxy.NewDelegatee(time.Hour, false)
	if _, err := b.srv.Retrieve("ghost", "pw", req); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown user: %v", err)
	}
	b.store(t, "pw")
	if err := b.srv.Destroy("alice", "wrong"); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("destroy with wrong pass: %v", err)
	}
	if err := b.srv.Destroy("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if b.srv.Len() != 0 {
		t.Fatal("entry survived destroy")
	}
}

func TestStoredCredentialExpiry(t *testing.T) {
	b := newBed(t)
	deposit, err := proxy.New(b.alice, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.srv.Store("alice", "pw", deposit, 0); err != nil {
		t.Fatal(err)
	}
	b.srv.SetClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	_, req, _ := proxy.NewDelegatee(time.Hour, false)
	if _, err := b.srv.Retrieve("alice", "pw", req); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired deposit: %v", err)
	}
}

func TestStoreValidation(t *testing.T) {
	b := newBed(t)
	deposit, _ := proxy.New(b.alice, proxy.Options{})
	if err := b.srv.Store("", "pw", deposit, 0); err == nil {
		t.Fatal("empty username accepted")
	}
	if err := b.srv.Store("alice", "", deposit, 0); err == nil {
		t.Fatal("empty passphrase accepted")
	}
}

func TestInfo(t *testing.T) {
	b := newBed(t)
	b.store(t, "pw")
	info, err := b.srv.Info("alice")
	if err != nil {
		t.Fatal(err)
	}
	if info.Identity.String() != "/O=Grid/CN=Alice" || info.MaxProxy != DefaultMaxLifetime {
		t.Fatalf("info = %+v", info)
	}
	if _, err := b.srv.Info("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost info: %v", err)
	}
}

func BenchmarkRetrieve(b *testing.B) {
	bd := newBed(b)
	bd.store(b, "pw")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, req, err := proxy.NewDelegatee(time.Hour, false)
		if err != nil {
			b.Fatal(err)
		}
		reply, err := bd.srv.Retrieve("alice", "pw", req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Accept(reply); err != nil {
			b.Fatal(err)
		}
	}
}
