package myproxy

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// Renewal-path coverage: the credential manager leans on RetrieveContext
// as its renewal engine, so the repository's behaviour near the edges —
// almost-expired deposits, lifetime caps, cancellations — is what
// decides whether rotation works when it matters most.

// A deposit with only minutes left still renews, but the minted proxy's
// validity is clipped to the deposit's own NotAfter: the repository can
// stretch a credential's *reach* in time, never past the power it holds.
func TestRetrieveNearlyExpiredDeposit(t *testing.T) {
	b := newBed(t)
	deposit, err := proxy.New(b.alice, proxy.Options{Lifetime: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.srv.Store("alice", "pw", deposit, 12*time.Hour); err != nil {
		t.Fatal(err)
	}

	delegatee, req, err := proxy.NewDelegatee(12*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	req.Lifetime = 12 * time.Hour
	reply, err := b.srv.RetrieveContext(context.Background(), "alice", "pw", req)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := delegatee.Accept(reply)
	if err != nil {
		t.Fatal(err)
	}
	if cred.Leaf().NotAfter.After(deposit.Leaf().NotAfter) {
		t.Fatalf("renewed proxy NotAfter %s outlives the deposit %s",
			cred.Leaf().NotAfter, deposit.Leaf().NotAfter)
	}
	if _, err := b.trust.Verify(cred.Chain, gridcert.VerifyOptions{}); err != nil {
		t.Fatalf("near-expiry renewal does not validate: %v", err)
	}

	// Once the deposit's window actually passes, retrieval reports
	// ErrExpired — the renewal loop's signal to stop retrying this
	// source.
	b.srv.SetClock(func() time.Time { return deposit.Leaf().NotAfter.Add(time.Minute) })
	if _, err := b.srv.RetrieveContext(context.Background(), "alice", "pw", req); !errors.Is(err, ErrExpired) {
		t.Fatalf("retrieve after deposit expiry = %v, want ErrExpired", err)
	}
}

// The per-deposit maxLifetime caps every retrieval, regardless of what
// the request asks for; a tighter request wins.
func TestRetrieveLifetimeCap(t *testing.T) {
	b := newBed(t)
	deposit, err := proxy.New(b.alice, proxy.Options{Lifetime: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.srv.Store("alice", "pw", deposit, 2*time.Hour); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name      string
		requested time.Duration
		maxWant   time.Duration
	}{
		{"request above the cap is clamped", 24 * time.Hour, 2 * time.Hour},
		{"request below the cap is honored", 30 * time.Minute, 30 * time.Minute},
		{"zero request takes the cap", 0, 2 * time.Hour},
	} {
		delegatee, req, err := proxy.NewDelegatee(tc.requested, false)
		if err != nil {
			t.Fatal(err)
		}
		req.Lifetime = tc.requested
		reply, err := b.srv.RetrieveContext(context.Background(), "alice", "pw", req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		cred, err := delegatee.Accept(reply)
		if err != nil {
			t.Fatal(err)
		}
		if remaining := time.Until(cred.Leaf().NotAfter); remaining > tc.maxWant+time.Minute {
			t.Errorf("%s: proxy lives %s, want <= %s", tc.name, remaining, tc.maxWant)
		}
	}
}

// Cancellation is honored at every stage of a retrieval: before the
// passphrase check and between authentication and signing. A canceled
// retrieval must not count as an authentication failure either — a
// renewal loop canceling mid-attempt must not walk the account toward
// lockout.
func TestRetrieveCancellation(t *testing.T) {
	b := newBed(t)
	b.store(t, "pw")

	_, req, err := proxy.NewDelegatee(time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}

	// Dead at entry.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.srv.RetrieveContext(canceled, "alice", "pw", req); !errors.Is(err, context.Canceled) {
		t.Fatalf("retrieve with dead context = %v, want context.Canceled", err)
	}

	// Canceled mid-retrieve, between the passphrase check and the
	// delegation signing: the server's clock callback is our hook into
	// that window (it runs after authentication, before signing).
	midCtx, midCancel := context.WithCancel(context.Background())
	b.srv.SetClock(func() time.Time {
		midCancel()
		return time.Now()
	})
	if _, err := b.srv.RetrieveContext(midCtx, "alice", "pw", req); !errors.Is(err, context.Canceled) {
		t.Fatalf("retrieve canceled mid-flight = %v, want context.Canceled", err)
	}
	b.srv.SetClock(time.Now)

	// The cancellations above must not have dented the failure counter:
	// the very next honest retrieval succeeds.
	if _, err := b.srv.RetrieveContext(context.Background(), "alice", "pw", req); err != nil {
		t.Fatalf("retrieval after canceled attempts failed: %v", err)
	}

	// StoreContext honors cancellation too (before the slow passphrase
	// derivation).
	deposit, err := proxy.New(b.alice, proxy.Options{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.srv.StoreContext(canceled, "bob", "pw", deposit, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("store with dead context = %v, want context.Canceled", err)
	}
	if _, err := b.srv.Info("bob"); !errors.Is(err, ErrNotFound) {
		t.Fatal("canceled store must not deposit")
	}
}
