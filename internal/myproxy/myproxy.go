// Package myproxy implements an online credential repository in the
// style of MyProxy, the companion service deployed alongside GSI: a user
// delegates a medium-lived proxy credential to the repository; later —
// possibly from another machine, a web portal, or a job — they
// authenticate with a passphrase and receive a fresh short-lived proxy
// delegated from the stored one. Private keys never leave the party that
// generated them: storage and retrieval both use the GSI delegation
// exchange.
package myproxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/proxy"
)

// DefaultMaxLifetime bounds retrieved proxies (MyProxy's default is 12h).
const DefaultMaxLifetime = 12 * time.Hour

// maxFailures locks an entry after this many consecutive bad passphrases.
const maxFailures = 5

// Errors.
var (
	ErrNotFound      = errors.New("myproxy: no stored credential")
	ErrBadPassphrase = errors.New("myproxy: bad passphrase")
	ErrLocked        = errors.New("myproxy: entry locked after repeated failures")
	ErrExpired       = errors.New("myproxy: stored credential expired")
)

type entry struct {
	cred        *gridcert.Credential
	passHash    []byte
	salt        []byte
	maxLifetime time.Duration
	failures    int
	storedAt    time.Time
}

// Server is the credential repository.
type Server struct {
	mu      sync.Mutex
	entries map[string]*entry
	now     func() time.Time
}

// NewServer creates an empty repository.
func NewServer() *Server {
	return &Server{entries: make(map[string]*entry), now: time.Now}
}

// SetClock overrides the clock (tests).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

func hashPass(pass string, salt []byte) []byte {
	h, err := gridcrypto.DeriveKey([]byte(pass), salt, []byte("myproxy passphrase"), 32)
	if err != nil {
		panic("myproxy: passphrase hashing cannot fail: " + err.Error())
	}
	return h
}

// Store deposits a credential under a username and passphrase. The
// credential should be a medium-lived proxy delegated specifically for
// the repository (the caller creates it with proxy.New). maxLifetime
// bounds proxies later retrieved; 0 means DefaultMaxLifetime.
func (s *Server) Store(username, passphrase string, cred *gridcert.Credential, maxLifetime time.Duration) error {
	return s.StoreContext(context.Background(), username, passphrase, cred, maxLifetime)
}

// StoreContext is Store honoring ctx: the (deliberately slow) passphrase
// derivation is skipped when the context has already ended.
func (s *Server) StoreContext(ctx context.Context, username, passphrase string, cred *gridcert.Credential, maxLifetime time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if username == "" || passphrase == "" {
		return errors.New("myproxy: username and passphrase required")
	}
	if maxLifetime <= 0 {
		maxLifetime = DefaultMaxLifetime
	}
	salt, err := gridcrypto.RandomBytes(16)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[username] = &entry{
		cred:        cred,
		passHash:    hashPass(passphrase, salt),
		salt:        salt,
		maxLifetime: maxLifetime,
		storedAt:    s.now(),
	}
	return nil
}

// Info describes a stored credential without exposing it.
type Info struct {
	Identity gridcert.Name
	NotAfter time.Time
	StoredAt time.Time
	MaxProxy time.Duration
	Locked   bool
}

// Info reports metadata for a username.
func (s *Server) Info(username string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[username]
	if !ok {
		return Info{}, ErrNotFound
	}
	return Info{
		Identity: e.cred.Identity(),
		NotAfter: e.cred.Leaf().NotAfter,
		StoredAt: e.storedAt,
		MaxProxy: e.maxLifetime,
		Locked:   e.failures >= maxFailures,
	}, nil
}

// Destroy removes a stored credential (requires the passphrase).
func (s *Server) Destroy(username, passphrase string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[username]
	if !ok {
		return ErrNotFound
	}
	if !gridcrypto.HMACEqual(e.passHash, hashPass(passphrase, e.salt)) {
		return ErrBadPassphrase
	}
	delete(s.entries, username)
	return nil
}

// Retrieve authenticates by passphrase and answers a delegation request:
// the client generated a key pair locally (proxy.NewDelegatee) and the
// repository signs a short-lived proxy below the stored credential.
func (s *Server) Retrieve(username, passphrase string, req proxy.DelegationRequest) (proxy.DelegationReply, error) {
	return s.RetrieveContext(context.Background(), username, passphrase, req)
}

// RetrieveContext is Retrieve honoring ctx: the passphrase check and the
// delegation signing are both skipped once the context ends.
func (s *Server) RetrieveContext(ctx context.Context, username, passphrase string, req proxy.DelegationRequest) (proxy.DelegationReply, error) {
	if err := ctx.Err(); err != nil {
		return proxy.DelegationReply{}, err
	}
	s.mu.Lock()
	e, ok := s.entries[username]
	if !ok {
		s.mu.Unlock()
		return proxy.DelegationReply{}, ErrNotFound
	}
	if e.failures >= maxFailures {
		s.mu.Unlock()
		return proxy.DelegationReply{}, ErrLocked
	}
	if !gridcrypto.HMACEqual(e.passHash, hashPass(passphrase, e.salt)) {
		e.failures++
		s.mu.Unlock()
		return proxy.DelegationReply{}, ErrBadPassphrase
	}
	e.failures = 0
	cred := e.cred
	maxLifetime := e.maxLifetime
	now := s.now()
	s.mu.Unlock()

	if now.After(cred.Leaf().NotAfter) {
		return proxy.DelegationReply{}, ErrExpired
	}
	if err := ctx.Err(); err != nil {
		return proxy.DelegationReply{}, err
	}
	opts := proxy.Options{Lifetime: maxLifetime}
	if req.Lifetime > 0 && req.Lifetime < maxLifetime {
		opts.Lifetime = req.Lifetime
	}
	reply, err := proxy.HandleDelegation(cred, proxy.DelegationRequest{
		PublicKey: req.PublicKey,
		Limited:   req.Limited,
	}, opts)
	if err != nil {
		return proxy.DelegationReply{}, fmt.Errorf("myproxy: delegating: %w", err)
	}
	return reply, nil
}

// Len reports the number of stored credentials.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
