package mds

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/internal/soap"
)

var (
	alice = gridcert.MustParseName("/O=Grid/CN=Alice")
	bob   = gridcert.MustParseName("/O=Grid/CN=Bob")
)

func TestRegisterFindUnregister(t *testing.T) {
	x := NewIndex()
	_, err := x.Register(alice, "gsh://a/mmjfs", "gram.mmjfs", map[string]string{"arch": "x86"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Register(alice, "gsh://a/ftp", "gridftp", nil, 0); err != nil {
		t.Fatal(err)
	}
	got := x.Find(Query{Type: "gram.mmjfs"})
	if len(got) != 1 || got[0].Handle != "gsh://a/mmjfs" {
		t.Fatalf("Find = %+v", got)
	}
	// Prefix query.
	if got := x.Find(Query{Type: "gram.*"}); len(got) != 1 {
		t.Fatalf("prefix find = %+v", got)
	}
	// Attribute query.
	if got := x.Find(Query{Attr: "arch", Value: "x86"}); len(got) != 1 {
		t.Fatalf("attr find = %+v", got)
	}
	if got := x.Find(Query{Attr: "arch", Value: "arm"}); len(got) != 0 {
		t.Fatalf("wrong attr matched: %+v", got)
	}
	// Owner query.
	if got := x.Find(Query{Owner: alice}); len(got) != 2 {
		t.Fatalf("owner find = %+v", got)
	}
	if err := x.Unregister(alice, "gsh://a/ftp"); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
}

func TestOwnershipEnforced(t *testing.T) {
	x := NewIndex()
	if _, err := x.Register(alice, "gsh://a/svc", "t", nil, 0); err != nil {
		t.Fatal(err)
	}
	// Bob cannot replace, refresh, or remove Alice's entry.
	if _, err := x.Register(bob, "gsh://a/svc", "t", nil, 0); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("replace: %v", err)
	}
	if err := x.Refresh(bob, "gsh://a/svc", 0); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("refresh: %v", err)
	}
	if err := x.Unregister(bob, "gsh://a/svc"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unregister: %v", err)
	}
	// Alice can update her own.
	if _, err := x.Register(alice, "gsh://a/svc", "t2", nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSoftStateExpiry(t *testing.T) {
	x := NewIndex()
	now := time.Now()
	x.SetClock(func() time.Time { return now })
	if _, err := x.Register(alice, "gsh://a/svc", "t", nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if got := x.Find(Query{}); len(got) != 0 {
		t.Fatalf("expired entry found: %+v", got)
	}
	if err := x.Refresh(alice, "gsh://a/svc", 0); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("refresh of expired: %v", err)
	}
	if n := x.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d", n)
	}
	// An expired foreign entry can be re-registered by a new owner.
	if _, err := x.Register(alice, "gsh://b/svc", "t", nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := x.Register(bob, "gsh://b/svc", "t", nil, time.Minute); err != nil {
		t.Fatalf("re-register expired: %v", err)
	}
}

func TestRefreshExtends(t *testing.T) {
	x := NewIndex()
	now := time.Now()
	x.SetClock(func() time.Time { return now })
	x.Register(alice, "gsh://a/svc", "t", nil, time.Minute)
	now = now.Add(50 * time.Second)
	if err := x.Refresh(alice, "gsh://a/svc", time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(50 * time.Second) // would have expired without refresh
	if x.Len() != 1 {
		t.Fatal("refreshed entry expired")
	}
}

func TestTTLClamp(t *testing.T) {
	x := NewIndex()
	e, err := x.Register(alice, "h", "t", nil, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if e.Expires.After(time.Now().Add(MaxTTL + time.Minute)) {
		t.Fatal("TTL not clamped")
	}
	if _, err := x.Register(alice, "", "t", nil, 0); err == nil {
		t.Fatal("empty handle accepted")
	}
}

// TestServiceThroughContainer runs MDS inside a secured container: the
// registration owner is the authenticated caller, so spoofing is
// impossible at this layer.
func TestServiceThroughContainer(t *testing.T) {
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust := gridcert.NewTrustStore()
	trust.AddRoot(auth.Certificate())
	aliceCred, _ := auth.NewEntity(alice, 12*time.Hour)
	bobCred, _ := auth.NewEntity(bob, 12*time.Hour)
	host, _ := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host mds"), 12*time.Hour)
	container, err := ogsa.NewContainer(ogsa.ContainerConfig{
		Name: "mds", Credential: host, TrustStore: trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	container.Publish("mds", NewService(NewIndex()))
	transport := soap.Pipe(container.Dispatcher())

	aClient := &ogsa.Client{Transport: transport, Credential: aliceCred, TrustStore: trust}
	bClient := &ogsa.Client{Transport: transport, Credential: bobCred, TrustStore: trust}

	req := RegisterRequest{Handle: "gsh://a/app", Type: "app", Attributes: map[string]string{"v": "1"}}
	if _, err := aClient.InvokeSigned("mds", "Register", req.Encode()); err != nil {
		t.Fatal(err)
	}
	// Bob cannot unregister Alice's service even though he authenticated.
	if _, err := bClient.InvokeSigned("mds", "Unregister", []byte("gsh://a/app")); err == nil {
		t.Fatal("cross-owner unregister allowed")
	}
	// Discovery works for anyone.
	out, err := bClient.InvokeSigned("mds", "Find", []byte("app"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "gsh://a/app") || !strings.Contains(string(out), alice.String()) {
		t.Fatalf("Find = %q", out)
	}
	// Attribute-filtered Find.
	out, err = aClient.InvokeSigned("mds", "Find", []byte("app|v=1"))
	if err != nil || !strings.Contains(string(out), "gsh://a/app") {
		t.Fatalf("attr find = %q %v", out, err)
	}
	out, err = aClient.InvokeSigned("mds", "Find", []byte("app|v=2"))
	if err != nil || strings.Contains(string(out), "gsh://a/app") {
		t.Fatalf("wrong attr find = %q %v", out, err)
	}
	// Refresh through the service.
	if _, err := aClient.InvokeSigned("mds", "Refresh", []byte("gsh://a/app")); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRequestRoundTrip(t *testing.T) {
	req := RegisterRequest{
		Handle: "h", Type: "t", TTLSeconds: 60,
		Attributes: map[string]string{"b": "2", "a": "1"},
	}
	dec, err := DecodeRegisterRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Handle != "h" || dec.TTLSeconds != 60 || dec.Attributes["a"] != "1" || dec.Attributes["b"] != "2" {
		t.Fatalf("round trip: %+v", dec)
	}
	if _, err := DecodeRegisterRequest([]byte("junk")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func BenchmarkFind1000Entries(b *testing.B) {
	x := NewIndex()
	for i := 0; i < 1000; i++ {
		x.Register(alice, "gsh://h/"+string(rune('a'+i%26))+string(rune('0'+i%10)), "type"+string(rune('a'+i%5)), nil, time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Find(Query{Type: "typea"})
	}
}
