package mds

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/internal/wire"
)

// Service exposes the Index as an OGSA Grid service so registration and
// discovery run through the secured container pipeline: the container
// authenticates callers, and the Index enforces ownership with the
// authenticated identity — no self-asserted owners.
type Service struct {
	*ogsa.Base
	Index *Index
}

// NewService wraps an index.
func NewService(x *Index) *Service {
	return &Service{Base: ogsa.NewBase(), Index: x}
}

// RegisterRequest is the wire form of a registration.
type RegisterRequest struct {
	Handle     string
	Type       string
	TTLSeconds int64
	Attributes map[string]string
}

// Encode serialises the request.
func (r RegisterRequest) Encode() []byte {
	e := wire.NewEncoder().Str(r.Handle).Str(r.Type).I64(r.TTLSeconds)
	e.U32(uint32(len(r.Attributes)))
	// Deterministic order for the wire.
	keys := make([]string, 0, len(r.Attributes))
	for k := range r.Attributes {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e.Str(k)
		e.Str(r.Attributes[k])
	}
	return e.Finish()
}

// DecodeRegisterRequest parses the wire form.
func DecodeRegisterRequest(b []byte) (RegisterRequest, error) {
	d := wire.NewDecoder(b)
	r := RegisterRequest{Handle: d.Str(), Type: d.Str(), TTLSeconds: d.I64()}
	n := d.Count("attributes", 256)
	if n > 0 {
		r.Attributes = make(map[string]string, n)
	}
	for i := 0; i < n; i++ {
		k := d.Str()
		v := d.Str()
		if d.Err() == nil {
			r.Attributes[k] = v
		}
	}
	if err := d.Done(); err != nil {
		return RegisterRequest{}, err
	}
	return r, nil
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Invoke implements ogsa.Service.
//
// Operations:
//
//	Register:   body = RegisterRequest → "ok"
//	Refresh:    body = handle → "ok"
//	Unregister: body = handle → "ok"
//	Find:       body = "type[|attr=value]" → newline-separated handles
func (s *Service) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	if call.Caller.Anonymous && call.Op != "Find" {
		return nil, fmt.Errorf("mds: %s requires an authenticated caller", call.Op)
	}
	switch call.Op {
	case "Register":
		req, err := DecodeRegisterRequest(call.Body)
		if err != nil {
			return nil, fmt.Errorf("mds: register: %w", err)
		}
		if _, err := s.Index.Register(call.Caller.Name, req.Handle, req.Type,
			req.Attributes, time.Duration(req.TTLSeconds)*time.Second); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "Refresh":
		if err := s.Index.Refresh(call.Caller.Name, string(call.Body), 0); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "Unregister":
		if err := s.Index.Unregister(call.Caller.Name, string(call.Body)); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "Find":
		q := Query{}
		spec := string(call.Body)
		if i := strings.IndexByte(spec, '|'); i >= 0 {
			if eq := strings.IndexByte(spec[i+1:], '='); eq >= 0 {
				q.Attr = spec[i+1 : i+1+eq]
				q.Value = spec[i+2+eq:]
			}
			spec = spec[:i]
		}
		q.Type = spec
		var out strings.Builder
		for _, e := range s.Index.Find(q) {
			fmt.Fprintf(&out, "%s %s %s\n", e.Handle, e.Type, e.Owner)
		}
		return []byte(out.String()), nil
	default:
		return nil, fmt.Errorf("mds: no op %q", call.Op)
	}
}

// RegisterOwned is a helper for services co-located with the index.
func (s *Service) RegisterOwned(owner gridcert.Name, handle, typ string, attrs map[string]string) error {
	_, err := s.Index.Register(owner, handle, typ, attrs, 0)
	return err
}
