// Package mds implements the Monitoring and Discovery Service of the
// Globus Toolkit (paper §3: "GT2 includes services for Grid Resource
// Allocation and Management (GRAM), Monitoring and Discovery (MDS), and
// data movement (GridFTP). These services use a common Grid Security
// Infrastructure."): a soft-state registry where services register
// themselves with a time-to-live and clients discover them by type and
// attribute. Registrations are owned: only the identity that created an
// entry (or one it delegates to) may refresh or remove it, which is the
// "VO creating directory services to keep track of VO participants"
// scenario of §2.
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gridcert"
)

// Entry is one registered service.
type Entry struct {
	// Handle is the service's unique address (GSH).
	Handle string
	// Type classifies the service, e.g. "gram.mmjfs" or "gridftp".
	Type string
	// Attributes are free-form key/value descriptors.
	Attributes map[string]string
	// Owner is the grid identity that registered the entry.
	Owner gridcert.Name
	// Expires is the soft-state deadline; refresh extends it.
	Expires time.Time
}

func (e Entry) clone() Entry {
	attrs := make(map[string]string, len(e.Attributes))
	for k, v := range e.Attributes {
		attrs[k] = v
	}
	e.Attributes = attrs
	return e
}

// DefaultTTL is the registration lifetime when none is requested.
const DefaultTTL = 10 * time.Minute

// MaxTTL caps requested lifetimes.
const MaxTTL = time.Hour

// Errors.
var (
	ErrNotRegistered = errors.New("mds: no such registration")
	ErrNotOwner      = errors.New("mds: caller does not own this registration")
)

// Index is the registry.
type Index struct {
	mu      sync.Mutex
	entries map[string]Entry
	now     func() time.Time
}

// NewIndex creates an empty registry.
func NewIndex() *Index {
	return &Index{entries: make(map[string]Entry), now: time.Now}
}

// SetClock overrides the clock (tests).
func (x *Index) SetClock(now func() time.Time) { x.now = now }

// Register creates or replaces a registration. Replacing an existing
// entry requires the same owner.
func (x *Index) Register(owner gridcert.Name, handle, typ string, attrs map[string]string, ttl time.Duration) (Entry, error) {
	if handle == "" || typ == "" {
		return Entry{}, errors.New("mds: handle and type required")
	}
	if ttl <= 0 || ttl > MaxTTL {
		ttl = DefaultTTL
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if prev, ok := x.entries[handle]; ok && !prev.Owner.Equal(owner) && !x.expiredLocked(prev) {
		return Entry{}, fmt.Errorf("%w: %q is registered by %q", ErrNotOwner, handle, prev.Owner)
	}
	e := Entry{
		Handle:     handle,
		Type:       typ,
		Attributes: map[string]string{},
		Owner:      owner,
		Expires:    x.now().Add(ttl),
	}
	for k, v := range attrs {
		e.Attributes[k] = v
	}
	x.entries[handle] = e
	return e.clone(), nil
}

// Refresh extends a registration's soft state.
func (x *Index) Refresh(owner gridcert.Name, handle string, ttl time.Duration) error {
	if ttl <= 0 || ttl > MaxTTL {
		ttl = DefaultTTL
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.entries[handle]
	if !ok || x.expiredLocked(e) {
		return fmt.Errorf("%w: %q", ErrNotRegistered, handle)
	}
	if !e.Owner.Equal(owner) {
		return fmt.Errorf("%w: %q", ErrNotOwner, handle)
	}
	e.Expires = x.now().Add(ttl)
	x.entries[handle] = e
	return nil
}

// Unregister removes a registration (owner only).
func (x *Index) Unregister(owner gridcert.Name, handle string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.entries[handle]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotRegistered, handle)
	}
	if !e.Owner.Equal(owner) {
		return fmt.Errorf("%w: %q", ErrNotOwner, handle)
	}
	delete(x.entries, handle)
	return nil
}

// Query describes a discovery request; zero fields match everything.
type Query struct {
	// Type matches the entry type exactly, or by prefix with trailing
	// "*" ("gram.*").
	Type string
	// Attr/Value require an attribute to have an exact value (both set).
	Attr, Value string
	// Owner restricts to entries registered by one identity.
	Owner gridcert.Name
}

// Find returns live entries matching the query, sorted by handle.
func (x *Index) Find(q Query) []Entry {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []Entry
	for _, e := range x.entries {
		if x.expiredLocked(e) {
			continue
		}
		if q.Type != "" && !matchType(q.Type, e.Type) {
			continue
		}
		if q.Attr != "" && e.Attributes[q.Attr] != q.Value {
			continue
		}
		if !q.Owner.Empty() && !e.Owner.Equal(q.Owner) {
			continue
		}
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}

// Sweep removes expired registrations, returning how many were evicted.
func (x *Index) Sweep() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for h, e := range x.entries {
		if x.expiredLocked(e) {
			delete(x.entries, h)
			n++
		}
	}
	return n
}

// Len counts live registrations.
func (x *Index) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for _, e := range x.entries {
		if !x.expiredLocked(e) {
			n++
		}
	}
	return n
}

func (x *Index) expiredLocked(e Entry) bool { return x.now().After(e.Expires) }

func matchType(pattern, typ string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(typ, pattern[:len(pattern)-1])
	}
	return pattern == typ
}
