package record

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chunked stream mode: an unbounded byte stream crosses the record
// layer as a sequence of chunk records — DATA chunks carrying up to
// MaxChunkPayload bytes each, terminated by exactly one FIN record (or
// an ERROR record when the sender aborts mid-stream). Every chunk
// carries its own stream sequence number, bound under the record
// protection, so a stream reassembled from records can never silently
// lose, duplicate, or reorder a chunk even across carriers that do not
// themselves order records (the GT3 per-call carriage).

// ChunkType tags a chunk record.
type ChunkType uint8

const (
	// ChunkData carries stream payload bytes.
	ChunkData ChunkType = 1
	// ChunkFIN terminates a stream cleanly. Its payload is empty.
	ChunkFIN ChunkType = 2
	// ChunkError aborts a stream: the sender hit a mid-stream failure
	// and the bytes so far must be discarded. Its payload is the error
	// message.
	ChunkError ChunkType = 3
)

// ChunkHeader is the fixed per-chunk header: type (1) plus stream
// sequence number (8).
const ChunkHeader = 1 + 8

// DefaultChunkSize is the stream transfer granularity: large enough to
// amortize per-record cost, small enough to stay cache-resident through
// the seal/copy/open pipeline.
const DefaultChunkSize = 256 << 10

// MaxChunkPayload caps a single chunk's payload; oversized chunks are
// rejected at reassembly before any copying.
const MaxChunkPayload = DefaultChunkSize

// MaxErrorPayload bounds the message an ERROR chunk may carry.
const MaxErrorPayload = 4 << 10

// truncateOnRune caps b at max bytes without splitting a multi-byte
// UTF-8 rune: if the cut would land mid-sequence, it backs up to the
// preceding rune boundary so the receiver always sees valid UTF-8.
func truncateOnRune(b []byte, max int) []byte {
	if len(b) <= max {
		return b
	}
	cut := max
	for cut > 0 && max-cut < 3 && b[cut]&0xC0 == 0x80 {
		cut--
	}
	return b[:cut]
}

// AppendChunk appends one chunk record (header plus payload) to dst.
func AppendChunk(dst []byte, typ ChunkType, seq uint64, payload []byte) []byte {
	var hdr [ChunkHeader]byte
	hdr[0] = byte(typ)
	binary.BigEndian.PutUint64(hdr[1:], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ParseChunk splits a chunk record into its parts; payload is a view
// into rec.
func ParseChunk(rec []byte) (typ ChunkType, seq uint64, payload []byte, err error) {
	if len(rec) < ChunkHeader {
		return 0, 0, nil, errors.New("record: truncated chunk header")
	}
	typ = ChunkType(rec[0])
	seq = binary.BigEndian.Uint64(rec[1:])
	return typ, seq, rec[ChunkHeader:], nil
}

// PeerError is the reassembled form of an ERROR chunk: the peer aborted
// the stream mid-flight and reported why.
type PeerError struct{ Msg string }

func (e *PeerError) Error() string { return "record: peer aborted stream: " + e.Msg }

// ErrStreamTerminated reports chunk traffic on a stream that already
// saw its terminal record.
var ErrStreamTerminated = errors.New("record: stream already terminated")

// ChunkSender tracks the send half of one stream: it stamps strictly
// increasing sequence numbers and enforces single termination.
type ChunkSender struct {
	seq  uint64
	done bool
}

// AppendData appends a DATA chunk for payload to dst.
func (s *ChunkSender) AppendData(dst, payload []byte) ([]byte, error) {
	if s.done {
		return dst, ErrStreamTerminated
	}
	if len(payload) > MaxChunkPayload {
		return dst, fmt.Errorf("record: chunk payload %d exceeds %d", len(payload), MaxChunkPayload)
	}
	out := AppendChunk(dst, ChunkData, s.seq, payload)
	s.seq++
	return out, nil
}

// AppendFIN appends the terminal FIN record to dst.
func (s *ChunkSender) AppendFIN(dst []byte) ([]byte, error) {
	if s.done {
		return dst, ErrStreamTerminated
	}
	s.done = true
	return AppendChunk(dst, ChunkFIN, s.seq, nil), nil
}

// AppendError appends a terminal ERROR record carrying msg to dst.
func (s *ChunkSender) AppendError(dst []byte, msg string) ([]byte, error) {
	if s.done {
		return dst, ErrStreamTerminated
	}
	s.done = true
	return AppendChunk(dst, ChunkError, s.seq, truncateOnRune([]byte(msg), MaxErrorPayload)), nil
}

// Terminated reports whether the sender has sent its terminal record.
func (s *ChunkSender) Terminated() bool { return s.done }

// AppendErrorChunk appends an ERROR record carrying msg (rune-safely
// truncated to MaxErrorPayload) under an explicit sequence number — the
// striped sender's stateless sibling of AppendError, where the global
// sequence counter lives outside any one ChunkSender.
func AppendErrorChunk(dst []byte, seq uint64, msg string) []byte {
	return AppendChunk(dst, ChunkError, seq, truncateOnRune([]byte(msg), MaxErrorPayload))
}

// Assembler validates the receive half of one stream: chunks must
// arrive with strictly sequential sequence numbers, respect the payload
// caps, and terminate exactly once. Any violation poisons the stream —
// every later Accept returns the same error.
type Assembler struct {
	next uint64
	fin  bool
	err  error
}

// Accept consumes one chunk record. For DATA chunks it returns the
// payload view (aliasing rec — consume before releasing the record
// buffer); for the FIN record it returns fin=true; an ERROR record
// surfaces as a *PeerError. Truncation, sequence gaps or replays,
// duplicate termination, oversized payloads, and unknown chunk types
// all fail.
func (a *Assembler) Accept(rec []byte) (payload []byte, fin bool, err error) {
	if a.err != nil {
		return nil, false, a.err
	}
	if a.fin {
		a.err = ErrStreamTerminated
		return nil, false, a.err
	}
	typ, seq, body, err := ParseChunk(rec)
	if err != nil {
		a.err = err
		return nil, false, err
	}
	// An ERROR record is the peer's abort reason: on out-of-order
	// carriage (striping, GT3 per-call records) it can legitimately
	// overtake DATA chunks, so classify it before enforcing ordering —
	// otherwise the caller sees a bogus sequence-gap error instead of
	// why the peer actually aborted.
	if typ == ChunkError {
		a.err = &PeerError{Msg: string(truncateOnRune(body, MaxErrorPayload))}
		return nil, false, a.err
	}
	if seq != a.next {
		a.err = fmt.Errorf("record: chunk sequence %d, want %d (lost, replayed, or reordered chunk)", seq, a.next)
		return nil, false, a.err
	}
	switch typ {
	case ChunkData:
		if len(body) > MaxChunkPayload {
			a.err = fmt.Errorf("record: chunk payload %d exceeds %d", len(body), MaxChunkPayload)
			return nil, false, a.err
		}
		a.next++
		return body, false, nil
	case ChunkFIN:
		if len(body) != 0 {
			a.err = errors.New("record: FIN record carries payload")
			return nil, false, a.err
		}
		a.next++
		a.fin = true
		return nil, true, nil
	default:
		a.err = fmt.Errorf("record: unknown chunk type %d", typ)
		return nil, false, a.err
	}
}

// Done reports whether the stream terminated cleanly (FIN accepted).
func (a *Assembler) Done() bool { return a.fin }

// Err returns the poisoning error, if any.
func (a *Assembler) Err() error { return a.err }
