package record

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// pipeRoundTrip pushes payloads through a seal pipeline into an
// in-memory wire, then pulls them back through an open pipeline, and
// returns the reassembled byte stream.
func pipeRoundTrip(t *testing.T, workers, window int, payloads [][]byte) []byte {
	t.Helper()
	p, q := newTestPair(t)
	var wire bytes.Buffer
	var wireMu sync.Mutex
	sink := func(frames [][]byte) error {
		wireMu.Lock()
		defer wireMu.Unlock()
		for _, f := range frames {
			wire.Write(f)
		}
		return nil
	}
	pl := NewPipeline(p, workers, window, sink)
	hr := Headroom(p)
	for _, pt := range payloads {
		buf := Get(hr + len(pt) + p.WrapOverhead())
		copy(buf.B[hr:], pt)
		if err := pl.Submit(buf, len(pt)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}

	op := NewOpenPipeline(q, workers, window)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for {
			pt, buf, ok, err := op.Next()
			if err != nil {
				done <- err
				return
			}
			if !ok {
				return
			}
			out.Write(pt)
			buf.Free()
		}
	}()
	for {
		token, buf, err := ReadSealed(&wire, 0, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Submit(token, buf); err != nil {
			t.Fatal(err)
		}
	}
	op.CloseSubmit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// The pipeline must reproduce exactly the byte stream the serial path
// would have: submission order == wire order == delivery order, across
// worker counts and window sizes.
func TestPipelineRoundTripOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var payloads [][]byte
	var want bytes.Buffer
	for i := 0; i < 200; i++ {
		n := rng.Intn(8 << 10)
		pt := make([]byte, n)
		rng.Read(pt)
		payloads = append(payloads, pt)
		want.Write(pt)
	}
	for _, workers := range []int{1, 4} {
		for _, window := range []int{1, 3, 16} {
			got := pipeRoundTrip(t, workers, window, payloads)
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("workers=%d window=%d: stream corrupted (%d vs %d bytes)",
					workers, window, len(got), want.Len())
			}
		}
	}
}

// A sink failure poisons the pipeline: later Submits fail, Close
// reports the error, and every in-flight buffer is freed (balanced
// pool accounting).
func TestPipelineSinkFailurePoisons(t *testing.T) {
	p := selfPair(t)
	sinkErr := errors.New("wire down")
	calls := 0
	pl := NewPipeline(p, 2, 4, func([][]byte) error {
		calls++
		return sinkErr
	})
	hr := Headroom(p)
	var submitErr error
	for i := 0; i < 64; i++ {
		buf := Get(hr + 100 + p.WrapOverhead())
		if err := pl.Submit(buf, 100); err != nil {
			submitErr = err
			break
		}
	}
	if err := pl.Close(); !errors.Is(err, sinkErr) {
		t.Fatalf("Close() = %v", err)
	}
	if submitErr != nil && !errors.Is(submitErr, sinkErr) {
		t.Fatalf("Submit surfaced %v", submitErr)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after failing", calls)
	}
}

// A tampered record fails the open pipeline with the AEAD error, not a
// hang or a reorder.
func TestOpenPipelineTamperRejected(t *testing.T) {
	p, q := newTestPair(t)
	var wire bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := SealAndWrite(&wire, p, []byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	raw := wire.Bytes()
	raw[len(raw)-1] ^= 0x40 // corrupt the last record's tag

	op := NewOpenPipeline(q, 2, 4)
	var firstErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, buf, ok, err := op.Next()
			if err != nil {
				firstErr = err
				return
			}
			if !ok {
				return
			}
			buf.Free()
		}
	}()
	r := bytes.NewReader(raw)
	for {
		token, buf, err := ReadSealed(r, 0, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Submit(token, buf); err != nil {
			break
		}
	}
	op.CloseSubmit()
	<-done
	if firstErr == nil {
		t.Fatal("tampered record crossed the open pipeline")
	}
}

// Interleaved pipelined records decrypt on the peer's *serial* path
// too: the pipeline changes scheduling, never the wire format.
func TestPipelineWireCompatibleWithSerialRead(t *testing.T) {
	p, q := newTestPair(t)
	var wire bytes.Buffer
	var mu sync.Mutex
	pl := NewPipeline(p, 4, 8, func(frames [][]byte) error {
		mu.Lock()
		defer mu.Unlock()
		for _, f := range frames {
			wire.Write(f)
		}
		return nil
	})
	hr := Headroom(p)
	for i := 0; i < 50; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 1000+i)
		buf := Get(hr + len(msg) + p.WrapOverhead())
		copy(buf.B[hr:], msg)
		if err := pl.Submit(buf, len(msg)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pt, buf, err := Read(&wire, q, 0, 0)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(pt) != 1000+i || pt[0] != byte(i) {
			t.Fatalf("record %d corrupted", i)
		}
		buf.Free()
	}
}
