package record

import (
	"errors"
	"fmt"
)

// Striped reassembly: one logical stream fanned across K independent
// record connections (GridFTP parallel striping). Each DATA chunk
// carries its *global* stream sequence number, stamped by the sender
// before fan-out, so per-connection record protection still covers the
// ordering info while chunks from different stripes interleave
// arbitrarily at the receiver. The strictly sequential Assembler is
// correct per connection but fatal across them — StripeAssembler is
// its windowed sibling.
//
// Termination invariant (the FIN trailer): every stripe ends with a
// FIN record whose sequence field carries the transfer's *total* DATA
// chunk count (the same convention as the single-stream path, where
// FIN.seq equals the number of chunks sent). The stream completes only
// when (a) every chunk in [0, total) has been delivered and (b) all K
// stripes have FINed with the *same* total. A stripe that dies before
// its FIN therefore always surfaces as an error — a dropped stripe can
// never silently truncate a file, because the surviving FINs pin the
// expected chunk population.

// DefaultStripeWindow bounds the reassembly look-ahead per stripe
// direction: how far (in chunks) the fastest stripe may run ahead of
// the slowest before the receiver calls foul. Window × chunk size
// bounds reassembly memory: 64 × 256 KiB = 16 MiB.
const DefaultStripeWindow = 64

// ErrStripeWindowExceeded reports a chunk so far ahead of the delivery
// cursor that buffering it would exceed the reassembly window — either
// a stalled stripe or a peer ignoring the window contract.
var ErrStripeWindowExceeded = errors.New("record: stripe reassembly window exceeded")

type stripeChunk struct {
	payload []byte
	buf     *Buf
}

// StripeAssembler reassembles one logical stream from K stripes. Not
// safe for concurrent use — the striped reader serializes Accept/Pop
// under its own lock (it must coordinate K reader goroutines anyway).
type StripeAssembler struct {
	stripes int
	window  int

	next     uint64 // next sequence number to deliver
	total    uint64 // FIN-declared DATA chunk count
	totalSet bool
	fins     int
	buffered map[uint64]stripeChunk
	err      error
}

// NewStripeAssembler builds an assembler for the given stripe count and
// look-ahead window (0 = DefaultStripeWindow).
func NewStripeAssembler(stripes, window int) *StripeAssembler {
	if window <= 0 {
		window = DefaultStripeWindow
	}
	return &StripeAssembler{
		stripes:  stripes,
		window:   window,
		buffered: make(map[uint64]stripeChunk),
	}
}

// Accept consumes one chunk record arriving on any stripe. buf is the
// pooled buffer backing rec; when a DATA chunk is accepted its
// ownership transfers to the assembler (returned later by Pop, or
// freed by Release). On error, and for FIN records (which carry no
// payload worth retaining), ownership stays with the caller.
// Violations poison the assembler.
func (a *StripeAssembler) Accept(rec []byte, buf *Buf) error {
	if a.err != nil {
		return a.err
	}
	if a.Done() {
		a.err = ErrStreamTerminated
		return a.err
	}
	typ, seq, body, err := ParseChunk(rec)
	if err != nil {
		a.err = err
		return err
	}
	switch typ {
	case ChunkError:
		// Terminal abort: classify before any ordering/window checks —
		// on striped carriage it legitimately overtakes DATA chunks.
		a.err = &PeerError{Msg: string(truncateOnRune(body, MaxErrorPayload))}
		return a.err
	case ChunkData:
		if len(body) > MaxChunkPayload {
			a.err = fmt.Errorf("record: chunk payload %d exceeds %d", len(body), MaxChunkPayload)
			return a.err
		}
		if seq < a.next {
			a.err = fmt.Errorf("record: stripe chunk %d replayed (delivery cursor %d)", seq, a.next)
			return a.err
		}
		if a.totalSet && seq >= a.total {
			a.err = fmt.Errorf("record: stripe chunk %d beyond FIN-declared total %d", seq, a.total)
			return a.err
		}
		if seq >= a.next+uint64(a.window) {
			a.err = fmt.Errorf("%w: chunk %d, cursor %d, window %d", ErrStripeWindowExceeded, seq, a.next, a.window)
			return a.err
		}
		if _, dup := a.buffered[seq]; dup {
			a.err = fmt.Errorf("record: stripe chunk %d duplicated", seq)
			return a.err
		}
		a.buffered[seq] = stripeChunk{payload: body, buf: buf}
		return nil
	case ChunkFIN:
		if len(body) != 0 {
			a.err = errors.New("record: FIN record carries payload")
			return a.err
		}
		if a.totalSet && seq != a.total {
			a.err = fmt.Errorf("record: stripe FIN totals disagree: %d then %d", a.total, seq)
			return a.err
		}
		if !a.totalSet {
			// A FIN can arrive before the chunks it accounts for, but a
			// total below what we've already seen is a lie.
			for s := range a.buffered {
				if s >= seq {
					a.err = fmt.Errorf("record: stripe chunk %d beyond FIN-declared total %d", s, seq)
					return a.err
				}
			}
			if a.next > seq {
				a.err = fmt.Errorf("record: delivered %d chunks, FIN declares %d", a.next, seq)
				return a.err
			}
			a.total = seq
			a.totalSet = true
		}
		a.fins++
		if a.fins > a.stripes {
			a.err = fmt.Errorf("record: %d FINs on %d stripes", a.fins, a.stripes)
			return a.err
		}
		return nil
	default:
		a.err = fmt.Errorf("record: unknown chunk type %d", typ)
		return a.err
	}
}

// Pop returns the next in-order payload, transferring its backing Buf
// to the caller (Free after consuming). ok is false when the chunk at
// the delivery cursor has not arrived yet (or the stream is done or
// poisoned).
func (a *StripeAssembler) Pop() (payload []byte, buf *Buf, ok bool) {
	if a.err != nil {
		return nil, nil, false
	}
	c, found := a.buffered[a.next]
	if !found {
		return nil, nil, false
	}
	delete(a.buffered, a.next)
	a.next++
	return c.payload, c.buf, true
}

// Fits reports whether a DATA chunk with the given sequence number is
// within the current reassembly window (or behind the cursor, where
// Accept produces the replay error). A cooperating receiver parks the
// stripe until Fits holds instead of feeding Accept a violation — the
// window is flow control for a receiver that coordinates its stripes,
// and a protocol offense only for a peer that cannot be paused.
func (a *StripeAssembler) Fits(seq uint64) bool {
	return seq < a.next+uint64(a.window)
}

// Done reports clean completion: every chunk in [0, total) delivered
// and all stripes FINed with an agreeing total.
func (a *StripeAssembler) Done() bool {
	return a.err == nil && a.totalSet && a.next == a.total &&
		len(a.buffered) == 0 && a.fins == a.stripes
}

// Err returns the poisoning error, if any.
func (a *StripeAssembler) Err() error { return a.err }

// Pending reports how many chunks are buffered ahead of the cursor.
func (a *StripeAssembler) Pending() int { return len(a.buffered) }

// FINs reports how many stripes have FINed so far.
func (a *StripeAssembler) FINs() int { return a.fins }

// Release frees every buffered chunk (teardown after an error).
func (a *StripeAssembler) Release() {
	for s, c := range a.buffered {
		c.buf.Free()
		delete(a.buffered, s)
	}
}
