// Package record is the secure record layer shared by both grid
// transports: length-prefixed framing plus context protection over
// pooled, size-classed buffers. One record = one frame = one protected
// message; the layer seals and opens in place so the steady-state data
// path performs no per-record allocation and at most the cryptographic
// pass over the payload.
//
// Buffer-ownership rules (see DESIGN.md "Record layer & streaming"):
// every Buf obtained from Get must be released with exactly one Free;
// plaintext views returned by Read alias the Buf and die with it; a
// caller that retains bytes past Free must copy them first.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// FramePrefix is the length prefix every record carries on the wire.
const FramePrefix = 4

// MaxRecord caps a single record's announced payload, mirroring
// wire.MaxField so the two framings stay interchangeable.
const MaxRecord = 1 << 24

// Protector seals and opens record payloads under an established
// security context. gss.Context implements it; the indirection keeps
// this package free of the handshake layers above it.
type Protector interface {
	// WrapInto appends a protection token for plaintext to dst. Passing
	// dst ending exactly where plaintext begins minus WrapPrefix bytes
	// seals in place (see gss.Context.WrapInto).
	WrapInto(dst, plaintext []byte) ([]byte, error)
	// UnwrapInPlace opens a token, decrypting into the token's own
	// storage and returning the plaintext view.
	UnwrapInPlace(token []byte) ([]byte, error)
	// WrapPrefix is the header WrapInto prepends before the ciphertext.
	WrapPrefix() int
	// WrapOverhead is the token's total expansion over the plaintext.
	WrapOverhead() int
}

// Headroom returns the bytes to reserve at the front of an assembly
// buffer so WriteAssembled can frame and protect the payload in place.
func Headroom(p Protector) int { return FramePrefix + p.WrapPrefix() }

// --- pooled size-classed buffers ----------------------------------------

// classSizes are the pooled buffer capacities, chosen for the layer's
// workloads: small control messages, typical exchange payloads, the
// 64 KiB frame-read step, a full stream chunk record
// (DefaultChunkSize + headers), and two large classes for oversized
// whole-message shims. Requests beyond the largest class allocate
// unpooled.
var classSizes = [...]int{
	512,
	4 << 10,
	64 << 10,
	DefaultChunkSize + 4096,
	1 << 20,
	4 << 20,
}

var pools [len(classSizes)]sync.Pool

// Pool-pressure accounting, process-wide: a Get that finds its class
// pool empty allocates (a miss), a request beyond the largest class
// allocates unpooled (oversize). The counters are plain atomics so the
// hot path cost is one uncontended add per operation; telemetry
// exports them as scrape-time samples.
var (
	poolGets     atomic.Uint64
	poolMisses   atomic.Uint64
	poolOversize atomic.Uint64
	poolFrees    atomic.Uint64
)

// Stats is a snapshot of the buffer-pool pressure counters.
type Stats struct {
	// Gets counts every Get call, pooled or not.
	Gets uint64
	// Misses counts Gets that found their size-class pool empty and
	// allocated a fresh buffer.
	Misses uint64
	// Oversize counts Gets beyond the largest size class (unpooled
	// allocations that never return to a pool).
	Oversize uint64
	// Frees counts buffers returned to their pool.
	Frees uint64
}

// PoolStats snapshots the pool-pressure counters.
func PoolStats() Stats {
	return Stats{
		Gets:     poolGets.Load(),
		Misses:   poolMisses.Load(),
		Oversize: poolOversize.Load(),
		Frees:    poolFrees.Load(),
	}
}

// Buf is a pooled byte buffer. B always spans the full backing capacity;
// callers slice it as needed and must not grow it past cap.
type Buf struct {
	B     []byte
	class int8 // index into classSizes; -1 for unpooled
}

// Get returns a buffer with at least n usable bytes. Buffers come from
// per-size-class pools; callers must release them with Free exactly once.
func Get(n int) *Buf {
	poolGets.Add(1)
	for i, size := range classSizes {
		if n <= size {
			if b, ok := pools[i].Get().(*Buf); ok {
				return b
			}
			poolMisses.Add(1)
			return &Buf{B: make([]byte, size), class: int8(i)}
		}
	}
	poolOversize.Add(1)
	return &Buf{B: make([]byte, n), class: -1}
}

// Free returns the buffer to its pool. The caller must not touch B (or
// any view into it) afterwards. Free on nil is a no-op so cleanup paths
// can run unconditionally.
func (b *Buf) Free() {
	if b == nil || b.class < 0 {
		return
	}
	poolFrees.Add(1)
	pools[b.class].Put(b)
}

// --- sealed record I/O ---------------------------------------------------

// ErrFrameTooLarge reports a record whose announced length exceeds the
// reader's cap.
var ErrFrameTooLarge = errors.New("record: frame exceeds cap")

// WriteAssembled protects and writes a record whose plaintext was
// assembled at offset Headroom(p) of frame (the headroom holds the
// frame and wrap headers). Protection is applied in place and the
// complete frame leaves in a single Write, provided frame has
// p.WrapOverhead()-p.WrapPrefix() spare capacity; a caller that
// under-sized the buffer still gets a correct (two-write) frame.
func WriteAssembled(w io.Writer, p Protector, frame []byte) error {
	hr := FramePrefix + p.WrapPrefix()
	if len(frame) < hr {
		return fmt.Errorf("record: assembled frame of %d bytes is shorter than its %d-byte headroom", len(frame), hr)
	}
	token, err := p.WrapInto(frame[FramePrefix:FramePrefix], frame[hr:])
	if err != nil {
		return err
	}
	if len(token) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(token))
	}
	if &token[0] == &frame[FramePrefix] {
		// In-place seal: the frame is contiguous, one write suffices.
		binary.BigEndian.PutUint32(frame[:FramePrefix], uint32(len(token)))
		_, err = w.Write(frame[:FramePrefix+len(token)])
		return err
	}
	// The wrap grew past the buffer (caller under-sized it): frame the
	// relocated token with a separate header write.
	var hdr [FramePrefix]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(token)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(token)
	return err
}

// SealAndWrite protects an externally supplied plaintext: the token is
// sealed into a pooled frame buffer (one cryptographic pass, no
// intermediate copy) and written with a single Write.
func SealAndWrite(w io.Writer, p Protector, plaintext []byte) error {
	buf := Get(FramePrefix + len(plaintext) + p.WrapOverhead())
	defer buf.Free()
	token, err := p.WrapInto(buf.B[FramePrefix:FramePrefix], plaintext)
	if err != nil {
		return err
	}
	if len(token) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(token))
	}
	if &token[0] == &buf.B[FramePrefix] {
		binary.BigEndian.PutUint32(buf.B[:FramePrefix], uint32(len(token)))
		_, err = w.Write(buf.B[:FramePrefix+len(token)])
		return err
	}
	var hdr [FramePrefix]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(token)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(token)
	return err
}

// Read reads one record into a pooled buffer and opens it in place,
// returning the plaintext view together with the Buf that backs it —
// the caller owns the Buf and must Free it once the view is consumed.
// maxFrame caps the announced record length (0 means MaxRecord);
// sizeHint pre-sizes the pooled buffer so well-known record sizes
// (stream chunks, exchange replies) avoid growth copies, while hostile
// length prefixes never force more allocation than the bytes that
// actually arrive (the buffer grows through the size classes
// incrementally).
func Read(r io.Reader, p Protector, maxFrame, sizeHint int) ([]byte, *Buf, error) {
	token, buf, err := ReadSealed(r, maxFrame, sizeHint)
	if err != nil {
		return nil, nil, err
	}
	pt, err := p.UnwrapInPlace(token)
	if err != nil {
		buf.Free()
		return nil, nil, err
	}
	return pt, buf, nil
}

// ReadSealed reads one record's protection token without opening it,
// returning the token view and the pooled Buf that backs it. It is the
// frame half of Read, split out for the pipelined receive path: the
// reader goroutine pulls sealed tokens off the wire in order while
// worker goroutines do the cryptographic open. Caps and growth rules
// match Read.
func ReadSealed(r io.Reader, maxFrame, sizeHint int) ([]byte, *Buf, error) {
	// The header is read into a pooled buffer (a stack array would
	// escape through the io.Reader interface and cost an allocation per
	// record), which small records then reuse as their payload buffer.
	buf := Get(FramePrefix)
	if _, err := io.ReadFull(r, buf.B[:FramePrefix]); err != nil {
		buf.Free()
		return nil, nil, err
	}
	n := int(binary.BigEndian.Uint32(buf.B))
	if maxFrame <= 0 || maxFrame > MaxRecord {
		maxFrame = MaxRecord
	}
	if n > maxFrame {
		buf.Free()
		return nil, nil, fmt.Errorf("%w: announced %d bytes, cap %d", ErrFrameTooLarge, n, maxFrame)
	}
	if n > len(buf.B) {
		first := n
		if hint := max(sizeHint, 64<<10); first > hint {
			first = hint
		}
		buf.Free()
		buf = Get(first)
	}
	filled := 0
	for {
		limit := min(len(buf.B), n)
		if _, err := io.ReadFull(r, buf.B[filled:limit]); err != nil {
			buf.Free()
			return nil, nil, err
		}
		filled = limit
		if filled == n {
			break
		}
		next := Get(min(2*len(buf.B), n))
		copy(next.B, buf.B[:filled])
		buf.Free()
		buf = next
	}
	return buf.B[:n], buf, nil
}
