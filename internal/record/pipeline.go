package record

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
)

// Pipelined seal/open: the single-connection multicore path. The
// record protocol requires wire order to equal sequence order, which a
// lock around the whole seal trivially guarantees — at the price of one
// core. The pipeline splits the two concerns: sequence numbers are
// *reserved* in submission order (cheap, on the submitting goroutine),
// the AEAD work runs on worker goroutines in parallel, and a writer
// reassembles completed frames back into submission order before they
// touch the wire. Record N+1 seals while record N is in flight; the
// peer observes exactly the byte stream the serial path would have
// produced.

// PipelinedProtector is the explicit-sequence extension of Protector
// that the pipeline needs. gss.Context implements it.
type PipelinedProtector interface {
	Protector
	// ReserveWrap claims the next wrap sequence number, in submission
	// order, without sealing.
	ReserveWrap() (uint64, error)
	// WrapAtInto seals under a reserved sequence number; safe for
	// concurrent use across distinct reservations.
	WrapAtInto(seq uint64, dst, plaintext []byte) ([]byte, error)
	// ReserveUnwrap validates a token's framing and admits its sequence
	// number through the anti-replay cursor without decrypting.
	ReserveUnwrap(token []byte) (seq uint64, ct []byte, err error)
	// UnwrapAtInPlace decrypts a token admitted by ReserveUnwrap; safe
	// for concurrent use across distinct reservations.
	UnwrapAtInPlace(seq uint64, ct []byte) ([]byte, error)
}

// DefaultPipelineWindow bounds how many records may be in flight
// (reserved but not yet written) in a pipeline. Window × chunk size is
// the memory bound: 16 × 256 KiB = 4 MiB per direction.
const DefaultPipelineWindow = 16

// PipelineWorkers picks a worker count for n requested workers: n if
// positive, else one per core capped at 8 (past that the memory bus,
// not the AES units, is the limiter for GCM).
func PipelineWorkers(n int) int {
	if n > 0 {
		return n
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

type sealTask struct {
	seq   uint64
	buf   *Buf
	n     int // plaintext length at offset Headroom
	frame []byte
	err   error
	done  chan struct{}
}

// Pipeline is the seal half: Submit hands it assembled plaintext
// frames, workers seal them concurrently, and completed frames reach
// the sink — batched, in submission order — ready for a vectored
// write. A Pipeline serves one Protector send direction; submissions
// must come from one goroutine. Any failure poisons the pipeline (and
// with it the connection: a reserved-but-unsent sequence number is a
// hole the peer's opener would refuse anyway).
type Pipeline struct {
	p      PipelinedProtector
	sink   func(frames [][]byte) error
	tasks  chan *sealTask
	order  chan *sealTask
	wg     sync.WaitGroup
	wrDone chan struct{}

	mu  sync.Mutex
	err error
}

// maxFlushBatch caps how many frames one sink call may carry (the
// writev iovec budget).
const maxFlushBatch = 32

// NewPipeline starts a seal pipeline with the given worker count
// (0 = PipelineWorkers default) and in-flight window (0 =
// DefaultPipelineWindow). sink is called from the writer goroutine
// only, with frames in strict submission order.
func NewPipeline(p PipelinedProtector, workers, window int, sink func(frames [][]byte) error) *Pipeline {
	workers = PipelineWorkers(workers)
	if window <= 0 {
		window = DefaultPipelineWindow
	}
	pl := &Pipeline{
		p:      p,
		sink:   sink,
		tasks:  make(chan *sealTask, window),
		order:  make(chan *sealTask, window),
		wrDone: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		pl.wg.Add(1)
		go pl.worker()
	}
	go pl.writer()
	return pl
}

func (pl *Pipeline) fail(err error) {
	pl.mu.Lock()
	if pl.err == nil {
		pl.err = err
	}
	pl.mu.Unlock()
}

// Err returns the first pipeline failure, if any.
func (pl *Pipeline) Err() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.err
}

// Submit hands the pipeline one frame: plaintext of n bytes assembled
// at offset Headroom(p) of buf, with WrapOverhead-WrapPrefix spare tail
// capacity (any Get(Headroom+n+WrapOverhead) buffer qualifies).
// Ownership of buf transfers to the pipeline, which frees it after the
// frame is written. Submit blocks when the in-flight window is full —
// that backpressure is the pipeline's memory bound.
func (pl *Pipeline) Submit(buf *Buf, n int) error {
	if err := pl.Err(); err != nil {
		buf.Free()
		return err
	}
	seq, err := pl.p.ReserveWrap()
	if err != nil {
		buf.Free()
		pl.fail(err)
		return err
	}
	t := &sealTask{seq: seq, buf: buf, n: n, done: make(chan struct{})}
	// The order channel is the window: it fills in submission order and
	// the writer drains it in the same order.
	pl.order <- t
	pl.tasks <- t
	return nil
}

func (pl *Pipeline) worker() {
	defer pl.wg.Done()
	hr := FramePrefix + pl.p.WrapPrefix()
	for t := range pl.tasks {
		token, err := pl.p.WrapAtInto(t.seq, t.buf.B[FramePrefix:FramePrefix], t.buf.B[hr:hr+t.n])
		switch {
		case err != nil:
			t.err = err
		case len(token) > MaxRecord:
			t.err = fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(token))
		case &token[0] == &t.buf.B[FramePrefix]:
			binary.BigEndian.PutUint32(t.buf.B[:FramePrefix], uint32(len(token)))
			t.frame = t.buf.B[:FramePrefix+len(token)]
		default:
			// The wrap outgrew the buffer (under-sized submission):
			// relocate into a correctly sized frame.
			nb := Get(FramePrefix + len(token))
			binary.BigEndian.PutUint32(nb.B[:FramePrefix], uint32(len(token)))
			copy(nb.B[FramePrefix:], token)
			t.buf.Free()
			t.buf = nb
			t.frame = nb.B[:FramePrefix+len(token)]
		}
		close(t.done)
	}
}

// writer drains completed tasks in submission order, batching every
// consecutively ready frame into one sink call.
func (pl *Pipeline) writer() {
	defer close(pl.wrDone)
	frames := make([][]byte, 0, maxFlushBatch)
	bufs := make([]*Buf, 0, maxFlushBatch)
	flush := func() {
		if len(frames) > 0 && pl.Err() == nil {
			if err := pl.sink(frames); err != nil {
				pl.fail(err)
			}
		}
		for _, b := range bufs {
			b.Free()
		}
		frames, bufs = frames[:0], bufs[:0]
	}
	collect := func(t *sealTask) {
		<-t.done
		if t.err != nil {
			pl.fail(t.err)
			t.buf.Free()
			return
		}
		frames = append(frames, t.frame)
		bufs = append(bufs, t.buf)
	}
	var carry *sealTask
	for {
		var t *sealTask
		if carry != nil {
			t, carry = carry, nil
		} else {
			var ok bool
			if t, ok = <-pl.order; !ok {
				flush()
				return
			}
		}
		collect(t)
		// Opportunistically batch successors that are already sealed;
		// stop at the first unfinished one so a slow worker never holds
		// finished frames off the wire.
	batching:
		for len(frames) < maxFlushBatch {
			select {
			case t2, ok := <-pl.order:
				if !ok {
					flush()
					return
				}
				select {
				case <-t2.done:
					collect(t2)
				default:
					carry = t2
					break batching
				}
			default:
				break batching
			}
		}
		flush()
	}
}

// Close flushes and stops the pipeline, returning its first error.
// Submit must not be called after (or concurrently with) Close.
func (pl *Pipeline) Close() error {
	close(pl.tasks)
	pl.wg.Wait()
	close(pl.order)
	<-pl.wrDone
	return pl.Err()
}

// --- open pipeline -------------------------------------------------------

type openTask struct {
	seq  uint64
	ct   []byte
	buf  *Buf
	pt   []byte
	err  error
	done chan struct{}
}

// OpenPipeline is the receive half: the reading goroutine Submits
// sealed tokens in arrival order (which reserves their sequence numbers
// through the anti-replay cursor immediately, preserving the serial
// path's replay/reorder detection), workers decrypt concurrently, and
// Next returns plaintexts in exactly arrival order. One goroutine
// submits, one consumes; they may be the same goroutine only if it
// never lets more than the window build up.
type OpenPipeline struct {
	p     PipelinedProtector
	tasks chan *openTask
	order chan *openTask
	wg    sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewOpenPipeline starts an open pipeline (workers/window as in
// NewPipeline).
func NewOpenPipeline(p PipelinedProtector, workers, window int) *OpenPipeline {
	workers = PipelineWorkers(workers)
	if window <= 0 {
		window = DefaultPipelineWindow
	}
	pl := &OpenPipeline{
		p:     p,
		tasks: make(chan *openTask, window),
		order: make(chan *openTask, window),
	}
	for i := 0; i < workers; i++ {
		pl.wg.Add(1)
		go pl.worker()
	}
	return pl
}

func (pl *OpenPipeline) fail(err error) {
	pl.mu.Lock()
	if pl.err == nil {
		pl.err = err
	}
	pl.mu.Unlock()
}

// Err returns the first pipeline failure, if any.
func (pl *OpenPipeline) Err() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.err
}

// Submit hands the pipeline one sealed token (a ReadSealed result);
// ownership of buf transfers with it. Blocks when the window is full.
func (pl *OpenPipeline) Submit(token []byte, buf *Buf) error {
	if err := pl.Err(); err != nil {
		buf.Free()
		return err
	}
	seq, ct, err := pl.p.ReserveUnwrap(token)
	if err != nil {
		buf.Free()
		pl.fail(err)
		return err
	}
	t := &openTask{seq: seq, ct: ct, buf: buf, done: make(chan struct{})}
	pl.order <- t
	pl.tasks <- t
	return nil
}

func (pl *OpenPipeline) worker() {
	defer pl.wg.Done()
	for t := range pl.tasks {
		t.pt, t.err = pl.p.UnwrapAtInPlace(t.seq, t.ct)
		close(t.done)
	}
}

// Next returns the next plaintext in arrival order together with its
// backing Buf (owned by the caller, Free after consuming). ok is false
// once the pipeline is closed and drained.
func (pl *OpenPipeline) Next() (pt []byte, buf *Buf, ok bool, err error) {
	t, open := <-pl.order
	if !open {
		return nil, nil, false, pl.Err()
	}
	<-t.done
	if t.err != nil {
		t.buf.Free()
		pl.fail(t.err)
		return nil, nil, false, t.err
	}
	return t.pt, t.buf, true, nil
}

// CloseSubmit ends the submission side; Next drains the remainder and
// then reports ok=false. Call from the submitting goroutine.
func (pl *OpenPipeline) CloseSubmit() {
	close(pl.tasks)
	close(pl.order)
}

// Drain consumes and frees everything still in flight (after a
// consumer-side abort). Must follow CloseSubmit.
func (pl *OpenPipeline) Drain() {
	for {
		_, buf, ok, _ := pl.Next()
		if !ok {
			return
		}
		buf.Free()
	}
}
