package record

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// mkChunk builds a chunk record backed by a pooled Buf, the way a
// stripe reader hands them to the assembler.
func mkChunk(typ ChunkType, seq uint64, payload []byte) ([]byte, *Buf) {
	buf := Get(ChunkHeader + len(payload))
	rec := AppendChunk(buf.B[:0], typ, seq, payload)
	return rec, buf
}

type stripeRec struct {
	typ ChunkType
	seq uint64
	pl  []byte
}

// feedAll pushes records into the assembler, popping deliverable chunks
// into out as they become ready (the striped reader's loop shape).
func feedAll(t *testing.T, a *StripeAssembler, recs []stripeRec, out *bytes.Buffer) error {
	t.Helper()
	for _, r := range recs {
		rec, buf := mkChunk(r.typ, r.seq, r.pl)
		if err := a.Accept(rec, buf); err != nil {
			buf.Free()
			a.Release()
			return err
		}
		for {
			pl, b, ok := a.Pop()
			if !ok {
				break
			}
			out.Write(pl)
			b.Free()
		}
	}
	return nil
}

func TestStripeAssemblerReordersAcrossStripes(t *testing.T) {
	// 8 chunks fanned over 3 stripes, arriving in a shuffled order with
	// each stripe's FIN (total=8) mixed in.
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 10+i) }
	var recs []stripeRec
	for i := 0; i < 8; i++ {
		recs = append(recs, stripeRec{ChunkData, uint64(i), payload(i)})
	}
	for s := 0; s < 3; s++ {
		recs = append(recs, stripeRec{ChunkFIN, 8, nil})
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]stripeRec(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := NewStripeAssembler(3, 0)
		var out bytes.Buffer
		if err := feedAll(t, a, shuffled, &out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Done() {
			t.Fatalf("trial %d: not done (fins=%d pending=%d)", trial, a.FINs(), a.Pending())
		}
		var want bytes.Buffer
		for i := 0; i < 8; i++ {
			want.Write(payload(i))
		}
		if !bytes.Equal(out.Bytes(), want.Bytes()) {
			t.Fatalf("trial %d: reassembly corrupted", trial)
		}
	}
}

// A stripe that never FINs leaves the stream incomplete — Done stays
// false even though every byte arrived. This is the invariant that
// turns a dropped stripe into a detectable error instead of a silent
// truncation.
func TestStripeAssemblerMissingFINNeverDone(t *testing.T) {
	a := NewStripeAssembler(4, 0)
	var out bytes.Buffer
	for i := 0; i < 6; i++ {
		rec, buf := mkChunk(ChunkData, uint64(i), []byte("x"))
		if err := a.Accept(rec, buf); err != nil {
			t.Fatal(err)
		}
	}
	for {
		_, b, ok := a.Pop()
		if !ok {
			break
		}
		out.Write(nil)
		b.Free()
	}
	for s := 0; s < 3; s++ { // only 3 of 4 stripes FIN
		rec, buf := mkChunk(ChunkFIN, 6, nil)
		if err := a.Accept(rec, buf); err != nil {
			t.Fatal(err)
		}
		buf.Free()
	}
	if a.Done() {
		t.Fatal("stream complete with a missing stripe FIN")
	}
	if a.FINs() != 3 {
		t.Fatalf("FINs = %d", a.FINs())
	}
}

// Silent truncation is impossible: if the chunks a dead stripe carried
// never arrive, the surviving FINs declare a total the cursor can't
// reach; if a FIN lies low, already-seen chunks contradict it.
func TestStripeAssemblerTruncationDetected(t *testing.T) {
	// Chunks 0,1,3,4 arrive (2 died with its stripe); FINs declare 5.
	a := NewStripeAssembler(2, 0)
	for _, seq := range []uint64{0, 1, 3, 4} {
		rec, buf := mkChunk(ChunkData, seq, []byte("d"))
		if err := a.Accept(rec, buf); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 2; s++ {
		rec, buf := mkChunk(ChunkFIN, 5, nil)
		if err := a.Accept(rec, buf); err != nil {
			t.Fatal(err)
		}
		buf.Free()
	}
	for {
		_, b, ok := a.Pop()
		if !ok {
			break
		}
		b.Free()
	}
	if a.Done() {
		t.Fatal("truncated stream reported complete")
	}
	a.Release()

	// A FIN declaring fewer chunks than already delivered is rejected.
	b := NewStripeAssembler(2, 0)
	for _, seq := range []uint64{0, 1, 2} {
		rec, buf := mkChunk(ChunkData, seq, []byte("d"))
		if err := b.Accept(rec, buf); err != nil {
			t.Fatal(err)
		}
	}
	rec, buf := mkChunk(ChunkFIN, 2, nil)
	if err := b.Accept(rec, buf); err == nil {
		t.Fatal("FIN below buffered high-water accepted")
	}
	buf.Free()
	b.Release()
}

func TestStripeAssemblerDisagreeingTotals(t *testing.T) {
	a := NewStripeAssembler(2, 0)
	rec, buf := mkChunk(ChunkFIN, 10, nil)
	if err := a.Accept(rec, buf); err != nil {
		t.Fatal(err)
	}
	buf.Free()
	rec, buf = mkChunk(ChunkFIN, 11, nil)
	if err := a.Accept(rec, buf); err == nil {
		t.Fatal("disagreeing FIN totals accepted")
	}
	buf.Free()
}

func TestStripeAssemblerViolations(t *testing.T) {
	type step struct {
		typ ChunkType
		seq uint64
		pl  []byte
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"duplicate chunk", []step{{ChunkData, 2, []byte("a")}, {ChunkData, 2, []byte("a")}}},
		{"replayed chunk", []step{{ChunkData, 0, []byte("a")}, {ChunkData, 0, []byte("a")}}},
		{"beyond total", []step{{ChunkFIN, 2, nil}, {ChunkData, 5, []byte("x")}}},
		{"window exceeded", []step{{ChunkData, uint64(DefaultStripeWindow), []byte("x")}}},
		{"oversized", []step{{ChunkData, 0, make([]byte, MaxChunkPayload+1)}}},
		{"FIN payload", []step{{ChunkFIN, 0, []byte("x")}}},
		{"unknown type", []step{{ChunkType(9), 0, nil}}},
		{"extra FIN", []step{{ChunkFIN, 0, nil}, {ChunkFIN, 0, nil}, {ChunkFIN, 0, nil}}},
	}
	for _, tc := range cases {
		a := NewStripeAssembler(2, 0)
		var lastErr error
		for _, s := range tc.steps {
			rec, buf := mkChunk(s.typ, s.seq, s.pl)
			lastErr = a.Accept(rec, buf)
			if lastErr != nil {
				buf.Free()
			}
			// Pop chunk 0 in the replay case so seq 0 is behind the cursor.
			if tc.name == "replayed chunk" {
				for {
					_, b, ok := a.Pop()
					if !ok {
						break
					}
					b.Free()
				}
			}
		}
		if lastErr == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if a.Err() == nil {
			t.Fatalf("%s: not poisoned", tc.name)
		}
		a.Release()
	}
}

// An ERROR record from any stripe aborts the stream with the peer's
// reason, even when it overtakes DATA chunks.
func TestStripeAssemblerErrorOvertakes(t *testing.T) {
	a := NewStripeAssembler(3, 0)
	rec, buf := mkChunk(ChunkError, 99, []byte("stripe 2 disk failed"))
	err := a.Accept(rec, buf)
	buf.Free()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Msg != "stripe 2 disk failed" {
		t.Fatalf("stripe abort misclassified: %v", err)
	}
}

// The window releases as the cursor advances: a long stream crosses a
// small window as long as no chunk outruns it by more than the window.
func TestStripeWindowSlides(t *testing.T) {
	a := NewStripeAssembler(1, 4)
	var out bytes.Buffer
	for i := 0; i < 100; i += 2 {
		// Deliver pairs slightly out of order: i+1 before i.
		for _, seq := range []uint64{uint64(i + 1), uint64(i)} {
			rec, buf := mkChunk(ChunkData, seq, []byte(fmt.Sprintf("%03d.", seq)))
			if err := a.Accept(rec, buf); err != nil {
				t.Fatalf("seq %d: %v", seq, err)
			}
		}
		for {
			pl, b, ok := a.Pop()
			if !ok {
				break
			}
			out.Write(pl)
			b.Free()
		}
	}
	rec, buf := mkChunk(ChunkFIN, 100, nil)
	if err := a.Accept(rec, buf); err != nil {
		t.Fatal(err)
	}
	buf.Free()
	if !a.Done() {
		t.Fatal("not done")
	}
	var want bytes.Buffer
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&want, "%03d.", i)
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatal("sliding window reassembly corrupted")
	}
}
