package record

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/gridcrypto"
)

// testProtector implements Protector over a raw gridcrypto
// sealer/opener pair with the gss wrap-token layout, so the record
// layer can be exercised without a certificate world.
type testProtector struct {
	sealer *gridcrypto.Sealer
	opener *gridcrypto.Opener
}

var testAAD = []byte("record test")

func newTestPair(t testing.TB) (a, b *testProtector) {
	t.Helper()
	keyAB := bytes.Repeat([]byte{0xA5}, gridcrypto.AEADKeySize)
	keyBA := bytes.Repeat([]byte{0x5A}, gridcrypto.AEADKeySize)
	sAB, err := gridcrypto.NewSealer(keyAB)
	if err != nil {
		t.Fatal(err)
	}
	oAB, err := gridcrypto.NewOpener(keyAB)
	if err != nil {
		t.Fatal(err)
	}
	sBA, err := gridcrypto.NewSealer(keyBA)
	if err != nil {
		t.Fatal(err)
	}
	oBA, err := gridcrypto.NewOpener(keyBA)
	if err != nil {
		t.Fatal(err)
	}
	return &testProtector{sealer: sAB, opener: oBA}, &testProtector{sealer: sBA, opener: oAB}
}

// selfPair returns a protector whose seals its own opener accepts.
func selfPair(t testing.TB) *testProtector {
	t.Helper()
	key := bytes.Repeat([]byte{7}, gridcrypto.AEADKeySize)
	s, err := gridcrypto.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	o, err := gridcrypto.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	return &testProtector{sealer: s, opener: o}
}

func (p *testProtector) WrapInto(dst, plaintext []byte) ([]byte, error) {
	off := len(dst)
	var hdr [12]byte
	dst = append(dst, hdr[:]...)
	seq, out, err := p.sealer.SealInto(dst, plaintext, testAAD)
	if err != nil {
		return nil, err
	}
	be := out[off:]
	be[0] = byte(seq >> 56)
	be[1] = byte(seq >> 48)
	be[2] = byte(seq >> 40)
	be[3] = byte(seq >> 32)
	be[4] = byte(seq >> 24)
	be[5] = byte(seq >> 16)
	be[6] = byte(seq >> 8)
	be[7] = byte(seq)
	n := len(out) - off - 12
	be[8] = byte(n >> 24)
	be[9] = byte(n >> 16)
	be[10] = byte(n >> 8)
	be[11] = byte(n)
	return out, nil
}

func (p *testProtector) UnwrapInPlace(token []byte) ([]byte, error) {
	if len(token) < 12 {
		return nil, errors.New("short token")
	}
	seq := uint64(token[0])<<56 | uint64(token[1])<<48 | uint64(token[2])<<40 | uint64(token[3])<<32 |
		uint64(token[4])<<24 | uint64(token[5])<<16 | uint64(token[6])<<8 | uint64(token[7])
	n := int(token[8])<<24 | int(token[9])<<16 | int(token[10])<<8 | int(token[11])
	if n != len(token)-12 {
		return nil, errors.New("bad token length")
	}
	return p.opener.OpenInPlace(seq, token[12:], testAAD)
}

func (p *testProtector) WrapPrefix() int   { return 12 }
func (p *testProtector) WrapOverhead() int { return 12 + gridcrypto.SealOverhead }

// Explicit-sequence half: testProtector is a PipelinedProtector too.

func (p *testProtector) ReserveWrap() (uint64, error) { return p.sealer.Reserve() }

func (p *testProtector) WrapAtInto(seq uint64, dst, plaintext []byte) ([]byte, error) {
	off := len(dst)
	var hdr [12]byte
	dst = append(dst, hdr[:]...)
	out := p.sealer.SealAtInto(seq, dst, plaintext, testAAD)
	binary.BigEndian.PutUint64(out[off:], seq)
	binary.BigEndian.PutUint32(out[off+8:], uint32(len(out)-off-12))
	return out, nil
}

func (p *testProtector) ReserveUnwrap(token []byte) (uint64, []byte, error) {
	if len(token) < 12 {
		return 0, nil, errors.New("short token")
	}
	seq := binary.BigEndian.Uint64(token)
	if n := binary.BigEndian.Uint32(token[8:]); int(n) != len(token)-12 {
		return 0, nil, errors.New("bad token length")
	}
	if err := p.opener.Advance(seq); err != nil {
		return 0, nil, err
	}
	return seq, token[12:], nil
}

func (p *testProtector) UnwrapAtInPlace(seq uint64, ct []byte) ([]byte, error) {
	return p.opener.OpenAtInPlace(seq, ct, testAAD)
}

func TestPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 64 << 10, DefaultChunkSize + 41, 1 << 20, 4 << 20} {
		b := Get(n)
		if len(b.B) < n {
			t.Fatalf("Get(%d) returned %d bytes", n, len(b.B))
		}
		b.Free()
	}
	huge := Get(5 << 20)
	if huge.class != -1 {
		t.Fatal("over-class buffer claims to be pooled")
	}
	huge.Free() // must be a no-op
	var nilBuf *Buf
	nilBuf.Free() // no-op on nil
}

func TestWriteAssembledReadRoundTrip(t *testing.T) {
	p, q := newTestPair(t)
	var wireBuf bytes.Buffer
	hr := Headroom(p)
	for i, msg := range []string{"", "short", string(bytes.Repeat([]byte{0xEE}, 100_000))} {
		buf := Get(hr + len(msg) + p.WrapOverhead())
		frame := append(buf.B[:hr], msg...)
		if err := WriteAssembled(&wireBuf, p, frame); err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		buf.Free()
		pt, rbuf, err := Read(&wireBuf, q, 0, 0)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if string(pt) != msg {
			t.Fatalf("msg %d corrupted: %d bytes", i, len(pt))
		}
		rbuf.Free()
	}
}

func TestSealAndWriteRoundTrip(t *testing.T) {
	p, q := newTestPair(t)
	var wireBuf bytes.Buffer
	msg := bytes.Repeat([]byte("external plaintext "), 1000)
	if err := SealAndWrite(&wireBuf, p, msg); err != nil {
		t.Fatal(err)
	}
	pt, buf, err := Read(&wireBuf, q, 0, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip corrupted")
	}
}

// An under-sized assembly buffer still produces a correct frame (the
// slow two-write path).
func TestWriteAssembledUndersized(t *testing.T) {
	p, q := newTestPair(t)
	var wireBuf bytes.Buffer
	hr := Headroom(p)
	msg := []byte("grown past capacity")
	frame := make([]byte, hr+len(msg)) // no spare tail for the tag
	copy(frame[hr:], msg)
	if err := WriteAssembled(&wireBuf, p, frame); err != nil {
		t.Fatal(err)
	}
	pt, buf, err := Read(&wireBuf, q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if !bytes.Equal(pt, msg) {
		t.Fatal("undersized frame corrupted")
	}
}

// A hostile length prefix must not force an up-front jumbo allocation:
// Read grows through the size classes only as bytes actually arrive.
func TestReadTruncatedJumboBounded(t *testing.T) {
	p := selfPair(t)
	// Announce MaxRecord, deliver 100 bytes.
	input := append([]byte{0x01, 0x00, 0x00, 0x00}, make([]byte, 100)...)
	_, _, err := Read(bytes.NewReader(input), p, 0, 0)
	if err == nil {
		t.Fatal("truncated jumbo record accepted")
	}
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("in-cap announcement misclassified")
	}
	// Over-cap announcements fail before any payload read.
	over := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	_, _, err = Read(bytes.NewReader(over), p, 0, 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-cap record: %v", err)
	}
	// A per-call cap below the default bites too.
	small := append([]byte{0x00, 0x00, 0x10, 0x00}, make([]byte, 64)...)
	_, _, err = Read(bytes.NewReader(small), p, 1024, 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("capped record: %v", err)
	}
}

func TestReadTamperRejected(t *testing.T) {
	p, q := newTestPair(t)
	var wireBuf bytes.Buffer
	if err := SealAndWrite(&wireBuf, p, []byte("integrity matters")); err != nil {
		t.Fatal(err)
	}
	raw := wireBuf.Bytes()
	raw[len(raw)-1] ^= 0x80
	if _, _, err := Read(bytes.NewReader(raw), q, 0, 0); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestChunkProtocol(t *testing.T) {
	var s ChunkSender
	var a Assembler

	rec, err := s.AppendData(nil, []byte("part one "))
	if err != nil {
		t.Fatal(err)
	}
	if pl, fin, err := a.Accept(rec); err != nil || fin || string(pl) != "part one " {
		t.Fatalf("data chunk: %q %v %v", pl, fin, err)
	}
	rec, err = s.AppendData(nil, []byte("part two"))
	if err != nil {
		t.Fatal(err)
	}
	if pl, _, err := a.Accept(rec); err != nil || string(pl) != "part two" {
		t.Fatalf("data chunk 2: %q %v", pl, err)
	}
	fin, err := s.AppendFIN(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := a.Accept(fin); err != nil || !done {
		t.Fatalf("FIN: %v %v", done, err)
	}
	if !a.Done() {
		t.Fatal("assembler not done after FIN")
	}
	// Termination is single-shot on both halves.
	if _, err := s.AppendData(nil, []byte("late")); !errors.Is(err, ErrStreamTerminated) {
		t.Fatalf("send after FIN: %v", err)
	}
	if _, _, err := a.Accept(rec); !errors.Is(err, ErrStreamTerminated) {
		t.Fatalf("accept after FIN: %v", err)
	}
}

func TestChunkSequenceViolations(t *testing.T) {
	mk := func(typ ChunkType, seq uint64, payload []byte) []byte {
		return AppendChunk(nil, typ, seq, payload)
	}
	cases := []struct {
		name string
		recs [][]byte
	}{
		{"replay", [][]byte{mk(ChunkData, 0, []byte("a")), mk(ChunkData, 0, []byte("a"))}},
		{"gap", [][]byte{mk(ChunkData, 0, []byte("a")), mk(ChunkData, 2, []byte("c"))}},
		{"reorder", [][]byte{mk(ChunkData, 1, []byte("b"))}},
		{"truncated", [][]byte{[]byte{1, 2, 3}}},
		{"unknown type", [][]byte{mk(9, 0, nil)}},
		{"fin payload", [][]byte{mk(ChunkFIN, 0, []byte("x"))}},
		{"oversized", [][]byte{mk(ChunkData, 0, make([]byte, MaxChunkPayload+1))}},
	}
	for _, tc := range cases {
		var a Assembler
		var lastErr error
		for _, r := range tc.recs {
			_, _, lastErr = a.Accept(r)
		}
		if lastErr == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		// Poisoned: subsequent accepts keep failing.
		if _, _, err := a.Accept(mk(ChunkData, a.next, nil)); err == nil {
			t.Fatalf("%s: assembler recovered after violation", tc.name)
		}
	}
}

func TestErrorChunkSurfacesAsPeerError(t *testing.T) {
	var s ChunkSender
	var a Assembler
	rec, err := s.AppendData(nil, []byte("partial"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Accept(rec); err != nil {
		t.Fatal(err)
	}
	abort, err := s.AppendError(nil, "disk on fire")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = a.Accept(abort)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Msg != "disk on fire" {
		t.Fatalf("error chunk: %v", err)
	}
}

// Regression: an ERROR chunk whose sequence number is ahead of the
// assembler's cursor (as happens when the abort overtakes DATA chunks
// on out-of-order carriage) must surface the peer's abort reason, not a
// bogus "lost, replayed, or reordered chunk" sequence error.
func TestErrorChunkAheadOfSequenceSurfacesPeerError(t *testing.T) {
	var a Assembler
	// Sender shipped DATA 0,1,2 then ERROR at seq 3; the receiver sees
	// the ERROR first.
	abort := AppendChunk(nil, ChunkError, 3, []byte("quota exceeded"))
	_, _, err := a.Accept(abort)
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("racing ERROR chunk misclassified: %v", err)
	}
	if pe.Msg != "quota exceeded" {
		t.Fatalf("abort reason corrupted: %q", pe.Msg)
	}
	// The stream stays poisoned with the same peer error.
	if _, _, err := a.Accept(AppendChunk(nil, ChunkData, 0, []byte("x"))); !errors.As(err, &pe) {
		t.Fatalf("poisoning lost the peer error: %v", err)
	}
}

// Regression: AppendError used to truncate the abort message at a raw
// byte offset, splitting a multi-byte UTF-8 rune so the receiver got an
// invalid string. The cap must land on a rune boundary, on both the
// send-side truncation and the assembler's mirror cap.
func TestErrorMessageTruncatesOnRuneBoundary(t *testing.T) {
	// "на" etc: 2-byte runes; build a message whose MaxErrorPayload'th
	// byte lands mid-rune.
	// 2047 two-byte runes (4094 bytes) + "x" (1) puts the next "д" at
	// bytes 4095-4096: the MaxErrorPayload cut at 4096 lands mid-rune.
	msg := strings.Repeat("д", MaxErrorPayload/2-1) + "xдд"
	if n := len(msg); n != MaxErrorPayload+3 {
		t.Fatalf("test construction: %d bytes", n)
	}
	var s ChunkSender
	rec, err := s.AppendError(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, body, err := ParseChunk(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) > MaxErrorPayload {
		t.Fatalf("cap not enforced: %d bytes", len(body))
	}
	if !utf8.Valid(body) {
		t.Fatalf("send-side truncation split a rune: % x", body[len(body)-4:])
	}
	// Mirror cap on the assembler: a hostile over-long ERROR record is
	// capped without manufacturing invalid UTF-8 from a valid message.
	var a Assembler
	hostile := AppendChunk(nil, ChunkError, 0, []byte(msg))
	_, _, err = a.Accept(hostile)
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatal(err)
	}
	if len(pe.Msg) > MaxErrorPayload || !utf8.ValidString(pe.Msg) {
		t.Fatalf("assembler cap split a rune: %d bytes", len(pe.Msg))
	}
}

// Steady-state record I/O through the pool performs no per-record
// allocation (beyond the caller-owned result copy, which this loop
// avoids by consuming views).
func TestSteadyStateRecordAllocs(t *testing.T) {
	p, q := newTestPair(t)
	var wireBuf bytes.Buffer
	msg := bytes.Repeat([]byte{0x42}, 4096)
	hr := Headroom(p)
	// Warm the pool.
	round := func() {
		buf := Get(hr + len(msg) + p.WrapOverhead())
		frame := append(buf.B[:hr], msg...)
		if err := WriteAssembled(&wireBuf, p, frame); err != nil {
			t.Fatal(err)
		}
		buf.Free()
		pt, rbuf, err := Read(&wireBuf, q, 0, len(msg)+64)
		if err != nil || len(pt) != len(msg) {
			t.Fatalf("%v (%d bytes)", err, len(pt))
		}
		rbuf.Free()
		wireBuf.Reset()
	}
	round()
	allocs := testing.AllocsPerRun(200, round)
	if allocs > 1 { // bytes.Buffer internals may rarely grow; the record path itself is 0
		t.Fatalf("steady-state record round trip allocates %.1f/op", allocs)
	}
}

func TestReadEOF(t *testing.T) {
	p := selfPair(t)
	if _, _, err := Read(bytes.NewReader(nil), p, 0, 0); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}
