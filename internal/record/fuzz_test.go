package record

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzPair builds a fresh protector pair per input so sequence state
// never leaks between runs.
func fuzzPair(t testing.TB) (send, recv *testProtector) {
	return newTestPair(t)
}

// FuzzRecordRoundTrip drives the sealed record layer from both ends:
// any payload must survive WriteAssembled -> Read intact, and arbitrary
// wire bytes fed to Read must fail cleanly (no panic, no crash, no
// acceptance of unauthenticated data).
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), []byte{0, 0, 0, 3, 1, 2, 3})
	f.Add([]byte{}, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{7}, 5000), []byte{0, 0})
	f.Fuzz(func(t *testing.T, payload, hostile []byte) {
		if len(payload) > 1<<20 {
			return
		}
		send, recv := fuzzPair(t)

		// Round trip: assemble -> seal in place -> read -> open in place.
		hr := Headroom(send)
		buf := Get(hr + len(payload) + send.WrapOverhead())
		frame := append(buf.B[:hr], payload...)
		var wireBuf bytes.Buffer
		if err := WriteAssembled(&wireBuf, send, frame); err != nil {
			t.Fatalf("seal: %v", err)
		}
		buf.Free()
		pt, rbuf, err := Read(&wireBuf, recv, 0, 0)
		if err != nil {
			t.Fatalf("read back own record: %v", err)
		}
		if !bytes.Equal(pt, payload) {
			t.Fatalf("round trip corrupted: %d != %d bytes", len(pt), len(payload))
		}
		rbuf.Free()

		// Hostile wire bytes must never be accepted as a record (the
		// protector's AEAD would have to be forged) and never panic.
		if pt, rbuf, err := Read(bytes.NewReader(hostile), recv, 0, 0); err == nil {
			rbuf.Free()
			t.Fatalf("unauthenticated record accepted: %d bytes", len(pt))
		}
	})
}

// FuzzStreamReassembly feeds the chunk assembler arbitrary record
// sequences: truncated headers, reordered/duplicated sequence numbers,
// oversized chunks, traffic after termination. The assembler must never
// panic, must reject every sequence violation, and — when the input is
// a faithful sender transcript — must reproduce the sender's byte
// stream exactly.
func FuzzStreamReassembly(f *testing.F) {
	f.Add([]byte("hello world"), []byte{1, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(3))
	f.Add([]byte{}, []byte{2, 0, 0, 0, 0, 0, 0, 0, 1, 9}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 1000), []byte{3, 0, 0, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, stream, hostile []byte, chunkLen uint8) {
		// Faithful transcript: sender chunks the stream, assembler must
		// reproduce it.
		size := int(chunkLen) + 1
		var s ChunkSender
		var a Assembler
		var rebuilt []byte
		for off := 0; off < len(stream); off += size {
			end := off + size
			if end > len(stream) {
				end = len(stream)
			}
			rec, err := s.AppendData(nil, stream[off:end])
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			pl, fin, err := a.Accept(rec)
			if err != nil || fin {
				t.Fatalf("faithful chunk rejected: %v", err)
			}
			rebuilt = append(rebuilt, pl...)
		}
		finRec, err := s.AppendFIN(nil)
		if err != nil {
			t.Fatalf("fin: %v", err)
		}
		if _, fin, err := a.Accept(finRec); err != nil || !fin {
			t.Fatalf("faithful FIN rejected: %v", err)
		}
		if !bytes.Equal(rebuilt, stream) {
			t.Fatalf("reassembly corrupted: %d != %d bytes", len(rebuilt), len(stream))
		}

		// Post-FIN traffic must be rejected.
		if _, _, err := a.Accept(AppendChunk(nil, ChunkData, s.seq, nil)); err == nil {
			t.Fatal("chunk after FIN accepted")
		}

		// Hostile records against a fresh assembler: never panic, and
		// only strictly sequential records starting at 0 may pass.
		var h Assembler
		if pl, fin, err := h.Accept(hostile); err == nil {
			typ, seq, body, perr := ParseChunk(hostile)
			if perr != nil || seq != 0 {
				t.Fatalf("hostile record accepted: type=%d seq=%d", typ, seq)
			}
			if typ == ChunkData && !bytes.Equal(pl, body) {
				t.Fatal("payload view diverges from parse")
			}
			if fin != (typ == ChunkFIN) {
				t.Fatal("fin flag diverges from type")
			}
		}

		// Mutated duplicates of a valid transcript: flipping the seq of
		// the second chunk must poison the stream.
		var s2 ChunkSender
		var a2 Assembler
		r1, _ := s2.AppendData(nil, []byte("one"))
		r2, _ := s2.AppendData(nil, []byte("two"))
		if _, _, err := a2.Accept(r1); err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(r2[1:], binary.BigEndian.Uint64(hostileSeq(hostile)))
		if binary.BigEndian.Uint64(r2[1:]) != 1 {
			if _, _, err := a2.Accept(r2); err == nil {
				t.Fatal("out-of-sequence chunk accepted")
			}
		}
	})
}

// hostileSeq derives 8 bytes of attacker-chosen sequence from the fuzz
// input.
func hostileSeq(b []byte) []byte {
	out := make([]byte, 8)
	copy(out, b)
	return out
}

// FuzzStripeReassembly drives the windowed stripe assembler two ways.
// A faithful striped transcript — the stream chunked, stamped with
// global sequence numbers, dealt round-robin across K stripes, each
// stripe's arrival order preserved but the stripes interleaved by the
// fuzzer's schedule — must reassemble to exactly the sender's bytes
// with Done() true. Arbitrary hostile records must never panic the
// assembler, never deliver a byte out of order, and never reach Done()
// without a complete, FIN-agreed population.
func FuzzStripeReassembly(f *testing.F) {
	f.Add([]byte("striped payload bytes"), uint8(3), uint8(2), []byte{0, 1, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{0xC3}, 500), uint8(7), uint8(4), []byte{3, 3, 3, 0})
	f.Add([]byte{}, uint8(1), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, stream []byte, chunkLen, stripeCount uint8, schedule []byte) {
		size := int(chunkLen) + 1
		stripes := int(stripeCount)%8 + 1

		// Deal DATA chunks round-robin; every stripe ends with a FIN
		// carrying the global total.
		type rec struct {
			typ ChunkType
			seq uint64
			pl  []byte
		}
		lanes := make([][]rec, stripes)
		var total uint64
		for off := 0; off < len(stream); off += size {
			end := off + size
			if end > len(stream) {
				end = len(stream)
			}
			lane := int(total) % stripes
			lanes[lane] = append(lanes[lane], rec{ChunkData, total, stream[off:end]})
			total++
		}
		for i := range lanes {
			lanes[i] = append(lanes[i], rec{ChunkFIN, total, nil})
		}

		// Interleave lanes by the fuzzer's schedule (round-robin once a
		// lane's schedule bytes run out). Per-lane order is preserved —
		// that is what a real TCP stripe guarantees.
		a := NewStripeAssembler(stripes, int(total)+1)
		var rebuilt []byte
		cursor := make([]int, stripes)
		deliver := func(lane int) {
			r := lanes[lane][cursor[lane]]
			cursor[lane]++
			raw, buf := mkChunk(r.typ, r.seq, r.pl)
			if err := a.Accept(raw, buf); err != nil {
				buf.Free()
				t.Fatalf("faithful striped record rejected: %v", err)
			}
			if r.typ == ChunkFIN {
				buf.Free()
			}
			for {
				pl, b, ok := a.Pop()
				if !ok {
					break
				}
				rebuilt = append(rebuilt, pl...)
				b.Free()
			}
		}
		si := 0
		for remaining := true; remaining; {
			remaining = false
			lane := -1
			if si < len(schedule) {
				lane = int(schedule[si]) % stripes
				si++
			}
			if lane < 0 || cursor[lane] >= len(lanes[lane]) {
				for l := 0; l < stripes; l++ {
					if cursor[l] < len(lanes[l]) {
						lane = l
						break
					}
				}
			}
			if lane >= 0 && cursor[lane] < len(lanes[lane]) {
				deliver(lane)
			}
			for l := 0; l < stripes; l++ {
				if cursor[l] < len(lanes[l]) {
					remaining = true
				}
			}
		}
		if !a.Done() {
			t.Fatalf("faithful striped transcript incomplete: fins=%d/%d pending=%d", a.FINs(), stripes, a.Pending())
		}
		if !bytes.Equal(rebuilt, stream) {
			t.Fatalf("striped reassembly corrupted: %d != %d bytes", len(rebuilt), len(stream))
		}

		// Hostile: feed the schedule bytes themselves as records into a
		// fresh assembler. No panic; if anything is delivered it must be
		// in strictly increasing global order starting at 0.
		h := NewStripeAssembler(2, 16)
		hostile := AppendChunk(nil, ChunkType(stripeCount), uint64(chunkLen), schedule)
		if err := h.Accept(hostile, nil); err == nil {
			next := uint64(0)
			for {
				_, _, ok := h.Pop()
				if !ok {
					break
				}
				next++
			}
			_ = next
		}
		h.Release()
	})
}
