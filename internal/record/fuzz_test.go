package record

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzPair builds a fresh protector pair per input so sequence state
// never leaks between runs.
func fuzzPair(t testing.TB) (send, recv *testProtector) {
	return newTestPair(t)
}

// FuzzRecordRoundTrip drives the sealed record layer from both ends:
// any payload must survive WriteAssembled -> Read intact, and arbitrary
// wire bytes fed to Read must fail cleanly (no panic, no crash, no
// acceptance of unauthenticated data).
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), []byte{0, 0, 0, 3, 1, 2, 3})
	f.Add([]byte{}, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{7}, 5000), []byte{0, 0})
	f.Fuzz(func(t *testing.T, payload, hostile []byte) {
		if len(payload) > 1<<20 {
			return
		}
		send, recv := fuzzPair(t)

		// Round trip: assemble -> seal in place -> read -> open in place.
		hr := Headroom(send)
		buf := Get(hr + len(payload) + send.WrapOverhead())
		frame := append(buf.B[:hr], payload...)
		var wireBuf bytes.Buffer
		if err := WriteAssembled(&wireBuf, send, frame); err != nil {
			t.Fatalf("seal: %v", err)
		}
		buf.Free()
		pt, rbuf, err := Read(&wireBuf, recv, 0, 0)
		if err != nil {
			t.Fatalf("read back own record: %v", err)
		}
		if !bytes.Equal(pt, payload) {
			t.Fatalf("round trip corrupted: %d != %d bytes", len(pt), len(payload))
		}
		rbuf.Free()

		// Hostile wire bytes must never be accepted as a record (the
		// protector's AEAD would have to be forged) and never panic.
		if pt, rbuf, err := Read(bytes.NewReader(hostile), recv, 0, 0); err == nil {
			rbuf.Free()
			t.Fatalf("unauthenticated record accepted: %d bytes", len(pt))
		}
	})
}

// FuzzStreamReassembly feeds the chunk assembler arbitrary record
// sequences: truncated headers, reordered/duplicated sequence numbers,
// oversized chunks, traffic after termination. The assembler must never
// panic, must reject every sequence violation, and — when the input is
// a faithful sender transcript — must reproduce the sender's byte
// stream exactly.
func FuzzStreamReassembly(f *testing.F) {
	f.Add([]byte("hello world"), []byte{1, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(3))
	f.Add([]byte{}, []byte{2, 0, 0, 0, 0, 0, 0, 0, 1, 9}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 1000), []byte{3, 0, 0, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, stream, hostile []byte, chunkLen uint8) {
		// Faithful transcript: sender chunks the stream, assembler must
		// reproduce it.
		size := int(chunkLen) + 1
		var s ChunkSender
		var a Assembler
		var rebuilt []byte
		for off := 0; off < len(stream); off += size {
			end := off + size
			if end > len(stream) {
				end = len(stream)
			}
			rec, err := s.AppendData(nil, stream[off:end])
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			pl, fin, err := a.Accept(rec)
			if err != nil || fin {
				t.Fatalf("faithful chunk rejected: %v", err)
			}
			rebuilt = append(rebuilt, pl...)
		}
		finRec, err := s.AppendFIN(nil)
		if err != nil {
			t.Fatalf("fin: %v", err)
		}
		if _, fin, err := a.Accept(finRec); err != nil || !fin {
			t.Fatalf("faithful FIN rejected: %v", err)
		}
		if !bytes.Equal(rebuilt, stream) {
			t.Fatalf("reassembly corrupted: %d != %d bytes", len(rebuilt), len(stream))
		}

		// Post-FIN traffic must be rejected.
		if _, _, err := a.Accept(AppendChunk(nil, ChunkData, s.seq, nil)); err == nil {
			t.Fatal("chunk after FIN accepted")
		}

		// Hostile records against a fresh assembler: never panic, and
		// only strictly sequential records starting at 0 may pass.
		var h Assembler
		if pl, fin, err := h.Accept(hostile); err == nil {
			typ, seq, body, perr := ParseChunk(hostile)
			if perr != nil || seq != 0 {
				t.Fatalf("hostile record accepted: type=%d seq=%d", typ, seq)
			}
			if typ == ChunkData && !bytes.Equal(pl, body) {
				t.Fatal("payload view diverges from parse")
			}
			if fin != (typ == ChunkFIN) {
				t.Fatal("fin flag diverges from type")
			}
		}

		// Mutated duplicates of a valid transcript: flipping the seq of
		// the second chunk must poison the stream.
		var s2 ChunkSender
		var a2 Assembler
		r1, _ := s2.AppendData(nil, []byte("one"))
		r2, _ := s2.AppendData(nil, []byte("two"))
		if _, _, err := a2.Accept(r1); err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(r2[1:], binary.BigEndian.Uint64(hostileSeq(hostile)))
		if binary.BigEndian.Uint64(r2[1:]) != 1 {
			if _, _, err := a2.Accept(r2); err == nil {
				t.Fatal("out-of-sequence chunk accepted")
			}
		}
	})
}

// hostileSeq derives 8 bytes of attacker-chosen sequence from the fuzz
// input.
func hostileSeq(b []byte) []byte {
	out := make([]byte, 8)
	copy(out, b)
	return out
}
