// The load harness: osim's simulated host scaled up to the paper's
// deployment shape — many distinct grid subjects funneled through
// unprivileged per-session processes. Each session is a real osim
// process booted under its own account (so the §5.2 privilege
// accounting covers the load too: a correct run performs zero
// privileged operations), and every authorization decision the caller
// makes on the session's behalf is checked against the expected
// outcome. A permit where policy says deny is a *fail-open* — the one
// number a trust plane must keep at zero through restarts and
// failovers.
package osim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// SubjectDN renders the i-th synthetic grid identity of the scale
// corpus. The fixed-width counter keeps the DNs distinct, sortable,
// and cheap to regenerate on both sides of a federation.
func SubjectDN(i int) string { return fmt.Sprintf("/O=Scale/CN=u%07d", i) }

// LoadPhase is one pass of the load: a contiguous slice of the subject
// corpus plus the policy expectation in force while the phase runs.
// Phases exist so the expectation can change between them — e.g. a CAS
// failover plus a membership update lands between phase 1 and phase 2,
// and phase 2 expects the new members to be permitted.
type LoadPhase struct {
	// Offset is the first subject index of the phase's slice.
	Offset int
	// Subjects is the slice width; ops wrap around within it.
	Subjects int
	// Expect reports whether policy should permit the subject.
	Expect func(subject int) bool
}

// LoadConfig parameterizes RunLoad.
type LoadConfig struct {
	// Sessions is the number of concurrent sessions. Every session is
	// live for the whole run — phase boundaries are barriers, not
	// restarts — so Sessions is the true concurrency.
	Sessions int
	// OpsPerSession is the decisions each session makes per phase.
	OpsPerSession int
	// Phases is the phase sequence (at least one).
	Phases []LoadPhase
	// Decide performs one authorization decision for subject's DN and
	// reports the observed outcome. An error counts as a deny with an
	// infrastructure failure (tracked separately in the report).
	Decide func(session, subject int, dn string) (permit bool, err error)
	// BetweenPhases, when set, runs exactly once after every session
	// finishes phase i and before any starts phase i+1 — the hook where
	// a harness injects a failover or a policy change. An error aborts
	// the run.
	BetweenPhases func(next int) error
}

// PhaseStats is one phase's outcome tally.
type PhaseStats struct {
	Decisions  int           `json:"decisions"`
	Permits    int           `json:"permits"`
	Denies     int           `json:"denies"`
	FailOpen   int           `json:"fail_open"`
	FailClosed int           `json:"fail_closed"`
	Errors     int           `json:"errors"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// LoadReport aggregates a RunLoad run.
type LoadReport struct {
	Sessions         int `json:"sessions"`
	Decisions        int `json:"decisions"`
	DistinctSubjects int `json:"distinct_subjects"`
	Permits          int `json:"permits"`
	Denies           int `json:"denies"`
	// FailOpen counts permits where the expectation said deny — the
	// invariant number: any value but zero is a broken trust plane.
	FailOpen int `json:"fail_open"`
	// FailClosed counts denies where the expectation said permit
	// (availability loss, not a breach; still zero in a clean run).
	FailClosed int           `json:"fail_closed"`
	Errors     int           `json:"errors"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Phases     []PhaseStats  `json:"phases"`
	// PrivilegedOps is the osim privilege counter after the run: the
	// sessions are unprivileged processes, so a correct harness run
	// contributes zero.
	PrivilegedOps int `json:"privileged_ops"`
}

// RunLoad drives the configured load against sys: it boots one
// unprivileged process per session, runs every phase with all sessions
// concurrent, scores each decision against the phase's expectation,
// and exits the session processes when done. Subject indices are
// spread so that a phase whose slice width equals Sessions ×
// OpsPerSession touches every subject exactly once.
func RunLoad(sys *System, cfg LoadConfig) (LoadReport, error) {
	if sys == nil {
		return LoadReport{}, errors.New("osim: RunLoad needs a system")
	}
	if cfg.Sessions <= 0 || cfg.OpsPerSession <= 0 {
		return LoadReport{}, errors.New("osim: RunLoad needs sessions and ops per session")
	}
	if len(cfg.Phases) == 0 {
		return LoadReport{}, errors.New("osim: RunLoad needs at least one phase")
	}
	if cfg.Decide == nil {
		return LoadReport{}, errors.New("osim: RunLoad needs a Decide func")
	}
	for i, ph := range cfg.Phases {
		if ph.Subjects <= 0 {
			return LoadReport{}, fmt.Errorf("osim: phase %d has no subjects", i)
		}
		if ph.Expect == nil {
			return LoadReport{}, fmt.Errorf("osim: phase %d has no expectation", i)
		}
	}

	procs := make([]*Process, cfg.Sessions)
	for s := range procs {
		account := fmt.Sprintf("sess%05d", s)
		if _, err := sys.CreateAccount(account); err != nil {
			return LoadReport{}, err
		}
		p, err := sys.Boot(fmt.Sprintf("session-%05d", s), account, false)
		if err != nil {
			return LoadReport{}, err
		}
		procs[s] = p
	}

	report := LoadReport{Sessions: cfg.Sessions, Phases: make([]PhaseStats, len(cfg.Phases))}
	distinct := make(map[int]struct{})
	var (
		mu       sync.Mutex
		abortErr error
	)
	// Per-phase barrier: every session signals arrival at phase pi on
	// arrive[pi], then parks on releases[pi] until the coordinator has
	// run BetweenPhases. A run-level error releases everyone via the
	// abort channel; an aborting session signals its remaining arrivals
	// first so the coordinator can never hang on a barrier.
	phases := len(cfg.Phases)
	arrive := make([]sync.WaitGroup, phases)
	releases := make([]chan struct{}, phases)
	for i := range releases {
		arrive[i].Add(cfg.Sessions)
		releases[i] = make(chan struct{})
	}
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		mu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup // sessions exiting
	start := time.Now()

	session := func(s int, proc *Process) {
		defer wg.Done()
		defer proc.Exit()
		next := 0 // first phase this session has not yet arrived at
		defer func() {
			for i := next; i < phases; i++ {
				arrive[i].Done()
			}
		}()
		local := make([]PhaseStats, phases)
		defer func() {
			mu.Lock()
			for i := range local {
				report.Phases[i].Decisions += local[i].Decisions
				report.Phases[i].Permits += local[i].Permits
				report.Phases[i].Denies += local[i].Denies
				report.Phases[i].FailOpen += local[i].FailOpen
				report.Phases[i].FailClosed += local[i].FailClosed
				report.Phases[i].Errors += local[i].Errors
			}
			mu.Unlock()
		}()
		for pi, ph := range cfg.Phases {
			arrive[pi].Done()
			next = pi + 1
			select {
			case <-releases[pi]:
			case <-abort:
				return
			}
			for k := 0; k < cfg.OpsPerSession; k++ {
				subject := ph.Offset + (s*cfg.OpsPerSession+k)%ph.Subjects
				permit, err := cfg.Decide(s, subject, SubjectDN(subject))
				st := &local[pi]
				st.Decisions++
				if err != nil {
					st.Errors++
				}
				if permit {
					st.Permits++
				} else {
					st.Denies++
				}
				expected := ph.Expect(subject)
				if permit && !expected {
					st.FailOpen++
				}
				if !permit && expected {
					st.FailClosed++
				}
				// An authorized session does its unit of work as an
				// unprivileged process; the system's privilege counter
				// must not move.
				if permit {
					if err := proc.Work(1); err != nil {
						fail(err)
						return
					}
				}
			}
		}
	}
	wg.Add(cfg.Sessions)
	for s, p := range procs {
		go session(s, p)
	}

	phaseStarts := make([]time.Time, phases)
	for pi := range cfg.Phases {
		arrive[pi].Wait()
		if pi > 0 && !phaseStarts[pi-1].IsZero() {
			report.Phases[pi-1].Elapsed = time.Since(phaseStarts[pi-1])
		}
		mu.Lock()
		aborted := abortErr != nil
		mu.Unlock()
		if aborted {
			break
		}
		if pi > 0 && cfg.BetweenPhases != nil {
			if err := cfg.BetweenPhases(pi); err != nil {
				fail(err)
			}
		}
		phaseStarts[pi] = time.Now()
		close(releases[pi])
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	if !phaseStarts[phases-1].IsZero() {
		report.Phases[phases-1].Elapsed = time.Since(phaseStarts[phases-1])
	}

	if abortErr != nil {
		return report, abortErr
	}
	for _, ph := range cfg.Phases {
		width := ph.Subjects
		if n := cfg.Sessions * cfg.OpsPerSession; n < width {
			width = n
		}
		for i := 0; i < width; i++ {
			distinct[ph.Offset+i] = struct{}{}
		}
	}
	report.DistinctSubjects = len(distinct)
	for _, st := range report.Phases {
		report.Decisions += st.Decisions
		report.Permits += st.Permits
		report.Denies += st.Denies
		report.FailOpen += st.FailOpen
		report.FailClosed += st.FailClosed
		report.Errors += st.Errors
	}
	report.PrivilegedOps = sys.Audit().PrivilegedOps
	return report, nil
}
