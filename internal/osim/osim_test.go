package osim

import (
	"errors"
	"testing"
)

func TestAccounts(t *testing.T) {
	s := NewSystem()
	a, err := s.CreateAccount("alice")
	if err != nil {
		t.Fatal(err)
	}
	if a.UID == RootUID {
		t.Fatal("new account got root uid")
	}
	if _, err := s.CreateAccount("alice"); !errors.Is(err, ErrAccountExist) {
		t.Fatalf("duplicate account: %v", err)
	}
	if got, ok := s.Lookup("alice"); !ok || got.UID != a.UID {
		t.Fatal("Lookup failed")
	}
	if s.AccountName(a.UID) != "alice" {
		t.Fatal("AccountName failed")
	}
}

func TestFilePermissions(t *testing.T) {
	s := NewSystem()
	alice, _ := s.CreateAccount("alice")
	s.CreateAccount("bob")
	s.WriteFileAs(alice.UID, "/home/alice/secret", []byte("s3cret"), false)
	s.WriteFileAs(RootUID, "/etc/hostcred", []byte("hostkey"), false)
	s.WriteFileAs(RootUID, "/etc/gridmap", []byte("map"), true)

	pa, _ := s.Boot("shell-a", "alice", false)
	pb, _ := s.Boot("shell-b", "bob", false)
	proot, _ := s.Boot("initd", "root", false)

	if _, err := pa.ReadFile("/home/alice/secret"); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if _, err := pb.ReadFile("/home/alice/secret"); !errors.Is(err, ErrPermission) {
		t.Fatalf("cross-account read: %v", err)
	}
	if _, err := pb.ReadFile("/etc/gridmap"); err != nil {
		t.Fatalf("world-readable read: %v", err)
	}
	if _, err := pb.ReadFile("/etc/hostcred"); err == nil {
		t.Fatal("non-root read host credential")
	}
	if _, err := proot.ReadFile("/home/alice/secret"); err != nil {
		t.Fatalf("root read: %v", err)
	}
	if _, err := pa.ReadFile("/nonexistent"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("missing file: %v", err)
	}
	// Write rules.
	if err := pb.WriteFile("/etc/gridmap", []byte("evil"), true); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner write: %v", err)
	}
	if err := pa.WriteFile("/home/alice/new", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.ReadFile("/home/alice/new"); err == nil {
		t.Fatal("new file not owned by writer")
	}
}

func TestSetuidExec(t *testing.T) {
	s := NewSystem()
	alice, _ := s.CreateAccount("alice")
	var sawEUID int
	s.InstallProgram(RootUID, "/usr/bin/grim", true, func(p *Process, args []string) error {
		sawEUID = p.EUID
		// Privileged program can read root-owned files.
		_, err := p.ReadFile("/etc/hostcred")
		return err
	})
	s.InstallProgram(RootUID, "/usr/bin/plain", false, func(p *Process, args []string) error {
		sawEUID = p.EUID
		return nil
	})
	s.WriteFileAs(RootUID, "/etc/hostcred", []byte("hk"), false)

	pa, _ := s.Boot("shell", "alice", false)
	if _, err := pa.Exec("/usr/bin/grim", "grim", false); err != nil {
		t.Fatalf("setuid exec: %v", err)
	}
	if sawEUID != RootUID {
		t.Fatalf("setuid program ran with euid %d", sawEUID)
	}
	if _, err := pa.Exec("/usr/bin/plain", "plain", false); err != nil {
		t.Fatal(err)
	}
	if sawEUID != alice.UID {
		t.Fatalf("non-setuid program ran with euid %d, want %d", sawEUID, alice.UID)
	}
	if _, err := pa.Exec("/etc/hostcred", "x", false); !errors.Is(err, ErrNotExec) {
		t.Fatalf("exec of data file: %v", err)
	}
}

func TestSetEUIDRules(t *testing.T) {
	s := NewSystem()
	alice, _ := s.CreateAccount("alice")
	bob, _ := s.CreateAccount("bob")
	proot, _ := s.Boot("starter", "root", false)
	// Root can drop to any account — and then cannot climb back.
	if err := proot.SetEUID(alice.UID); err != nil {
		t.Fatal(err)
	}
	if err := proot.SetEUID(RootUID); !errors.Is(err, ErrPermission) {
		t.Fatalf("regained root: %v", err)
	}
	if err := proot.SetEUID(bob.UID); !errors.Is(err, ErrPermission) {
		t.Fatalf("lateral move: %v", err)
	}
	// Unknown uid.
	pa, _ := s.Boot("shell", "alice", false)
	if err := pa.SetEUID(99999); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("unknown uid: %v", err)
	}
}

func TestPrivilegedOpAccounting(t *testing.T) {
	s := NewSystem()
	s.CreateAccount("alice")
	s.WriteFileAs(RootUID, "/etc/f", []byte("x"), true)
	pa, _ := s.Boot("shell", "alice", false)
	proot, _ := s.Boot("rootd", "root", false)

	base := s.PrivilegedOps()
	pa.ReadFile("/etc/f") // unprivileged: not counted
	if s.PrivilegedOps() != base {
		t.Fatal("unprivileged op counted as privileged")
	}
	proot.ReadFile("/etc/f")
	proot.ReadFile("/etc/f")
	if got := s.PrivilegedOps() - base; got != 2 {
		t.Fatalf("privileged ops = %d", got)
	}
	if got := s.ProcessPrivOps(proot.PID); got != 2 {
		t.Fatalf("per-process priv ops = %d", got)
	}
}

func TestAuditSnapshot(t *testing.T) {
	s := NewSystem()
	s.CreateAccount("globus")
	s.InstallProgram(RootUID, "/usr/bin/setuid-starter", true, func(p *Process, args []string) error { return nil })
	s.InstallProgram(RootUID, "/usr/bin/grim", true, func(p *Process, args []string) error { return nil })
	s.InstallProgram(RootUID, "/usr/bin/tool", false, func(p *Process, args []string) error { return nil })

	gk, _ := s.Boot("gatekeeper", "root", true)
	s.Boot("mmjfs", "globus", true)

	snap := s.Audit()
	if len(snap.PrivilegedNetworkServices) != 1 || snap.PrivilegedNetworkServices[0] != "gatekeeper" {
		t.Fatalf("priv net services = %v", snap.PrivilegedNetworkServices)
	}
	if len(snap.SetuidPrograms) != 2 {
		t.Fatalf("setuid programs = %v", snap.SetuidPrograms)
	}
	gk.Exit()
	snap = s.Audit()
	if len(snap.PrivilegedNetworkServices) != 0 {
		t.Fatal("dead process still audited")
	}
}

func TestCompromiseBlastRadius(t *testing.T) {
	s := NewSystem()
	alice, _ := s.CreateAccount("alice")
	globus, _ := s.CreateAccount("globus")
	_ = globus
	s.WriteFileAs(RootUID, "/etc/hostcred", []byte("hostkey"), false)
	s.WriteFileAs(alice.UID, "/home/alice/data", []byte("d"), false)

	// Root-running network service: total compromise.
	gk, _ := s.Boot("gatekeeper", "root", true)
	br := s.Compromise(gk)
	if !br.Root {
		t.Fatal("root process not flagged as root compromise")
	}
	if !contains(br.ReadableFiles, "/etc/hostcred") || !contains(br.WritableFiles, "/home/alice/data") {
		t.Fatalf("root blast radius incomplete: %+v", br)
	}

	// Unprivileged service: only its own account.
	mm, _ := s.Boot("mmjfs", "globus", true)
	br = s.Compromise(mm)
	if br.Root {
		t.Fatal("unprivileged process flagged root")
	}
	if contains(br.ReadableFiles, "/etc/hostcred") || contains(br.ReadableFiles, "/home/alice/data") {
		t.Fatalf("unprivileged blast radius leaked: %+v", br)
	}
	if len(br.OtherAccountsExposed) != 0 {
		t.Fatalf("exposed accounts: %v", br.OtherAccountsExposed)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestDeadProcessOperations(t *testing.T) {
	s := NewSystem()
	s.CreateAccount("alice")
	p, _ := s.Boot("shell", "alice", false)
	p.Exit()
	if _, err := p.ReadFile("/x"); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("dead read: %v", err)
	}
	if _, err := p.Fork("child"); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("dead fork: %v", err)
	}
	if p.Alive() {
		t.Fatal("exited process alive")
	}
}

func TestForkInheritsUIDs(t *testing.T) {
	s := NewSystem()
	alice, _ := s.CreateAccount("alice")
	p, _ := s.Boot("shell", "alice", false)
	c, err := p.Fork("worker")
	if err != nil {
		t.Fatal(err)
	}
	if c.UID != alice.UID || c.EUID != alice.UID {
		t.Fatalf("child uids = %d/%d", c.UID, c.EUID)
	}
}

func TestBootUnknownAccount(t *testing.T) {
	s := NewSystem()
	if _, err := s.Boot("x", "ghost", false); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("boot unknown account: %v", err)
	}
}
