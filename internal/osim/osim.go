// Package osim is a simulated operating system substrate: user accounts,
// processes with real/effective UIDs, files with ownership and modes, and
// setuid-execution semantics. It exists so the paper's least-privilege
// claims (§5.2) are *measurable*: every operation performed with root
// privilege is counted, network-facing processes are tracked, and a
// compromise of any process can be simulated to compute its blast radius
// — reproducing the GT2-gatekeeper vs GT3 comparison deterministically
// and portably.
package osim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RootUID is the superuser id.
const RootUID = 0

// Account is a local user account.
type Account struct {
	Name string
	UID  int
}

// File is a filesystem object with Unix-like ownership and a reduced
// mode: owner always has access; WorldReadable opens reads to everyone.
type File struct {
	Path          string
	OwnerUID      int
	WorldReadable bool
	// Setuid marks an executable that runs with the owner's UID.
	Setuid bool
	Data   []byte
	// Program, if non-nil, is the executable's behaviour (see Exec).
	Program Program
}

// Program is the behaviour of an executable file. It runs inside the
// process created by Exec (with that process's effective UID).
type Program func(p *Process, args []string) error

// Process is a running process.
type Process struct {
	PID  int
	Name string
	// UID is the real uid; EUID the effective uid (differs after a
	// setuid exec).
	UID, EUID int
	// ListensNetwork marks processes that accept remote connections —
	// the attack surface of §5.2.
	ListensNetwork bool

	sys   *System
	alive bool
}

// System is one simulated host.
type System struct {
	mu       sync.Mutex
	accounts map[string]*Account
	byUID    map[int]*Account
	files    map[string]*File
	procs    map[int]*Process
	nextPID  int
	nextUID  int

	// privOps counts operations executed with EUID 0.
	privOps int
	// privOpsByProc tracks per-process privileged operation counts.
	privOpsByProc map[int]int
}

// NewSystem boots a host with a root account.
func NewSystem() *System {
	s := &System{
		accounts:      make(map[string]*Account),
		byUID:         make(map[int]*Account),
		files:         make(map[string]*File),
		procs:         make(map[int]*Process),
		nextPID:       1,
		nextUID:       1000,
		privOpsByProc: make(map[int]int),
	}
	root := &Account{Name: "root", UID: RootUID}
	s.accounts["root"] = root
	s.byUID[RootUID] = root
	return s
}

// Errors.
var (
	ErrNoAccount    = errors.New("osim: no such account")
	ErrPermission   = errors.New("osim: permission denied")
	ErrNoFile       = errors.New("osim: no such file")
	ErrNotExec      = errors.New("osim: file is not executable")
	ErrDeadProcess  = errors.New("osim: process has exited")
	ErrAccountExist = errors.New("osim: account already exists")
)

// CreateAccount adds a local user account.
func (s *System) CreateAccount(name string) (*Account, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAccountExist, name)
	}
	a := &Account{Name: name, UID: s.nextUID}
	s.nextUID++
	s.accounts[name] = a
	s.byUID[a.UID] = a
	return a, nil
}

// Lookup finds an account by name.
func (s *System) Lookup(name string) (*Account, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[name]
	return a, ok
}

// AccountName resolves a UID to its account name.
func (s *System) AccountName(uid int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.byUID[uid]; ok {
		return a.Name
	}
	return fmt.Sprintf("uid-%d", uid)
}

// WriteFileAs installs a file owned by the given UID (administrative/boot
// operation, not subject to permission checks).
func (s *System) WriteFileAs(ownerUID int, path string, data []byte, worldReadable bool) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &File{Path: path, OwnerUID: ownerUID, WorldReadable: worldReadable, Data: data}
	s.files[path] = f
	return f
}

// InstallProgram installs an executable file (boot-time operation).
func (s *System) InstallProgram(ownerUID int, path string, setuid bool, prog Program) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &File{Path: path, OwnerUID: ownerUID, Setuid: setuid, Program: prog, WorldReadable: true}
	s.files[path] = f
	return f
}

// Boot starts a process directly under an account (init-style; not
// subject to permission checks).
func (s *System) Boot(name string, account string, listensNetwork bool) (*Process, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[account]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, account)
	}
	return s.spawnLocked(name, a.UID, a.UID, listensNetwork), nil
}

func (s *System) spawnLocked(name string, uid, euid int, listens bool) *Process {
	p := &Process{PID: s.nextPID, Name: name, UID: uid, EUID: euid, ListensNetwork: listens, sys: s, alive: true}
	s.nextPID++
	s.procs[p.PID] = p
	return p
}

// chargeLocked records a (possibly privileged) operation by p.
func (s *System) chargeLocked(p *Process) {
	if p.EUID == RootUID {
		s.privOps++
		s.privOpsByProc[p.PID]++
	}
}

// PrivilegedOps reports the total operations executed with root
// privileges since boot.
func (s *System) PrivilegedOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.privOps
}

// ProcessPrivOps reports root-privileged operations charged to one
// process.
func (s *System) ProcessPrivOps(pid int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.privOpsByProc[pid]
}

// Snapshot summarises the host's privilege posture.
type Snapshot struct {
	// PrivilegedProcesses are live processes with EUID 0.
	PrivilegedProcesses []string
	// PrivilegedNetworkServices are live processes with EUID 0 that
	// accept network connections — the §5.2 "privileged services" count.
	PrivilegedNetworkServices []string
	// SetuidPrograms are the installed setuid-root executables (the
	// "small, tightly constrained" privileged code of GT3).
	SetuidPrograms []string
	PrivilegedOps  int
}

// Audit returns the current privilege posture.
func (s *System) Audit() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap Snapshot
	for _, p := range s.procs {
		if !p.alive || p.EUID != RootUID {
			continue
		}
		snap.PrivilegedProcesses = append(snap.PrivilegedProcesses, p.Name)
		if p.ListensNetwork {
			snap.PrivilegedNetworkServices = append(snap.PrivilegedNetworkServices, p.Name)
		}
	}
	for path, f := range s.files {
		if f.Setuid && f.OwnerUID == RootUID && f.Program != nil {
			snap.SetuidPrograms = append(snap.SetuidPrograms, path)
		}
	}
	sort.Strings(snap.PrivilegedProcesses)
	sort.Strings(snap.PrivilegedNetworkServices)
	sort.Strings(snap.SetuidPrograms)
	snap.PrivilegedOps = s.privOps
	return snap
}

// --- process operations ------------------------------------------------

func (p *Process) check() error {
	if !p.alive {
		return ErrDeadProcess
	}
	return nil
}

// ReadFile reads a file under the process's effective UID.
func (p *Process) ReadFile(path string) ([]byte, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeLocked(p)
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if p.EUID != RootUID && p.EUID != f.OwnerUID && !f.WorldReadable {
		return nil, fmt.Errorf("%w: read %q as %s", ErrPermission, path, s.byUID[p.EUID].Name)
	}
	return append([]byte(nil), f.Data...), nil
}

// WriteFile writes a file under the process's effective UID; only the
// owner or root may write, and new files are owned by the writer.
func (p *Process) WriteFile(path string, data []byte, worldReadable bool) error {
	if err := p.check(); err != nil {
		return err
	}
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeLocked(p)
	f, ok := s.files[path]
	if !ok {
		s.files[path] = &File{Path: path, OwnerUID: p.EUID, WorldReadable: worldReadable, Data: append([]byte(nil), data...)}
		return nil
	}
	if p.EUID != RootUID && p.EUID != f.OwnerUID {
		return fmt.Errorf("%w: write %q", ErrPermission, path)
	}
	f.Data = append([]byte(nil), data...)
	return nil
}

// Exec runs an executable file in a new process. If the file is setuid,
// the new process's effective UID is the file owner's — the only
// privilege-escalation mechanism in the system, mirroring Unix.
func (p *Process) Exec(path, procName string, listensNetwork bool, args ...string) (*Process, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	s := p.sys
	s.mu.Lock()
	f, ok := s.files[path]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if f.Program == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotExec, path)
	}
	s.chargeLocked(p)
	euid := p.EUID
	if f.Setuid {
		euid = f.OwnerUID
	}
	child := s.spawnLocked(procName, p.UID, euid, listensNetwork)
	prog := f.Program
	s.mu.Unlock()
	if err := prog(child, args); err != nil {
		child.Exit()
		return nil, err
	}
	return child, nil
}

// SetEUID drops (or, for root, changes) the effective UID. Non-root may
// only set it to their real UID.
func (p *Process) SetEUID(uid int) error {
	if err := p.check(); err != nil {
		return err
	}
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeLocked(p)
	if _, ok := s.byUID[uid]; !ok {
		return fmt.Errorf("%w: uid %d", ErrNoAccount, uid)
	}
	if p.EUID != RootUID && uid != p.UID {
		return fmt.Errorf("%w: setuid(%d) as uid %d", ErrPermission, uid, p.EUID)
	}
	if p.EUID == RootUID && uid != RootUID {
		// Dropping root also drops the real uid (setuid(2) semantics for
		// privileged callers).
		p.UID = uid
	}
	p.EUID = uid
	return nil
}

// Work charges n computational steps to the process — used to attribute
// request parsing and cryptographic verification to the privilege level
// they execute at. This is what makes "all request processing runs as
// root" (GT2 gatekeeper) visible in the privileged-operation counters.
func (p *Process) Work(n int) error {
	if err := p.check(); err != nil {
		return err
	}
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		s.chargeLocked(p)
	}
	return nil
}

// Fork clones the process (same UIDs).
func (p *Process) Fork(name string) (*Process, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeLocked(p)
	return s.spawnLocked(name, p.UID, p.EUID, false), nil
}

// Exit terminates the process.
func (p *Process) Exit() {
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	p.alive = false
	delete(s.procs, p.PID)
}

// Alive reports liveness.
func (p *Process) Alive() bool {
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.alive
}

// --- compromise simulation ----------------------------------------------

// BlastRadius describes what an attacker controlling a process could do.
type BlastRadius struct {
	// Process and account compromised.
	Process string
	Account string
	// Root reports full-system compromise (EUID 0).
	Root bool
	// ReadableFiles the attacker can read; WritableFiles they can modify.
	ReadableFiles []string
	WritableFiles []string
	// OtherAccountsExposed lists accounts whose files become readable.
	OtherAccountsExposed []string
}

// Compromise computes the blast radius of taking over a process — the
// §5.2 argument made concrete: compromising a GT2 gatekeeper (root,
// network-facing) yields the whole host, compromising a GT3 MMJFS (plain
// account) yields only that account.
func (s *System) Compromise(p *Process) BlastRadius {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := BlastRadius{
		Process: p.Name,
		Account: s.accountNameLocked(p.EUID),
		Root:    p.EUID == RootUID,
	}
	exposed := map[int]bool{}
	for path, f := range s.files {
		canRead := p.EUID == RootUID || p.EUID == f.OwnerUID || f.WorldReadable
		canWrite := p.EUID == RootUID || p.EUID == f.OwnerUID
		if canRead {
			br.ReadableFiles = append(br.ReadableFiles, path)
			if !f.WorldReadable && f.OwnerUID != p.EUID {
				exposed[f.OwnerUID] = true
			}
		}
		if canWrite {
			br.WritableFiles = append(br.WritableFiles, path)
		}
	}
	for uid := range exposed {
		br.OtherAccountsExposed = append(br.OtherAccountsExposed, s.accountNameLocked(uid))
	}
	sort.Strings(br.ReadableFiles)
	sort.Strings(br.WritableFiles)
	sort.Strings(br.OtherAccountsExposed)
	return br
}

func (s *System) accountNameLocked(uid int) string {
	if a, ok := s.byUID[uid]; ok {
		return a.Name
	}
	return fmt.Sprintf("uid-%d", uid)
}

// String renders a snapshot compactly.
func (snap Snapshot) String() string {
	return fmt.Sprintf("priv-procs=[%s] priv-net-services=[%s] setuid-progs=[%s] priv-ops=%d",
		strings.Join(snap.PrivilegedProcesses, ","),
		strings.Join(snap.PrivilegedNetworkServices, ","),
		strings.Join(snap.SetuidPrograms, ","),
		snap.PrivilegedOps)
}
