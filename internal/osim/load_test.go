package osim

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSubjectDN(t *testing.T) {
	if got := SubjectDN(42); got != "/O=Scale/CN=u0000042" {
		t.Fatalf("SubjectDN(42) = %q", got)
	}
	if SubjectDN(1) == SubjectDN(10) {
		t.Fatal("subject DNs collide")
	}
}

// TestRunLoad drives a two-phase load where phase 2's expectation
// differs (a "membership update" lands between phases) and the decider
// deliberately fails open for one subject in phase 2.
func TestRunLoad(t *testing.T) {
	sys := NewSystem()
	var phase2 atomic.Bool
	member := func(subject int) bool { return subject%10 == 0 }
	late := func(subject int) bool { return subject%10 == 5 }
	cfg := LoadConfig{
		Sessions:      8,
		OpsPerSession: 25,
		Phases: []LoadPhase{
			{Offset: 0, Subjects: 200, Expect: member},
			{Offset: 200, Subjects: 200, Expect: func(s int) bool { return member(s) || late(s) }},
		},
		Decide: func(session, subject int, dn string) (bool, error) {
			if !strings.HasPrefix(dn, "/O=Scale/CN=u") {
				t.Errorf("bad DN %q", dn)
			}
			if subject == 203 { // the planted fail-open
				return true, nil
			}
			if late(subject) {
				return phase2.Load(), nil // permitted only once the update landed
			}
			return member(subject), nil
		},
		BetweenPhases: func(next int) error {
			if next != 1 {
				return errors.New("unexpected phase")
			}
			phase2.Store(true)
			return nil
		},
	}
	rep, err := RunLoad(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 8 || len(rep.Phases) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	wantDecisions := 2 * 8 * 25
	if rep.Decisions != wantDecisions {
		t.Fatalf("decisions = %d, want %d", rep.Decisions, wantDecisions)
	}
	if rep.DistinctSubjects != 400 {
		t.Fatalf("distinct subjects = %d, want 400", rep.DistinctSubjects)
	}
	// Subject 203 is hit by exactly one (session, op) pair per phase-2
	// wraparound; with 200 ops over a 200-subject slice it is hit once.
	if rep.FailOpen != 1 {
		t.Fatalf("fail-open = %d, want exactly the planted 1", rep.FailOpen)
	}
	if rep.Phases[0].FailOpen != 0 || rep.Phases[1].FailOpen != 1 {
		t.Fatalf("fail-open landed in the wrong phase: %+v", rep.Phases)
	}
	if rep.FailClosed != 0 {
		t.Fatalf("fail-closed = %d, want 0", rep.FailClosed)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Permits == 0 || rep.Permits+rep.Denies != rep.Decisions {
		t.Fatalf("tally mismatch: %+v", rep)
	}
	// The sessions ran unprivileged: the §5.2 counter must not move.
	if rep.PrivilegedOps != 0 {
		t.Fatalf("privileged ops = %d, want 0", rep.PrivilegedOps)
	}
	if rep.Phases[0].Elapsed <= 0 || rep.Phases[1].Elapsed <= 0 {
		t.Fatalf("phase elapsed not recorded: %+v", rep.Phases)
	}
}

func TestRunLoadAborts(t *testing.T) {
	sys := NewSystem()
	boom := errors.New("failover broke")
	_, err := RunLoad(sys, LoadConfig{
		Sessions:      4,
		OpsPerSession: 5,
		Phases: []LoadPhase{
			{Subjects: 10, Expect: func(int) bool { return true }},
			{Subjects: 10, Expect: func(int) bool { return true }},
		},
		Decide:        func(_, _ int, _ string) (bool, error) { return true, nil },
		BetweenPhases: func(int) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the BetweenPhases error", err)
	}
}

func TestRunLoadValidates(t *testing.T) {
	sys := NewSystem()
	if _, err := RunLoad(nil, LoadConfig{}); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := RunLoad(sys, LoadConfig{Sessions: 1, OpsPerSession: 1}); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := RunLoad(sys, LoadConfig{
		Sessions: 1, OpsPerSession: 1,
		Phases: []LoadPhase{{Subjects: 1, Expect: func(int) bool { return true }}},
	}); err == nil {
		t.Fatal("nil Decide accepted")
	}
}
