package soap

import (
	"errors"
	"fmt"
	"sync"
)

// Relay implements the WS-Routing-style message relaying the paper's §6
// names as future work for firewall compatibility: envelopes traverse one
// or more application-level intermediaries instead of requiring a direct
// transport connection. Because GT3 security is message-level (signatures
// and wrapped bodies travel *in* the envelope), end-to-end security
// survives the hops — which transport-level TLS cannot offer.
//
// A Relay forwards by the envelope's To field. Hops may rewrite
// uncovered headers (e.g. routing hints) but any tampering with signed
// parts is detected at the destination.
type Relay struct {
	mu     sync.RWMutex
	routes map[string]Handler // destination prefix -> next hop
	// Hops counts messages forwarded (observability).
	hops int
}

// NewRelay creates an empty relay.
func NewRelay() *Relay {
	return &Relay{routes: make(map[string]Handler)}
}

// Route registers the next hop for a destination prefix. An envelope
// whose To starts with the prefix is forwarded to the handler (another
// relay, or a terminal dispatcher).
func (r *Relay) Route(prefix string, next Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[prefix] = next
}

// Hops reports how many envelopes this relay has forwarded.
func (r *Relay) Hops() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hops
}

// Forward relays an envelope toward its destination, appending a
// via-header (uncovered by signatures, as a real intermediary would).
func (r *Relay) Forward(env *Envelope) (*Envelope, error) {
	if env.To == "" {
		return nil, errors.New("soap: relay requires a To address")
	}
	r.mu.RLock()
	var (
		best string
		next Handler
	)
	for prefix, h := range r.routes {
		if len(prefix) > len(best) && hasPrefix(env.To, prefix) {
			best, next = prefix, h
		}
	}
	r.mu.RUnlock()
	if next == nil {
		return nil, fmt.Errorf("soap: relay has no route for %q", env.To)
	}
	r.mu.Lock()
	r.hops++
	r.mu.Unlock()
	// Record the hop in an uncovered header, like a Via line.
	via, _ := env.Header("via")
	env.SetHeader("via", append(append([]byte(nil), via.Content...), []byte("|relay")...))
	return next(env)
}

// Handler returns the relay itself as a Handler, so relays chain.
func (r *Relay) Handler() Handler { return r.Forward }

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
