package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// maxHTTPBody caps how much of an HTTP body is read (matches the wire
// frame cap so both carriages bound messages identically).
const maxHTTPBody = 1 << 24

// readBody reads an HTTP body into a buffer sized from Content-Length
// when the peer declared one, avoiding ReadAll's repeated grow-and-copy
// on large envelopes (streamed GT3 chunks make these common). An
// undeclared or lying length degrades to the incremental path, never to
// an oversized trust-the-header allocation.
func readBody(r io.Reader, contentLength int64) ([]byte, error) {
	if contentLength > 0 && contentLength <= maxHTTPBody {
		buf := make([]byte, contentLength)
		// A body shorter than its declared length is a transport
		// failure (peer died mid-response) and must surface as one, not
		// as a truncated envelope for upper layers to misclassify.
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return io.ReadAll(io.LimitReader(r, maxHTTPBody))
}

// Handler processes one envelope and returns the reply.
type Handler func(*Envelope) (*Envelope, error)

// Dispatcher routes envelopes by action prefix. Registering action "x"
// matches "x" exactly; registering "x/" matches any action with that
// prefix (operation families of one service).
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewDispatcher creates an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// Handle registers a handler for an action (or action prefix ending "/").
func (d *Dispatcher) Handle(action string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[action] = h
}

// Dispatch routes an envelope to its handler.
func (d *Dispatcher) Dispatch(env *Envelope) (*Envelope, error) {
	d.mu.RLock()
	h, ok := d.handlers[env.Action]
	if !ok {
		// Longest matching prefix registered with trailing "/".
		best := ""
		for pattern := range d.handlers {
			if strings.HasSuffix(pattern, "/") && strings.HasPrefix(env.Action, pattern) && len(pattern) > len(best) {
				best = pattern
			}
		}
		if best != "" {
			h, ok = d.handlers[best], true
		}
	}
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoHandler, env.Action)
	}
	return h(env)
}

// Server is an HTTP binding for a dispatcher: envelopes are POSTed as
// XML and replies returned in the response body.
type Server struct {
	dispatcher *Dispatcher
	httpServer *http.Server
	listener   net.Listener
}

// NewServer binds the dispatcher on addr ("127.0.0.1:0" for ephemeral).
func NewServer(addr string, d *Dispatcher) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{dispatcher: d, listener: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/soap", s.serveHTTP)
	s.httpServer = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.httpServer.Serve(ln)
	return s, nil
}

// URL returns the endpoint URL.
func (s *Server) URL() string { return "http://" + s.listener.Addr().String() + "/soap" }

// Close shuts the server down.
func (s *Server) Close() error { return s.httpServer.Close() }

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	data, err := readBody(r.Body, r.ContentLength)
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	env, err := Unmarshal(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply, err := s.dispatcher.Dispatch(env)
	if err != nil {
		reply = env.FaultReply("Receiver", err.Error())
	}
	out, err := reply.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(out)
}

// Client posts envelopes to a SOAP endpoint.
type Client struct {
	// Endpoint is the service URL.
	Endpoint string
	// HTTP allows customising the underlying client; nil uses a default
	// with a 30s timeout.
	HTTP *http.Client
}

// Call sends the envelope and parses the reply. A SOAP fault in the reply
// is returned as a *Fault error alongside the envelope.
func (c *Client) Call(env *Envelope) (*Envelope, error) {
	return c.CallContext(context.Background(), env)
}

// CallContext is Call honoring ctx: the HTTP round-trip is canceled when
// the context ends, aborting an in-flight RPC.
func (c *Client) CallContext(ctx context.Context, env *Envelope) (*Envelope, error) {
	data, err := env.Marshal()
	if err != nil {
		return nil, err
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	// bytes.NewReader — a string conversion here would copy the whole
	// marshaled envelope once more per call.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	resp, err := hc.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("soap: POST: %w", err)
	}
	defer resp.Body.Close()
	body, err := readBody(resp.Body, resp.ContentLength)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soap: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	reply, err := Unmarshal(body)
	if err != nil {
		return nil, err
	}
	if reply.Fault != nil {
		return reply, reply.Fault
	}
	return reply, nil
}

// Pipe is an in-memory SOAP transport: a client Call function wired
// directly to a dispatcher, for co-located services and tests.
func Pipe(d *Dispatcher) func(*Envelope) (*Envelope, error) {
	return func(env *Envelope) (*Envelope, error) {
		// Round-trip through the wire form so in-memory behaves like HTTP.
		data, err := env.Marshal()
		if err != nil {
			return nil, err
		}
		parsed, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		reply, err := d.Dispatch(parsed)
		if err != nil {
			return nil, err
		}
		if reply.Fault != nil {
			return reply, reply.Fault
		}
		return reply, nil
	}
}
