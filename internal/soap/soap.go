// Package soap implements the messaging substrate of GT3: XML envelopes
// with headers and body (SOAP 1.1 in the paper), an HTTP binding, and an
// action-based dispatcher. GT3 "uses SOAP and the Web services security
// specifications for all of its communications" (§5); the security
// packages (internal/xmlsec, internal/wssec) operate on these envelopes.
//
// Envelopes are real XML (encoding/xml) with a deterministic canonical
// serialization so detached signatures verify across hosts. Opaque
// payloads (tokens, wrapped bytes) travel base64-encoded in leaf elements.
package soap

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"

	"repro/internal/gridcrypto"
)

// HeaderBlock is one SOAP header entry: a named element whose content is
// an opaque (base64-encoded on the wire) byte payload.
type HeaderBlock struct {
	// Name identifies the block, e.g. "wsse:Security" or "Timestamp".
	Name string
	// Content is the block payload.
	Content []byte
}

// Envelope is a SOAP message.
type Envelope struct {
	// Action routes the message (WS-Addressing style).
	Action string
	// MessageID uniquely identifies the message; RelatesTo links replies.
	MessageID string
	RelatesTo string
	// To names the target service endpoint (a Grid Service Handle).
	To string
	// Headers carry protocol blocks (security tokens, signatures, ...).
	Headers []HeaderBlock
	// Body is the application payload.
	Body []byte
	// Fault carries error information in replies.
	Fault *Fault
}

// Fault is a SOAP fault.
type Fault struct {
	Code   string
	Reason string
}

// Error implements error so faults can flow through error returns.
func (f *Fault) Error() string { return fmt.Sprintf("soap fault %s: %s", f.Code, f.Reason) }

// NewEnvelope creates an envelope with a fresh random MessageID.
func NewEnvelope(action string, body []byte) *Envelope {
	id, err := gridcrypto.RandomBytes(16)
	if err != nil {
		// Random source failure is unrecoverable for messaging.
		panic("soap: random MessageID: " + err.Error())
	}
	return &Envelope{
		Action:    action,
		MessageID: fmt.Sprintf("uuid:%x", id),
		Body:      body,
	}
}

// Reply creates a response envelope correlated to a request.
func (e *Envelope) Reply(body []byte) *Envelope {
	r := NewEnvelope(e.Action+"Response", body)
	r.RelatesTo = e.MessageID
	return r
}

// FaultReply creates a fault response correlated to a request.
func (e *Envelope) FaultReply(code, reason string) *Envelope {
	r := NewEnvelope(e.Action+"Fault", nil)
	r.RelatesTo = e.MessageID
	r.Fault = &Fault{Code: code, Reason: reason}
	return r
}

// Header returns the first header block with the given name.
func (e *Envelope) Header(name string) (HeaderBlock, bool) {
	for _, h := range e.Headers {
		if h.Name == name {
			return h, true
		}
	}
	return HeaderBlock{}, false
}

// SetHeader replaces (or appends) the named header block.
func (e *Envelope) SetHeader(name string, content []byte) {
	for i, h := range e.Headers {
		if h.Name == name {
			e.Headers[i].Content = content
			return
		}
	}
	e.Headers = append(e.Headers, HeaderBlock{Name: name, Content: content})
}

// RemoveHeader deletes the named header block.
func (e *Envelope) RemoveHeader(name string) {
	for i, h := range e.Headers {
		if h.Name == name {
			e.Headers = append(e.Headers[:i], e.Headers[i+1:]...)
			return
		}
	}
}

// --- XML wire form -----------------------------------------------------

type xmlHeaderBlock struct {
	XMLName xml.Name `xml:"Block"`
	Name    string   `xml:"name,attr"`
	Content string   `xml:",chardata"`
}

type xmlFault struct {
	Code   string `xml:"Code"`
	Reason string `xml:"Reason"`
}

type xmlEnvelope struct {
	XMLName   xml.Name         `xml:"Envelope"`
	Action    string           `xml:"Header>Action"`
	MessageID string           `xml:"Header>MessageID"`
	RelatesTo string           `xml:"Header>RelatesTo,omitempty"`
	To        string           `xml:"Header>To,omitempty"`
	Blocks    []xmlHeaderBlock `xml:"Header>Blocks>Block"`
	Body      string           `xml:"Body"`
	Fault     *xmlFault        `xml:"Fault,omitempty"`
}

// Marshal renders the envelope as XML.
func (e *Envelope) Marshal() ([]byte, error) {
	xe := xmlEnvelope{
		Action:    e.Action,
		MessageID: e.MessageID,
		RelatesTo: e.RelatesTo,
		To:        e.To,
		Body:      base64.StdEncoding.EncodeToString(e.Body),
	}
	for _, h := range e.Headers {
		xe.Blocks = append(xe.Blocks, xmlHeaderBlock{
			Name:    h.Name,
			Content: base64.StdEncoding.EncodeToString(h.Content),
		})
	}
	if e.Fault != nil {
		xe.Fault = &xmlFault{Code: e.Fault.Code, Reason: e.Fault.Reason}
	}
	out, err := xml.MarshalIndent(xe, "", " ")
	if err != nil {
		return nil, fmt.Errorf("soap: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses an XML envelope.
func Unmarshal(data []byte) (*Envelope, error) {
	var xe xmlEnvelope
	if err := xml.Unmarshal(data, &xe); err != nil {
		return nil, fmt.Errorf("soap: unmarshal: %w", err)
	}
	body, err := base64.StdEncoding.DecodeString(trimSpace(xe.Body))
	if err != nil {
		return nil, fmt.Errorf("soap: body decode: %w", err)
	}
	e := &Envelope{
		Action:    xe.Action,
		MessageID: xe.MessageID,
		RelatesTo: xe.RelatesTo,
		To:        xe.To,
		Body:      body,
	}
	for _, b := range xe.Blocks {
		content, err := base64.StdEncoding.DecodeString(trimSpace(b.Content))
		if err != nil {
			return nil, fmt.Errorf("soap: header %q decode: %w", b.Name, err)
		}
		e.Headers = append(e.Headers, HeaderBlock{Name: b.Name, Content: content})
	}
	if xe.Fault != nil {
		e.Fault = &Fault{Code: xe.Fault.Code, Reason: xe.Fault.Reason}
	}
	return e, nil
}

func trimSpace(s string) string {
	return string(bytes.TrimSpace([]byte(s)))
}

// Canonical returns the canonical byte form of the envelope parts covered
// by a detached signature: action, addressing, the named header blocks
// (sorted), and the body. Signature headers themselves are excluded by
// the caller choosing names.
func (e *Envelope) Canonical(headerNames ...string) []byte {
	var buf bytes.Buffer
	buf.WriteString("action:")
	buf.WriteString(e.Action)
	buf.WriteString("\nid:")
	buf.WriteString(e.MessageID)
	buf.WriteString("\nrelates:")
	buf.WriteString(e.RelatesTo)
	buf.WriteString("\nto:")
	buf.WriteString(e.To)
	buf.WriteByte('\n')
	sorted := append([]string(nil), headerNames...)
	sort.Strings(sorted)
	for _, name := range sorted {
		h, ok := e.Header(name)
		if !ok {
			continue
		}
		buf.WriteString("hdr:")
		buf.WriteString(name)
		buf.WriteByte('=')
		buf.WriteString(base64.StdEncoding.EncodeToString(h.Content))
		buf.WriteByte('\n')
	}
	buf.WriteString("body:")
	buf.WriteString(base64.StdEncoding.EncodeToString(e.Body))
	return buf.Bytes()
}

// ErrNoHandler is returned by dispatchers for unknown actions.
var ErrNoHandler = errors.New("soap: no handler for action")
