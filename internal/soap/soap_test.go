package soap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	e := NewEnvelope("http://gram/create", []byte("job description"))
	e.To = "gsh://host/service"
	e.SetHeader("wsse:Security", []byte{1, 2, 3, 0xff})
	e.SetHeader("Timestamp", []byte("2003-06-23T00:00:00Z"))

	data, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("<Envelope>")) {
		t.Fatal("output is not XML")
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Action != e.Action || got.MessageID != e.MessageID || got.To != e.To {
		t.Fatalf("addressing mismatch: %+v", got)
	}
	if !bytes.Equal(got.Body, e.Body) {
		t.Fatalf("body mismatch: %q", got.Body)
	}
	sec, ok := got.Header("wsse:Security")
	if !ok || !bytes.Equal(sec.Content, []byte{1, 2, 3, 0xff}) {
		t.Fatalf("security header mismatch: %v %v", ok, sec)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	e := NewEnvelope("op", nil)
	f := e.FaultReply("Sender", "bad token")
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault == nil || got.Fault.Code != "Sender" || got.Fault.Reason != "bad token" {
		t.Fatalf("fault = %+v", got.Fault)
	}
	if got.RelatesTo != e.MessageID {
		t.Fatal("fault not correlated")
	}
}

func TestReplyCorrelation(t *testing.T) {
	req := NewEnvelope("op", []byte("x"))
	rep := req.Reply([]byte("y"))
	if rep.RelatesTo != req.MessageID {
		t.Fatal("RelatesTo not set")
	}
	if rep.Action != "opResponse" {
		t.Fatalf("reply action = %q", rep.Action)
	}
	if req.MessageID == rep.MessageID {
		t.Fatal("reply reused MessageID")
	}
}

func TestHeaderOperations(t *testing.T) {
	e := NewEnvelope("op", nil)
	e.SetHeader("A", []byte("1"))
	e.SetHeader("A", []byte("2")) // replace
	if h, _ := e.Header("A"); string(h.Content) != "2" {
		t.Fatalf("SetHeader did not replace: %q", h.Content)
	}
	if len(e.Headers) != 1 {
		t.Fatalf("headers = %d", len(e.Headers))
	}
	e.RemoveHeader("A")
	if _, ok := e.Header("A"); ok {
		t.Fatal("RemoveHeader failed")
	}
	e.RemoveHeader("missing") // no panic
}

func TestCanonicalStability(t *testing.T) {
	e := NewEnvelope("op", []byte("payload"))
	e.SetHeader("B", []byte("b"))
	e.SetHeader("A", []byte("a"))
	c1 := e.Canonical("A", "B")
	c2 := e.Canonical("B", "A") // order of names must not matter
	if !bytes.Equal(c1, c2) {
		t.Fatal("canonical form depends on header name order")
	}
	// Round trip through the wire preserves the canonical form.
	data, _ := e.Marshal()
	got, _ := Unmarshal(data)
	if !bytes.Equal(got.Canonical("A", "B"), c1) {
		t.Fatal("canonical form changed across wire round trip")
	}
	// Changing the body changes the canonical form.
	e.Body = []byte("other")
	if bytes.Equal(e.Canonical("A", "B"), c1) {
		t.Fatal("canonical form ignores body")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, bad := range []string{"", "not xml", "<Envelope><Body>!!!</Body></Envelope>"} {
		if _, err := Unmarshal([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDispatcher(t *testing.T) {
	d := NewDispatcher()
	d.Handle("exact", func(e *Envelope) (*Envelope, error) {
		return e.Reply([]byte("exact")), nil
	})
	d.Handle("svc/", func(e *Envelope) (*Envelope, error) {
		return e.Reply([]byte("prefix")), nil
	})
	d.Handle("svc/special", func(e *Envelope) (*Envelope, error) {
		return e.Reply([]byte("special")), nil
	})

	rep, err := d.Dispatch(NewEnvelope("exact", nil))
	if err != nil || string(rep.Body) != "exact" {
		t.Fatalf("%v %q", err, rep.Body)
	}
	rep, err = d.Dispatch(NewEnvelope("svc/anything", nil))
	if err != nil || string(rep.Body) != "prefix" {
		t.Fatalf("%v %q", err, rep.Body)
	}
	// Exact beats prefix.
	rep, err = d.Dispatch(NewEnvelope("svc/special", nil))
	if err != nil || string(rep.Body) != "special" {
		t.Fatalf("%v %q", err, rep.Body)
	}
	if _, err := d.Dispatch(NewEnvelope("unknown", nil)); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("unknown action: %v", err)
	}
}

func TestHTTPBinding(t *testing.T) {
	d := NewDispatcher()
	d.Handle("echo", func(e *Envelope) (*Envelope, error) {
		return e.Reply(append([]byte("echo:"), e.Body...)), nil
	})
	d.Handle("fail", func(e *Envelope) (*Envelope, error) {
		return nil, errors.New("handler exploded")
	})
	srv, err := NewServer("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{Endpoint: srv.URL()}
	rep, err := client.Call(NewEnvelope("echo", []byte("hi")))
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "echo:hi" {
		t.Fatalf("body = %q", rep.Body)
	}
	// Handler errors surface as faults.
	_, err = client.Call(NewEnvelope("fail", nil))
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if !strings.Contains(fault.Reason, "exploded") {
		t.Fatalf("fault reason = %q", fault.Reason)
	}
}

func TestPipeTransport(t *testing.T) {
	d := NewDispatcher()
	d.Handle("op", func(e *Envelope) (*Envelope, error) {
		return e.Reply(e.Body), nil
	})
	call := Pipe(d)
	rep, err := call(NewEnvelope("op", []byte("x")))
	if err != nil || string(rep.Body) != "x" {
		t.Fatalf("%v %q", err, rep.Body)
	}
}

// Property: every byte payload survives the XML wire round trip.
func TestPropertyBodyRoundTrip(t *testing.T) {
	f := func(body, hdr []byte) bool {
		e := NewEnvelope("op", body)
		e.SetHeader("H", hdr)
		data, err := e.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		h, _ := got.Header("H")
		return bytes.Equal(got.Body, body) && bytes.Equal(h.Content, hdr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	e := NewEnvelope("op", bytes.Repeat([]byte{1}, 1024))
	e.SetHeader("wsse:Security", bytes.Repeat([]byte{2}, 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := e.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
