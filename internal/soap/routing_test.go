package soap

import (
	"strings"
	"testing"
)

func terminal(reply string) Handler {
	return func(env *Envelope) (*Envelope, error) {
		return env.Reply([]byte(reply)), nil
	}
}

func TestRelayRoutesByPrefix(t *testing.T) {
	r := NewRelay()
	r.Route("gsh://site-a/", terminal("from-a"))
	r.Route("gsh://site-b/", terminal("from-b"))

	env := NewEnvelope("op", nil)
	env.To = "gsh://site-a/service1"
	reply, err := r.Forward(env)
	if err != nil || string(reply.Body) != "from-a" {
		t.Fatalf("%v %q", err, reply.Body)
	}
	env2 := NewEnvelope("op", nil)
	env2.To = "gsh://site-b/service9"
	reply, err = r.Forward(env2)
	if err != nil || string(reply.Body) != "from-b" {
		t.Fatalf("%v %q", err, reply.Body)
	}
	if r.Hops() != 2 {
		t.Fatalf("hops = %d", r.Hops())
	}
}

func TestRelayLongestPrefixWins(t *testing.T) {
	r := NewRelay()
	r.Route("gsh://site/", terminal("coarse"))
	r.Route("gsh://site/special/", terminal("fine"))
	env := NewEnvelope("op", nil)
	env.To = "gsh://site/special/svc"
	reply, err := r.Forward(env)
	if err != nil || string(reply.Body) != "fine" {
		t.Fatalf("%v %q", err, reply.Body)
	}
}

func TestRelayErrors(t *testing.T) {
	r := NewRelay()
	env := NewEnvelope("op", nil)
	if _, err := r.Forward(env); err == nil {
		t.Fatal("missing To accepted")
	}
	env.To = "gsh://unknown/svc"
	if _, err := r.Forward(env); err == nil {
		t.Fatal("unroutable destination accepted")
	}
}

func TestRelayChainAddsViaHeaders(t *testing.T) {
	// Two relays in sequence: edge -> interior -> service.
	interior := NewRelay()
	interior.Route("gsh://", func(env *Envelope) (*Envelope, error) {
		via, _ := env.Header("via")
		return env.Reply(via.Content), nil
	})
	edge := NewRelay()
	edge.Route("gsh://", interior.Handler())

	env := NewEnvelope("op", nil)
	env.To = "gsh://inner/svc"
	reply, err := edge.Forward(env)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(reply.Body); strings.Count(got, "|relay") != 2 {
		t.Fatalf("via trail = %q, want two hops", got)
	}
}
