package gss

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// lifetimeWorld builds a CA, a user with a near-expiry proxy, and a
// long-lived host credential, all validated against a fixed clock.
func lifetimeWorld(t *testing.T, proxyLifetime time.Duration) (user, nearProxy, host *gridcert.Credential, trust *gridcert.TrustStore, now time.Time) {
	t.Helper()
	authority, err := ca.New(gridcert.MustParseName("/O=Grid/CN=Lifetime CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trust = gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	user, err = authority.NewEntity(gridcert.MustParseName("/O=Grid/CN=Shortlived"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	nearProxy, err = proxy.New(user, proxy.Options{Lifetime: proxyLifetime})
	if err != nil {
		t.Fatal(err)
	}
	host, err = authority.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host long.example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return user, nearProxy, host, trust, time.Now()
}

// A context must never outlive the credential that authenticated it —
// on either side. The regression here is the acceptor's: its own
// credential is long-lived, so before the peer-chain clamp its context
// would happily outlive the initiator's nearly expired proxy, and a
// "live" context could carry traffic for an identity whose credential
// had already lapsed (exactly what credential rotation must be able to
// rule out).
func TestContextExpiryClampsToPeerCredential(t *testing.T) {
	const proxyLife = 90 * time.Second
	_, nearProxy, host, trust, now := lifetimeWorld(t, proxyLife)
	clock := func() time.Time { return now }

	ictx, actx, err := Establish(
		Config{Credential: nearProxy, TrustStore: trust, Now: clock},
		Config{Credential: host, TrustStore: trust, Now: clock},
	)
	if err != nil {
		t.Fatal(err)
	}

	proxyNotAfter := nearProxy.Leaf().NotAfter
	if ictx.Expiry().After(proxyNotAfter) {
		t.Errorf("initiator context expiry %s outlives its own credential %s", ictx.Expiry(), proxyNotAfter)
	}
	if actx.Expiry().After(proxyNotAfter) {
		t.Errorf("acceptor context expiry %s outlives the peer credential %s", actx.Expiry(), proxyNotAfter)
	}
	// The clamp must bite exactly: nothing else in this world expires
	// sooner than the near-expiry proxy.
	if !actx.Expiry().Equal(proxyNotAfter) {
		t.Errorf("acceptor context expiry = %s, want the peer proxy's NotAfter %s", actx.Expiry(), proxyNotAfter)
	}

	// Once the proxy's lifetime passes, both contexts must refuse
	// traffic — including the acceptor's, whose own credential is
	// still good for hours.
	later := now.Add(proxyLife + 2*time.Second)
	lateClock := func() time.Time { return later }
	ictx2, actx2, err := Establish(
		Config{Credential: nearProxy, TrustStore: trust, Now: clock},
		Config{Credential: host, TrustStore: trust, Now: clock},
	)
	if err != nil {
		t.Fatal(err)
	}
	ictx2.now, actx2.now = lateClock, lateClock
	if !ictx2.Expired() {
		t.Error("initiator context not expired after its credential lapsed")
	}
	if !actx2.Expired() {
		t.Error("acceptor context not expired after the peer credential lapsed")
	}
	if _, err := actx2.Wrap([]byte("late")); err == nil {
		t.Error("Wrap succeeded on a context whose peer credential lapsed")
	}
}

// A resumed child inherits the clamped expiry, so resumption can never
// stretch a context past the credential that authenticated its
// bootstrap.
func TestResumedContextInheritsPeerClamp(t *testing.T) {
	_, nearProxy, host, trust, now := lifetimeWorld(t, 90*time.Second)
	clock := func() time.Time { return now }
	ictx, actx, err := Establish(
		Config{Credential: nearProxy, TrustStore: trust, Now: clock},
		Config{Credential: host, TrustStore: trust, Now: clock},
	)
	if err != nil {
		t.Fatal(err)
	}
	cn := make([]byte, ResumeNonceSize)
	sn := make([]byte, ResumeNonceSize)
	for i := range cn {
		cn[i], sn[i] = byte(i), byte(255-i)
	}
	childA, err := actx.Resume(cn, sn)
	if err != nil {
		t.Fatal(err)
	}
	if !childA.Expiry().Equal(actx.Expiry()) {
		t.Errorf("resumed child expiry %s != parent %s", childA.Expiry(), actx.Expiry())
	}
	if childA.Expiry().After(nearProxy.Leaf().NotAfter) {
		t.Errorf("resumed child outlives the peer credential: %s > %s", childA.Expiry(), nearProxy.Leaf().NotAfter)
	}
	if _, err := ictx.Resume(cn, sn); err != nil {
		t.Fatalf("initiator resume: %v", err)
	}
}
