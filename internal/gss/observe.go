package gss

import (
	"sync/atomic"
	"time"
)

// Latency observers: both transports establish contexts through this
// package's tokens (GT2 frames them over TCP, GT3 carries them in SOAP
// envelopes), so the handshake/resume latency hooks live here and the
// transport layers report into them. The default is nil — observation
// costs two atomic loads and nothing else until telemetry installs a
// sink. The slots are atomic pointers so installation is race-free
// against in-flight handshakes.
var (
	handshakeObs atomic.Pointer[func(time.Duration)]
	resumeObs    atomic.Pointer[func(time.Duration)]
)

// SetHandshakeObserver installs fn as the sink for full-establishment
// durations (the public-key handshake: GT2 token framing or the GT3
// WS-Trust bootstrap). Pass nil to remove. fn must be safe for
// concurrent use and must not block.
func SetHandshakeObserver(fn func(time.Duration)) {
	if fn == nil {
		handshakeObs.Store(nil)
		return
	}
	handshakeObs.Store(&fn)
}

// SetResumeObserver installs fn as the sink for resumption durations
// (the one-round-trip symmetric re-derivation). Pass nil to remove.
func SetResumeObserver(fn func(time.Duration)) {
	if fn == nil {
		resumeObs.Store(nil)
		return
	}
	resumeObs.Store(&fn)
}

// ObserveHandshake reports one full establishment to the installed
// observer, if any.
func ObserveHandshake(d time.Duration) {
	if fn := handshakeObs.Load(); fn != nil {
		(*fn)(d)
	}
}

// ObserveResume reports one resumption to the installed observer.
func ObserveResume(d time.Duration) {
	if fn := resumeObs.Load(); fn != nil {
		(*fn)(d)
	}
}
