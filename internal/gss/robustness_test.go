package gss

import (
	"testing"
)

// TestHandshakeBitFlipSweep flips every byte of each handshake token in
// turn and asserts the handshake either fails cleanly or — if the flip
// landed somewhere truly redundant — still authenticates the right
// peers. No mutation may cause a panic or a wrong identity.
func TestHandshakeBitFlipSweep(t *testing.T) {
	tb := newTestbed(t)
	icfg := Config{Credential: tb.alice, TrustStore: tb.ts}
	acfg := Config{Credential: tb.bob, TrustStore: tb.ts}

	// Token1 sweep (sampled for speed: every 7th byte).
	base1 := func() ([]byte, *Initiator) {
		init, err := NewInitiator(icfg)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := init.Start()
		if err != nil {
			t.Fatal(err)
		}
		return t1, init
	}
	t1, _ := base1()
	for i := 0; i < len(t1); i += 7 {
		t1m, init := base1()
		t1m[i] ^= 0x55
		acc, err := NewAcceptor(acfg)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := acc.Accept(t1m)
		if err != nil {
			continue // clean rejection
		}
		// If accepted, the handshake must fail later (the initiator's
		// transcript no longer matches) — never complete with both sides
		// believing different things silently.
		t3, _, err := init.Finish(t2)
		if err != nil {
			continue
		}
		if _, err := acc.Complete(t3); err == nil {
			t.Fatalf("token1 byte %d flip produced a completed handshake", i)
		}
	}

	// Token2 sweep.
	init2, err := NewInitiator(icfg)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := init2.Start()
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := NewAcceptor(acfg)
	if err != nil {
		t.Fatal(err)
	}
	t2b, err := acc2.Accept(t1b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(t2b); i += 7 {
		// Each attempt needs a fresh initiator at the same state.
		initM, err := NewInitiator(icfg)
		if err != nil {
			t.Fatal(err)
		}
		t1m, err := initM.Start()
		if err != nil {
			t.Fatal(err)
		}
		accM, err := NewAcceptor(acfg)
		if err != nil {
			t.Fatal(err)
		}
		t2m, err := accM.Accept(t1m)
		if err != nil {
			t.Fatal(err)
		}
		t2m[i%len(t2m)] ^= 0x55
		if _, ctx, err := initM.Finish(t2m); err == nil {
			// Only acceptable if identity is still Bob's (flip hit
			// redundancy, e.g. inside an unchecked length the decoder
			// normalised). Identity confusion is the failure mode.
			if !ctx.Peer().Identity.Equal(tb.bob.Leaf().Subject) {
				t.Fatalf("token2 byte %d flip changed authenticated identity", i)
			}
		}
	}
}

// TestTokenTypeConfusion feeds each token to the wrong state-machine
// entry point; all must fail cleanly.
func TestTokenTypeConfusion(t *testing.T) {
	tb := newTestbed(t)
	icfg := Config{Credential: tb.alice, TrustStore: tb.ts}
	acfg := Config{Credential: tb.bob, TrustStore: tb.ts}

	init, _ := NewInitiator(icfg)
	t1, _ := init.Start()
	acc, _ := NewAcceptor(acfg)
	t2, _ := acc.Accept(t1)
	t3, _, err := init.Finish(t2)
	if err != nil {
		t.Fatal(err)
	}

	// token2 into Accept, token3 into Accept, token1 into Finish, etc.
	for name, tok := range map[string][]byte{"t1": t1, "t2": t2, "t3": t3} {
		if name != "t1" {
			a, _ := NewAcceptor(acfg)
			if _, err := a.Accept(tok); err == nil {
				t.Errorf("Accept consumed %s", name)
			}
		}
		if name != "t2" {
			i2, _ := NewInitiator(icfg)
			i2.Start()
			if _, _, err := i2.Finish(tok); err == nil {
				t.Errorf("Finish consumed %s", name)
			}
		}
		if name != "t3" {
			a2, _ := NewAcceptor(acfg)
			t1c, _ := NewInitiator(icfg)
			tk, _ := t1c.Start()
			a2.Accept(tk)
			if _, err := a2.Complete(tok); err == nil {
				t.Errorf("Complete consumed %s", name)
			}
		}
	}
}

// TestEmptyAndHugeTokens exercises degenerate inputs.
func TestEmptyAndHugeTokens(t *testing.T) {
	tb := newTestbed(t)
	acc, _ := NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	for _, tok := range [][]byte{nil, {}, {3}, make([]byte, 1<<16)} {
		if _, err := acc.Accept(tok); err == nil {
			t.Fatalf("degenerate token of len %d accepted", len(tok))
		}
		acc, _ = NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	}
}
