// Package gss implements a GSS-API-style security layer for the grid: the
// establishment of a mutual-authentication security context from GSI
// credentials, followed by per-message protection (wrap/unwrap and MICs).
//
// The same context-establishment tokens are used by the GT2 transport
// (internal/gsitransport, which frames them over TCP) and by the GT3
// WS-SecureConversation implementation (internal/wssec, which carries them
// in SOAP envelopes) — mirroring the paper's observation (§5.1) that "the
// GT3 messages carry the same context establishment tokens used by GT2
// but transports them over SOAP instead of TCP."
//
// The handshake is a three-token SIGMA-style exchange:
//
//	token1 (I→A): version, flags, initiator nonce, ECDH share
//	token2 (A→I): acceptor nonce, ECDH share, acceptor chain,
//	              signature over transcript, finished MAC
//	token3 (I→A): initiator chain (unless anonymous), signature over
//	              transcript, finished MAC
//
// Both identities are proven by signing the running transcript hash, and
// traffic keys are bound to the transcript via HKDF.
package gss

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/wire"
)

// Flags requested by the initiator for the context.
type Flags uint8

const (
	// FlagMutual requests mutual authentication (always on in GSI).
	FlagMutual Flags = 1 << iota
	// FlagAnonymous withholds the initiator identity: only the acceptor
	// authenticates. Used for policy-discovery requests.
	FlagAnonymous
	// FlagDelegate signals that the initiator intends to delegate a proxy
	// credential immediately after establishment.
	FlagDelegate
)

const protocolVersion = 3 // "GSI3"

// Config parameterises either side of a context establishment.
type Config struct {
	// Credential authenticates the local party. May be nil only for an
	// anonymous initiator.
	Credential *gridcert.Credential
	// TrustStore validates the peer's chain.
	TrustStore *gridcert.TrustStore
	// ChainCache, if set, memoizes successful peer-chain validations so
	// handshakes with repeated peers skip full path validation. Shared
	// per Environment; nil disables caching.
	ChainCache *gridcert.VerifyCache
	// Anonymous (initiator only) withholds the local identity.
	Anonymous bool
	// Delegate (initiator only) announces the intent to delegate a proxy
	// credential immediately after establishment (sets FlagDelegate).
	Delegate bool
	// RejectLimited refuses peers authenticating with limited proxies.
	RejectLimited bool
	// MaxProxyDepth caps the peer chain's proxy depth (0 = unlimited).
	MaxProxyDepth int
	// ExpectedPeer, if non-empty, requires the peer's *identity* (its
	// end-entity subject) to equal this name.
	ExpectedPeer gridcert.Name
	// Lifetime caps the context lifetime; 0 means 12h.
	Lifetime time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c Config) lifetime() time.Duration {
	if c.Lifetime > 0 {
		return c.Lifetime
	}
	return 12 * time.Hour
}

// Peer describes the authenticated remote party of a context.
type Peer struct {
	// Anonymous is true when the peer proved no identity.
	Anonymous bool
	// Identity is the peer's grid identity (end-entity subject).
	Identity gridcert.Name
	// Subject is the peer's leaf subject (proxy identity if delegated).
	Subject gridcert.Name
	// Chain is the peer's validated certificate chain (nil if anonymous).
	Chain []*gridcert.Certificate
	// Info is the validation result (nil if anonymous).
	Info *gridcert.ChainInfo
	// LocalAccount is the local account an authorization pipeline mapped
	// the peer's grid identity to via the grid-mapfile (paper §5.3 step
	// 3). Empty when no gridmap is configured; populated per exchange by
	// the facade before the handler runs.
	LocalAccount string
}

// errors exposed for callers that branch on them.
var (
	ErrContextExpired = errors.New("gss: security context expired")
	ErrBadToken       = errors.New("gss: malformed or unexpected token")
	ErrAuthFailed     = errors.New("gss: peer authentication failed")
)

// --- token encodings -------------------------------------------------

type token1 struct {
	flags Flags
	nonce []byte // 32 bytes
	share []byte // X25519 public share
}

func (t token1) encode() []byte {
	return wire.NewEncoder().
		U8(protocolVersion).U8(1).
		U8(uint8(t.flags)).
		Bytes(t.nonce).
		Bytes(t.share).
		Finish()
}

func decodeToken1(b []byte) (token1, error) {
	d := wire.NewDecoder(b)
	ver, typ := d.U8(), d.U8()
	t := token1{
		flags: Flags(d.U8()),
		nonce: d.Bytes(),
		share: d.Bytes(),
	}
	if err := d.Done(); err != nil {
		return token1{}, err
	}
	if ver != protocolVersion || typ != 1 {
		return token1{}, fmt.Errorf("%w: version %d type %d", ErrBadToken, ver, typ)
	}
	if len(t.nonce) != 32 || len(t.share) != 32 {
		return token1{}, fmt.Errorf("%w: bad nonce/share length", ErrBadToken)
	}
	return t, nil
}

type token2 struct {
	nonce    []byte
	share    []byte
	chain    []byte // encoded cert chain
	sig      []byte // acceptor signature over transcript(token1||fields)
	finished []byte // MAC over transcript with acceptor finished key
}

func (t token2) encode() []byte {
	return wire.NewEncoder().
		U8(protocolVersion).U8(2).
		Bytes(t.nonce).
		Bytes(t.share).
		Bytes(t.chain).
		Bytes(t.sig).
		Bytes(t.finished).
		Finish()
}

func decodeToken2(b []byte) (token2, error) {
	d := wire.NewDecoder(b)
	ver, typ := d.U8(), d.U8()
	t := token2{
		nonce:    d.Bytes(),
		share:    d.Bytes(),
		chain:    d.Bytes(),
		sig:      d.Bytes(),
		finished: d.Bytes(),
	}
	if err := d.Done(); err != nil {
		return token2{}, err
	}
	if ver != protocolVersion || typ != 2 {
		return token2{}, fmt.Errorf("%w: version %d type %d", ErrBadToken, ver, typ)
	}
	if len(t.nonce) != 32 || len(t.share) != 32 {
		return token2{}, fmt.Errorf("%w: bad nonce/share length", ErrBadToken)
	}
	return t, nil
}

type token3 struct {
	anonymous bool
	chain     []byte
	sig       []byte
	finished  []byte
}

func (t token3) encode() []byte {
	return wire.NewEncoder().
		U8(protocolVersion).U8(3).
		Bool(t.anonymous).
		Bytes(t.chain).
		Bytes(t.sig).
		Bytes(t.finished).
		Finish()
}

func decodeToken3(b []byte) (token3, error) {
	d := wire.NewDecoder(b)
	ver, typ := d.U8(), d.U8()
	t := token3{
		anonymous: d.Bool(),
		chain:     d.Bytes(),
		sig:       d.Bytes(),
		finished:  d.Bytes(),
	}
	if err := d.Done(); err != nil {
		return token3{}, err
	}
	if ver != protocolVersion || typ != 3 {
		return token3{}, fmt.Errorf("%w: version %d type %d", ErrBadToken, ver, typ)
	}
	return t, nil
}

// --- transcript and key schedule --------------------------------------

type transcript struct {
	h [32]byte
}

func (tr *transcript) add(label string, data []byte) {
	h := sha256.New()
	h.Write(tr.h[:])
	h.Write([]byte(label))
	h.Write(data)
	copy(tr.h[:], h.Sum(nil))
}

func (tr *transcript) sum() []byte { return append([]byte(nil), tr.h[:]...) }

type keySchedule struct {
	initWrite   []byte // initiator's sending key
	acceptWrite []byte // acceptor's sending key
	initFin     []byte
	acceptFin   []byte
}

func deriveKeys(secret []byte, transcriptHash []byte) (keySchedule, error) {
	prk := gridcrypto.HKDFExtract(transcriptHash, secret)
	var ks keySchedule
	var err error
	if ks.initWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 initiator write"), gridcrypto.AEADKeySize); err != nil {
		return ks, err
	}
	if ks.acceptWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 acceptor write"), gridcrypto.AEADKeySize); err != nil {
		return ks, err
	}
	if ks.initFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 initiator finished"), 32); err != nil {
		return ks, err
	}
	if ks.acceptFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 acceptor finished"), 32); err != nil {
		return ks, err
	}
	return ks, nil
}
