package gss

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/proxy"
)

// testbed builds a CA, two user credentials, and a shared trust store.
type testbed struct {
	auth  *ca.Authority
	ts    *gridcert.TrustStore
	alice *gridcert.Credential
	bob   *gridcert.Credential
}

func newTestbed(t testing.TB) *testbed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{auth: auth, ts: ts, alice: alice, bob: bob}
}

func TestEstablishMutual(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := ictx.Peer().Identity.String(); got != "/O=Grid/CN=Bob" {
		t.Fatalf("initiator saw peer %q", got)
	}
	if got := actx.Peer().Identity.String(); got != "/O=Grid/CN=Alice" {
		t.Fatalf("acceptor saw peer %q", got)
	}
	if ictx.Peer().Anonymous || actx.Peer().Anonymous {
		t.Fatal("unexpected anonymity")
	}
}

func TestEstablishWithProxyCredential(t *testing.T) {
	tb := newTestbed(t)
	p, err := proxy.New(tb.alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, actx, err := Establish(
		Config{Credential: p, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptor sees Alice's identity even though a proxy authenticated.
	if got := actx.Peer().Identity.String(); got != "/O=Grid/CN=Alice" {
		t.Fatalf("peer identity through proxy = %q", got)
	}
	if actx.Peer().Info.ProxyDepth != 1 {
		t.Fatalf("ProxyDepth = %d", actx.Peer().Info.ProxyDepth)
	}
}

func TestWrapUnwrapBothDirections(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, err := ictx.Wrap([]byte("from initiator"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := actx.Unwrap(w)
		if err != nil {
			t.Fatal(err)
		}
		if string(pt) != "from initiator" {
			t.Fatalf("got %q", pt)
		}
		w2, err := actx.Wrap([]byte("from acceptor"))
		if err != nil {
			t.Fatal(err)
		}
		pt2, err := ictx.Unwrap(w2)
		if err != nil {
			t.Fatal(err)
		}
		if string(pt2) != "from acceptor" {
			t.Fatalf("got %q", pt2)
		}
	}
}

func TestUnwrapRejectsReplayAndTamper(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ictx.Wrap([]byte("once"))
	if _, err := actx.Unwrap(w); err != nil {
		t.Fatal(err)
	}
	if _, err := actx.Unwrap(w); err == nil {
		t.Fatal("replayed wrap token accepted")
	}
	w2, _ := ictx.Wrap([]byte("two"))
	w2[len(w2)-1] ^= 1
	if _, err := actx.Unwrap(w2); err == nil {
		t.Fatal("tampered wrap token accepted")
	}
}

func TestMIC(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("signed but not encrypted")
	mic := ictx.GetMIC(msg)
	if err := actx.VerifyMIC(msg, mic); err != nil {
		t.Fatal(err)
	}
	if err := actx.VerifyMIC([]byte("other"), mic); err == nil {
		t.Fatal("MIC verified for wrong message")
	}
	// A MIC from the acceptor verifies on the initiator, not vice versa on itself.
	mic2 := actx.GetMIC(msg)
	if err := ictx.VerifyMIC(msg, mic2); err != nil {
		t.Fatal(err)
	}
	if err := actx.VerifyMIC(msg, mic2); err == nil {
		t.Fatal("context verified its own MIC as the peer's")
	}
}

func TestAnonymousInitiator(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Anonymous: true, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !actx.Peer().Anonymous {
		t.Fatal("acceptor did not record anonymous peer")
	}
	if ictx.Peer().Identity.String() != "/O=Grid/CN=Bob" {
		t.Fatal("anonymous initiator still authenticates the acceptor")
	}
	// Message protection still works.
	w, _ := ictx.Wrap([]byte("anon"))
	if pt, err := actx.Unwrap(w); err != nil || string(pt) != "anon" {
		t.Fatalf("anon wrap: %v %q", err, pt)
	}
}

func TestExpectedPeerMismatch(t *testing.T) {
	tb := newTestbed(t)
	_, _, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts, ExpectedPeer: gridcert.MustParseName("/O=Grid/CN=Carol")},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("expected-peer mismatch not caught: %v", err)
	}
}

func TestRejectLimitedPeer(t *testing.T) {
	tb := newTestbed(t)
	lim, err := proxy.New(tb.alice, proxy.Options{Variant: gridcert.ProxyLimited})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Establish(
		Config{Credential: lim, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts, RejectLimited: true},
	)
	if err == nil {
		t.Fatal("limited proxy accepted despite RejectLimited")
	}
}

func TestUntrustedPeerRejected(t *testing.T) {
	tb := newTestbed(t)
	// Bob's trust store does not contain Alice's CA.
	otherAuth, err := ca.New(gridcert.MustParseName("/O=Other/CN=CA"), time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := otherAuth.NewEntity(gridcert.MustParseName("/O=Other/CN=Mallory"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Establish(
		Config{Credential: mallory, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err == nil {
		t.Fatal("initiator from untrusted CA accepted")
	}
}

func TestTokenTamperingDetected(t *testing.T) {
	tb := newTestbed(t)
	init, err := NewInitiator(Config{Credential: tb.alice, TrustStore: tb.ts})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := init.Start()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := acc.Accept(t1)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with token2 (flip a bit in the middle: hits chain or share).
	bad := append([]byte(nil), t2...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := init.Finish(bad); err == nil {
		t.Fatal("tampered token2 accepted")
	}
}

func TestToken3SubstitutionDetected(t *testing.T) {
	tb := newTestbed(t)
	// Run two parallel handshakes and cross-feed token3: the transcript
	// binding must reject it.
	i1, _ := NewInitiator(Config{Credential: tb.alice, TrustStore: tb.ts})
	i2, _ := NewInitiator(Config{Credential: tb.alice, TrustStore: tb.ts})
	a1, _ := NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	a2, _ := NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	t1a, _ := i1.Start()
	t1b, _ := i2.Start()
	t2a, _ := a1.Accept(t1a)
	t2b, _ := a2.Accept(t1b)
	t3a, _, err := i1.Finish(t2a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := i2.Finish(t2b); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Complete(t3a); err == nil {
		t.Fatal("token3 from a different session accepted")
	}
}

func TestContextExpiry(t *testing.T) {
	tb := newTestbed(t)
	now := time.Now()
	clock := func() time.Time { return now }
	ictx, _, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts, Lifetime: time.Minute, Now: clock},
		Config{Credential: tb.bob, TrustStore: tb.ts, Now: clock},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ictx.Expired() {
		t.Fatal("fresh context expired")
	}
	now = now.Add(2 * time.Minute)
	if !ictx.Expired() {
		t.Fatal("context did not expire")
	}
	if _, err := ictx.Wrap([]byte("x")); err != ErrContextExpired {
		t.Fatalf("Wrap on expired context: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tb := newTestbed(t)
	if _, err := NewInitiator(Config{TrustStore: tb.ts}); err == nil {
		t.Fatal("initiator without credential accepted")
	}
	if _, err := NewInitiator(Config{Credential: tb.alice}); err == nil {
		t.Fatal("initiator without trust store accepted")
	}
	if _, err := NewAcceptor(Config{TrustStore: tb.ts}); err == nil {
		t.Fatal("acceptor without credential accepted")
	}
	// Anonymous initiator without credential is fine.
	if _, err := NewInitiator(Config{Anonymous: true, TrustStore: tb.ts}); err != nil {
		t.Fatal(err)
	}
}

func TestStateMachineMisuse(t *testing.T) {
	tb := newTestbed(t)
	init, _ := NewInitiator(Config{Credential: tb.alice, TrustStore: tb.ts})
	if _, _, err := init.Finish([]byte("x")); err == nil {
		t.Fatal("Finish before Start accepted")
	}
	if _, err := init.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := init.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	acc, _ := NewAcceptor(Config{Credential: tb.bob, TrustStore: tb.ts})
	if _, err := acc.Complete([]byte("x")); err == nil {
		t.Fatal("Complete before Accept accepted")
	}
}

func TestLargeMessageWrap(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	w, err := ictx.Wrap(big)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := actx.Unwrap(w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, big) {
		t.Fatal("1MiB round trip mismatch")
	}
}

func BenchmarkContextEstablishment(b *testing.B) {
	tb := newTestbed(b)
	icfg := Config{Credential: tb.alice, TrustStore: tb.ts}
	acfg := Config{Credential: tb.bob, TrustStore: tb.ts}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Establish(icfg, acfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrapUnwrap1K(b *testing.B) {
	tb := newTestbed(b)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte{1}, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := ictx.Wrap(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := actx.Unwrap(w); err != nil {
			b.Fatal(err)
		}
	}
}

// WrapInto with the documented in-place layout must interoperate with
// both Unwrap shims, reuse the caller's buffer, and stay compatible with
// tokens produced by the plain Wrap shim.
func TestWrapIntoUnwrapInPlace(t *testing.T) {
	tb := newTestbed(t)
	ictx, actx, err := Establish(
		Config{Credential: tb.alice, TrustStore: tb.ts},
		Config{Credential: tb.bob, TrustStore: tb.ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("zero copy record payload")

	// In-place wrap: plaintext assembled at WrapPrefix, sealed in situ.
	buf := make([]byte, WrapPrefix+len(msg), WrapPrefix+len(msg)+WrapOverhead)
	copy(buf[WrapPrefix:], msg)
	token, err := ictx.WrapInto(buf[:0], buf[WrapPrefix:])
	if err != nil {
		t.Fatal(err)
	}
	if &token[0] != &buf[0] {
		t.Fatal("WrapInto reallocated despite sufficient capacity")
	}
	if len(token) != len(msg)+WrapOverhead {
		t.Fatalf("token length %d, want %d", len(token), len(msg)+WrapOverhead)
	}

	// In-place unwrap: plaintext is a view into the token.
	pt, err := actx.UnwrapInPlace(token)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != string(msg) {
		t.Fatalf("round trip: %q", pt)
	}
	if &pt[0] != &token[WrapPrefix] {
		t.Fatal("UnwrapInPlace copied instead of decrypting in place")
	}

	// Shim interop both ways.
	w, err := ictx.Wrap(msg)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := actx.UnwrapInPlace(w)
	if err != nil || string(pt2) != string(msg) {
		t.Fatalf("shim Wrap -> UnwrapInPlace: %q, %v", pt2, err)
	}
	tok3, err := actx.WrapInto(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt3, err := ictx.Unwrap(tok3)
	if err != nil || string(pt3) != string(msg) {
		t.Fatalf("WrapInto -> shim Unwrap: %q, %v", pt3, err)
	}

	// A tampered length field is rejected before any crypto.
	bad, err := ictx.Wrap(msg)
	if err != nil {
		t.Fatal(err)
	}
	bad[8]++
	if _, err := actx.UnwrapInPlace(bad); err == nil {
		t.Fatal("tampered wrap-token length accepted")
	}
}
