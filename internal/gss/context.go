package gss

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/wire"
)

// Context is an established security context. It provides message
// protection (Wrap/Unwrap), integrity-only MICs, and exposes the
// authenticated peer. Contexts are safe for concurrent use.
type Context struct {
	initiator bool
	peer      Peer
	flags     Flags
	expiry    time.Time
	now       func() time.Time

	sealer *gridcrypto.Sealer
	opener *gridcrypto.Opener
	micKey []byte // local MIC signing key
	vfyKey []byte // peer MIC verification key
}

func newContext(initiator bool, ks keySchedule, peer Peer, cfg Config, flags Flags) (*Context, error) {
	sendKey, recvKey := ks.initWrite, ks.acceptWrite
	micKey, vfyKey := ks.initFin, ks.acceptFin
	if !initiator {
		sendKey, recvKey = recvKey, sendKey
		micKey, vfyKey = vfyKey, micKey
	}
	sealer, err := gridcrypto.NewSealer(sendKey)
	if err != nil {
		return nil, err
	}
	opener, err := gridcrypto.NewOpener(recvKey)
	if err != nil {
		return nil, err
	}
	nowFn := cfg.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	expiry := nowFn().Add(cfg.lifetime())
	// A context never outlives the credentials that authenticated it —
	// neither the local one nor any certificate in the peer's validated
	// chain (chain validity is the min over the chain: the instant any
	// link lapses, re-validation of the peer would fail, so the context
	// must lapse with it). This is what lets credential rotation reason
	// about contexts: once the old credential's NotAfter passes, every
	// context it authenticated — and every resumed child, which inherits
	// this expiry — is provably dead.
	if cfg.Credential != nil && cfg.Credential.Leaf().NotAfter.Before(expiry) {
		expiry = cfg.Credential.Leaf().NotAfter
	}
	for _, cert := range peer.Chain {
		if cert.NotAfter.Before(expiry) {
			expiry = cert.NotAfter
		}
	}
	return &Context{
		initiator: initiator,
		peer:      peer,
		flags:     flags,
		expiry:    expiry,
		now:       nowFn,
		sealer:    sealer,
		opener:    opener,
		micKey:    micKey,
		vfyKey:    vfyKey,
	}, nil
}

// Peer returns the authenticated remote party.
func (c *Context) Peer() Peer { return c.peer }

// Initiator reports whether the local side initiated the context.
func (c *Context) Initiator() bool { return c.initiator }

// Expiry returns when the context lapses.
func (c *Context) Expiry() time.Time { return c.expiry }

// Expired reports whether the context has lapsed.
func (c *Context) Expired() bool { return c.now().After(c.expiry) }

// DelegationRequested reports whether the initiator set FlagDelegate.
func (c *Context) DelegationRequested() bool { return c.flags&FlagDelegate != 0 }

// Wrap-token layout: seq (8) || ciphertext length (4) || ciphertext.
const (
	// WrapPrefix is the header WrapInto prepends before the ciphertext.
	WrapPrefix = 12
	// WrapOverhead is the total expansion of WrapInto over the plaintext
	// (header plus AEAD tag).
	WrapOverhead = WrapPrefix + gridcrypto.SealOverhead
)

// wrapAAD binds every wrap token to its purpose.
var wrapAAD = []byte("gsi3 wrap")

// Wrap protects a message (confidentiality + integrity + ordering) for
// the peer. Thin shim over WrapInto with a fresh exact-size buffer.
func (c *Context) Wrap(plaintext []byte) ([]byte, error) {
	return c.WrapInto(make([]byte, 0, len(plaintext)+WrapOverhead), plaintext)
}

// WrapInto is Wrap appending the token to dst: header, then ciphertext,
// sealed straight into dst's spare capacity — no intermediate buffer.
// For a fully in-place wrap, assemble the plaintext at offset WrapPrefix
// of a buffer with SealOverhead spare tail capacity and pass the buffer's
// origin as dst:
//
//	token, err := ctx.WrapInto(buf[:0], buf[WrapPrefix:WrapPrefix+n])
//
// (dst's free space and plaintext must otherwise not overlap, per
// crypto/cipher.)
func (c *Context) WrapInto(dst, plaintext []byte) ([]byte, error) {
	if c.Expired() {
		return nil, ErrContextExpired
	}
	off := len(dst)
	var hdr [WrapPrefix]byte
	dst = append(dst, hdr[:]...)
	seq, out, err := c.sealer.SealInto(dst, plaintext, wrapAAD)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint64(out[off:], seq)
	binary.BigEndian.PutUint32(out[off+8:], uint32(len(out)-off-WrapPrefix))
	return out, nil
}

// Unwrap reverses the peer's Wrap into a fresh buffer, leaving the token
// intact. Thin shim kept for callers that need the token afterwards.
func (c *Context) Unwrap(wrapped []byte) ([]byte, error) {
	seq, ct, err := c.parseWrapToken(wrapped)
	if err != nil {
		return nil, err
	}
	pt, err := c.opener.Open(seq, ct, wrapAAD)
	if err != nil {
		return nil, fmt.Errorf("gss: unwrap: %w", err)
	}
	return pt, nil
}

// UnwrapInPlace reverses the peer's Wrap decrypting into the token's own
// storage: the returned plaintext is a view into wrapped (valid only as
// long as the caller keeps that buffer), and the token is consumed — on
// failure its contents are undefined.
func (c *Context) UnwrapInPlace(wrapped []byte) ([]byte, error) {
	seq, ct, err := c.parseWrapToken(wrapped)
	if err != nil {
		return nil, err
	}
	pt, err := c.opener.OpenInPlace(seq, ct, wrapAAD)
	if err != nil {
		return nil, fmt.Errorf("gss: unwrap: %w", err)
	}
	return pt, nil
}

// ReserveWrap claims the next wrap sequence number without sealing.
// It anchors the pipelined send path: a submitter reserves in
// submission order, worker goroutines seal concurrently with WrapAtInto,
// and submission order alone fixes the wire order the peer's in-order
// opener will verify. Every reservation must be consumed by exactly one
// WrapAtInto (a reused seq would reuse a GCM nonce).
func (c *Context) ReserveWrap() (uint64, error) {
	if c.Expired() {
		return 0, ErrContextExpired
	}
	return c.sealer.Reserve()
}

// WrapAtInto is WrapInto sealing under a sequence number previously
// obtained from ReserveWrap. It is safe for any number of goroutines to
// call concurrently with distinct reservations; dst layout rules match
// WrapInto.
func (c *Context) WrapAtInto(seq uint64, dst, plaintext []byte) ([]byte, error) {
	off := len(dst)
	var hdr [WrapPrefix]byte
	dst = append(dst, hdr[:]...)
	out := c.sealer.SealAtInto(seq, dst, plaintext, wrapAAD)
	binary.BigEndian.PutUint64(out[off:], seq)
	binary.BigEndian.PutUint32(out[off+8:], uint32(len(out)-off-WrapPrefix))
	return out, nil
}

// ReserveUnwrap validates a wrap token's framing and admits its
// sequence number through the anti-replay cursor, in arrival order,
// without decrypting. The returned seq and ciphertext view feed a later
// (possibly concurrent) UnwrapAtInPlace on a worker goroutine. On an
// ordered carrier this preserves exactly Unwrap's replay/reorder
// detection while moving the AEAD work off the reader.
func (c *Context) ReserveUnwrap(wrapped []byte) (seq uint64, ct []byte, err error) {
	seq, ct, err = c.parseWrapToken(wrapped)
	if err != nil {
		return 0, nil, err
	}
	if err := c.opener.Advance(seq); err != nil {
		return 0, nil, fmt.Errorf("gss: unwrap: %w", err)
	}
	return seq, ct, nil
}

// UnwrapAtInPlace decrypts the ciphertext of a token already admitted
// by ReserveUnwrap, into its own storage. Concurrency-safe across
// distinct reservations.
func (c *Context) UnwrapAtInPlace(seq uint64, ct []byte) ([]byte, error) {
	pt, err := c.opener.OpenAtInPlace(seq, ct, wrapAAD)
	if err != nil {
		return nil, fmt.Errorf("gss: unwrap: %w", err)
	}
	return pt, nil
}

func (c *Context) parseWrapToken(wrapped []byte) (seq uint64, ct []byte, err error) {
	if c.Expired() {
		return 0, nil, ErrContextExpired
	}
	if len(wrapped) < WrapPrefix {
		return 0, nil, fmt.Errorf("gss: bad wrap token: %w", wire.ErrTruncated)
	}
	seq = binary.BigEndian.Uint64(wrapped)
	n := binary.BigEndian.Uint32(wrapped[8:])
	if int(n) != len(wrapped)-WrapPrefix {
		return 0, nil, fmt.Errorf("gss: bad wrap token: ciphertext length %d in a %d-byte token", n, len(wrapped))
	}
	return seq, wrapped[WrapPrefix:], nil
}

// WrapPrefix and WrapOverhead as methods satisfy the record layer's
// Protector interface (internal/record), which keeps no compile-time
// dependency on this package.
func (c *Context) WrapPrefix() int   { return WrapPrefix }
func (c *Context) WrapOverhead() int { return WrapOverhead }

// ResumeNonceSize is the length both resumption nonces must have.
const ResumeNonceSize = 32

// Resume derives a child context from an established one without any
// public-key operation: fresh wrap and MIC keys are drawn by HKDF from
// the parent's finished keys (known to both sides, ordered canonically)
// salted with the two resumption nonces. Both parties call Resume with
// the same nonces and obtain matching key schedules; each keeps its own
// orientation. The child inherits the parent's authenticated peer,
// flags, clock, and — crucially — its expiry, which newContext already
// clamped to the local credential's lifetime: a resumed context can
// never outlive the credential that authenticated the original
// handshake. A lapsed parent cannot be resumed.
//
// This is the WS-SecureConversation amortization the paper's §5.1
// measures: one expensive bootstrap, many cheap session-key refreshes.
func (c *Context) Resume(clientNonce, serverNonce []byte) (*Context, error) {
	if c.Expired() {
		return nil, ErrContextExpired
	}
	if len(clientNonce) != ResumeNonceSize || len(serverNonce) != ResumeNonceSize {
		return nil, fmt.Errorf("%w: resumption nonce must be %d bytes", ErrBadToken, ResumeNonceSize)
	}
	// Order the finished keys canonically (initiator's first) so both
	// orientations derive the same material.
	initFin, acceptFin := c.micKey, c.vfyKey
	if !c.initiator {
		initFin, acceptFin = acceptFin, initFin
	}
	ikm := make([]byte, 0, len(initFin)+len(acceptFin))
	ikm = append(ikm, initFin...)
	ikm = append(ikm, acceptFin...)
	salt := make([]byte, 0, len(clientNonce)+len(serverNonce))
	salt = append(salt, clientNonce...)
	salt = append(salt, serverNonce...)
	prk := gridcrypto.HKDFExtract(salt, ikm)
	var ks keySchedule
	var err error
	if ks.initWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume initiator write"), gridcrypto.AEADKeySize); err != nil {
		return nil, err
	}
	if ks.acceptWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume acceptor write"), gridcrypto.AEADKeySize); err != nil {
		return nil, err
	}
	if ks.initFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume initiator finished"), 32); err != nil {
		return nil, err
	}
	if ks.acceptFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume acceptor finished"), 32); err != nil {
		return nil, err
	}
	sendKey, recvKey := ks.initWrite, ks.acceptWrite
	micKey, vfyKey := ks.initFin, ks.acceptFin
	if !c.initiator {
		sendKey, recvKey = recvKey, sendKey
		micKey, vfyKey = vfyKey, micKey
	}
	sealer, err := gridcrypto.NewSealer(sendKey)
	if err != nil {
		return nil, err
	}
	opener, err := gridcrypto.NewOpener(recvKey)
	if err != nil {
		return nil, err
	}
	return &Context{
		initiator: c.initiator,
		peer:      c.peer,
		flags:     c.flags,
		expiry:    c.expiry,
		now:       c.now,
		sealer:    sealer,
		opener:    opener,
		micKey:    micKey,
		vfyKey:    vfyKey,
	}, nil
}

// GetMIC computes an integrity check over msg without encrypting it.
func (c *Context) GetMIC(msg []byte) []byte {
	return gridcrypto.HMACSHA256(c.micKey, msg)
}

// VerifyMIC checks a MIC produced by the peer's GetMIC.
func (c *Context) VerifyMIC(msg, mic []byte) error {
	if !gridcrypto.HMACEqual(mic, gridcrypto.HMACSHA256(c.vfyKey, msg)) {
		return errors.New("gss: MIC verification failed")
	}
	return nil
}

// Establish runs a complete in-memory handshake between two configs and
// returns both contexts. It exists for tests and for co-located services.
func Establish(initCfg, acceptCfg Config) (initCtx, acceptCtx *Context, err error) {
	return EstablishContext(context.Background(), initCfg, acceptCfg)
}

// EstablishContext is Establish honoring ctx: cancellation or deadline
// expiry aborts the handshake at the next token boundary, returning
// ctx.Err().
func EstablishContext(ctx context.Context, initCfg, acceptCfg Config) (initCtx, acceptCtx *Context, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	init, err := NewInitiator(initCfg)
	if err != nil {
		return nil, nil, err
	}
	acc, err := NewAcceptor(acceptCfg)
	if err != nil {
		return nil, nil, err
	}
	t1, err := init.Start()
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	t2, err := acc.Accept(t1)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	t3, ictx, err := init.Finish(t2)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	actx, err := acc.Complete(t3)
	if err != nil {
		return nil, nil, err
	}
	return ictx, actx, nil
}
