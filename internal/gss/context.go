package gss

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/wire"
)

// Context is an established security context. It provides message
// protection (Wrap/Unwrap), integrity-only MICs, and exposes the
// authenticated peer. Contexts are safe for concurrent use.
type Context struct {
	initiator bool
	peer      Peer
	flags     Flags
	expiry    time.Time
	now       func() time.Time

	sealer *gridcrypto.Sealer
	opener *gridcrypto.Opener
	micKey []byte // local MIC signing key
	vfyKey []byte // peer MIC verification key
}

func newContext(initiator bool, ks keySchedule, peer Peer, cfg Config, flags Flags) (*Context, error) {
	sendKey, recvKey := ks.initWrite, ks.acceptWrite
	micKey, vfyKey := ks.initFin, ks.acceptFin
	if !initiator {
		sendKey, recvKey = recvKey, sendKey
		micKey, vfyKey = vfyKey, micKey
	}
	sealer, err := gridcrypto.NewSealer(sendKey)
	if err != nil {
		return nil, err
	}
	opener, err := gridcrypto.NewOpener(recvKey)
	if err != nil {
		return nil, err
	}
	nowFn := cfg.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	expiry := nowFn().Add(cfg.lifetime())
	// A context never outlives the credentials that authenticated it —
	// neither the local one nor any certificate in the peer's validated
	// chain (chain validity is the min over the chain: the instant any
	// link lapses, re-validation of the peer would fail, so the context
	// must lapse with it). This is what lets credential rotation reason
	// about contexts: once the old credential's NotAfter passes, every
	// context it authenticated — and every resumed child, which inherits
	// this expiry — is provably dead.
	if cfg.Credential != nil && cfg.Credential.Leaf().NotAfter.Before(expiry) {
		expiry = cfg.Credential.Leaf().NotAfter
	}
	for _, cert := range peer.Chain {
		if cert.NotAfter.Before(expiry) {
			expiry = cert.NotAfter
		}
	}
	return &Context{
		initiator: initiator,
		peer:      peer,
		flags:     flags,
		expiry:    expiry,
		now:       nowFn,
		sealer:    sealer,
		opener:    opener,
		micKey:    micKey,
		vfyKey:    vfyKey,
	}, nil
}

// Peer returns the authenticated remote party.
func (c *Context) Peer() Peer { return c.peer }

// Initiator reports whether the local side initiated the context.
func (c *Context) Initiator() bool { return c.initiator }

// Expiry returns when the context lapses.
func (c *Context) Expiry() time.Time { return c.expiry }

// Expired reports whether the context has lapsed.
func (c *Context) Expired() bool { return c.now().After(c.expiry) }

// DelegationRequested reports whether the initiator set FlagDelegate.
func (c *Context) DelegationRequested() bool { return c.flags&FlagDelegate != 0 }

// Wrap protects a message (confidentiality + integrity + ordering) for
// the peer.
func (c *Context) Wrap(plaintext []byte) ([]byte, error) {
	if c.Expired() {
		return nil, ErrContextExpired
	}
	seq, ct, err := c.sealer.Seal(plaintext, []byte("gsi3 wrap"))
	if err != nil {
		return nil, err
	}
	return wire.NewEncoder().U64(seq).Bytes(ct).Finish(), nil
}

// Unwrap reverses the peer's Wrap.
func (c *Context) Unwrap(wrapped []byte) ([]byte, error) {
	if c.Expired() {
		return nil, ErrContextExpired
	}
	d := wire.NewDecoder(wrapped)
	seq := d.U64()
	ct := d.Bytes()
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("gss: bad wrap token: %w", err)
	}
	pt, err := c.opener.Open(seq, ct, []byte("gsi3 wrap"))
	if err != nil {
		return nil, fmt.Errorf("gss: unwrap: %w", err)
	}
	return pt, nil
}

// ResumeNonceSize is the length both resumption nonces must have.
const ResumeNonceSize = 32

// Resume derives a child context from an established one without any
// public-key operation: fresh wrap and MIC keys are drawn by HKDF from
// the parent's finished keys (known to both sides, ordered canonically)
// salted with the two resumption nonces. Both parties call Resume with
// the same nonces and obtain matching key schedules; each keeps its own
// orientation. The child inherits the parent's authenticated peer,
// flags, clock, and — crucially — its expiry, which newContext already
// clamped to the local credential's lifetime: a resumed context can
// never outlive the credential that authenticated the original
// handshake. A lapsed parent cannot be resumed.
//
// This is the WS-SecureConversation amortization the paper's §5.1
// measures: one expensive bootstrap, many cheap session-key refreshes.
func (c *Context) Resume(clientNonce, serverNonce []byte) (*Context, error) {
	if c.Expired() {
		return nil, ErrContextExpired
	}
	if len(clientNonce) != ResumeNonceSize || len(serverNonce) != ResumeNonceSize {
		return nil, fmt.Errorf("%w: resumption nonce must be %d bytes", ErrBadToken, ResumeNonceSize)
	}
	// Order the finished keys canonically (initiator's first) so both
	// orientations derive the same material.
	initFin, acceptFin := c.micKey, c.vfyKey
	if !c.initiator {
		initFin, acceptFin = acceptFin, initFin
	}
	ikm := make([]byte, 0, len(initFin)+len(acceptFin))
	ikm = append(ikm, initFin...)
	ikm = append(ikm, acceptFin...)
	salt := make([]byte, 0, len(clientNonce)+len(serverNonce))
	salt = append(salt, clientNonce...)
	salt = append(salt, serverNonce...)
	prk := gridcrypto.HKDFExtract(salt, ikm)
	var ks keySchedule
	var err error
	if ks.initWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume initiator write"), gridcrypto.AEADKeySize); err != nil {
		return nil, err
	}
	if ks.acceptWrite, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume acceptor write"), gridcrypto.AEADKeySize); err != nil {
		return nil, err
	}
	if ks.initFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume initiator finished"), 32); err != nil {
		return nil, err
	}
	if ks.acceptFin, err = gridcrypto.HKDFExpand(prk, []byte("gsi3 resume acceptor finished"), 32); err != nil {
		return nil, err
	}
	sendKey, recvKey := ks.initWrite, ks.acceptWrite
	micKey, vfyKey := ks.initFin, ks.acceptFin
	if !c.initiator {
		sendKey, recvKey = recvKey, sendKey
		micKey, vfyKey = vfyKey, micKey
	}
	sealer, err := gridcrypto.NewSealer(sendKey)
	if err != nil {
		return nil, err
	}
	opener, err := gridcrypto.NewOpener(recvKey)
	if err != nil {
		return nil, err
	}
	return &Context{
		initiator: c.initiator,
		peer:      c.peer,
		flags:     c.flags,
		expiry:    c.expiry,
		now:       c.now,
		sealer:    sealer,
		opener:    opener,
		micKey:    micKey,
		vfyKey:    vfyKey,
	}, nil
}

// GetMIC computes an integrity check over msg without encrypting it.
func (c *Context) GetMIC(msg []byte) []byte {
	return gridcrypto.HMACSHA256(c.micKey, msg)
}

// VerifyMIC checks a MIC produced by the peer's GetMIC.
func (c *Context) VerifyMIC(msg, mic []byte) error {
	if !gridcrypto.HMACEqual(mic, gridcrypto.HMACSHA256(c.vfyKey, msg)) {
		return errors.New("gss: MIC verification failed")
	}
	return nil
}

// Establish runs a complete in-memory handshake between two configs and
// returns both contexts. It exists for tests and for co-located services.
func Establish(initCfg, acceptCfg Config) (initCtx, acceptCtx *Context, err error) {
	return EstablishContext(context.Background(), initCfg, acceptCfg)
}

// EstablishContext is Establish honoring ctx: cancellation or deadline
// expiry aborts the handshake at the next token boundary, returning
// ctx.Err().
func EstablishContext(ctx context.Context, initCfg, acceptCfg Config) (initCtx, acceptCtx *Context, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	init, err := NewInitiator(initCfg)
	if err != nil {
		return nil, nil, err
	}
	acc, err := NewAcceptor(acceptCfg)
	if err != nil {
		return nil, nil, err
	}
	t1, err := init.Start()
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	t2, err := acc.Accept(t1)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	t3, ictx, err := init.Finish(t2)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	actx, err := acc.Complete(t3)
	if err != nil {
		return nil, nil, err
	}
	return ictx, actx, nil
}
