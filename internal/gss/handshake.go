package gss

import (
	"errors"
	"fmt"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

// Initiator drives the client side of context establishment.
type Initiator struct {
	cfg   Config
	ecdh  *gridcrypto.ECDHKeyPair
	tr    transcript
	flags Flags
	state int // 0 = new, 1 = token1 sent, 2 = done
}

// NewInitiator prepares an initiator. If cfg.Anonymous is false a
// credential is required.
func NewInitiator(cfg Config) (*Initiator, error) {
	if !cfg.Anonymous && cfg.Credential == nil {
		return nil, errors.New("gss: initiator requires a credential unless anonymous")
	}
	if cfg.TrustStore == nil {
		return nil, errors.New("gss: initiator requires a trust store")
	}
	return &Initiator{cfg: cfg}, nil
}

// Start produces token1.
func (i *Initiator) Start() ([]byte, error) {
	if i.state != 0 {
		return nil, errors.New("gss: Start called twice")
	}
	var err error
	i.ecdh, err = gridcrypto.GenerateECDH()
	if err != nil {
		return nil, err
	}
	nonce, err := gridcrypto.RandomBytes(32)
	if err != nil {
		return nil, err
	}
	i.flags = FlagMutual
	if i.cfg.Anonymous {
		i.flags |= FlagAnonymous
	}
	if i.cfg.Delegate {
		i.flags |= FlagDelegate
	}
	t1 := token1{flags: i.flags, nonce: nonce, share: i.ecdh.PublicBytes()}
	enc := t1.encode()
	i.tr.add("token1", enc)
	i.state = 1
	return enc, nil
}

// Finish consumes token2 and produces token3 plus the established context.
func (i *Initiator) Finish(token2Bytes []byte) ([]byte, *Context, error) {
	if i.state != 1 {
		return nil, nil, errors.New("gss: Finish before Start")
	}
	i.state = 2
	t2, err := decodeToken2(token2Bytes)
	if err != nil {
		return nil, nil, err
	}

	// Authenticate the acceptor: decode and validate its chain, then check
	// its signature over the transcript-so-far.
	chain, err := gridcert.DecodeChain(t2.chain)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: acceptor chain: %w", ErrAuthFailed, err)
	}
	info, err := i.cfg.TrustStore.VerifyCached(i.cfg.ChainCache, t2.chain, chain, gridcert.VerifyOptions{
		Now:           i.cfg.now(),
		RejectLimited: i.cfg.RejectLimited,
		MaxProxyDepth: i.cfg.MaxProxyDepth,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: acceptor chain: %w", ErrAuthFailed, err)
	}
	if !i.cfg.ExpectedPeer.Empty() && !info.Identity.Equal(i.cfg.ExpectedPeer) {
		return nil, nil, fmt.Errorf("%w: acceptor identity %q, expected %q", ErrAuthFailed, info.Identity, i.cfg.ExpectedPeer)
	}

	// Rebuild the signed transcript: token1 || token2 core fields.
	sigTr := i.tr
	sigTr.add("token2-core", token2Core(t2))
	if err := chain[0].PublicKey.Verify(sigTr.sum(), t2.sig); err != nil {
		return nil, nil, fmt.Errorf("%w: acceptor transcript signature: %v", ErrAuthFailed, err)
	}

	// Key agreement and schedule.
	secret, err := i.ecdh.SharedSecret(t2.share)
	if err != nil {
		return nil, nil, err
	}
	keyTr := sigTr
	keyTr.add("token2-sig", t2.sig)
	ks, err := deriveKeys(secret, keyTr.sum())
	if err != nil {
		return nil, nil, err
	}
	// Verify the acceptor's finished MAC (binds keys to transcript).
	if !gridcrypto.HMACEqual(t2.finished, gridcrypto.HMACSHA256(ks.acceptFin, keyTr.sum())) {
		return nil, nil, fmt.Errorf("%w: acceptor finished MAC", ErrAuthFailed)
	}

	// Build token3: prove our identity (unless anonymous).
	t3 := token3{anonymous: i.cfg.Anonymous}
	respTr := keyTr
	respTr.add("token2-finished", t2.finished)
	if !i.cfg.Anonymous {
		t3.chain = gridcert.EncodeChain(i.cfg.Credential.Chain)
		respTr.add("token3-chain", t3.chain)
		sig, err := i.cfg.Credential.Key.Sign(respTr.sum())
		if err != nil {
			return nil, nil, err
		}
		t3.sig = sig
		respTr.add("token3-sig", sig)
	} else {
		respTr.add("token3-chain", nil)
		respTr.add("token3-sig", nil)
	}
	t3.finished = gridcrypto.HMACSHA256(ks.initFin, respTr.sum())

	ctx, err := newContext(true, ks, Peer{
		Identity: info.Identity,
		Subject:  info.Subject,
		Chain:    chain,
		Info:     info,
	}, i.cfg, i.flags)
	if err != nil {
		return nil, nil, err
	}
	return t3.encode(), ctx, nil
}

// Acceptor drives the server side of context establishment.
type Acceptor struct {
	cfg   Config
	ecdh  *gridcrypto.ECDHKeyPair
	tr    transcript
	ks    keySchedule
	flags Flags
	state int
}

// NewAcceptor prepares an acceptor; a credential is mandatory because GSI
// always authenticates the service side.
func NewAcceptor(cfg Config) (*Acceptor, error) {
	if cfg.Credential == nil {
		return nil, errors.New("gss: acceptor requires a credential")
	}
	if cfg.TrustStore == nil {
		return nil, errors.New("gss: acceptor requires a trust store")
	}
	return &Acceptor{cfg: cfg}, nil
}

// Accept consumes token1 and produces token2.
func (a *Acceptor) Accept(token1Bytes []byte) ([]byte, error) {
	if a.state != 0 {
		return nil, errors.New("gss: Accept called twice")
	}
	a.state = 1
	t1, err := decodeToken1(token1Bytes)
	if err != nil {
		return nil, err
	}
	a.flags = t1.flags
	a.tr.add("token1", token1Bytes)

	a.ecdh, err = gridcrypto.GenerateECDH()
	if err != nil {
		return nil, err
	}
	nonce, err := gridcrypto.RandomBytes(32)
	if err != nil {
		return nil, err
	}
	t2 := token2{
		nonce: nonce,
		share: a.ecdh.PublicBytes(),
		chain: gridcert.EncodeChain(a.cfg.Credential.Chain),
	}
	sigTr := a.tr
	sigTr.add("token2-core", token2Core(t2))
	sig, err := a.cfg.Credential.Key.Sign(sigTr.sum())
	if err != nil {
		return nil, err
	}
	t2.sig = sig

	secret, err := a.ecdh.SharedSecret(t1.share)
	if err != nil {
		return nil, err
	}
	keyTr := sigTr
	keyTr.add("token2-sig", sig)
	a.ks, err = deriveKeys(secret, keyTr.sum())
	if err != nil {
		return nil, err
	}
	t2.finished = gridcrypto.HMACSHA256(a.ks.acceptFin, keyTr.sum())
	a.tr = keyTr
	a.tr.add("token2-finished", t2.finished)
	a.state = 2
	return t2.encode(), nil
}

// Complete consumes token3 and returns the established context.
func (a *Acceptor) Complete(token3Bytes []byte) (*Context, error) {
	if a.state != 2 {
		return nil, errors.New("gss: Complete before Accept")
	}
	a.state = 3
	t3, err := decodeToken3(token3Bytes)
	if err != nil {
		return nil, err
	}
	peer := Peer{Anonymous: t3.anonymous}
	respTr := a.tr
	if !t3.anonymous {
		chain, err := gridcert.DecodeChain(t3.chain)
		if err != nil {
			return nil, fmt.Errorf("%w: initiator chain: %w", ErrAuthFailed, err)
		}
		info, err := a.cfg.TrustStore.VerifyCached(a.cfg.ChainCache, t3.chain, chain, gridcert.VerifyOptions{
			Now:           a.cfg.now(),
			RejectLimited: a.cfg.RejectLimited,
			MaxProxyDepth: a.cfg.MaxProxyDepth,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: initiator chain: %w", ErrAuthFailed, err)
		}
		if !a.cfg.ExpectedPeer.Empty() && !info.Identity.Equal(a.cfg.ExpectedPeer) {
			return nil, fmt.Errorf("%w: initiator identity %q, expected %q", ErrAuthFailed, info.Identity, a.cfg.ExpectedPeer)
		}
		respTr.add("token3-chain", t3.chain)
		if err := chain[0].PublicKey.Verify(respTr.sum(), t3.sig); err != nil {
			return nil, fmt.Errorf("%w: initiator transcript signature: %v", ErrAuthFailed, err)
		}
		respTr.add("token3-sig", t3.sig)
		peer.Identity = info.Identity
		peer.Subject = info.Subject
		peer.Chain = chain
		peer.Info = info
	} else {
		if a.flags&FlagAnonymous == 0 {
			return nil, fmt.Errorf("%w: anonymous token3 without anonymous flag", ErrBadToken)
		}
		respTr.add("token3-chain", nil)
		respTr.add("token3-sig", nil)
	}
	if !gridcrypto.HMACEqual(t3.finished, gridcrypto.HMACSHA256(a.ks.initFin, respTr.sum())) {
		return nil, fmt.Errorf("%w: initiator finished MAC", ErrAuthFailed)
	}
	return newContext(false, a.ks, peer, a.cfg, a.flags)
}

// token2Core encodes the fields of token2 covered by the signature.
func token2Core(t token2) []byte {
	out := make([]byte, 0, len(t.nonce)+len(t.share)+len(t.chain))
	out = append(out, t.nonce...)
	out = append(out, t.share...)
	out = append(out, t.chain...)
	return out
}
