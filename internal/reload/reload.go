// Package reload watches configuration files — trust roots, CRLs,
// grid-mapfiles, local policy — and re-applies them to live state when
// they change on disk, without restarting the server. Detection is
// polling on stat (mtime + size): dependency-free, portable, and
// sufficient at the seconds-scale cadence security configuration moves
// at; no inotify/cgo.
//
// The contract every applier must honor is fail-closed: parse and
// validate the new bytes COMPLETELY before touching live state, and on
// any error leave the previous state untouched. A corrupt or truncated
// intermediate write therefore keeps the old trust/policy generation
// live (and bumps the failure counter) — the server never drops to an
// empty trust store or a half-read policy because an operator's editor
// wrote the file in two chunks.
package reload

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultInterval is the polling cadence when none is configured.
const DefaultInterval = 2 * time.Second

// fileStat is the change-detection key: a source is re-applied when
// either field moves.
type fileStat struct {
	modTime time.Time
	size    int64
}

type source struct {
	name  string
	path  string
	apply func(data []byte) error

	// seen is the stat of the last attempted load (successful or not):
	// a bad write is tried once, not on every tick. A later write moves
	// the stat and triggers a fresh attempt; forced Reload ignores seen.
	seen   fileStat
	tried  bool
	lastOK bool
	errMsg string
}

// Stats is a snapshot of a Watcher's counters.
type Stats struct {
	// Reloads counts successful apply calls (the initial load included).
	Reloads uint64
	// Failures counts apply or read attempts that failed; the previous
	// state stayed live each time.
	Failures uint64
}

// SourceStatus reports one watched file's last outcome.
type SourceStatus struct {
	Name    string
	Path    string
	Healthy bool
	Error   string // last failure message, "" when healthy
}

// Watcher polls a set of files and applies changes. Configure with
// Watch, then Start; Close stops the loop. Safe for concurrent use.
type Watcher struct {
	interval time.Duration

	mu      sync.Mutex
	sources []*source
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}

	reloads  atomic.Uint64
	failures atomic.Uint64

	// onEvent, if set, observes every attempt (telemetry, logs). err is
	// nil on success. Must not call back into the Watcher.
	onEvent func(name string, err error)
}

// New creates a watcher polling at the given interval (<= 0 selects
// DefaultInterval).
func New(interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Watcher{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// OnEvent installs an observer called after every apply attempt with
// the source name and the outcome (nil = success). Install before
// Start.
func (w *Watcher) OnEvent(fn func(name string, err error)) {
	w.mu.Lock()
	w.onEvent = fn
	w.mu.Unlock()
}

// Watch registers a file. name labels the source in status and events;
// apply receives the full file contents and must be fail-closed (see
// package doc). The file is not read until the first poll or Reload.
func (w *Watcher) Watch(name, path string, apply func(data []byte) error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sources = append(w.sources, &source{name: name, path: path, apply: apply})
}

// Start launches the polling loop: an immediate pass, then one per
// interval. Calling Start twice or after Close is a no-op.
func (w *Watcher) Start() {
	w.mu.Lock()
	if w.started || w.closed {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	go w.run()
}

func (w *Watcher) run() {
	defer close(w.done)
	w.poll(false)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.poll(false)
		}
	}
}

// Close stops the polling loop and waits for it to exit.
func (w *Watcher) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	started := w.started
	w.mu.Unlock()
	close(w.stop)
	if started {
		<-w.done
	}
}

// Reload forces a full pass over every source, re-reading and
// re-applying each file regardless of whether its stat moved (so a
// fixed-in-place file or a previously failed one is retried now). It
// returns the joined errors of the sources that failed; their previous
// state remains live.
func (w *Watcher) Reload() error {
	return w.poll(true)
}

// poll runs one pass. When force is false only sources whose stat
// moved since the last attempt are loaded.
func (w *Watcher) poll(force bool) error {
	w.mu.Lock()
	sources := append([]*source(nil), w.sources...)
	w.mu.Unlock()
	var errs []error
	for _, s := range sources {
		if err := w.pollOne(s, force); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", s.name, err))
		}
	}
	return errors.Join(errs...)
}

func (w *Watcher) pollOne(s *source, force bool) error {
	fi, statErr := os.Stat(s.path)
	var st fileStat
	if statErr == nil {
		st = fileStat{modTime: fi.ModTime(), size: fi.Size()}
	}
	w.mu.Lock()
	unchanged := s.tried && st == s.seen
	onEvent := w.onEvent
	w.mu.Unlock()
	if unchanged && !force {
		return nil
	}

	err := statErr
	if err == nil {
		var data []byte
		if data, err = os.ReadFile(s.path); err == nil {
			err = s.apply(data)
		}
	}

	w.mu.Lock()
	// Re-stat after the load: if the file moved while we read it (a
	// racing writer), leave seen at its pre-load value so the next tick
	// retries with the settled contents.
	if fi2, err2 := os.Stat(s.path); err2 == nil {
		if (fileStat{modTime: fi2.ModTime(), size: fi2.Size()}) == st {
			s.seen, s.tried = st, true
		}
	} else if statErr != nil {
		// Still missing: the absence itself has been attempted.
		s.seen, s.tried = st, true
	}
	s.lastOK = err == nil
	s.errMsg = ""
	if err != nil {
		s.errMsg = err.Error()
	}
	w.mu.Unlock()

	if err != nil {
		w.failures.Add(1)
	} else {
		w.reloads.Add(1)
	}
	if onEvent != nil {
		onEvent(s.name, err)
	}
	return err
}

// Stats snapshots the reload counters.
func (w *Watcher) Stats() Stats {
	return Stats{Reloads: w.reloads.Load(), Failures: w.failures.Load()}
}

// Status reports each source's last outcome, in registration order.
func (w *Watcher) Status() []SourceStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SourceStatus, 0, len(w.sources))
	for _, s := range w.sources {
		out = append(out, SourceStatus{
			Name:    s.name,
			Path:    s.path,
			Healthy: s.lastOK,
			Error:   s.errMsg,
		})
	}
	return out
}
